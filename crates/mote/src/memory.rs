//! Mote RAM: storage for module-level variables.

use ct_ir::instr::GlobalId;
use ct_ir::program::Program;

/// The global-variable store of a running mote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalStore {
    values: Vec<Vec<i64>>,
    lens: Vec<u32>,
}

impl GlobalStore {
    /// Allocates and initializes storage for every global of `program`.
    pub fn new(program: &Program) -> GlobalStore {
        let values = program
            .globals
            .iter()
            .map(|g| {
                let mut v = vec![0i64; g.len as usize];
                if g.len == 1 {
                    v[0] = g.init;
                }
                v
            })
            .collect();
        let lens = program.globals.iter().map(|g| g.len).collect();
        GlobalStore { values, lens }
    }

    /// Reads a scalar global.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn load(&self, g: GlobalId) -> i64 {
        self.values[g.index()][0]
    }

    /// Writes a scalar global.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn store(&mut self, g: GlobalId, v: i64) {
        self.values[g.index()][0] = v;
    }

    /// Reads an array element, or `None` when the index is out of bounds.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn load_elem(&self, g: GlobalId, index: i64) -> Option<i64> {
        if index < 0 || index as u64 >= self.lens[g.index()] as u64 {
            return None;
        }
        Some(self.values[g.index()][index as usize])
    }

    /// Writes an array element; `false` when the index is out of bounds.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn store_elem(&mut self, g: GlobalId, index: i64, v: i64) -> bool {
        if index < 0 || index as u64 >= self.lens[g.index()] as u64 {
            return false;
        }
        self.values[g.index()][index as usize] = v;
        true
    }

    /// Resets every global to its initial value.
    pub fn reset(&mut self, program: &Program) {
        *self = GlobalStore::new(program);
    }

    /// Snapshot of an array's contents (for app-level assertions).
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn array(&self, g: GlobalId) -> &[i64] {
        &self.values[g.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program() -> Program {
        ct_ir::compile_source("module M { var a: u16 = 42; var buf: u8[3]; }").unwrap()
    }

    #[test]
    fn scalars_initialize() {
        let store = GlobalStore::new(&program());
        assert_eq!(store.load(GlobalId(0)), 42);
    }

    #[test]
    fn arrays_zero_initialize() {
        let store = GlobalStore::new(&program());
        assert_eq!(store.array(GlobalId(1)), &[0, 0, 0]);
    }

    #[test]
    fn store_and_load_round_trip() {
        let mut store = GlobalStore::new(&program());
        store.store(GlobalId(0), 7);
        assert_eq!(store.load(GlobalId(0)), 7);
    }

    #[test]
    fn elem_bounds_are_checked() {
        let mut store = GlobalStore::new(&program());
        assert!(store.store_elem(GlobalId(1), 2, 9));
        assert_eq!(store.load_elem(GlobalId(1), 2), Some(9));
        assert!(!store.store_elem(GlobalId(1), 3, 1));
        assert_eq!(store.load_elem(GlobalId(1), -1), None);
        assert_eq!(store.load_elem(GlobalId(1), 3), None);
    }

    #[test]
    fn reset_restores_initial_state() {
        let p = program();
        let mut store = GlobalStore::new(&p);
        store.store(GlobalId(0), 0);
        store.store_elem(GlobalId(1), 0, 5);
        store.reset(&p);
        assert_eq!(store.load(GlobalId(0)), 42);
        assert_eq!(store.array(GlobalId(1)), &[0, 0, 0]);
    }
}

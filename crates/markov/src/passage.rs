//! Accumulated-reward (duration) moments and exact duration distributions.
//!
//! With per-state rewards `c` (block cycle costs), the total reward until
//! absorption `T` satisfies, for transient `i`:
//!
//! ```text
//! E[Tᵢ]  = cᵢ + Σⱼ pᵢⱼ E[Tⱼ]
//! E[Tᵢ²] = cᵢ² + 2 cᵢ (E[Tᵢ] − cᵢ) + Σⱼ pᵢⱼ E[Tⱼ²]
//! ```
//!
//! (with `E[T_a] = c_a`, `E[T_a²] = c_a²` at absorbing `a`: the return block
//! executes once). The method-of-moments estimator in `ct-core` matches these
//! model moments against sample moments of the observed timings.

use crate::chain::{ChainError, Dtmc};
use ct_stats::matrix::Matrix;
use ct_stats::solve::Lu;
use std::collections::BTreeMap;

/// Mean and variance of the total accumulated reward until absorption.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurationMoments {
    /// Expected total reward.
    pub mean: f64,
    /// Variance of the total reward.
    pub variance: f64,
}

/// Computes [`DurationMoments`] from `start`.
///
/// # Errors
///
/// [`ChainError::NoAbsorbingStates`] / [`ChainError::AbsorptionUnreachable`]
/// as in the absorbing analysis.
///
/// # Panics
///
/// Panics if `rewards.len()` differs from the state count or `start` is out
/// of range.
pub fn duration_moments(
    chain: &Dtmc,
    rewards: &[f64],
    start: usize,
) -> Result<DurationMoments, ChainError> {
    let n = chain.len();
    assert_eq!(rewards.len(), n, "one reward per state required");
    assert!(start < n, "start state out of range");

    let absorbing = chain.absorbing_states();
    if absorbing.is_empty() {
        return Err(ChainError::NoAbsorbingStates);
    }
    if chain.is_absorbing_state(start) {
        return Ok(DurationMoments {
            mean: rewards[start],
            variance: 0.0,
        });
    }
    let transient = chain.transient_states();
    let t = transient.len();

    let mut i_minus_q = Matrix::identity(t);
    for (ti, &si) in transient.iter().enumerate() {
        for (tj, &sj) in transient.iter().enumerate() {
            i_minus_q[(ti, tj)] -= chain.prob(si, sj);
        }
    }
    let lu = Lu::factor(&i_minus_q).map_err(|_| ChainError::AbsorptionUnreachable {
        state: transient[0],
    })?;

    // First moment: (I−Q) m = c_T + R c_A.
    let mut b1 = vec![0.0; t];
    for (ti, &si) in transient.iter().enumerate() {
        let mut acc = rewards[si];
        for &sa in &absorbing {
            acc += chain.prob(si, sa) * rewards[sa];
        }
        b1[ti] = acc;
    }
    let m1 = lu
        .solve(&b1)
        .map_err(|e| ChainError::Numeric(e.to_string()))?;

    // Second moment: (I−Q) s = b₂ where
    // b₂ᵢ = cᵢ² + 2 cᵢ (mᵢ − cᵢ) + Σ_a r_{ia} c_a².
    let mut b2 = vec![0.0; t];
    for (ti, &si) in transient.iter().enumerate() {
        let c = rewards[si];
        let mut acc = c * c + 2.0 * c * (m1[ti] - c);
        for &sa in &absorbing {
            acc += chain.prob(si, sa) * rewards[sa] * rewards[sa];
        }
        b2[ti] = acc;
    }
    let m2 = lu
        .solve(&b2)
        .map_err(|e| ChainError::Numeric(e.to_string()))?;

    // `start` was proven non-absorbing above, so it is in the transient
    // set; surface a typed error rather than panic if that ever breaks.
    let si = transient
        .iter()
        .position(|&s| s == start)
        .ok_or_else(|| ChainError::Numeric("start state left the transient set".into()))?;
    let mean = m1[si];
    let variance = (m2[si] - mean * mean).max(0.0);
    Ok(DurationMoments { mean, variance })
}

/// Exact distribution of the total integer reward until absorption, starting
/// from `start`.
///
/// Dynamic programming over `(state, accumulated reward)` pairs; probability
/// mass below `mass_eps` per entry is dropped (and reported as truncated).
///
/// # Errors
///
/// [`ChainError::Numeric`] if the DP exceeds `max_entries` live entries,
/// which indicates runaway loops for the requested precision.
///
/// # Panics
///
/// Panics if `costs.len()` differs from the state count.
pub fn duration_distribution(
    chain: &Dtmc,
    costs: &[u64],
    start: usize,
    mass_eps: f64,
    max_entries: usize,
) -> Result<DurationDistribution, ChainError> {
    let n = chain.len();
    assert_eq!(costs.len(), n, "one cost per state required");
    assert!(start < n, "start state out of range");

    let mut result: BTreeMap<u64, f64> = BTreeMap::new();
    let mut truncated = 0.0;
    // Live frontier: (state, reward so far *excluding* the current state's
    // own cost) → probability.
    let mut frontier: BTreeMap<(usize, u64), f64> = BTreeMap::new();
    frontier.insert((start, 0), 1.0);

    while !frontier.is_empty() {
        if frontier.len() > max_entries {
            return Err(ChainError::Numeric(format!(
                "duration DP exceeded {max_entries} live entries"
            )));
        }
        let mut next: BTreeMap<(usize, u64), f64> = BTreeMap::new();
        for ((state, acc), mass) in frontier {
            let total = acc + costs[state];
            if chain.is_absorbing_state(state) {
                *result.entry(total).or_insert(0.0) += mass;
                continue;
            }
            for j in 0..n {
                let p = chain.prob(state, j);
                if p <= 0.0 {
                    continue;
                }
                let m = mass * p;
                if m < mass_eps {
                    truncated += m;
                    continue;
                }
                *next.entry((j, total)).or_insert(0.0) += m;
            }
        }
        frontier = next;
    }

    Ok(DurationDistribution {
        pmf: result,
        truncated_mass: truncated,
    })
}

/// A (possibly truncated) probability mass function over integer durations.
#[derive(Debug, Clone, PartialEq)]
pub struct DurationDistribution {
    /// Duration → probability.
    pub pmf: BTreeMap<u64, f64>,
    /// Probability mass dropped by truncation.
    pub truncated_mass: f64,
}

impl DurationDistribution {
    /// Mean of the (retained) distribution.
    pub fn mean(&self) -> f64 {
        self.pmf.iter().map(|(&t, &p)| t as f64 * p).sum()
    }

    /// Total retained probability mass.
    pub fn total_mass(&self) -> f64 {
        self.pmf.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_stats::matrix::Matrix;

    fn branch_chain(p_left: f64) -> (Dtmc, Vec<u64>) {
        // 0 → 1 (cost 10) or 2 (cost 20); both → 3 (absorbing, cost 1). 0 costs 5.
        let p = Matrix::from_rows(&[
            &[0.0, p_left, 1.0 - p_left, 0.0],
            &[0.0, 0.0, 0.0, 1.0],
            &[0.0, 0.0, 0.0, 1.0],
            &[0.0, 0.0, 0.0, 1.0],
        ]);
        (Dtmc::new(p).unwrap(), vec![5, 10, 20, 1])
    }

    #[test]
    fn branch_moments_match_mixture() {
        let (chain, costs) = branch_chain(0.5);
        let rewards: Vec<f64> = costs.iter().map(|&c| c as f64).collect();
        let m = duration_moments(&chain, &rewards, 0).unwrap();
        // Totals: 16 or 26 with equal probability → mean 21, var 25.
        assert!((m.mean - 21.0).abs() < 1e-9);
        assert!((m.variance - 25.0).abs() < 1e-9);
    }

    #[test]
    fn geometric_loop_moments() {
        // State 0: stay w.p. q (reward 3), exit to 1 (reward 0).
        let q = 0.5;
        let p = Matrix::from_rows(&[&[q, 1.0 - q], &[0.0, 1.0]]);
        let chain = Dtmc::new(p).unwrap();
        let m = duration_moments(&chain, &[3.0, 0.0], 0).unwrap();
        // Visits of state 0 ~ 1 + Geometric(1-q): mean 2, var q/(1-q)² = 2.
        assert!((m.mean - 6.0).abs() < 1e-9);
        assert!((m.variance - 9.0 * 2.0).abs() < 1e-9);
    }

    #[test]
    fn start_absorbed_has_zero_variance() {
        let (chain, _) = branch_chain(0.5);
        let m = duration_moments(&chain, &[0.0, 0.0, 0.0, 7.0], 3).unwrap();
        assert_eq!(m.mean, 7.0);
        assert_eq!(m.variance, 0.0);
    }

    #[test]
    fn distribution_of_branch_is_two_point() {
        let (chain, costs) = branch_chain(0.25);
        let d = duration_distribution(&chain, &costs, 0, 1e-12, 10_000).unwrap();
        assert_eq!(d.pmf.len(), 2);
        assert!((d.pmf[&16] - 0.25).abs() < 1e-12);
        assert!((d.pmf[&26] - 0.75).abs() < 1e-12);
        assert!((d.total_mass() - 1.0).abs() < 1e-12);
        assert!((d.mean() - 23.5).abs() < 1e-9);
    }

    #[test]
    fn distribution_of_loop_is_geometric() {
        let q = 0.5;
        let p = Matrix::from_rows(&[&[q, 1.0 - q], &[0.0, 1.0]]);
        let chain = Dtmc::new(p).unwrap();
        let d = duration_distribution(&chain, &[3, 0], 0, 1e-10, 10_000).unwrap();
        // Durations 3k for k ≥ 1 with prob (1/2)^k.
        assert!((d.pmf[&3] - 0.5).abs() < 1e-9);
        assert!((d.pmf[&6] - 0.25).abs() < 1e-9);
        assert!((d.pmf[&9] - 0.125).abs() < 1e-9);
        assert!(d.truncated_mass < 1e-6);
    }

    #[test]
    fn distribution_mean_matches_moments() {
        let (chain, costs) = branch_chain(0.6);
        let rewards: Vec<f64> = costs.iter().map(|&c| c as f64).collect();
        let m = duration_moments(&chain, &rewards, 0).unwrap();
        let d = duration_distribution(&chain, &costs, 0, 1e-12, 10_000).unwrap();
        assert!((m.mean - d.mean()).abs() < 1e-9);
    }

    #[test]
    fn dp_entry_cap_enforced() {
        let q = 0.999;
        let p = Matrix::from_rows(&[&[q, 1.0 - q], &[0.0, 1.0]]);
        let chain = Dtmc::new(p).unwrap();
        // Extremely slow-mixing loop with tiny eps and tiny cap must error.
        assert!(duration_distribution(&chain, &[1, 0], 0, 1e-300, 0).is_err());
    }
}

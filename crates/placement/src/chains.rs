//! Block chains: the working structure of bottom-up code positioning.
//!
//! A chain is an ordered run of blocks intended to be laid out contiguously,
//! so that every intra-chain edge becomes a fall-through. Pettis–Hansen
//! merges chains along hot edges (tail-of-one to head-of-another) until no
//! merge is possible.

use ct_cfg::graph::BlockId;

/// A set of disjoint block chains covering a procedure's blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainSet {
    /// chain id per block (dense indices into `chains`; merged chains keep
    /// one id and the other becomes empty).
    chain_of: Vec<usize>,
    chains: Vec<Vec<BlockId>>,
}

impl ChainSet {
    /// One singleton chain per block, for a procedure with `n` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn singletons(n: usize) -> ChainSet {
        assert!(n > 0, "procedure must have blocks");
        ChainSet {
            chain_of: (0..n).collect(),
            chains: (0..n).map(|i| vec![BlockId(i as u32)]).collect(),
        }
    }

    /// The chain id containing `b`.
    pub fn chain_id(&self, b: BlockId) -> usize {
        self.chain_of[b.index()]
    }

    /// The blocks of chain `id` in order (empty for merged-away ids).
    pub fn chain(&self, id: usize) -> &[BlockId] {
        &self.chains[id]
    }

    /// True when `b` is the last block of its chain.
    pub fn is_tail(&self, b: BlockId) -> bool {
        self.chains[self.chain_of[b.index()]].last() == Some(&b)
    }

    /// True when `b` is the first block of its chain.
    pub fn is_head(&self, b: BlockId) -> bool {
        self.chains[self.chain_of[b.index()]].first() == Some(&b)
    }

    /// Merges the chain ending at `tail` with the chain starting at `head`
    /// (making the edge `tail → head` a fall-through). Returns `false` when
    /// the merge is not possible: the blocks are mid-chain, or already in the
    /// same chain.
    pub fn merge(&mut self, tail: BlockId, head: BlockId) -> bool {
        let a = self.chain_of[tail.index()];
        let b = self.chain_of[head.index()];
        if a == b || !self.is_tail(tail) || !self.is_head(head) {
            return false;
        }
        let moved = std::mem::take(&mut self.chains[b]);
        for &blk in &moved {
            self.chain_of[blk.index()] = a;
        }
        self.chains[a].extend(moved);
        true
    }

    /// All nonempty chains, preserving creation order.
    pub fn nonempty(&self) -> Vec<&[BlockId]> {
        self.chains
            .iter()
            .filter(|c| !c.is_empty())
            .map(|c| c.as_slice())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_heads_and_tails() {
        let cs = ChainSet::singletons(3);
        for i in 0..3 {
            let b = BlockId(i);
            assert!(cs.is_head(b));
            assert!(cs.is_tail(b));
        }
        assert_eq!(cs.nonempty().len(), 3);
    }

    #[test]
    fn merge_joins_chains() {
        let mut cs = ChainSet::singletons(3);
        assert!(cs.merge(BlockId(0), BlockId(1)));
        assert_eq!(cs.chain(cs.chain_id(BlockId(0))), &[BlockId(0), BlockId(1)]);
        assert!(cs.is_head(BlockId(0)));
        assert!(cs.is_tail(BlockId(1)));
        assert!(!cs.is_tail(BlockId(0)));
        assert_eq!(cs.nonempty().len(), 2);
    }

    #[test]
    fn merge_rejects_mid_chain_and_same_chain() {
        let mut cs = ChainSet::singletons(4);
        assert!(cs.merge(BlockId(0), BlockId(1)));
        assert!(cs.merge(BlockId(1), BlockId(2)));
        // 0-1-2 now one chain.
        assert!(!cs.merge(BlockId(0), BlockId(3))); // 0 is not a tail
        assert!(!cs.merge(BlockId(2), BlockId(1))); // same chain
        assert!(cs.merge(BlockId(2), BlockId(3)));
        assert_eq!(cs.nonempty().len(), 1);
    }

    #[test]
    fn chains_cover_all_blocks_exactly_once() {
        let mut cs = ChainSet::singletons(5);
        cs.merge(BlockId(3), BlockId(4));
        cs.merge(BlockId(0), BlockId(3));
        let mut all: Vec<BlockId> = cs
            .nonempty()
            .iter()
            .flat_map(|c| c.iter().copied())
            .collect();
        all.sort();
        assert_eq!(all, (0..5).map(BlockId).collect::<Vec<_>>());
    }
}

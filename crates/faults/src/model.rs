//! The fault models: seeded rewrites of a tick stream, one per
//! [`crate::FaultKind`].
//!
//! Every model follows the same contract:
//!
//! - rate `0.0` is the exact identity (bitwise, no RNG draws), so a
//!   zero-rate [`crate::FaultChain`] is a no-op;
//! - the output is a pure function of `(model, input, rng state)` — no
//!   ambient entropy, no thread-dependence;
//! - corrupted values never panic downstream: catastrophic records are what
//!   naive timestamp pairing would really produce (all-ones bus reads via
//!   bitwise complement, wrapped wrong-order subtractions), which the
//!   hardened estimator detects and the naive one must survive.

use ct_core::TimingSamples;
use rand::rngs::StdRng;
use rand::Rng;

/// A composable corruption of a timing-sample stream.
///
/// Implementations draw all randomness from the supplied generator so that a
/// [`crate::FaultChain`] replays bit-identically from its plan's seed.
pub trait FaultModel {
    /// Stable machine-readable name (matches [`crate::FaultKind::name`]).
    fn name(&self) -> &'static str;

    /// Applies the fault to `samples`, drawing randomness from `rng`.
    fn apply(&self, samples: &TimingSamples, rng: &mut StdRng) -> TimingSamples;
}

/// A half-written or bus-glitched record read back as mostly-ones: the
/// canonical catastrophic value naive pairing produces.
fn garble(t: u64) -> u64 {
    !t
}

/// Wraps `ticks` at the input's resolution. The resolution is propagated or
/// explicitly clamped to ≥ 1 by every caller, so this cannot panic.
fn rewrap(samples: &TimingSamples, ticks: Vec<u64>) -> TimingSamples {
    TimingSamples::new(ticks, samples.cycles_per_tick())
}

/// Oscillator skew plus per-sample jitter.
///
/// At rate `r`: every duration is overcounted by a multiplicative skew
/// `1 + 0.001·r` (an aging crystal up to 1000 ppm off — sub-tick for
/// realistic activation lengths, exactly the error class quantization
/// absorbs); with probability `0.08·r` a sample lands a full tick early or
/// late (a tick-boundary race); and with probability `0.08·r` a
/// timer-register glitch wraps the reading entirely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockDrift {
    rate: f64,
}

impl ClockDrift {
    /// Canonical drift model at `rate` (clamped into `[0, 1]`).
    pub fn new(rate: f64) -> ClockDrift {
        ClockDrift {
            rate: rate.clamp(0.0, 1.0),
        }
    }
}

impl FaultModel for ClockDrift {
    fn name(&self) -> &'static str {
        "clock-drift"
    }

    fn apply(&self, samples: &TimingSamples, rng: &mut StdRng) -> TimingSamples {
        if self.rate == 0.0 {
            return samples.clone();
        }
        let skew = 1.0 + 0.001 * self.rate;
        let ticks = samples
            .ticks()
            .iter()
            .map(|&t| {
                if rng.gen_bool(0.08 * self.rate) {
                    return garble(t);
                }
                // Float→int casts saturate, so stuck-at inputs upstream in a
                // chain survive the scaling.
                let skewed = (t as f64 * skew).round() as u64;
                if rng.gen_bool(0.08 * self.rate) {
                    // Tick-boundary race: one tick early or late, symmetric.
                    if rng.gen_bool(0.5) {
                        skewed.saturating_add(1)
                    } else {
                        skewed.saturating_sub(1)
                    }
                } else {
                    skewed
                }
            })
            .collect();
        rewrap(samples, ticks)
    }
}

/// Lost exit timestamps.
///
/// Record `i`'s exit timestamp is lost with probability `r`. Most of the
/// time the pairing layer's sequence-number check catches the gap and drops
/// the half-pair (82%); sometimes the check is fooled by a sequence wrap and
/// the record merges with its successor into one plausible-but-wrong
/// duration separated by an idle gap (8%); and sometimes the torn half-pair
/// is emitted as-is and reads back as garbage (10%). A loss at the batch
/// tail has no next record to steal from and always yields the garbage
/// half-pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecordLoss {
    rate: f64,
}

impl RecordLoss {
    /// Canonical loss model at `rate` (clamped into `[0, 1]`).
    pub fn new(rate: f64) -> RecordLoss {
        RecordLoss {
            rate: rate.clamp(0.0, 1.0),
        }
    }
}

impl FaultModel for RecordLoss {
    fn name(&self) -> &'static str {
        "record-loss"
    }

    fn apply(&self, samples: &TimingSamples, rng: &mut StdRng) -> TimingSamples {
        if self.rate == 0.0 {
            return samples.clone();
        }
        let ticks = samples.ticks();
        let mut out = Vec::with_capacity(ticks.len());
        let mut i = 0;
        while i < ticks.len() {
            let t = ticks[i];
            if !rng.gen_bool(self.rate) {
                out.push(t);
                i += 1;
                continue;
            }
            // Exit timestamp lost: drop, merge, or emit the torn half-pair.
            match ticks.get(i + 1) {
                None => {
                    out.push(garble(t));
                    i += 1;
                }
                Some(&next) => {
                    let roll = rng.gen_range(0.0..1.0);
                    if roll < 0.10 {
                        out.push(garble(t));
                        i += 1;
                    } else if roll < 0.18 {
                        let gap = rng.gen_range(0..=2u64);
                        out.push(t.saturating_add(gap).saturating_add(next));
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
        }
        rewrap(samples, out)
    }
}

/// Link-layer retransmission.
///
/// Records are duplicated with probability `r`, biased toward long
/// activations (long windows collide with more radio traffic and get
/// retransmitted; short ones at `r/3`). A duplicate is occasionally
/// half-written.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Duplication {
    rate: f64,
}

impl Duplication {
    /// Canonical duplication model at `rate` (clamped into `[0, 1]`).
    pub fn new(rate: f64) -> Duplication {
        Duplication {
            rate: rate.clamp(0.0, 1.0),
        }
    }
}

impl FaultModel for Duplication {
    fn name(&self) -> &'static str {
        "duplication"
    }

    fn apply(&self, samples: &TimingSamples, rng: &mut StdRng) -> TimingSamples {
        if self.rate == 0.0 || samples.is_empty() {
            return samples.clone();
        }
        let mut sorted = samples.ticks().to_vec();
        sorted.sort_unstable();
        let med = sorted[sorted.len() / 2];
        let mut out = Vec::with_capacity(samples.len() * 2);
        for &t in samples.ticks() {
            out.push(t);
            let p = if t >= med { self.rate } else { self.rate / 3.0 };
            if rng.gen_bool(p) {
                out.push(if rng.gen_bool(0.10 * self.rate) {
                    garble(t)
                } else {
                    t
                });
            }
        }
        rewrap(samples, out)
    }
}

/// Out-of-order delivery.
///
/// Adjacent records swap position with probability `r` (a pure permutation —
/// invisible to a batch estimator but real on the wire), and with
/// probability `0.15·r` a record's entry/exit timestamps arrive transposed:
/// the unsigned subtraction wraps to a huge value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reordering {
    rate: f64,
}

impl Reordering {
    /// Canonical reordering model at `rate` (clamped into `[0, 1]`).
    pub fn new(rate: f64) -> Reordering {
        Reordering {
            rate: rate.clamp(0.0, 1.0),
        }
    }
}

impl FaultModel for Reordering {
    fn name(&self) -> &'static str {
        "reordering"
    }

    fn apply(&self, samples: &TimingSamples, rng: &mut StdRng) -> TimingSamples {
        if self.rate == 0.0 {
            return samples.clone();
        }
        let mut out = samples.ticks().to_vec();
        for t in out.iter_mut() {
            if rng.gen_bool(0.15 * self.rate) {
                *t = t.wrapping_neg();
            }
        }
        for i in 0..out.len().saturating_sub(1) {
            if rng.gen_bool(self.rate) {
                out.swap(i, i + 1);
            }
        }
        rewrap(samples, out)
    }
}

/// A batch cut off mid-transfer.
///
/// The trailing `r` fraction of records never arrives, and the record at the
/// truncation boundary — the one the cut landed inside — is half-written and
/// reads back as garbage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedBatch {
    rate: f64,
}

impl TruncatedBatch {
    /// Canonical truncation model at `rate` (clamped into `[0, 1]`).
    pub fn new(rate: f64) -> TruncatedBatch {
        TruncatedBatch {
            rate: rate.clamp(0.0, 1.0),
        }
    }
}

impl FaultModel for TruncatedBatch {
    fn name(&self) -> &'static str {
        "truncated-batch"
    }

    fn apply(&self, samples: &TimingSamples, _rng: &mut StdRng) -> TimingSamples {
        if self.rate == 0.0 {
            return samples.clone();
        }
        let n = samples.len();
        let keep = ((n as f64) * (1.0 - self.rate)).ceil() as usize;
        let mut out = samples.ticks()[..keep.min(n)].to_vec();
        if keep > 0 && keep < n {
            let last = out.len() - 1;
            out[last] = garble(out[last]);
        }
        rewrap(samples, out)
    }
}

/// Stuck-at counters and interrupt-latency spikes.
///
/// With probability `r` a reading is replaced: usually (90%) by an all-ones
/// stuck register, occasionally (10%) by a large finite outlier — an
/// interrupt that fired mid-window and stole 50–500 ticks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StuckAt {
    rate: f64,
}

impl StuckAt {
    /// Canonical stuck-at model at `rate` (clamped into `[0, 1]`).
    pub fn new(rate: f64) -> StuckAt {
        StuckAt {
            rate: rate.clamp(0.0, 1.0),
        }
    }
}

impl FaultModel for StuckAt {
    fn name(&self) -> &'static str {
        "stuck-at"
    }

    fn apply(&self, samples: &TimingSamples, rng: &mut StdRng) -> TimingSamples {
        if self.rate == 0.0 {
            return samples.clone();
        }
        let ticks = samples
            .ticks()
            .iter()
            .map(|&t| {
                if !rng.gen_bool(self.rate) {
                    t
                } else if rng.gen_bool(0.9) {
                    u64::MAX
                } else {
                    t.saturating_add(rng.gen_range(50..=500u64))
                }
            })
            .collect();
        rewrap(samples, ticks)
    }
}

/// Corrupted per-record prescaler fields.
///
/// Each record carries the timer prescaler it was measured at; with
/// probability `r` that field is off by one power-of-two step, so the base
/// station re-normalizes the reading through the wrong scale. An
/// over-reported prescaler (×2 then ÷2) round-trips exactly; an
/// under-reported one (÷2 then ×2) permanently loses the low bit, leaving
/// odd readings one tick short. With probability `0.05·r` the field is
/// unparseable and the whole record reads back as garbage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MisreportedResolution {
    rate: f64,
}

impl MisreportedResolution {
    /// Canonical misreporting model at `rate` (clamped into `[0, 1]`).
    pub fn new(rate: f64) -> MisreportedResolution {
        MisreportedResolution {
            rate: rate.clamp(0.0, 1.0),
        }
    }
}

impl FaultModel for MisreportedResolution {
    fn name(&self) -> &'static str {
        "misreported-resolution"
    }

    fn apply(&self, samples: &TimingSamples, rng: &mut StdRng) -> TimingSamples {
        if self.rate == 0.0 {
            return samples.clone();
        }
        let ticks = samples
            .ticks()
            .iter()
            .map(|&t| {
                if rng.gen_bool(0.05 * self.rate) {
                    return garble(t);
                }
                if rng.gen_bool(self.rate) {
                    if rng.gen_bool(0.5) {
                        // Over-reported prescaler: ×2 on the mote, ÷2 at the
                        // base station — the round trip is exact.
                        t
                    } else {
                        // Under-reported: ÷2 truncates, ×2 cannot restore
                        // the lost bit.
                        (t / 2).saturating_mul(2)
                    }
                } else {
                    t
                }
            })
            .collect();
        rewrap(samples, ticks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngCore, SeedableRng};

    fn clean() -> TimingSamples {
        let mut ticks = vec![115u64; 70];
        ticks.extend(vec![215u64; 30]);
        TimingSamples::new(ticks, 244)
    }

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn zero_rate_is_identity_without_rng_draws() {
        let s = clean();
        for kind in crate::FaultKind::ALL {
            let model = kind.model(0.0);
            let mut a = rng(1);
            let out = model.apply(&s, &mut a);
            assert_eq!(out, s, "{kind}");
            // No draws consumed: the generator still matches a fresh one.
            let mut b = rng(1);
            assert_eq!(a.next_u64(), b.next_u64(), "{kind} consumed rng");
        }
    }

    #[test]
    fn drift_nudges_ticks_within_one_and_garbles_some() {
        let s = clean();
        let out = ClockDrift::new(1.0).apply(&s, &mut rng(7));
        assert_eq!(out.len(), s.len());
        // Sub-tick skew + tick-boundary races: sane outputs stay within one
        // tick of their inputs; register glitches wrap to huge values.
        let mut garbled = 0;
        for (&t_in, &t_out) in s.ticks().iter().zip(out.ticks()) {
            if t_out > 1_000 {
                garbled += 1;
            } else {
                assert!(t_out.abs_diff(t_in) <= 1, "{t_in} -> {t_out}");
            }
        }
        assert!(garbled > 0);
        assert!(garbled < s.len() / 2);
    }

    #[test]
    fn loss_drops_merges_and_tears_windows() {
        let s = clean();
        let out = RecordLoss::new(1.0).apply(&s, &mut rng(8));
        // Every exit timestamp is lost: most half-pairs are dropped, a few
        // merge into over-long windows, a few are emitted as garbage.
        assert!(out.len() < s.len() / 2, "{}", out.len());
        assert!(out.ticks().iter().any(|&t| (230..1_000).contains(&t)));
        assert!(out.ticks().iter().any(|&t| t > u64::MAX / 2));
    }

    #[test]
    fn loss_at_low_rate_keeps_most_of_the_batch() {
        let s = clean();
        let out = RecordLoss::new(0.2).apply(&s, &mut rng(9));
        assert!(out.len() < s.len());
        assert!(out.len() > s.len() / 2);
        // The surviving bulk is untouched.
        assert!(
            out.ticks()
                .iter()
                .filter(|&&t| t == 115 || t == 215)
                .count()
                > s.len() / 2
        );
    }

    #[test]
    fn duplication_only_adds() {
        let s = clean();
        let out = Duplication::new(0.5).apply(&s, &mut rng(10));
        assert!(out.len() > s.len());
        assert!(out.len() <= 2 * s.len());
    }

    #[test]
    fn reordering_preserves_length() {
        let s = clean();
        let out = Reordering::new(0.8).apply(&s, &mut rng(11));
        assert_eq!(out.len(), s.len());
        // Wrong-order subtractions wrapped to huge values.
        assert!(out.ticks().iter().any(|&t| t > u64::MAX / 2));
    }

    #[test]
    fn truncation_drops_the_tail() {
        let s = clean();
        let out = TruncatedBatch::new(0.3).apply(&s, &mut rng(12));
        assert_eq!(out.len(), 70);
        let all = TruncatedBatch::new(1.0).apply(&s, &mut rng(13));
        assert!(all.is_empty());
    }

    #[test]
    fn stuck_at_injects_all_ones() {
        let s = clean();
        let out = StuckAt::new(0.6).apply(&s, &mut rng(14));
        assert!(out.ticks().contains(&u64::MAX));
        assert_eq!(out.len(), s.len());
    }

    #[test]
    fn misreport_loses_low_bits_not_resolution() {
        let s = clean();
        let out = MisreportedResolution::new(0.8).apply(&s, &mut rng(15));
        // The stream's resolution metadata is intact — the damage is in the
        // re-normalized values.
        assert_eq!(out.cycles_per_tick(), s.cycles_per_tick());
        assert_eq!(out.len(), s.len());
        // Inputs are odd (115/215): under-reported prescalers leave them one
        // tick short; over-reported ones round-trip exactly.
        let short = out
            .ticks()
            .iter()
            .filter(|&&t| t == 114 || t == 214)
            .count();
        assert!(short > 0);
        for (&t_in, &t_out) in s.ticks().iter().zip(out.ticks()) {
            if t_out < 1_000 {
                assert!(t_out == t_in || t_out == t_in - 1, "{t_in} -> {t_out}");
            }
        }
    }

    #[test]
    fn models_handle_empty_input() {
        let empty = TimingSamples::new(vec![], 244);
        for kind in crate::FaultKind::ALL {
            let out = kind.model(1.0).apply(&empty, &mut rng(16));
            assert!(out.len() <= 1, "{kind}"); // loss may emit nothing
        }
    }
}

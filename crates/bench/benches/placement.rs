//! Criterion microbenchmarks: placement algorithm throughput on growing
//! CFGs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ct_cfg::builder::diamond_chain;
use ct_cfg::layout::PenaltyModel;
use ct_placement::{greedy_traces, pettis_hansen, place_procedure, Strategy};
use std::hint::black_box;

fn bench_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement");
    for k in [4usize, 16, 64] {
        let cfg = diamond_chain(k);
        let weights: Vec<f64> = (0..cfg.edges().len())
            .map(|i| ((i * 37) % 100) as f64)
            .collect();
        group.bench_with_input(BenchmarkId::new("pettis_hansen", k), &k, |b, _| {
            b.iter(|| black_box(pettis_hansen(&cfg, &weights)));
        });
        group.bench_with_input(BenchmarkId::new("greedy_traces", k), &k, |b, _| {
            b.iter(|| black_box(greedy_traces(&cfg, &weights, 0.5)));
        });
        group.bench_with_input(BenchmarkId::new("best", k), &k, |b, _| {
            let pen = PenaltyModel::avr();
            b.iter(|| black_box(place_procedure(&cfg, &weights, &pen, Strategy::Best)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_placement);
criterion_main!(benches);

//! E3 — Profiling overhead comparison (Table).
//!
//! Claim evaluated: entry/exit timestamps cost far less than conventional
//! instrumentation on all three mote-relevant axes: cycles, RAM, flash.

use ct_bench::{f2, run_with_profiler, write_result, Mcu, Table};
use ct_mote::timer::VirtualTimer;
use ct_mote::trace::{NullProfiler, TimingProfiler};
use ct_profilers::ball_larus::BallLarusProfiler;
use ct_profilers::edge_counter::EdgeCounterProfiler;
use ct_profilers::overhead::tomography;
use ct_profilers::sampling::SamplingProfiler;

fn main() {
    let n = 2_000;
    let seed = 3_000;
    let mut table = Table::new(vec![
        "app",
        "approach",
        "cycles +%",
        "ram B",
        "flash B",
        "exact?",
    ]);

    for app in ct_apps::all_apps() {
        let program = app.compile();
        let base = run_with_profiler(&app, Mcu::Avr, n, seed, &mut NullProfiler);

        // Code Tomography: a timestamp at every proc entry/exit.
        let mut tp = TimingProfiler::new(
            &program,
            VirtualTimer::khz32_at_8mhz(),
            tomography::TIMESTAMP_CYCLES,
        );
        let tomo = run_with_profiler(&app, Mcu::Avr, n, seed, &mut tp);

        let mut ec = EdgeCounterProfiler::new(&program);
        let edges = run_with_profiler(&app, Mcu::Avr, n, seed, &mut ec);

        let mut bl = BallLarusProfiler::new(&program);
        let ball = run_with_profiler(&app, Mcu::Avr, n, seed, &mut bl);

        let mut sp = SamplingProfiler::new(&program, 1009);
        let sampling = run_with_profiler(&app, Mcu::Avr, n, seed, &mut sp);

        let pct = |cycles: u64| f2((cycles as f64 - base as f64) / base as f64 * 100.0);
        let rows: Vec<(&str, String, u32, u32, &str)> = vec![
            (
                "tomography",
                pct(tomo),
                tomography::ram_bytes(&program),
                tomography::flash_bytes(&program),
                "estimated",
            ),
            (
                "edge-counters",
                pct(edges),
                EdgeCounterProfiler::ram_bytes(&program),
                EdgeCounterProfiler::flash_bytes(&program),
                "exact",
            ),
            (
                "ball-larus",
                pct(ball),
                bl.ram_bytes(&program),
                bl.flash_bytes(&program),
                "exact",
            ),
            (
                "sampling",
                pct(sampling),
                SamplingProfiler::ram_bytes(&program),
                SamplingProfiler::flash_bytes(&program),
                "approx",
            ),
        ];
        for (name, pct, ram, flash, exact) in rows {
            table.row(vec![
                app.name.to_string(),
                name.to_string(),
                pct,
                ram.to_string(),
                flash.to_string(),
                exact.to_string(),
            ]);
        }
        eprintln!("e3: {} done", app.name);
    }

    let out = format!(
        "# E3 — Profiling overhead: runtime cycles, RAM, flash\n\n\
         {n} target invocations per app; AVR cost model; sampling period 1009 cycles;\n\
         tomography timestamps cost {} cycles each.\n\n{}",
        tomography::TIMESTAMP_CYCLES,
        table.to_markdown()
    );
    println!("{out}");
    write_result("e3_overhead.md", &out);
}

//! E6 — Robustness to measurement noise (Figure).
//!
//! Claim evaluated: timing-based estimation survives realistic measurement
//! contamination — interrupts stealing cycles inside measured windows. The
//! EM estimator's `unexplained` counter shows its built-in outlier rejection.

use ct_bench::{estimate_run, f4, run_on_mote, write_result, Mcu, Table};
use ct_core::estimator::EstimateOptions;
use ct_mote::timer::VirtualTimer;

fn main() {
    let n = 4_000;
    let rates = [0.0, 0.01, 0.02, 0.05, 0.10];
    let burst_cycles = [100u64, 500];
    let apps = ["sense", "event_detect", "crc"];

    let mut table = Table::new(vec![
        "app",
        "isr cycles",
        "rate=0",
        "rate=1%",
        "rate=2%",
        "rate=5%",
        "rate=10%",
        "unexplained@10%",
        "em iters@10%",
        "converged@10%",
        "final delta@10%",
    ]);

    for name in apps {
        let app = ct_apps::app_by_name(name).expect("app exists");
        for &isr in &burst_cycles {
            let mut cells = vec![name.to_string(), isr.to_string()];
            let mut last_unexplained = 0;
            let mut last_iters = 0;
            let mut last_converged = false;
            let mut last_delta = 0.0;
            for (i, &rate) in rates.iter().enumerate() {
                let mut mote = app.boot(Mcu::Avr.cost_model());
                mote.reseed(6_000 + i as u64);
                mote.config.contamination_prob = rate;
                mote.config.contamination_cycles = isr;
                let run = run_on_mote(&app, &mut mote, n, VirtualTimer::cycle_accurate(), 0);
                let (est, acc) = estimate_run(&run, EstimateOptions::default());
                last_unexplained = est.unexplained;
                last_iters = est.iterations;
                last_converged = est.converged;
                last_delta = est.final_delta;
                cells.push(f4(acc.weighted_mae));
            }
            cells.push(last_unexplained.to_string());
            cells.push(last_iters.to_string());
            cells.push(if last_converged { "yes" } else { "no" }.to_string());
            cells.push(format!("{last_delta:.1e}"));
            table.row(cells);
            eprintln!("e6: {name} isr={isr} done");
        }
    }

    let out = format!(
        "# E6 — Estimation accuracy (weighted MAE) under interrupt contamination\n\n\
         {n} samples; cycle-accurate timer; a contaminated activation has `isr cycles`\n\
         stolen inside its measured window with probability `rate`. `unexplained` =\n\
         samples the EM likelihood rejected as impossible at the final parameters.\n\n{}",
        table.to_markdown()
    );
    println!("{out}");
    write_result("e6_noise.md", &out);
}

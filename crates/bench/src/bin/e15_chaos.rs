//! E15 — Chaos harness for fault-tolerant fleet ingestion (Table, extension).
//!
//! Claims evaluated, each enforced by exit status:
//!
//! 1. **Recovery is exact**: at fault rate zero, a streaming run forced
//!    through checkpoint/halt/restore cycling at every batch boundary is
//!    bitwise identical to the uninterrupted run.
//! 2. **Duplicates never change results**: cells that only duplicate
//!    deliveries merge to the clean cell's statistics and estimate bits.
//! 3. **Graceful degradation**: cells that kept ≥ 80% fleet coverage
//!    estimate within tolerance of the full-coverage run, and every
//!    estimate's confidence equals its coverage discount.
//!
//! The grid sweeps crash rate × duplication rate × straggler rate; each
//! cell runs a fleet under a seeded [`MoteFaultPlan`] with bounded retries
//! and a straggler timeout, then reports its recovery counters
//! (`retries` / `dedup` / `stragglers` / `failed`) alongside coverage and
//! accuracy. The aggregated `fleet.*` / `ckpt.*` counters land in the run
//! manifest.

use ct_bench::{f2, f4, write_manifest_env, write_result, Table};
use ct_faults::{MoteFaultKind, MoteFaultPlan};
use ct_pipeline::{quiet_injected_crashes, CheckpointPolicy, EnvConfig, Fleet, RunConfig};

/// Seed of a grid cell's fault plan: a pure function of the cell indices,
/// so the grid replays bitwise at any sweep order.
fn cell_seed(base: u64, ci: usize, di: usize, si: usize) -> u64 {
    base.wrapping_add((ci as u64) << 16)
        .wrapping_add((di as u64) << 8)
        .wrapping_add(si as u64)
}

fn main() {
    ct_obs::flight::set_run_name("e15_chaos");
    quiet_injected_crashes();
    let env = EnvConfig::load();
    eprintln!("e15: {}", env.banner());
    let n = env.pick(200, 80);
    let motes = env.pick(10, 5);
    let seed = env.seed_or(47);
    let rates: &[f64] = if env.smoke {
        &[0.0, 0.5]
    } else {
        &[0.0, 0.3, 0.6]
    };
    let attempts = 8;
    // Straggler delays draw uniformly in 1..=1000 virtual ms; timing out at
    // 500 excludes a triggered straggler about half the time.
    let timeout = 500;

    let config = RunConfig::new("sense").invocations(n).seeded(seed);

    // Claim 1: checkpoint/halt/restore cycling at every batch boundary,
    // zero faults. The resumed chain of one-batch runs must finish bitwise
    // equal to the uninterrupted reference.
    let clean_fleet = Fleet::new(config.clone(), motes);
    let clean_run = clean_fleet.run().expect("clean fleet runs");
    let reference = clean_fleet
        .estimate_streaming(&clean_run)
        .expect("reference estimates");
    let ckpt_path = std::env::temp_dir().join(format!("ct_e15_cycle_{}.ckpt", std::process::id()));
    let _ = std::fs::remove_file(&ckpt_path);
    let mut cycles = 0usize;
    let recovered = loop {
        let report = clean_fleet
            .estimate_streaming_with(&clean_run, &CheckpointPolicy::to(&ckpt_path).halt_after(1))
            .expect("cycled run estimates");
        cycles += 1;
        assert!(cycles <= motes + 1, "checkpoint cycling failed to converge");
        if !report.halted {
            break report;
        }
    };
    let _ = std::fs::remove_file(&ckpt_path);
    // One lifetime per batch, plus the final lifetime that restores a
    // complete ledger, ingests nothing, and reports the finished estimate.
    assert_eq!(
        cycles,
        motes + 1,
        "expected one process lifetime per batch plus the completing one"
    );
    assert_eq!(recovered.batches, reference.batches);
    assert_eq!(
        recovered.batch_iterations, reference.batch_iterations,
        "recovery changed the iteration trail"
    );
    for (a, b) in recovered
        .estimated
        .estimate
        .probs
        .as_slice()
        .iter()
        .zip(reference.estimated.estimate.probs.as_slice())
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "recovery is not bitwise identical to the uninterrupted run"
        );
    }
    let full_mae = reference.estimated.accuracy.mae;

    let mut table = Table::new(vec![
        "crash",
        "dup",
        "straggle",
        "delivered",
        "coverage",
        "retries",
        "dedup",
        "stragglers",
        "failed",
        "confidence",
        "mae",
    ]);

    for (ci, &crash) in rates.iter().enumerate() {
        for (di, &dup) in rates.iter().enumerate() {
            for (si, &straggle) in rates.iter().enumerate() {
                let plan = MoteFaultPlan::new(cell_seed(seed, ci, di, si))
                    .with(MoteFaultKind::CrashMidRun, crash)
                    .with(MoteFaultKind::CrashBeforeReport, crash / 2.0)
                    .with(MoteFaultKind::DuplicateDelivery, dup)
                    .with(MoteFaultKind::LostDelivery, dup / 2.0)
                    .with(MoteFaultKind::StragglerDelay, straggle);
                let fleet = Fleet::new(config.clone(), motes)
                    .with_mote_faults(plan)
                    .attempts(attempts)
                    .straggler_timeout(timeout);
                let fr = fleet.run().expect("chaos cell runs");
                let est = fleet.estimate(&fr).expect("chaos cell estimates");

                // Claim 3a: confidence always carries the coverage discount.
                assert!(
                    (est.confidence - fr.coverage()).abs() < 1e-12,
                    "confidence {} != coverage {}",
                    est.confidence,
                    fr.coverage()
                );
                // Claim 2: duplication-only cells change nothing.
                if crash == 0.0 && straggle == 0.0 {
                    assert_eq!(
                        fr.stats, clean_run.stats,
                        "duplicates changed the merged statistics"
                    );
                    for (a, b) in est
                        .estimate
                        .probs
                        .as_slice()
                        .iter()
                        .zip(reference.estimated.estimate.probs.as_slice())
                    {
                        assert!(
                            (a - b).abs() < 1e-9,
                            "duplicates moved the estimate: {a} vs {b}"
                        );
                    }
                }
                // Claim 3b: well-covered cells stay near full accuracy.
                if fr.coverage() >= 0.8 {
                    assert!(
                        est.accuracy.mae <= full_mae + 0.04,
                        "coverage {:.2} cell mae {} strayed from full-coverage mae {}",
                        fr.coverage(),
                        est.accuracy.mae,
                        full_mae
                    );
                }

                table.row(vec![
                    f2(crash),
                    f2(dup),
                    f2(straggle),
                    format!("{}/{}", fr.delivered, fr.motes),
                    f2(fr.coverage()),
                    fr.retries.to_string(),
                    fr.dedup_dropped.to_string(),
                    fr.stragglers.to_string(),
                    fr.failed.to_string(),
                    f2(est.confidence),
                    f4(est.accuracy.mae),
                ]);
            }
        }
    }

    let out = format!(
        "# E15 — Chaos harness: fleet ingestion under injected faults\n\n\
         `sense`, {motes} motes x {n} invocations, seed {seed}, {attempts} attempts,\n\
         straggler timeout {timeout} virtual ms. Exit-status-enforced claims: recovery\n\
         from checkpoint cycling is bitwise exact ({cycles} process lifetimes), duplicate\n\
         deliveries never change results, and cells keeping >= 80% coverage estimate\n\
         within 0.04 MAE of the full-coverage run (full-coverage mae {}).\n\
         {}\n\n{}",
        f4(full_mae),
        env.banner(),
        table.to_markdown()
    );
    println!("{out}");
    write_manifest_env("e15_chaos");
    if !env.smoke {
        write_result("e15_chaos.md", &out);
    }
}

//! Checkpoint round-trip smoke: snapshot a streaming fleet run, restore it
//! exactly, then corrupt one payload byte and assert the typed rejection —
//! all enforced by exit status (for `scripts/check.sh`).
//!
//! This is the deployment-shaped sanity pass over the unit tests: a real
//! snapshot produced by the real ingestion loop, through the real files.

use ct_pipeline::{Checkpoint, CheckpointError, CheckpointPolicy, Fleet, RunConfig};

fn main() {
    ct_obs::flight::set_run_name("ckpt_smoke");
    let flight_dump = ct_obs::flight::default_path();
    let _ = std::fs::remove_file(&flight_dump);
    let path = std::env::temp_dir().join(format!("ct_ckpt_smoke_{}.ckpt", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let fleet = Fleet::new(RunConfig::new("sense").invocations(120).seeded(5), 3);
    let fr = fleet.run().expect("fleet runs");
    let reference = fleet.estimate_streaming(&fr).expect("reference estimates");

    // Snapshot at the second batch boundary, then resume from it.
    let halted = fleet
        .estimate_streaming_with(&fr, &CheckpointPolicy::to(&path).halt_after(2))
        .expect("halted run estimates");
    assert!(halted.halted && path.exists(), "no snapshot written");
    let snapshot = Checkpoint::load(&path).expect("snapshot decodes");
    assert_eq!(snapshot.batches, 2);
    let resumed = fleet
        .estimate_streaming_with(&fr, &CheckpointPolicy::to(&path))
        .expect("resumed run estimates");
    assert!(resumed.restored, "snapshot was not restored");
    assert_eq!(resumed.batch_iterations, reference.batch_iterations);
    for (a, b) in resumed
        .estimated
        .estimate
        .probs
        .as_slice()
        .iter()
        .zip(reference.estimated.estimate.probs.as_slice())
    {
        assert_eq!(a.to_bits(), b.to_bits(), "restore is not bitwise exact");
    }

    // Corrupt one payload byte: decoding must fail with a *typed* error
    // (checksum), and the ingestion loop must degrade to a clean start that
    // still reaches the reference answer — never panic.
    let mut bytes = std::fs::read(&path).expect("snapshot readable");
    let mid = 16 + (bytes.len() - 24) / 2; // middle of the payload
    bytes[mid] ^= 0xA5;
    std::fs::write(&path, &bytes).expect("corruption written");
    match Checkpoint::load(&path) {
        Err(CheckpointError::ChecksumMismatch { .. }) => {}
        other => panic!("corrupt snapshot decoded as {other:?}"),
    }
    let fallback = fleet
        .estimate_streaming_with(&fr, &CheckpointPolicy::to(&path))
        .expect("corrupt snapshot must degrade, not fail");
    assert!(!fallback.restored, "corrupt snapshot restored");
    assert_eq!(fallback.batch_iterations, reference.batch_iterations);

    // And a truncated file is typed too.
    std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncation written");
    assert!(
        Checkpoint::load(&path).is_err(),
        "truncated snapshot accepted"
    );

    // With the flight recorder on, the checksum rejection above must have
    // cut an incident dump whose ring tail holds the typed warning.
    if ct_obs::flight::enabled() {
        let dump = std::fs::read_to_string(&flight_dump)
            .expect("flight recorder on but no incident dump was cut");
        assert!(
            dump.contains("\"event\":\"flight.meta\""),
            "incident dump is missing its meta header"
        );
        assert!(
            dump.contains("warn.ckpt_rejected"),
            "incident dump does not contain the rejection event"
        );
        println!("ckpt_smoke: incident dump cut at {}", flight_dump.display());
    }

    let _ = std::fs::remove_file(&path);
    println!("ckpt_smoke: snapshot/restore bitwise, corruption typed-rejected");
}

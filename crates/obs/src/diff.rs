//! Structural comparison of two run manifests — the logic behind the
//! `ct-obs-diff` binary and check.sh's PMU drift gate.
//!
//! Two manifests of the same workload must agree on everything the
//! determinism contract covers: schema version, every counter (PMU banks
//! included), the span census (names and counts), and the stable content
//! of the audit trail. Wall/CPU timings, timestamps, git revision, env
//! knobs and the run context are *expected* to differ between runs — they
//! are reported as notes, never as divergences.

use crate::event::VOLATILE_FIELDS;
use crate::hist::is_volatile_hist_name;
use crate::json::{self, Json};

/// Scheduling-dependent metrics: how often the service's coordinator
/// polled, how full queues got, how long a reduce took. Two correct runs
/// of the same workload legitimately disagree on these — on value and
/// even on presence (a run that never saw backpressure never creates the
/// counter) — so the differ reports them as notes, never divergences.
/// Everything else under `svc.` (accepted/dedup counts, the serve audit
/// trail) stays strict: it is part of the determinism contract.
const VOLATILE_METRICS: &[&str] = &[
    "svc.backpressure",
    "svc.queue_depth",
    "svc.reduce.generations",
    "svc.reduce.latency_us",
];

fn is_volatile_metric(name: &str) -> bool {
    VOLATILE_METRICS.contains(&name)
}

/// The outcome of comparing two manifests.
#[derive(Debug, Default, Clone)]
pub struct DiffReport {
    /// Contract violations: any entry here means the runs diverged.
    pub divergences: Vec<String>,
    /// Expected differences (timings, env), for context only.
    pub notes: Vec<String>,
}

impl DiffReport {
    /// `true` when the deterministic content of both manifests agrees.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Renders the report for terminal output.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.is_clean() {
            let _ = writeln!(out, "manifests agree on deterministic content");
        } else {
            let _ = writeln!(out, "== divergences ({}) ==", self.divergences.len());
            for d in &self.divergences {
                let _ = writeln!(out, "  {d}");
            }
        }
        if !self.notes.is_empty() {
            let _ = writeln!(out, "== notes (expected differences) ==");
            for n in &self.notes {
                let _ = writeln!(out, "  {n}");
            }
        }
        out
    }
}

/// Renders a parsed JSON value back to a canonical string, dropping
/// [`VOLATILE_FIELDS`] keys at every object level.
fn canon(v: &Json, out: &mut String) {
    use std::fmt::Write as _;
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Json::Num(n) => {
            let _ = write!(out, "{n}");
        }
        Json::Str(s) => json::write_escaped(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                canon(item, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            let mut first = true;
            for (k, v) in fields {
                if VOLATILE_FIELDS.contains(&k.as_str()) {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                json::write_escaped(out, k);
                out.push(':');
                canon(v, out);
            }
            out.push('}');
        }
    }
}

fn obj_entries<'a>(doc: &'a Json, section: &str) -> Vec<(&'a str, &'a Json)> {
    match doc.get(section) {
        Some(Json::Obj(fields)) => fields.iter().map(|(k, v)| (k.as_str(), v)).collect(),
        _ => Vec::new(),
    }
}

/// Compares one keyed section (counters, pmu, gauges, hists) entry by
/// entry in both directions. Keys classified volatile by `volatile`
/// downgrade to notes — both on value drift and on one-sided presence.
fn diff_keyed_section(
    section: &str,
    a: &Json,
    b: &Json,
    volatile: fn(&str) -> bool,
    report: &mut DiffReport,
) {
    let ea = obj_entries(a, section);
    let eb = obj_entries(b, section);
    for (k, va) in &ea {
        match eb.iter().find(|(kb, _)| kb == k) {
            None => {
                let msg = format!("{section}.{k}: present only in A");
                if volatile(k) {
                    report.notes.push(format!("{msg} (volatile, ignored)"));
                } else {
                    report.divergences.push(msg);
                }
            }
            Some((_, vb)) => {
                let (mut ca, mut cb) = (String::new(), String::new());
                canon(va, &mut ca);
                canon(vb, &mut cb);
                if ca != cb {
                    let msg = format!("{section}.{k}: A={ca} B={cb}");
                    if volatile(k) {
                        report.notes.push(format!("{msg} (volatile, ignored)"));
                    } else {
                        report.divergences.push(msg);
                    }
                }
            }
        }
    }
    for (k, _) in &eb {
        if !ea.iter().any(|(ka, _)| ka == k) {
            let msg = format!("{section}.{k}: present only in B");
            if volatile(k) {
                report.notes.push(format!("{msg} (volatile, ignored)"));
            } else {
                report.divergences.push(msg);
            }
        }
    }
}

/// Histogram volatility: the scalar volatile list still applies, plus the
/// naming convention for wall-time-derived distributions (`_ns`/`_us`/
/// `_ms` suffixes, queue depths) — their bucket counts are scheduling
/// artifacts. Value-shaped histograms (batch sizes) compare strictly,
/// bucket table included.
fn is_volatile_hist(name: &str) -> bool {
    is_volatile_metric(name) || is_volatile_hist_name(name)
}

/// Compares two rendered manifests for deterministic-content agreement.
///
/// Returns a [`DiffReport`]; [`DiffReport::is_clean`] is the PMU golden
/// gate's pass condition.
///
/// # Errors
///
/// Returns a human-readable message when either input is not valid JSON
/// or not a manifest-shaped object.
pub fn diff_manifests(a: &str, b: &str) -> Result<DiffReport, String> {
    let da = json::parse(a).map_err(|e| format!("manifest A: {e}"))?;
    let db = json::parse(b).map_err(|e| format!("manifest B: {e}"))?;
    for (label, d) in [("A", &da), ("B", &db)] {
        if !matches!(d, Json::Obj(_)) {
            return Err(format!("manifest {label} is not a JSON object"));
        }
    }
    let mut report = DiffReport::default();

    // Schema must agree exactly — cross-version diffs are meaningless.
    let sa = da.get("schema").and_then(Json::as_num);
    let sb = db.get("schema").and_then(Json::as_num);
    if sa != sb {
        report
            .divergences
            .push(format!("schema: A={sa:?} B={sb:?}"));
    }

    diff_keyed_section("counters", &da, &db, is_volatile_metric, &mut report);
    diff_keyed_section("pmu", &da, &db, is_volatile_metric, &mut report);
    diff_keyed_section("gauges", &da, &db, is_volatile_metric, &mut report);
    diff_keyed_section("hists", &da, &db, is_volatile_hist, &mut report);

    // Spans: the census (which spans ran, how often) is deterministic;
    // their timings are not.
    let spans_a = obj_entries(&da, "spans");
    let spans_b = obj_entries(&db, "spans");
    for (name, va) in &spans_a {
        match spans_b.iter().find(|(nb, _)| nb == name) {
            None => report
                .divergences
                .push(format!("spans.{name}: present only in A")),
            Some((_, vb)) => {
                let ca = va.get("count").and_then(Json::as_num);
                let cb = vb.get("count").and_then(Json::as_num);
                if ca != cb {
                    report
                        .divergences
                        .push(format!("spans.{name}.count: A={ca:?} B={cb:?}"));
                } else {
                    let wa = va.get("wall_ns").and_then(Json::as_num).unwrap_or(0.0);
                    let wb = vb.get("wall_ns").and_then(Json::as_num).unwrap_or(0.0);
                    if wa != wb {
                        report.notes.push(format!(
                            "spans.{name}.wall_ns: A={wa} B={wb} (timing, ignored)"
                        ));
                    }
                }
            }
        }
    }
    for (name, _) in &spans_b {
        if !spans_a.iter().any(|(na, _)| na == name) {
            report
                .divergences
                .push(format!("spans.{name}: present only in B"));
        }
    }

    // Audit trail: same multiset of stable-content events, order-free
    // (threaded runs may interleave emission differently).
    let audit = |doc: &Json| -> Vec<String> {
        let mut keys: Vec<String> = match doc.get("audit") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(|e| {
                    let mut s = String::new();
                    canon(e, &mut s);
                    s
                })
                .collect(),
            _ => Vec::new(),
        };
        keys.sort();
        keys
    };
    let aa = audit(&da);
    let ab = audit(&db);
    if aa != ab {
        // Pinpoint the first asymmetric entries rather than dumping both
        // trails.
        let only_a: Vec<&String> = aa.iter().filter(|k| !ab.contains(k)).collect();
        let only_b: Vec<&String> = ab.iter().filter(|k| !aa.contains(k)).collect();
        for k in only_a.iter().take(5) {
            report.divergences.push(format!("audit only in A: {k}"));
        }
        for k in only_b.iter().take(5) {
            report.divergences.push(format!("audit only in B: {k}"));
        }
        if only_a.is_empty() && only_b.is_empty() {
            report
                .divergences
                .push("audit: same entries, different multiplicities".to_string());
        }
    }

    // Context differences are expected; note, never fail.
    for key in ["git_rev", "unix_time", "name"] {
        let va = da.get(key);
        let vb = db.get(key);
        if va != vb {
            report.notes.push(format!("{key} differs (ignored)"));
        }
    }
    if da.get("env") != db.get("env") {
        report.notes.push("env differs (ignored)".to_string());
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(counters: &str, audit: &str, wall: u64) -> String {
        format!(
            r#"{{
  "name": "e4_placement",
  "schema": 1,
  "unix_time": {wall},
  "git_rev": "abc",
  "env": {{"CT_THREADS": null}},
  "run": {{"seed": 4000}},
  "spans": {{"stage.run": {{"count": 2, "wall_ns": {wall}, "cpu_ticks": 1}}}},
  "counters": {{{counters}}},
  "pmu": {{"cond_taken": 7}},
  "audit": [{audit}]
}}"#
        )
    }

    #[test]
    fn identical_content_is_clean_despite_timing_noise() {
        let a = manifest(
            r#""pmu.cond_taken": 7"#,
            r#"{"event":"em.restart","iterations":3,"wall_ns":10}"#,
            111,
        );
        let b = manifest(
            r#""pmu.cond_taken": 7"#,
            r#"{"event":"em.restart","iterations":3,"wall_ns":99}"#,
            222,
        );
        let r = diff_manifests(&a, &b).unwrap();
        assert!(r.is_clean(), "{:?}", r.divergences);
        assert!(
            r.notes.iter().any(|n| n.contains("wall_ns")),
            "timing difference should be noted: {:?}",
            r.notes
        );
    }

    #[test]
    fn counter_drift_is_a_divergence() {
        let a = manifest(r#""pmu.cond_taken": 7"#, "", 1);
        let b = manifest(r#""pmu.cond_taken": 8"#, "", 1);
        let r = diff_manifests(&a, &b).unwrap();
        assert!(!r.is_clean());
        assert!(r.divergences[0].contains("pmu.cond_taken"));
    }

    #[test]
    fn missing_counter_and_extra_span_are_divergences() {
        let a = manifest(r#""pmu.calls": 5, "fleet.motes": 2"#, "", 1);
        let b = manifest(r#""pmu.calls": 5"#, "", 1);
        let r = diff_manifests(&a, &b).unwrap();
        assert_eq!(r.divergences.len(), 1);
        assert!(r.divergences[0].contains("only in A"));
    }

    #[test]
    fn audit_content_divergence_is_caught() {
        let a = manifest(
            "",
            r#"{"event":"place.decision","app":"sense","improved":true}"#,
            1,
        );
        let b = manifest(
            "",
            r#"{"event":"place.decision","app":"sense","improved":false}"#,
            1,
        );
        let r = diff_manifests(&a, &b).unwrap();
        assert!(!r.is_clean());
        assert!(r.divergences.iter().any(|d| d.contains("audit")));
    }

    #[test]
    fn volatile_service_metrics_note_instead_of_diverging() {
        // Backpressure count and reduce-round count are scheduling
        // artifacts: they may differ in value or exist on one side only.
        let a = manifest(
            r#""svc.backpressure": 12, "svc.ingest.accepted": 40"#,
            "",
            1,
        );
        let b = manifest(
            r#""svc.reduce.generations": 9, "svc.ingest.accepted": 40"#,
            "",
            1,
        );
        let r = diff_manifests(&a, &b).unwrap();
        assert!(r.is_clean(), "{:?}", r.divergences);
        assert!(
            r.notes.iter().any(|n| n.contains("svc.backpressure")),
            "volatile asymmetry should be noted: {:?}",
            r.notes
        );
        // The deterministic svc.* counters stay strict.
        let c = manifest(r#""svc.ingest.accepted": 41"#, "", 1);
        let r = diff_manifests(&a, &c).unwrap();
        assert!(r
            .divergences
            .iter()
            .any(|d| d.contains("svc.ingest.accepted")));
    }

    #[test]
    fn gauge_sections_are_compared_with_volatility_rules() {
        let with_gauges = |g: &str| {
            manifest("", "", 1).replace(
                "\"pmu\": {\"cond_taken\": 7}",
                &format!("\"pmu\": {{\"cond_taken\": 7}},\n  \"gauges\": {{{g}}}"),
            )
        };
        let a = with_gauges(r#""svc.queue_depth": 64, "fleet.coverage": 1.0"#);
        let b = with_gauges(r#""svc.queue_depth": 3, "fleet.coverage": 1.0"#);
        assert!(diff_manifests(&a, &b).unwrap().is_clean());
        let c = with_gauges(r#""svc.queue_depth": 3, "fleet.coverage": 0.5"#);
        let r = diff_manifests(&a, &c).unwrap();
        assert!(r
            .divergences
            .iter()
            .any(|d| d.contains("gauges.fleet.coverage")));
    }

    #[test]
    fn hist_sections_compare_bucket_tables_with_volatility_rules() {
        let with_hists = |h: &str| {
            manifest("", "", 1).replace(
                "\"pmu\": {\"cond_taken\": 7}",
                &format!("\"pmu\": {{\"cond_taken\": 7}},\n  \"hists\": {{{h}}}"),
            )
        };
        let hist = |buckets: &str| {
            format!(
                r#"{{"count": 4, "sum": 102, "min": 4, "max": 90, "p50": 4, "p90": 90, "p99": 90, "buckets": "{buckets}"}}"#
            )
        };
        // Latency histograms drift freely: noted, never a divergence.
        let a = with_hists(&format!(
            r#""svc.serve.latency_ns": {}, "svc.batch_samples": {}"#,
            hist("4:3;86:1"),
            hist("4:3;86:1")
        ));
        let b = with_hists(&format!(
            r#""svc.serve.latency_ns": {}, "svc.batch_samples": {}"#,
            hist("4:1;90:3"),
            hist("4:3;86:1")
        ));
        let r = diff_manifests(&a, &b).unwrap();
        assert!(r.is_clean(), "{:?}", r.divergences);
        assert!(
            r.notes.iter().any(|n| n.contains("svc.serve.latency_ns")),
            "latency drift should be noted: {:?}",
            r.notes
        );
        // A deterministic histogram's bucket table is contract: any drift
        // diverges, even when the summary stats agree.
        let c = with_hists(&format!(
            r#""svc.serve.latency_ns": {}, "svc.batch_samples": {}"#,
            hist("4:3;86:1"),
            hist("4:2;5:1;86:1")
        ));
        let r = diff_manifests(&a, &c).unwrap();
        assert!(r
            .divergences
            .iter()
            .any(|d| d.contains("hists.svc.batch_samples")));
    }

    #[test]
    fn schema_mismatch_diverges() {
        let a = manifest("", "", 1);
        let b = a.replace("\"schema\": 1", "\"schema\": 2");
        let r = diff_manifests(&a, &b).unwrap();
        assert!(r.divergences.iter().any(|d| d.starts_with("schema")));
    }

    #[test]
    fn garbage_inputs_error_cleanly() {
        assert!(diff_manifests("not json", "{}").is_err());
        assert!(diff_manifests("{}", "[1,2]").is_err());
        // An empty object is a degenerate but valid manifest: no sections,
        // nothing to diverge on.
        assert!(diff_manifests("{}", "{}").unwrap().is_clean());
    }
}

//! Front-end error type shared by the lexer, parser and semantic analysis.

use crate::token::Span;
use std::error::Error;
use std::fmt;

/// An error produced while compiling NLC source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// Lexical error (unknown character, malformed literal, ...).
    Lex {
        /// Human-readable description.
        message: String,
        /// Where the error occurred.
        span: Span,
    },
    /// Syntax error.
    Parse {
        /// Human-readable description.
        message: String,
        /// Where the error occurred.
        span: Span,
    },
    /// Semantic error (unknown name, type mismatch, recursion, ...).
    Sema {
        /// Human-readable description.
        message: String,
        /// Where the error occurred.
        span: Span,
    },
}

impl IrError {
    /// The error's source location.
    pub fn span(&self) -> Span {
        match self {
            IrError::Lex { span, .. }
            | IrError::Parse { span, .. }
            | IrError::Sema { span, .. } => *span,
        }
    }

    /// The error's message without the location prefix.
    pub fn message(&self) -> &str {
        match self {
            IrError::Lex { message, .. }
            | IrError::Parse { message, .. }
            | IrError::Sema { message, .. } => message,
        }
    }
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (kind, message, span) = match self {
            IrError::Lex { message, span } => ("lex", message, span),
            IrError::Parse { message, span } => ("parse", message, span),
            IrError::Sema { message, span } => ("semantic", message, span),
        };
        write!(f, "{kind} error at {span}: {message}")
    }
}

impl Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location_and_kind() {
        let e = IrError::Sema {
            message: "unknown variable `x`".into(),
            span: Span {
                start: 0,
                end: 1,
                line: 4,
                col: 9,
            },
        };
        let s = e.to_string();
        assert!(s.contains("semantic error"));
        assert!(s.contains("4:9"));
        assert!(s.contains("unknown variable"));
    }

    #[test]
    fn accessors() {
        let e = IrError::Parse {
            message: "expected `;`".into(),
            span: Span {
                start: 5,
                end: 6,
                line: 1,
                col: 6,
            },
        };
        assert_eq!(e.message(), "expected `;`");
        assert_eq!(e.span().col, 6);
    }
}

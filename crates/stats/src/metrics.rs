//! Error metrics for comparing estimated profiles against ground truth.

/// Root-mean-square error between two equal-length vectors.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn rmse(estimated: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(estimated.len(), truth.len(), "rmse requires equal lengths");
    assert!(!estimated.is_empty(), "rmse of empty vectors");
    let sse: f64 = estimated
        .iter()
        .zip(truth)
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    (sse / estimated.len() as f64).sqrt()
}

/// Mean absolute error.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mae(estimated: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(estimated.len(), truth.len(), "mae requires equal lengths");
    assert!(!estimated.is_empty(), "mae of empty vectors");
    let sae: f64 = estimated
        .iter()
        .zip(truth)
        .map(|(a, b)| (a - b).abs())
        .sum();
    sae / estimated.len() as f64
}

/// Maximum absolute error.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn max_abs_error(estimated: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(
        estimated.len(),
        truth.len(),
        "max_abs_error requires equal lengths"
    );
    estimated
        .iter()
        .zip(truth)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0_f64, f64::max)
}

/// Weighted mean absolute error: `Σ wᵢ |aᵢ − bᵢ| / Σ wᵢ`.
///
/// Used to weight branch-probability errors by how often the branch executes;
/// an error on a cold branch matters less for placement quality.
///
/// Returns `0.0` when the total weight is zero.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn weighted_mae(estimated: &[f64], truth: &[f64], weights: &[f64]) -> f64 {
    assert_eq!(
        estimated.len(),
        truth.len(),
        "weighted_mae requires equal lengths"
    );
    assert_eq!(estimated.len(), weights.len(), "weights length mismatch");
    let total_w: f64 = weights.iter().sum();
    if total_w <= 0.0 {
        return 0.0;
    }
    let sae: f64 = estimated
        .iter()
        .zip(truth)
        .zip(weights)
        .map(|((a, b), w)| w * (a - b).abs())
        .sum();
    sae / total_w
}

/// Kullback–Leibler divergence `D(truth ‖ estimated)` between two discrete
/// distributions, in nats. Zero-probability truth entries contribute zero;
/// estimated entries are floored at `1e-12` to keep the result finite.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn kl_divergence(truth: &[f64], estimated: &[f64]) -> f64 {
    assert_eq!(truth.len(), estimated.len(), "kl requires equal lengths");
    truth
        .iter()
        .zip(estimated)
        .filter(|(&t, _)| t > 0.0)
        .map(|(&t, &e)| t * (t / e.max(1e-12)).ln())
        .sum()
}

/// Total variation distance `½ Σ |aᵢ − bᵢ|` between two discrete
/// distributions.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn total_variation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "total variation requires equal lengths");
    0.5 * a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>()
}

/// Relative error `|est − truth| / max(|truth|, floor)`, with a floor to keep
/// the ratio meaningful near zero.
pub fn relative_error(estimated: f64, truth: f64, floor: f64) -> f64 {
    (estimated - truth).abs() / truth.abs().max(floor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_of_identical_is_zero() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn rmse_known_value() {
        // Errors 3 and 4 → RMSE = sqrt((9+16)/2) = 3.5355...
        let r = rmse(&[3.0, 4.0], &[0.0, 0.0]);
        assert!((r - (12.5_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mae_known_value() {
        assert_eq!(mae(&[1.0, -1.0], &[0.0, 0.0]), 1.0);
    }

    #[test]
    fn max_abs_error_picks_worst() {
        assert_eq!(max_abs_error(&[1.0, 5.0], &[1.0, 2.0]), 3.0);
    }

    #[test]
    fn weighted_mae_ignores_zero_weight_entries() {
        let w = weighted_mae(&[0.0, 10.0], &[0.0, 0.0], &[1.0, 0.0]);
        assert_eq!(w, 0.0);
    }

    #[test]
    fn weighted_mae_weights_proportionally() {
        let w = weighted_mae(&[1.0, 0.0], &[0.0, 0.0], &[3.0, 1.0]);
        assert!((w - 0.75).abs() < 1e-12);
    }

    #[test]
    fn weighted_mae_zero_total_weight_is_zero() {
        assert_eq!(weighted_mae(&[1.0], &[0.0], &[0.0]), 0.0);
    }

    #[test]
    fn kl_of_identical_is_zero() {
        let p = [0.25, 0.75];
        assert!(kl_divergence(&p, &p).abs() < 1e-12);
    }

    #[test]
    fn kl_is_positive_for_different_distributions() {
        assert!(kl_divergence(&[0.5, 0.5], &[0.9, 0.1]) > 0.0);
    }

    #[test]
    fn kl_handles_zero_truth_mass() {
        let d = kl_divergence(&[1.0, 0.0], &[0.5, 0.5]);
        assert!((d - (2.0_f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn total_variation_bounds() {
        assert_eq!(total_variation(&[1.0, 0.0], &[0.0, 1.0]), 1.0);
        assert_eq!(total_variation(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
    }

    #[test]
    fn relative_error_uses_floor_near_zero() {
        assert_eq!(relative_error(0.1, 0.0, 1.0), 0.1);
        assert_eq!(relative_error(2.0, 1.0, 0.001), 1.0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn rmse_length_mismatch_panics() {
        rmse(&[1.0], &[1.0, 2.0]);
    }
}

//! E2 — Estimation accuracy vs timer resolution (Figure).
//!
//! Claim evaluated: Code Tomography works with the cheap, coarse timers
//! motes actually have. The quantization-aware likelihood should degrade
//! gracefully as ticks get coarser than path-duration differences.

use ct_bench::{f4, par_sweep, write_result, Table};
use ct_pipeline::{EnvConfig, RunConfig, Session};

fn main() {
    let env = EnvConfig::load();
    eprintln!("e2: {}", env.banner());
    // cycles per tick: cycle-accurate, 1 MHz @8 MHz, 125 kHz, 32.768 kHz
    // crystal, and a pathologically slow tick.
    let resolutions = [1u64, 8, 64, 244, 1024];
    let n = env.pick(5_000, 400);
    let seed_base = env.seed_or(2_000);
    let mut table = Table::new(vec![
        "app", "cpt=1", "cpt=8", "cpt=64", "cpt=244", "cpt=1024",
    ]);

    // One job per (app, resolution) cell; results come back in grid order.
    let apps = ct_apps::all_apps();
    let apps = &apps[..env.pick(apps.len(), 2)];
    let grid: Vec<(usize, usize, u64)> = (0..apps.len())
        .flat_map(|a| {
            resolutions
                .iter()
                .enumerate()
                .map(move |(i, &cpt)| (a, i, cpt))
        })
        .collect();
    let measured = par_sweep(grid, |(a, i, cpt)| {
        let session = Session::new(
            RunConfig::for_app(apps[a].clone())
                .invocations(n)
                .resolution(cpt)
                .seeded(seed_base + i as u64),
        );
        let run = session.collect().expect("bundled apps must not trap");
        let est = session.estimate(&run).expect("estimation succeeds");
        est.accuracy.weighted_mae
    });

    for (a, app) in apps.iter().enumerate() {
        let row = &measured[a * resolutions.len()..(a + 1) * resolutions.len()];
        let mut cells = vec![app.name.to_string()];
        cells.extend(row.iter().map(|&wmae| f4(wmae)));
        table.row(cells);
        eprintln!("e2: {} done", app.name);
    }

    let out = format!(
        "# E2 — Estimation accuracy (weighted MAE) vs timer resolution\n\n\
         n = {n} samples per point; AVR cost model. cpt = cycles per tick\n\
         (244 ≈ a 32.768 kHz crystal viewed from an 8 MHz core).\n\
         {}\n\n{}",
        env.banner(),
        table.to_markdown()
    );
    println!("{out}");
    if !env.smoke {
        write_result("e2_resolution.md", &out);
    }
}

//! Shared measurement harness for the experiment binaries: boot an app, run
//! its standard workload under simultaneous ground-truth and timing
//! instrumentation, estimate, place, and re-measure.

use ct_apps::App;
use ct_cfg::graph::Cfg;
use ct_cfg::layout::{Layout, LayoutCost, PenaltyModel};
use ct_cfg::profile::{BranchProbs, EdgeProfile};
use ct_core::accuracy::{compare, AccuracyReport};
use ct_core::estimator::{estimate, Estimate, EstimateOptions, Method};
use ct_core::samples::TimingSamples;
use ct_core::unrolled::estimate_unrolled;
use ct_ir::instr::ProcId;
use ct_ir::program::Program;
use ct_mote::cost::{AvrCost, CostModel, Msp430Cost};
use ct_mote::interp::Mote;
use ct_mote::timer::VirtualTimer;
use ct_mote::trace::{GroundTruthProfiler, PairProfiler, Profiler, TimingProfiler};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Which MCU calibration to run under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mcu {
    /// ATmega128-class.
    Avr,
    /// MSP430-class.
    Msp430,
}

impl Mcu {
    /// Boxes the corresponding cost model.
    pub fn cost_model(self) -> Box<dyn CostModel> {
        match self {
            Mcu::Avr => Box::new(AvrCost),
            Mcu::Msp430 => Box::new(Msp430Cost),
        }
    }
}

/// Everything one measured workload run produces.
#[derive(Debug)]
pub struct AppRun {
    /// The compiled program.
    pub program: Program,
    /// The profiled procedure.
    pub pid: ProcId,
    /// Static block costs of the target under the run's layout.
    pub block_costs: Vec<u64>,
    /// Static edge costs of the target under the run's layout.
    pub edge_costs: Vec<u64>,
    /// Exclusive-duration samples of the target.
    pub samples: TimingSamples,
    /// Ground-truth edge profile of the target.
    pub truth_profile: EdgeProfile,
    /// Ground-truth branch probabilities.
    pub truth: BranchProbs,
    /// Statically counted loops of the target (from the compiler's
    /// trip-count analysis).
    pub counted_loops: Vec<(ct_cfg::graph::BlockId, u64)>,
    /// Target invocations.
    pub invocations: u64,
    /// Total cycles consumed by the run.
    pub cycles_used: u64,
}

impl AppRun {
    /// The target procedure's CFG.
    pub fn cfg(&self) -> &Cfg {
        &self.program.procs[self.pid.index()].cfg
    }
}

/// Runs `app`'s standard workload `n` times, measuring with `timer`.
///
/// `seed` drives all nondeterminism (inputs, radio, contamination), so runs
/// are reproducible and layout comparisons can replay identical inputs.
///
/// # Panics
///
/// Panics if the app traps (bundled apps must not).
pub fn run_app(
    app: &App,
    mcu: Mcu,
    n: usize,
    timer: VirtualTimer,
    ts_overhead: u64,
    seed: u64,
) -> AppRun {
    let mut mote = app.boot(mcu.cost_model());
    mote.reseed(seed);
    run_on_mote(app, &mut mote, n, timer, ts_overhead)
}

/// Like [`run_app`] but on an existing (possibly re-laid-out) mote.
///
/// # Panics
///
/// Panics if the app traps.
pub fn run_on_mote(
    app: &App,
    mote: &mut Mote,
    n: usize,
    timer: VirtualTimer,
    ts_overhead: u64,
) -> AppRun {
    let program = mote.program().clone();
    let pid = app.target_id(&program);
    let mut gt = GroundTruthProfiler::new(&program);
    let mut tp = TimingProfiler::new(&program, timer, ts_overhead);
    let start_cycles = mote.cycles;
    for i in 0..n {
        if let Some(hook) = app.per_call {
            hook(mote, i);
        }
        let mut pair = PairProfiler {
            a: &mut gt,
            b: &mut tp,
        };
        mote.call(pid, &[], &mut pair)
            .unwrap_or_else(|e| panic!("{} trapped: {e}", app.name));
    }
    let cfg = &program.procs[pid.index()].cfg;
    AppRun {
        counted_loops: program.procs[pid.index()].counted_loops.clone(),
        block_costs: mote.static_block_costs(pid).to_vec(),
        edge_costs: mote.static_edge_costs(pid).to_vec(),
        // `timer` was constructed through `VirtualTimer`, whose invariant is
        // cycles_per_tick ≥ 1, so the fallible constructor cannot fail here.
        samples: TimingSamples::try_new(tp.samples(pid).to_vec(), timer.cycles_per_tick())
            .expect("VirtualTimer guarantees a positive resolution"),
        truth_profile: gt.profile(pid).clone(),
        truth: gt.branch_probs(pid, cfg),
        invocations: gt.invocations(pid),
        cycles_used: mote.cycles - start_cycles,
        program,
        pid,
    }
}

/// Runs `app`'s workload under an arbitrary profiler (for overhead
/// comparisons), returning cycles consumed.
///
/// # Panics
///
/// Panics if the app traps.
pub fn run_with_profiler(
    app: &App,
    mcu: Mcu,
    n: usize,
    seed: u64,
    profiler: &mut dyn Profiler,
) -> u64 {
    let mut mote = app.boot(mcu.cost_model());
    mote.reseed(seed);
    let pid = app.target_id(mote.program());
    let start = mote.cycles;
    for i in 0..n {
        if let Some(hook) = app.per_call {
            hook(&mut mote, i);
        }
        mote.call(pid, &[], profiler)
            .unwrap_or_else(|e| panic!("{} trapped: {e}", app.name));
    }
    mote.cycles - start
}

/// Estimates the target's branch probabilities from a run's samples and
/// scores them against the run's ground truth.
///
/// When the compiler proved trip counts for the target's loops (and no
/// explicit method is forced), estimation runs on the counted-loop-unrolled
/// model — exactly what a profile-guided compiler with the program's IR in
/// hand would do — falling back to the plain estimator on any failure.
pub fn estimate_run(run: &AppRun, opts: EstimateOptions) -> (Estimate, AccuracyReport) {
    if opts.method.is_none() && !run.counted_loops.is_empty() {
        if let Ok(u) = estimate_unrolled(
            run.cfg(),
            &run.counted_loops,
            &run.block_costs,
            &run.edge_costs,
            &run.samples,
            opts.em,
        ) {
            let est = Estimate {
                probs: u.probs,
                method: Method::EmUnrolled,
                iterations: u.iterations,
                // The unrolled path only returns Ok on a finished EM run.
                converged: true,
                final_delta: 0.0,
                loglik: Some(u.loglik),
                unexplained: u.unexplained,
            };
            let acc = compare(
                run.cfg(),
                &est.probs,
                &run.truth,
                &run.truth_profile,
                run.invocations,
            );
            return (est, acc);
        }
    }
    let est = estimate(
        run.cfg(),
        &run.block_costs,
        &run.edge_costs,
        &run.samples,
        opts,
    )
    .unwrap_or_else(|e| panic!("estimation failed: {e}"));
    let acc = compare(
        run.cfg(),
        &est.probs,
        &run.truth,
        &run.truth_profile,
        run.invocations,
    );
    (est, acc)
}

/// Expected per-invocation edge traversal frequencies under a probability
/// vector (the placement input derived from an estimate).
///
/// # Panics
///
/// Panics if the Markov solve fails (exit unreachable under `probs`).
pub fn edge_frequencies(cfg: &Cfg, probs: &BranchProbs) -> Vec<f64> {
    ct_markov::visits::expected_edge_traversals(cfg, probs)
        .unwrap_or_else(|e| panic!("frequency derivation failed: {e}"))
}

/// A uniformly random valid layout (entry first) — the pessimal baseline for
/// the placement experiments.
pub fn random_layout(cfg: &Cfg, seed: u64) -> Layout {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rest: Vec<_> = cfg.block_ids().skip(1).collect();
    rest.shuffle(&mut rng);
    let mut order = vec![cfg.entry()];
    order.extend(rest);
    Layout::from_order(cfg, order).expect("shuffled permutation is valid")
}

/// Replays `app`'s workload (same seed) on a mote whose target uses `layout`,
/// returning the measured layout cost and total cycles.
///
/// # Panics
///
/// Panics if the app traps.
pub fn replay_with_layout(
    app: &App,
    mcu: Mcu,
    layout: Layout,
    n: usize,
    seed: u64,
) -> (LayoutCost, u64) {
    let mut mote = app.boot(mcu.cost_model());
    mote.reseed(seed);
    let pid = app.target_id(mote.program());
    mote.set_layout(pid, layout.clone());
    let run = run_on_mote(app, &mut mote, n, VirtualTimer::cycle_accurate(), 0);
    let pen = mcu.cost_model().penalties();
    let cost = layout.evaluate(run.cfg(), &run.truth_profile, &pen);
    (cost, run.cycles_used)
}

/// The default penalty model for an MCU.
pub fn penalties(mcu: Mcu) -> PenaltyModel {
    mcu.cost_model().penalties()
}

/// Fans an app × configuration sweep grid out over scoped threads
/// (`CT_THREADS` to override the worker count), returning one result per
/// cell **in cell order** — so tables assembled from the results are
/// identical to the serial loops this replaces, for any thread count.
///
/// Each cell must be self-contained (boot its own mote, own its seed): the
/// experiment binaries already work that way so runs are reproducible, which
/// is exactly what makes them safe to run concurrently.
pub fn par_sweep<T, U, F>(cells: Vec<T>, job: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    ct_stats::parallel::par_map(cells, job)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_apps::app_by_name;

    #[test]
    fn run_app_produces_consistent_artifacts() {
        let app = app_by_name("sense").unwrap();
        let run = run_app(&app, Mcu::Avr, 300, VirtualTimer::cycle_accurate(), 0, 42);
        assert_eq!(run.samples.len(), 300);
        assert_eq!(run.invocations, 300);
        assert!(run.truth_profile.is_flow_consistent(run.cfg(), 300));
        assert!(run.cycles_used > 0);
    }

    #[test]
    fn runs_are_reproducible_per_seed() {
        let app = app_by_name("sense").unwrap();
        let a = run_app(&app, Mcu::Avr, 100, VirtualTimer::cycle_accurate(), 0, 7);
        let b = run_app(&app, Mcu::Avr, 100, VirtualTimer::cycle_accurate(), 0, 7);
        assert_eq!(a.samples.ticks(), b.samples.ticks());
        assert_eq!(a.truth_profile, b.truth_profile);
        let c = run_app(&app, Mcu::Avr, 100, VirtualTimer::cycle_accurate(), 0, 8);
        assert_ne!(a.samples.ticks(), c.samples.ticks());
    }

    #[test]
    fn estimate_run_recovers_sense_branch() {
        let app = app_by_name("sense").unwrap();
        let run = run_app(&app, Mcu::Avr, 2000, VirtualTimer::cycle_accurate(), 0, 1);
        let (est, acc) = estimate_run(&run, EstimateOptions::default());
        assert!(
            acc.mae < 0.02,
            "mae {} (est {:?} truth {:?})",
            acc.mae,
            est.probs,
            run.truth
        );
    }

    #[test]
    fn random_layout_is_valid_and_seeded() {
        let app = app_by_name("sense").unwrap();
        let p = app.compile();
        let cfg = &p.procs[0].cfg;
        let a = random_layout(cfg, 1);
        let b = random_layout(cfg, 1);
        let c = random_layout(cfg, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.order()[0], cfg.entry());
    }

    #[test]
    fn replay_with_layout_measures_cost() {
        let app = app_by_name("sense").unwrap();
        let p = app.compile();
        let pid = app.target_id(&p);
        let cfg = p.procs[pid.index()].cfg.clone();
        let (cost, cycles) = replay_with_layout(&app, Mcu::Avr, Layout::natural(&cfg), 200, 3);
        assert!(cycles > 0);
        assert!(cost.branches_taken + cost.branches_not_taken == 200);
    }
}

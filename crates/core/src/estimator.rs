//! The estimator front door: method selection and a uniform result type.

use crate::em::EmOptions;
use crate::fb::FbError;
use crate::flow_nnls::{estimate_flow, FlowError};
use crate::moments::{estimate_moments, MomentsError, MomentsOptions};
use crate::samples::TimingSamples;
use ct_cfg::graph::Cfg;
use ct_cfg::profile::BranchProbs;
use std::error::Error;
use std::fmt;

/// Which estimation algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Exact EM over the time-expanded chain (default; most accurate).
    Em,
    /// EM on a counted-loop-unrolled model with tied copy parameters
    /// (compiler-assisted; see [`crate::unrolled`]).
    EmUnrolled,
    /// Mean/variance matching (cheap fallback for path-explosive CFGs).
    Moments,
    /// Flow-constrained NNLS on the mean (linear inverse baseline).
    FlowMean,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Method::Em => "em",
            Method::EmUnrolled => "em+unroll",
            Method::Moments => "moments",
            Method::FlowMean => "flow-mean",
        };
        f.write_str(s)
    }
}

/// Estimation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateOptions {
    /// Forced method; `None` selects EM with automatic fallback to moments
    /// when the time-expanded support explodes.
    pub method: Option<Method>,
    /// EM controls.
    pub em: EmOptions,
    /// Moments controls.
    pub moments: MomentsOptions,
    /// Extra random EM restarts beyond the moments-warm start (the best
    /// final likelihood wins). Coarse timers create mirror local optima when
    /// arm-cost differences are sub-tick; restarts are the standard cure.
    pub restarts: usize,
}

impl Default for EstimateOptions {
    fn default() -> Self {
        EstimateOptions {
            method: None,
            em: EmOptions::default(),
            moments: MomentsOptions::default(),
            restarts: 2,
        }
    }
}

/// A branch-probability estimate with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    /// The estimated parameters.
    pub probs: BranchProbs,
    /// The method that produced them.
    pub method: Method,
    /// Iterations/sweeps the method used.
    pub iterations: usize,
    /// Log-likelihood (EM only).
    pub loglik: Option<f64>,
    /// Samples the model could not explain (EM only).
    pub unexplained: usize,
}

/// Estimation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimateError {
    /// EM failed.
    Em(FbError),
    /// Moments failed.
    Moments(MomentsError),
    /// Flow failed.
    Flow(FlowError),
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimateError::Em(e) => write!(f, "em estimator: {e}"),
            EstimateError::Moments(e) => write!(f, "moments estimator: {e}"),
            EstimateError::Flow(e) => write!(f, "flow estimator: {e}"),
        }
    }
}

impl Error for EstimateError {}

/// Estimates a procedure's branch probabilities from end-to-end timing
/// samples — the Code Tomography entry point.
///
/// With `method: None`, runs EM and falls back to moment matching when the
/// time-expanded dynamic program exceeds its budget.
///
/// # Errors
///
/// Returns the underlying method's error.
///
/// # Examples
///
/// ```
/// use ct_cfg::builder::diamond;
/// use ct_core::estimator::{estimate, EstimateOptions};
/// use ct_core::samples::TimingSamples;
///
/// let cfg = diamond();
/// let block_costs = [10, 100, 200, 5];
/// let edge_costs = [0, 0, 0, 0];
/// // 80% of runs take the fast (115-cycle) path.
/// let mut ticks = vec![115u64; 80];
/// ticks.extend(vec![215u64; 20]);
/// let samples = TimingSamples::new(ticks, 1);
/// let est = estimate(&cfg, &block_costs, &edge_costs, &samples,
///                    EstimateOptions::default()).unwrap();
/// assert!((est.probs.as_slice()[0] - 0.8).abs() < 0.01);
/// ```
pub fn estimate(
    cfg: &Cfg,
    block_costs: &[u64],
    edge_costs: &[u64],
    samples: &TimingSamples,
    opts: EstimateOptions,
) -> Result<Estimate, EstimateError> {
    match opts.method {
        Some(Method::Em) | Some(Method::EmUnrolled) => {
            run_em(cfg, block_costs, edge_costs, samples, opts).map_err(EstimateError::Em)
        }
        Some(Method::Moments) => {
            run_moments(cfg, block_costs, edge_costs, samples, opts).map_err(EstimateError::Moments)
        }
        Some(Method::FlowMean) => {
            let r = estimate_flow(cfg, block_costs, edge_costs, samples)
                .map_err(EstimateError::Flow)?;
            Ok(Estimate {
                probs: r.probs,
                method: Method::FlowMean,
                iterations: 1,
                loglik: None,
                unexplained: 0,
            })
        }
        None => match run_em(cfg, block_costs, edge_costs, samples, opts) {
            Ok(e) => Ok(e),
            Err(FbError::SupportExplosion { .. }) => {
                run_moments(cfg, block_costs, edge_costs, samples, opts)
                    .map_err(EstimateError::Moments)
            }
            Err(e) => Err(EstimateError::Em(e)),
        },
    }
}

fn run_em(
    cfg: &Cfg,
    block_costs: &[u64],
    edge_costs: &[u64],
    samples: &TimingSamples,
    opts: EstimateOptions,
) -> Result<Estimate, FbError> {
    // Warm-start from a cheap moments fit: long loops at the uniform prior
    // make long observed durations exponentially unlikely (they fall below
    // the DP's pruning threshold and EM cannot move); starting near the
    // right mean fixes that. Clamp away from 1 so loop supports stay finite.
    let moments_init = match estimate_moments(cfg, block_costs, edge_costs, samples, opts.moments) {
        Ok(m) => {
            let clamped: Vec<f64> = m
                .probs
                .as_slice()
                .iter()
                .map(|p| p.clamp(0.02, 0.98))
                .collect();
            ct_cfg::profile::BranchProbs::from_vec(cfg, clamped)
        }
        Err(_) => ct_cfg::profile::BranchProbs::uniform(cfg, 0.5),
    };

    // Candidate starting points: the moments fit plus seeded random probes.
    let n_branches = moments_init.len();
    let mut inits = vec![moments_init];
    let mut state = 0x0C0D_E70Au64;
    for _ in 0..opts.restarts {
        let probe: Vec<f64> = (0..n_branches)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = (state >> 11) as f64 / (1u64 << 53) as f64;
                0.1 + 0.8 * u
            })
            .collect();
        inits.push(ct_cfg::profile::BranchProbs::from_vec(cfg, probe));
    }

    // All starting points are independent; fan them out. Results come back
    // in input order, so the best-of reduction below is identical to the
    // serial loop it replaces for any `CT_THREADS`.
    let attempts = ct_stats::parallel::par_map(inits, |init| {
        crate::em::estimate_em_from(cfg, block_costs, edge_costs, samples, init, opts.em)
    });

    let mut best: Option<crate::em::EmResult> = None;
    let mut last_err = None;
    for attempt in attempts {
        match attempt {
            Ok(r) => {
                // Fewer rejected samples first, then the higher likelihood.
                let better = match &best {
                    None => true,
                    Some(b) => {
                        (r.unexplained, std::cmp::Reverse(r.loglik))
                            < (b.unexplained, std::cmp::Reverse(b.loglik))
                    }
                };
                if better {
                    best = Some(r);
                }
            }
            Err(e) => last_err = Some(e),
        }
    }
    let r = match best {
        Some(r) => r,
        None => return Err(last_err.expect("at least one attempt ran")),
    };
    Ok(Estimate {
        probs: r.probs,
        method: Method::Em,
        iterations: r.iterations,
        loglik: Some(r.loglik),
        unexplained: r.unexplained,
    })
}

fn run_moments(
    cfg: &Cfg,
    block_costs: &[u64],
    edge_costs: &[u64],
    samples: &TimingSamples,
    opts: EstimateOptions,
) -> Result<Estimate, MomentsError> {
    let r = estimate_moments(cfg, block_costs, edge_costs, samples, opts.moments)?;
    Ok(Estimate {
        probs: r.probs,
        method: Method::Moments,
        iterations: r.sweeps,
        loglik: None,
        unexplained: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fb::FbParams;
    use ct_cfg::builder::{diamond, while_loop};

    fn diamond_samples(
        p_fast: f64,
        n: usize,
    ) -> (ct_cfg::graph::Cfg, Vec<u64>, Vec<u64>, TimingSamples) {
        let cfg = diamond();
        let bc = vec![10u64, 100, 200, 5];
        let ec = vec![0u64; 4];
        let n_fast = (n as f64 * p_fast) as usize;
        let mut ticks = vec![115u64; n_fast];
        ticks.extend(vec![215u64; n - n_fast]);
        (cfg, bc, ec, TimingSamples::new(ticks, 1))
    }

    #[test]
    fn default_runs_em() {
        let (cfg, bc, ec, samples) = diamond_samples(0.6, 100);
        let e = estimate(&cfg, &bc, &ec, &samples, EstimateOptions::default()).unwrap();
        assert_eq!(e.method, Method::Em);
        assert!(e.loglik.is_some());
        assert!((e.probs.as_slice()[0] - 0.6).abs() < 0.01);
    }

    #[test]
    fn forced_methods_all_work() {
        let (cfg, bc, ec, samples) = diamond_samples(0.7, 200);
        for m in [Method::Em, Method::Moments, Method::FlowMean] {
            let opts = EstimateOptions {
                method: Some(m),
                ..Default::default()
            };
            let e = estimate(&cfg, &bc, &ec, &samples, opts).unwrap();
            assert_eq!(e.method, m);
            assert!(
                (e.probs.as_slice()[0] - 0.7).abs() < 0.05,
                "{m}: {:?}",
                e.probs
            );
        }
    }

    #[test]
    fn auto_falls_back_to_moments_on_explosion() {
        let cfg = while_loop();
        let bc = vec![2u64, 3, 10, 1];
        let ec = vec![0u64; cfg.edges().len()];
        // Long loop: q=0.9 → durations far out; strangle the DP budget so EM
        // cannot run.
        let mut ticks = Vec::new();
        for k in 0..60u64 {
            let copies = (2000.0 * 0.9f64.powi(k as i32) * 0.1) as usize;
            if copies > 0 {
                ticks.push(6 + 13 * k);
                ticks.extend(vec![6 + 13 * k; copies - 1]);
            }
        }
        let samples = TimingSamples::new(ticks, 1);
        let mut opts = EstimateOptions::default();
        opts.em.fb = FbParams {
            mass_eps: 1e-12,
            max_entries: 3,
        };
        let e = estimate(&cfg, &bc, &ec, &samples, opts).unwrap();
        assert_eq!(e.method, Method::Moments);
        let est = e.probs.prob_true(ct_cfg::graph::BlockId(1)).unwrap();
        assert!((est - 0.9).abs() < 0.05, "estimated {est}");
    }

    #[test]
    fn method_display() {
        assert_eq!(Method::Em.to_string(), "em");
        assert_eq!(Method::FlowMean.to_string(), "flow-mean");
    }

    #[test]
    fn error_display() {
        let e = EstimateError::Moments(MomentsError::NoSamples);
        assert!(e.to_string().contains("moments"));
    }
}

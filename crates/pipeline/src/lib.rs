#![deny(missing_docs)]

//! # ct-pipeline — the end-to-end Code Tomography flow, typed
//!
//! Every consumer of this workspace used to wire the same steps by hand:
//! compile an app, boot a mote, drive the workload under paired ground-truth
//! and timing instrumentation, estimate branch probabilities from the tick
//! samples, feed the estimate to code placement, and re-measure. This crate
//! makes that flow a first-class object:
//!
//! - [`stage`] — one typed [`Stage`] per pipeline step
//!   (`Compile → Deploy → Run → Collect → Corrupt → Estimate → Place →
//!   Evaluate`), each consuming the previous stage's artifact;
//! - [`Session`] — the builder that composes the stages under one seeded
//!   [`RunConfig`] (app, MCU calibration, timer resolution, fault plan,
//!   estimator choice) so experiments differ only in their config;
//! - [`Fleet`] — N simulated motes fanned out over scoped threads, their
//!   tick streams reduced to mergeable [`SuffStats`](ct_core::SuffStats)
//!   (associative, order-insensitive merge) and estimated without ever
//!   re-materializing the combined sample vector;
//! - [`synth`] — seeded synthetic-sample generation for the
//!   estimator-ablation experiments.
//!
//! The streaming ingestion path ([`Fleet::estimate_streaming`]) and the
//! checkpoint format ([`checkpoint`], re-exported from `ct-service`) run on
//! the sharded estimation service: the fleet client drives a
//! single-shard, reduce-per-batch `ct_service::ServiceCore`, which pins it
//! bitwise to the pre-service per-batch loop while sharing all ingest,
//! dedup, reduction, and snapshot logic with the threaded
//! `ct_service::EstimationService`.
//!
//! ## Example
//!
//! ```
//! use ct_pipeline::{RunConfig, Session};
//!
//! let config = RunConfig::new("sense").invocations(500).seeded(1);
//! let session = Session::new(config);
//! let run = session.collect().unwrap();
//! let est = session.estimate(&run).unwrap();
//! assert!(est.accuracy.mae < 0.05);
//! ```

pub use ct_service::checkpoint;

pub mod config;
pub mod error;
pub mod fleet;
pub mod measure;
pub mod session;
pub mod stage;
pub mod synth;

pub use config::{Contamination, EnvConfig, EstimatorChoice, Mcu, RunConfig, Target};
pub use ct_mote::pmu::{PmuCounters, PmuSnapshot};
pub use ct_service::checkpoint::{
    Checkpoint, CheckpointError, CheckpointEstimate, CheckpointPolicy,
};
pub use error::PipelineError;
pub use fleet::{quiet_injected_crashes, Fleet, FleetRun, FleetStreamReport, InjectedCrash};
pub use measure::{
    edge_frequencies, par_sweep, penalties, random_layout, run_with_profiler, run_with_profiler_pmu,
};
pub use session::{Evaluated, PipelineReport, Session};
pub use stage::{
    traced, AppRun, Compiled, Deployed, Estimated, EstimatedRun, Executed, PlacedRun, Stage,
};

#![warn(missing_docs)]

//! # ct-cfg
//!
//! Control-flow graphs for sensor network programs: the shared program
//! representation of the Code Tomography workspace.
//!
//! - [`graph`] — blocks, terminators, edges, traversals, validation.
//! - [`builder`] — common shapes (diamond, loops, chains) for tests and
//!   synthetic workloads.
//! - [`dominators`] / [`loops`] — dominator tree, natural loops, reducibility.
//! - [`structure`] — decomposition of structured CFGs into region trees,
//!   which the duration model in `ct-core` composes over.
//! - [`paths`] — DAG path enumeration for path-mixture models and Ball–Larus
//!   profiling.
//! - [`profile`] — edge counts, block visits and branch probabilities (the
//!   Markov parameters the paper estimates).
//! - [`layout`] — flash block order and its taken-branch / jump cost model,
//!   shared by the placement optimizer and the mote simulator.
//! - [`dot`] — Graphviz export.
//!
//! ## Example
//!
//! ```
//! use ct_cfg::builder::diamond;
//! use ct_cfg::profile::EdgeProfile;
//! use ct_cfg::layout::{Layout, PenaltyModel};
//!
//! let cfg = diamond();
//! let profile = EdgeProfile::from_counts(&cfg, vec![90, 10, 90, 10]);
//! let probs = profile.branch_probs(&cfg);
//! assert!((probs.as_slice()[0] - 0.9).abs() < 1e-12);
//!
//! let cost = Layout::natural(&cfg).evaluate(&cfg, &profile, &PenaltyModel::avr());
//! assert_eq!(cost.branches_taken, 10);
//! ```

pub mod builder;
pub mod dominators;
pub mod dot;
pub mod graph;
pub mod layout;
pub mod loops;
pub mod paths;
pub mod profile;
pub mod structure;
pub mod unroll;

pub use graph::{Block, BlockId, Cfg, CfgError, Edge, EdgeKind, Terminator};
pub use layout::{BranchPredictor, EdgeTransfer, Layout, LayoutCost, PenaltyModel, TransferKind};
pub use profile::{BranchProbs, EdgeProfile};
pub use structure::{decompose, Region, StructureError};
pub use unroll::{unroll, UnrollError, Unrolled};

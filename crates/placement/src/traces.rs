//! Greedy trace growing (Fisher's trace scheduling selection, adapted to
//! block placement) — the alternative placement heuristic for the ablation
//! study.
//!
//! Starting from the hottest unplaced block, a trace extends forward along
//! the likeliest successor edge while that edge is hot enough and its target
//! unplaced. Traces are emitted entry-first, then hottest-first.

use ct_cfg::graph::Cfg;
use ct_cfg::layout::Layout;

/// Grows traces from per-edge weights. `threshold` is the minimum fraction
/// of a block's outgoing weight an edge needs to extend the trace (0.5 keeps
/// only majority successors; 0.0 always extends).
///
/// # Panics
///
/// Panics if `edge_weights.len()` differs from the edge count, the CFG is
/// empty, or `threshold` is not in `[0, 1]`.
pub fn greedy_traces(cfg: &Cfg, edge_weights: &[f64], threshold: f64) -> Layout {
    let edges = cfg.edges();
    assert_eq!(
        edge_weights.len(),
        edges.len(),
        "one weight per edge required"
    );
    assert!(!cfg.is_empty(), "empty CFG");
    assert!(
        (0.0..=1.0).contains(&threshold),
        "threshold must be a fraction"
    );

    let n = cfg.len();
    // Block heat: total incoming + outgoing weight.
    let mut heat = vec![0.0; n];
    for e in &edges {
        heat[e.from.index()] += edge_weights[e.index];
        heat[e.to.index()] += edge_weights[e.index];
    }

    let mut placed = vec![false; n];
    let mut order = Vec::with_capacity(n);

    // Seed order: the entry first, then blocks hottest-first (stable by id).
    let mut seeds: Vec<usize> = (0..n).collect();
    // `total_cmp`: a NaN weight (upstream numeric mishap) must not panic a
    // placement pass — it just sorts deterministically last.
    seeds.sort_by(|&a, &b| heat[b].total_cmp(&heat[a]).then(a.cmp(&b)));
    seeds.retain(|&b| b != cfg.entry().index());
    seeds.insert(0, cfg.entry().index());

    for seed in seeds {
        if placed[seed] {
            continue;
        }
        // Grow a trace forward from the seed.
        let mut cur = seed;
        loop {
            placed[cur] = true;
            order.push(ct_cfg::graph::BlockId(cur as u32));
            // Choose the heaviest outgoing edge meeting the threshold whose
            // target is unplaced.
            let out: Vec<_> = edges.iter().filter(|e| e.from.index() == cur).collect();
            let total: f64 = out.iter().map(|e| edge_weights[e.index]).sum();
            let next = out
                .iter()
                .filter(|e| !placed[e.to.index()])
                .max_by(|a, b| {
                    edge_weights[a.index]
                        .total_cmp(&edge_weights[b.index])
                        .then(b.index.cmp(&a.index))
                })
                .filter(|e| total <= 0.0 || edge_weights[e.index] / total >= threshold);
            match next {
                Some(e) => cur = e.to.index(),
                None => break,
            }
        }
    }

    // The growth loop visits every block exactly once, so the order is a
    // permutation; degrade to the natural layout rather than panic if that
    // invariant is ever broken.
    Layout::from_order(cfg, order).unwrap_or_else(|| Layout::natural(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_cfg::builder::{diamond, linear};
    use ct_cfg::graph::BlockId;
    use ct_cfg::layout::PenaltyModel;
    use ct_cfg::profile::EdgeProfile;

    #[test]
    fn linear_stays_in_order() {
        let cfg = linear(4);
        let l = greedy_traces(&cfg, &[1.0, 1.0, 1.0], 0.0);
        assert_eq!(l.order(), &[BlockId(0), BlockId(1), BlockId(2), BlockId(3)]);
    }

    #[test]
    fn hot_path_forms_one_trace() {
        let cfg = diamond();
        let weights = [90.0, 10.0, 90.0, 10.0]; // then-arm hot
        let l = greedy_traces(&cfg, &weights, 0.5);
        assert_eq!(l.next_in_layout(BlockId(0)), Some(BlockId(1)));
        assert_eq!(l.next_in_layout(BlockId(1)), Some(BlockId(3)));
    }

    #[test]
    fn threshold_stops_lukewarm_extension() {
        let cfg = diamond();
        let weights = [51.0, 49.0, 51.0, 49.0];
        // With a 0.9 threshold, the 51% edge is not hot enough; the trace
        // ends at the condition block.
        let l = greedy_traces(&cfg, &weights, 0.9);
        assert_eq!(l.order()[0], BlockId(0));
        // All blocks still placed exactly once.
        assert_eq!(l.order().len(), 4);
    }

    #[test]
    fn improves_on_natural_for_skewed_profiles() {
        let cfg = diamond();
        let profile = EdgeProfile::from_counts(&cfg, vec![2, 98, 2, 98]);
        let weights: Vec<f64> = profile.counts().iter().map(|&c| c as f64).collect();
        let traced = greedy_traces(&cfg, &weights, 0.5);
        let pen = PenaltyModel::avr();
        let c_nat = Layout::natural(&cfg).evaluate(&cfg, &profile, &pen);
        let c_trace = traced.evaluate(&cfg, &profile, &pen);
        assert!(c_trace.extra_cycles < c_nat.extra_cycles);
    }

    #[test]
    fn entry_always_first() {
        let cfg = diamond();
        // Make a non-entry block the hottest.
        let weights = [0.0, 0.0, 500.0, 500.0];
        let l = greedy_traces(&cfg, &weights, 0.0);
        assert_eq!(l.order()[0], cfg.entry());
    }

    #[test]
    #[should_panic(expected = "threshold must be a fraction")]
    fn bad_threshold_rejected() {
        greedy_traces(&diamond(), &[0.0; 4], 1.5);
    }
}

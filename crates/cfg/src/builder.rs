//! Convenience constructors for common CFG shapes.
//!
//! These are used heavily by tests and by the synthetic-workload generators
//! in `ct-apps` (experiment E7/E8 sweep over graph families).

use crate::graph::{BlockId, Cfg, Terminator};

/// A straight-line CFG: `entry → b1 → … → exit` with `n` blocks total.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn linear(n: usize) -> Cfg {
    assert!(n > 0, "linear CFG needs at least one block");
    let mut cfg = Cfg::new("linear");
    for i in 0..n {
        if i + 1 < n {
            cfg.add_block(format!("b{i}"), Terminator::Jump(BlockId(i as u32 + 1)));
        } else {
            cfg.add_block(format!("b{i}"), Terminator::Return);
        }
    }
    cfg
}

/// The canonical if/else diamond:
///
/// ```text
///       cond(b0)
///      /        \
///  then(b1)   else(b2)
///      \        /
///       join(b3) → return
/// ```
pub fn diamond() -> Cfg {
    let mut cfg = Cfg::new("diamond");
    let cond = cfg.add_block("cond", Terminator::Return);
    let then_b = cfg.add_block("then", Terminator::Return);
    let else_b = cfg.add_block("else", Terminator::Return);
    let join = cfg.add_block("join", Terminator::Return);
    cfg.set_terminator(
        cond,
        Terminator::Branch {
            on_true: then_b,
            on_false: else_b,
        },
    );
    cfg.set_terminator(then_b, Terminator::Jump(join));
    cfg.set_terminator(else_b, Terminator::Jump(join));
    cfg
}

/// A single `while` loop:
///
/// ```text
/// entry(b0) → header(b1) --true--> body(b2) → header
///                        --false-> exit(b3) → return
/// ```
pub fn while_loop() -> Cfg {
    let mut cfg = Cfg::new("while_loop");
    let entry = cfg.add_block("entry", Terminator::Return);
    let header = cfg.add_block("header", Terminator::Return);
    let body = cfg.add_block("body", Terminator::Jump(header));
    let exit = cfg.add_block("exit", Terminator::Return);
    cfg.set_terminator(entry, Terminator::Jump(header));
    cfg.set_terminator(
        header,
        Terminator::Branch {
            on_true: body,
            on_false: exit,
        },
    );
    cfg
}

/// A chain of `k` independent diamonds, each condition feeding the next:
/// `2^k` acyclic paths. Useful for scaling experiments.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn diamond_chain(k: usize) -> Cfg {
    assert!(k > 0, "diamond chain needs at least one diamond");
    let mut cfg = Cfg::new(format!("diamond_chain_{k}"));
    // Blocks per diamond: cond, then, else, join. Join of diamond i is the
    // cond of diamond i+1 — except the last join which returns.
    // Layout: for diamond i, base = 3*i: cond=base, then=base+1, else=base+2,
    // next cond (or final join) = base+3.
    for i in 0..k {
        let base = 3 * i as u32;
        cfg.add_block(
            format!("cond{i}"),
            Terminator::Branch {
                on_true: BlockId(base + 1),
                on_false: BlockId(base + 2),
            },
        );
        cfg.add_block(format!("then{i}"), Terminator::Jump(BlockId(base + 3)));
        cfg.add_block(format!("else{i}"), Terminator::Jump(BlockId(base + 3)));
    }
    cfg.add_block("exit", Terminator::Return);
    cfg
}

/// Two nested `while` loops (outer containing inner), exercising loop-nest
/// analysis:
///
/// ```text
/// entry → oh --true--> ih --true--> ibody → ih
///           \            --false-> obody → oh
///            --false-> exit
/// ```
pub fn nested_loops() -> Cfg {
    let mut cfg = Cfg::new("nested_loops");
    let entry = cfg.add_block("entry", Terminator::Return);
    let outer_h = cfg.add_block("outer_header", Terminator::Return);
    let inner_h = cfg.add_block("inner_header", Terminator::Return);
    let inner_b = cfg.add_block("inner_body", Terminator::Jump(inner_h));
    let outer_b = cfg.add_block("outer_latch", Terminator::Jump(outer_h));
    let exit = cfg.add_block("exit", Terminator::Return);
    cfg.set_terminator(entry, Terminator::Jump(outer_h));
    cfg.set_terminator(
        outer_h,
        Terminator::Branch {
            on_true: inner_h,
            on_false: exit,
        },
    );
    cfg.set_terminator(
        inner_h,
        Terminator::Branch {
            on_true: inner_b,
            on_false: outer_b,
        },
    );
    cfg
}

/// An irreducible graph (two mutually-jumping blocks entered separately):
/// the classic counterexample for structural analysis.
pub fn irreducible() -> Cfg {
    let mut cfg = Cfg::new("irreducible");
    let entry = cfg.add_block("entry", Terminator::Return);
    let a = cfg.add_block("a", Terminator::Return);
    let b = cfg.add_block("b", Terminator::Return);
    let exit = cfg.add_block("exit", Terminator::Return);
    cfg.set_terminator(
        entry,
        Terminator::Branch {
            on_true: a,
            on_false: b,
        },
    );
    cfg.set_terminator(
        a,
        Terminator::Branch {
            on_true: b,
            on_false: exit,
        },
    );
    cfg.set_terminator(
        b,
        Terminator::Branch {
            on_true: a,
            on_false: exit,
        },
    );
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_shapes() {
        let cfg = linear(1);
        assert_eq!(cfg.len(), 1);
        assert!(cfg.validate().is_ok());
        let cfg = linear(5);
        assert_eq!(cfg.len(), 5);
        assert!(cfg.validate().is_ok());
        assert!(cfg.is_acyclic());
        assert_eq!(cfg.edges().len(), 4);
    }

    #[test]
    fn diamond_has_one_branch() {
        let cfg = diamond();
        assert_eq!(cfg.branch_blocks().len(), 1);
        assert!(cfg.is_acyclic());
    }

    #[test]
    fn while_loop_is_cyclic_and_valid() {
        let cfg = while_loop();
        assert!(cfg.validate().is_ok());
        assert!(!cfg.is_acyclic());
    }

    #[test]
    fn diamond_chain_path_count_grows() {
        for k in 1..5 {
            let cfg = diamond_chain(k);
            assert!(cfg.validate().is_ok(), "k={k}");
            assert_eq!(cfg.branch_blocks().len(), k);
            assert_eq!(cfg.len(), 3 * k + 1);
            assert!(cfg.is_acyclic());
        }
    }

    #[test]
    fn nested_loops_valid_and_cyclic() {
        let cfg = nested_loops();
        assert!(cfg.validate().is_ok());
        assert!(!cfg.is_acyclic());
        assert_eq!(cfg.branch_blocks().len(), 2);
    }

    #[test]
    fn irreducible_validates_structurally() {
        // Irreducibility is not a validity error; structural analysis rejects
        // it separately.
        assert!(irreducible().validate().is_ok());
    }
}

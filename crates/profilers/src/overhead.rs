//! Unified overhead accounting across profiling approaches — the machinery
//! behind the paper's overhead comparison (experiment E3).

use crate::ball_larus::BallLarusProfiler;
use crate::edge_counter::EdgeCounterProfiler;
use crate::sampling::SamplingProfiler;
use ct_ir::program::Program;
use std::fmt;

/// The three cost axes of on-mote instrumentation.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadReport {
    /// Approach name.
    pub approach: String,
    /// Cycles of the uninstrumented run.
    pub base_cycles: u64,
    /// Cycles of the instrumented run.
    pub instrumented_cycles: u64,
    /// Static RAM for instrumentation state.
    pub ram_bytes: u32,
    /// Static flash for instrumentation code.
    pub flash_bytes: u32,
}

impl OverheadReport {
    /// Runtime overhead as a fraction of the base run.
    pub fn cycle_overhead_pct(&self) -> f64 {
        if self.base_cycles == 0 {
            return 0.0;
        }
        (self.instrumented_cycles.saturating_sub(self.base_cycles)) as f64 / self.base_cycles as f64
            * 100.0
    }
}

impl fmt::Display for OverheadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} cycles +{:>6.2}%  ram {:>5} B  flash {:>5} B",
            self.approach,
            self.cycle_overhead_pct(),
            self.ram_bytes,
            self.flash_bytes
        )
    }
}

/// Static costs of Code Tomography's own instrumentation: a timestamp read
/// and store at every procedure entry and exit.
pub mod tomography {
    use ct_ir::program::Program;

    /// Cycles per timestamp (latch the timer, store two bytes).
    pub const TIMESTAMP_CYCLES: u64 = 8;

    /// RAM: a small ring of duration records shared program-wide (the host
    /// drains it over the radio/UART), plus the live entry-timestamp slot of
    /// each procedure on the (shallow) call stack.
    pub fn ram_bytes(program: &Program) -> u32 {
        32 * 2 + program.procs.len() as u32 * 2
    }

    /// Flash: one prologue/epilogue stub per procedure.
    pub fn flash_bytes(program: &Program) -> u32 {
        program.procs.len() as u32 * 12
    }
}

/// Static cost rows for every approach (runtime cycles must come from actual
/// runs; see `ct-bench`'s E3 harness).
pub fn static_costs(program: &Program) -> Vec<(String, u32, u32)> {
    let bl = BallLarusProfiler::new(program);
    vec![
        ("none".into(), 0, 0),
        (
            "tomography".into(),
            tomography::ram_bytes(program),
            tomography::flash_bytes(program),
        ),
        (
            "edge-counters".into(),
            EdgeCounterProfiler::ram_bytes(program),
            EdgeCounterProfiler::flash_bytes(program),
        ),
        (
            "ball-larus".into(),
            bl.ram_bytes(program),
            bl.flash_bytes(program),
        ),
        (
            "sampling".into(),
            SamplingProfiler::ram_bytes(program),
            SamplingProfiler::flash_bytes(program),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "module M { var a: u32; proc f(x: u16) {
        var i: u16 = 0;
        while (i < x) { if (i % 2 == 0) { a = a + i; } else { a = a + 1; } i = i + 1; }
    } }";

    #[test]
    fn report_percentages() {
        let r = OverheadReport {
            approach: "x".into(),
            base_cycles: 1000,
            instrumented_cycles: 1100,
            ram_bytes: 4,
            flash_bytes: 8,
        };
        assert!((r.cycle_overhead_pct() - 10.0).abs() < 1e-12);
        assert!(r.to_string().contains("10.00%"));
    }

    #[test]
    fn tomography_ram_is_smallest_nontrivial() {
        let program = ct_ir::compile_source(SRC).unwrap();
        let rows = static_costs(&program);
        let get = |name: &str| rows.iter().find(|(n, _, _)| n == name).unwrap().clone();
        let (_, tomo_ram, _) = get("tomography");
        let (_, ec_ram, _) = get("edge-counters");
        let (_, bl_ram, _) = get("ball-larus");
        // Tomography RAM is program-size independent (fixed ring); counters
        // scale with edges, BL with path counts. On a program this small the
        // fixed ring can dominate, but per-edge structures must be nonzero.
        assert!(ec_ram > 0 && bl_ram > 0 && tomo_ram > 0);
        assert_eq!(rows[0].1, 0);
    }

    #[test]
    fn zero_base_cycles_is_safe() {
        let r = OverheadReport {
            approach: "x".into(),
            base_cycles: 0,
            instrumented_cycles: 10,
            ram_bytes: 0,
            flash_bytes: 0,
        };
        assert_eq!(r.cycle_overhead_pct(), 0.0);
    }
}

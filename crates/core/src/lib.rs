#![warn(missing_docs)]

//! # ct-core — Code Tomography
//!
//! The paper's primary contribution: estimating the parameters of a sensor
//! procedure's Markov execution model **from end-to-end timing alone** —
//! timestamps at procedure entry and exit, quantized by a cheap hardware
//! timer — and handing the recovered edge frequencies to profile-guided code
//! placement.
//!
//! ## The inverse problem
//!
//! A procedure's CFG with branch probabilities `θ` induces a distribution
//! over end-to-end durations: each run is a random path whose duration is the
//! sum of statically known per-block and per-edge cycle costs. The mote's
//! instrumentation observes those durations only through a quantizing timer.
//! Code Tomography inverts this: given the observed tick samples and the
//! static costs, recover `θ`.
//!
//! ## Estimators
//!
//! - [`em`] — exact EM (Baum–Welch) over the time-expanded chain, using the
//!   quantization kernel of [`quantize`]; the most accurate.
//! - [`moments`] — mean/variance matching by coordinate descent; the cheap
//!   fallback for path-explosive procedures.
//! - [`gnt`] — generalized network tomography: distribution-free
//!   characteristic-function matching with bounded per-sample influence;
//!   needs no dynamic program and degrades gracefully under channel faults
//!   that reshape the duration distribution.
//! - [`flow_nnls`] — flow-constrained NNLS on the mean; the linear-inverse
//!   baseline.
//!
//! [`estimator::estimate`] is the front door with automatic method selection;
//! [`accuracy`] scores estimates against ground truth.
//!
//! ## Example
//!
//! ```
//! use ct_cfg::builder::diamond;
//! use ct_core::{estimate, EstimateOptions, TimingSamples};
//!
//! // A procedure with a 115-cycle fast path and a 215-cycle slow path,
//! // observed 70/30 with a cycle-accurate timer:
//! let cfg = diamond();
//! let mut ticks = vec![115u64; 700];
//! ticks.extend(vec![215u64; 300]);
//! let est = estimate(
//!     &cfg,
//!     &[10, 100, 200, 5],
//!     &[0, 0, 0, 0],
//!     &TimingSamples::new(ticks, 1),
//!     EstimateOptions::default(),
//! ).unwrap();
//! assert!((est.probs.as_slice()[0] - 0.7).abs() < 0.01);
//! ```

pub mod accuracy;
pub mod em;
pub mod estimator;
pub mod fb;
#[doc(hidden)]
pub mod fb_reference;
pub mod flow_nnls;
pub mod gnt;
pub mod incremental;
pub mod moments;
pub mod quantize;
pub mod report;
pub mod samples;
pub mod stream;
pub mod unrolled;

pub use accuracy::{compare, compare_unweighted, AccuracyReport};
pub use em::{estimate_em, estimate_em_cached, estimate_em_from, EmOptions, EmResult};
pub use estimator::{
    estimate, estimate_robust, Estimate, EstimateError, EstimateOptions, Method, RobustEstimate,
    RobustOptions, Rung, RungAttempt,
};
pub use fb::{compute_tables, e_step, e_step_cached, EStepCache, FbError, FbParams, FbTables};
pub use flow_nnls::{estimate_flow, estimate_flow_many, FlowResult};
pub use gnt::{estimate_gnt, model_cf, GntError, GntOptions, GntResult};
pub use incremental::{estimate_em_incremental, IncrementalEm};
pub use moments::{estimate_moments, model_moments, MomentsError, MomentsOptions, MomentsResult};
pub use quantize::{
    duration_window, pmf_tick_score_soa, tick_likelihood, try_duration_window, WindowError,
};
pub use samples::{DurationSamples, SampleIssue, TimingSamples, TrimPolicy};
pub use stream::{BatchTag, ResolutionMismatch, SampleBatch, SuffStats};
pub use unrolled::{estimate_unrolled, UnrolledError, UnrolledEstimate};

//! Flat sparse PMF kernels over integer (cycle-count) support.
//!
//! A PMF is a `Vec<(u64, f64)>` sorted by support point with strictly
//! increasing keys — the representation the time-expanded dynamic programs in
//! `ct-core` use for per-block duration distributions. The kernels here are
//! the hot primitives of the inference engine: coalescing raw contribution
//! lists, pruning sub-epsilon mass, windowed slicing, and windowed
//! convolution of two PMFs.
//!
//! All kernels are allocation-light and branch-predictable: sorted flat
//! vectors replace the `BTreeMap` frontiers the first implementation used,
//! which were dominated by pointer-chasing and per-node allocation.

/// One support point: `(value, probability_mass)`.
pub type Entry = (u64, f64);

/// Sorts `entries` by support point and sums duplicate keys left-to-right
/// (stable), leaving a strictly-increasing flat PMF.
///
/// Left-to-right summation over a stable sort reproduces the summation order
/// of inserting the entries into a `BTreeMap` in their original order, which
/// keeps results bit-comparable with the reference implementation.
pub fn coalesce(entries: &mut Vec<Entry>) {
    if entries.len() <= 1 {
        return;
    }
    entries.sort_by_key(|&(d, _)| d);
    let mut w = 0;
    for r in 1..entries.len() {
        if entries[r].0 == entries[w].0 {
            entries[w].1 += entries[r].1;
        } else {
            w += 1;
            entries[w] = entries[r];
        }
    }
    entries.truncate(w + 1);
}

/// Removes entries with mass below `eps`; returns the total mass removed.
pub fn prune(entries: &mut Vec<Entry>, eps: f64) -> f64 {
    let mut truncated = 0.0;
    entries.retain(|&(_, m)| {
        if m < eps {
            truncated += m;
            false
        } else {
            true
        }
    });
    truncated
}

/// Total probability mass.
pub fn total_mass(pmf: &[Entry]) -> f64 {
    pmf.iter().map(|&(_, m)| m).sum()
}

/// The sub-slice of `pmf` with support in `[lo, hi]` (both inclusive).
pub fn slice_range(pmf: &[Entry], lo: u64, hi: u64) -> &[Entry] {
    if lo > hi {
        return &[];
    }
    let start = pmf.partition_point(|&(d, _)| d < lo);
    let end = pmf.partition_point(|&(d, _)| d <= hi);
    &pmf[start..end]
}

/// Windowed convolution with shift: returns the PMF
/// `h(d) = Σ_t f(t) · g(d − t − shift)` restricted to `d ∈ [lo, hi]`.
///
/// This is the per-edge kernel of the Baum–Welch E-step: with `f` the arrival
/// distribution at an edge's source, `g` the remaining-duration distribution
/// at its target, and `shift` the source block + edge cycle cost, `h(d)` is
/// the joint probability that the procedure runs `d` cycles total *and*
/// crosses the edge (up to the edge probability factor, applied by the
/// caller).
///
/// Strategy: when the window is narrow relative to the number of term pairs,
/// accumulate into a dense window buffer (O(pairs + width)); otherwise
/// collect the in-window terms and coalesce (O(pairs · log pairs)).
pub fn convolve_window(f: &[Entry], g: &[Entry], shift: u64, lo: u64, hi: u64) -> Vec<Entry> {
    if lo > hi || f.is_empty() || g.is_empty() {
        return Vec::new();
    }
    let width = (hi - lo + 1) as usize;
    let pairs = f.len().saturating_mul(g.len());
    if width <= pairs.saturating_mul(4).max(1024) && width <= (1 << 22) {
        convolve_dense(f, g, shift, lo, hi, width)
    } else {
        convolve_sparse(f, g, shift, lo, hi)
    }
}

fn convolve_dense(
    f: &[Entry],
    g: &[Entry],
    shift: u64,
    lo: u64,
    hi: u64,
    width: usize,
) -> Vec<Entry> {
    let mut buf = vec![0.0f64; width];
    for &(t, fm) in f {
        let base = t + shift;
        if base > hi {
            continue;
        }
        let s_lo = lo.saturating_sub(base);
        let s_hi = hi - base;
        for &(s, gm) in slice_range(g, s_lo, s_hi) {
            buf[(base + s - lo) as usize] += fm * gm;
        }
    }
    buf.iter()
        .enumerate()
        .filter(|&(_, &m)| m > 0.0)
        .map(|(i, &m)| (lo + i as u64, m))
        .collect()
}

fn convolve_sparse(f: &[Entry], g: &[Entry], shift: u64, lo: u64, hi: u64) -> Vec<Entry> {
    let mut terms: Vec<Entry> = Vec::new();
    for &(t, fm) in f {
        let base = t + shift;
        if base > hi {
            continue;
        }
        let s_lo = lo.saturating_sub(base);
        let s_hi = hi - base;
        for &(s, gm) in slice_range(g, s_lo, s_hi) {
            terms.push((base + s, fm * gm));
        }
    }
    coalesce(&mut terms);
    terms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesce_sums_duplicates_in_order() {
        let mut v = vec![(5, 0.25), (3, 0.5), (5, 0.125), (3, 0.1), (7, 0.025)];
        coalesce(&mut v);
        assert_eq!(v, vec![(3, 0.6), (5, 0.375), (7, 0.025)]);
    }

    #[test]
    fn prune_accounts_truncated_mass() {
        let mut v = vec![(1, 0.5), (2, 1e-12), (3, 0.5), (4, 2e-12)];
        let t = prune(&mut v, 1e-9);
        assert_eq!(v, vec![(1, 0.5), (3, 0.5)]);
        assert!((t - 3e-12).abs() < 1e-24);
    }

    #[test]
    fn slice_range_is_inclusive() {
        let v = vec![(1, 0.1), (3, 0.2), (5, 0.3), (9, 0.4)];
        assert_eq!(slice_range(&v, 3, 5), &[(3, 0.2), (5, 0.3)]);
        assert_eq!(slice_range(&v, 0, 100), &v[..]);
        assert_eq!(slice_range(&v, 6, 8), &[]);
        assert_eq!(slice_range(&v, 7, 2), &[]);
    }

    #[test]
    fn convolution_matches_naive() {
        let f = vec![(0, 0.5), (2, 0.3), (10, 0.2)];
        let g = vec![(1, 0.6), (4, 0.4)];
        let shift = 3;
        // Naive full convolution.
        let mut naive = std::collections::BTreeMap::new();
        for &(t, fm) in &f {
            for &(s, gm) in &g {
                *naive.entry(t + s + shift).or_insert(0.0) += fm * gm;
            }
        }
        for (lo, hi) in [(0u64, 100u64), (4, 9), (8, 8), (0, 0)] {
            let h = convolve_window(&f, &g, shift, lo, hi);
            let want: Vec<Entry> = naive
                .iter()
                .filter(|&(&d, _)| d >= lo && d <= hi)
                .map(|(&d, &m)| (d, m))
                .collect();
            assert_eq!(h.len(), want.len(), "window [{lo},{hi}]");
            for (got, exp) in h.iter().zip(&want) {
                assert_eq!(got.0, exp.0);
                assert!((got.1 - exp.1).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn dense_and_sparse_paths_agree() {
        let f: Vec<Entry> = (0..40).map(|i| (i * 7, 1.0 / 40.0)).collect();
        let g: Vec<Entry> = (0..40).map(|i| (i * 11, 1.0 / 40.0)).collect();
        let (lo, hi) = (50, 500);
        let dense = convolve_dense(&f, &g, 5, lo, hi, (hi - lo + 1) as usize);
        let sparse = convolve_sparse(&f, &g, 5, lo, hi);
        assert_eq!(dense.len(), sparse.len());
        for (a, b) in dense.iter().zip(&sparse) {
            assert_eq!(a.0, b.0);
            assert!((a.1 - b.1).abs() < 1e-15);
        }
    }

    #[test]
    fn empty_inputs_yield_empty() {
        assert!(convolve_window(&[], &[(1, 1.0)], 0, 0, 10).is_empty());
        assert!(convolve_window(&[(1, 1.0)], &[], 0, 0, 10).is_empty());
        assert!(convolve_window(&[(1, 1.0)], &[(1, 1.0)], 0, 5, 4).is_empty());
    }
}

//! Property tests pinning the fault-injection contract: exact replay from a
//! plan, zero-rate identity, and structural sanity of every model at any
//! rate.

use ct_core::TimingSamples;
use ct_faults::{FaultKind, FaultPlan};
use proptest::prelude::*;

/// A synthetic bimodal tick stream like a two-path procedure produces.
fn stream(n_fast: usize, n_slow: usize, cpt: u64) -> TimingSamples {
    let mut ticks = vec![115u64; n_fast];
    ticks.extend(vec![215u64; n_slow]);
    TimingSamples::new(ticks, cpt)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same plan + same input ⇒ bitwise-identical corrupted stream, for
    /// every fault kind, rate and seed.
    #[test]
    fn replay_is_bitwise_identical(
        kind_idx in 0usize..7,
        rate in 0.0f64..=1.0,
        seed in 0u64..1000,
        cpt in 1u64..500,
    ) {
        let kind = FaultKind::ALL[kind_idx];
        let s = stream(70, 30, cpt);
        let plan = FaultPlan::single(kind, rate, seed);
        let a = plan.build().apply(&s);
        let b = plan.build().apply(&s);
        prop_assert_eq!(a, b);
    }

    /// A chain of every kind at rate zero is the identity on any input.
    #[test]
    fn zero_rate_chain_is_identity(
        seed in 0u64..1000,
        n_fast in 0usize..80,
        n_slow in 0usize..40,
        cpt in 1u64..500,
    ) {
        let s = stream(n_fast, n_slow, cpt);
        let mut plan = FaultPlan::new(seed);
        for kind in FaultKind::ALL {
            plan = plan.with(kind, 0.0);
        }
        prop_assert_eq!(plan.build().apply(&s), s);
    }

    /// Chains replay exactly too: composition keeps determinism.
    #[test]
    fn chain_replay_is_bitwise_identical(
        seed in 0u64..1000,
        r1 in 0.0f64..=1.0,
        r2 in 0.0f64..=1.0,
        r3 in 0.0f64..=1.0,
    ) {
        let s = stream(70, 30, 244);
        let plan = FaultPlan::new(seed)
            .with(FaultKind::ClockDrift, r1)
            .with(FaultKind::RecordLoss, r2)
            .with(FaultKind::StuckAt, r3);
        prop_assert_eq!(plan.build().apply(&s), plan.build().apply(&s));
    }

    /// No model panics or produces an unusable container at any rate — the
    /// output is always a well-formed `TimingSamples` (resolution ≥ 1).
    #[test]
    fn models_always_produce_wellformed_streams(
        kind_idx in 0usize..7,
        rate in 0.0f64..=1.0,
        seed in 0u64..1000,
        n in 0usize..120,
    ) {
        let kind = FaultKind::ALL[kind_idx];
        let s = stream(n, n / 3, 244);
        let out = FaultPlan::single(kind, rate, seed).build().apply(&s);
        prop_assert!(out.cycles_per_tick() >= 1);
        // Duplication at most doubles; everything else never grows.
        prop_assert!(out.len() <= 2 * s.len().max(1));
    }
}

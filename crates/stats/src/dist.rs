//! Small probability-distribution helpers used across the workspace.
//!
//! These cover exactly the needs of the Markov machinery and the workload
//! generators: categorical draws over branch successors, geometric loop
//! counts, and simplex utilities for estimator parameter vectors.

use rand::Rng;

/// A categorical distribution over `0..k` given by (not necessarily
/// normalized) nonnegative weights.
///
/// # Examples
///
/// ```
/// use ct_stats::dist::Categorical;
/// use rand::SeedableRng;
/// let c = Categorical::new(&[1.0, 3.0]).unwrap();
/// assert!((c.prob(1) - 0.75).abs() < 1e-12);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let x = c.sample(&mut rng);
/// assert!(x < 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    probs: Vec<f64>,
    cumulative: Vec<f64>,
}

impl Categorical {
    /// Builds a categorical distribution from nonnegative weights.
    ///
    /// Returns `None` when `weights` is empty, contains a negative or
    /// non-finite value, or sums to zero.
    pub fn new(weights: &[f64]) -> Option<Categorical> {
        if weights.is_empty() {
            return None;
        }
        if weights.iter().any(|&w| !w.is_finite() || w < 0.0) {
            return None;
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let mut cumulative = Vec::with_capacity(probs.len());
        let mut acc = 0.0;
        for &p in &probs {
            acc += p;
            cumulative.push(acc);
        }
        // Guard against floating point drift on the last entry.
        *cumulative.last_mut().expect("nonempty") = 1.0;
        Some(Categorical { probs, cumulative })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// True when there are no categories. (Never true for a constructed
    /// value; provided for API completeness.)
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Probability of category `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn prob(&self, i: usize) -> f64 {
        self.probs[i]
    }

    /// The normalized probability vector.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Draws a category index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // Binary search over the cumulative distribution.
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite"))
        {
            Ok(i) => (i + 1).min(self.probs.len() - 1),
            Err(i) => i.min(self.probs.len() - 1),
        }
    }
}

/// Draws from a geometric distribution: the number of failures before the
/// first success with success probability `p` (support `0, 1, 2, ...`).
///
/// Loop iteration counts under a Markov model are geometric: a loop with
/// back-edge probability `q` runs `Geometric(1-q)` extra iterations.
///
/// # Panics
///
/// Panics if `p` is not in `(0, 1]`.
pub fn sample_geometric<R: Rng + ?Sized>(rng: &mut R, p: f64) -> u64 {
    assert!(p > 0.0 && p <= 1.0, "geometric parameter must be in (0,1]");
    if p >= 1.0 {
        return 0;
    }
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    (u.ln() / (1.0 - p).ln()).floor() as u64
}

/// Probability mass function of the geometric distribution at `k`.
///
/// # Panics
///
/// Panics if `p` is not in `(0, 1]`.
pub fn geometric_pmf(k: u64, p: f64) -> f64 {
    assert!(p > 0.0 && p <= 1.0, "geometric parameter must be in (0,1]");
    (1.0 - p).powi(k as i32) * p
}

/// Projects an arbitrary vector onto the probability simplex
/// (`xᵢ ≥ 0`, `Σxᵢ = 1`) in Euclidean distance (Duchi et al. 2008).
///
/// Used by the projected-gradient method-of-moments estimator to keep branch
/// probability vectors feasible.
///
/// # Panics
///
/// Panics if `v` is empty.
pub fn project_to_simplex(v: &[f64]) -> Vec<f64> {
    assert!(!v.is_empty(), "cannot project empty vector");
    let mut u = v.to_vec();
    u.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
    let mut css = 0.0;
    let mut rho = 0;
    let mut theta = 0.0;
    for (i, &ui) in u.iter().enumerate() {
        css += ui;
        let t = (css - 1.0) / (i as f64 + 1.0);
        if ui - t > 0.0 {
            rho = i;
            theta = t;
        }
    }
    let _ = rho;
    v.iter().map(|&x| (x - theta).max(0.0)).collect()
}

/// Clamps a probability into `[eps, 1-eps]` to keep likelihoods finite.
pub fn clamp_prob(p: f64, eps: f64) -> f64 {
    p.max(eps).min(1.0 - eps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn categorical_normalizes_weights() {
        let c = Categorical::new(&[2.0, 6.0]).unwrap();
        assert!((c.prob(0) - 0.25).abs() < 1e-12);
        assert!((c.prob(1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn categorical_rejects_bad_weights() {
        assert!(Categorical::new(&[]).is_none());
        assert!(Categorical::new(&[0.0, 0.0]).is_none());
        assert!(Categorical::new(&[-1.0, 2.0]).is_none());
        assert!(Categorical::new(&[f64::NAN]).is_none());
    }

    #[test]
    fn categorical_sampling_matches_probabilities() {
        let c = Categorical::new(&[1.0, 3.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let mut counts = [0usize; 2];
        for _ in 0..n {
            counts[c.sample(&mut rng)] += 1;
        }
        let f1 = counts[1] as f64 / n as f64;
        assert!((f1 - 0.75).abs() < 0.02, "got {f1}");
    }

    #[test]
    fn categorical_degenerate_always_samples_same() {
        let c = Categorical::new(&[0.0, 1.0, 0.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(c.sample(&mut rng), 1);
        }
    }

    #[test]
    fn geometric_mean_matches_theory() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = 0.25;
        let n = 50_000;
        let total: u64 = (0..n).map(|_| sample_geometric(&mut rng, p)).sum();
        let mean = total as f64 / n as f64;
        let expected = (1.0 - p) / p; // 3.0
        assert!((mean - expected).abs() < 0.1, "got {mean}");
    }

    #[test]
    fn geometric_p_one_is_always_zero() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(sample_geometric(&mut rng, 1.0), 0);
    }

    #[test]
    fn geometric_pmf_sums_to_one() {
        let p = 0.3;
        let total: f64 = (0..200).map(|k| geometric_pmf(k, p)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn simplex_projection_of_feasible_point_is_identity() {
        let v = [0.2, 0.3, 0.5];
        let p = project_to_simplex(&v);
        for (a, b) in v.iter().zip(&p) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn simplex_projection_is_feasible() {
        let v = [2.0, -1.0, 0.5];
        let p = project_to_simplex(&v);
        assert!(p.iter().all(|&x| x >= 0.0));
        let s: f64 = p.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clamp_prob_bounds() {
        assert_eq!(clamp_prob(-0.5, 1e-6), 1e-6);
        assert_eq!(clamp_prob(1.5, 1e-6), 1.0 - 1e-6);
        assert_eq!(clamp_prob(0.5, 1e-6), 0.5);
    }
}

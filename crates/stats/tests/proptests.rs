//! Property-based tests for the numeric substrate.

use ct_stats::descriptive::Summary;
use ct_stats::dist::{project_to_simplex, Categorical};
use ct_stats::matrix::Matrix;
use ct_stats::metrics::{kl_divergence, total_variation};
use ct_stats::nnls::{nnls, NnlsOptions};
use ct_stats::pmf::{self, Pmf};
use ct_stats::solve::{lstsq, Lu};
use proptest::prelude::*;

fn small_vec(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0f64..100.0, n)
}

/// A random normalized PMF: up to 24 support points on a random stride, so
/// the product-support width of a convolution pair lands on both sides of
/// `convolve_window`'s dense/sparse cutoff (`width <= max(4·pairs, 1024)`).
fn rand_pmf() -> impl Strategy<Value = Vec<(u64, f64)>> {
    (
        0u64..200,
        prop_oneof![1u64..4, 30u64..500],
        proptest::collection::vec(0.01f64..1.0, 1..24),
    )
        .prop_map(|(base, stride, masses)| {
            let total: f64 = masses.iter().sum();
            masses
                .iter()
                .enumerate()
                .map(|(i, &m)| (base + i as u64 * stride, m / total))
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LU solve round-trips: A·x = b for diagonally dominant A.
    #[test]
    fn lu_solves_diagonally_dominant(
        off in proptest::collection::vec(-1.0f64..1.0, 9),
        b in small_vec(3),
    ) {
        let mut a = Matrix::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                a[(i, j)] = off[i * 3 + j];
            }
            a[(i, i)] = 10.0 + off[i * 3 + i];
        }
        let lu = Lu::factor(&a).expect("diagonally dominant is nonsingular");
        let x = lu.solve(&b).unwrap();
        let ax = a.mul_vec(&x);
        for (p, q) in ax.iter().zip(&b) {
            prop_assert!((p - q).abs() < 1e-6, "{ax:?} vs {b:?}");
        }
    }

    /// Least squares residual is orthogonal to the column space.
    #[test]
    fn lstsq_residual_is_orthogonal(b in small_vec(4)) {
        let a = Matrix::from_rows(&[
            &[1.0, 0.5],
            &[2.0, -1.0],
            &[0.0, 3.0],
            &[1.0, 1.0],
        ]);
        let x = lstsq(&a, &b).unwrap();
        let ax = a.mul_vec(&x);
        let r: Vec<f64> = b.iter().zip(&ax).map(|(p, q)| p - q).collect();
        let at = a.transpose();
        let atr = at.mul_vec(&r);
        for v in atr {
            prop_assert!(v.abs() < 1e-6, "residual not orthogonal: {v}");
        }
    }

    /// NNLS solutions are nonnegative and never beat the unconstrained
    /// optimum.
    #[test]
    fn nnls_is_feasible(b in small_vec(3)) {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.5, -1.0], &[2.0, 0.3]]);
        let sol = nnls(&a, &b, NnlsOptions::default()).unwrap();
        prop_assert!(sol.x.iter().all(|&v| v >= 0.0));
        // Residual at least as large as the unconstrained one.
        if let Ok(x_free) = lstsq(&a, &b) {
            let ax = a.mul_vec(&x_free);
            let free_res: f64 = b.iter().zip(&ax).map(|(p, q)| (p - q).powi(2)).sum::<f64>().sqrt();
            prop_assert!(sol.residual_norm + 1e-9 >= free_res);
        }
    }

    /// Welford summary matches naive two-pass computation.
    #[test]
    fn summary_matches_naive(xs in proptest::collection::vec(-1e4f64..1e4, 2..50)) {
        let s = Summary::of(&xs);
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((s.variance - var).abs() < 1e-6 * var.abs().max(1.0));
    }

    /// Categorical sampling only produces valid indices and probabilities
    /// normalize.
    #[test]
    fn categorical_is_normalized(w in proptest::collection::vec(0.0f64..10.0, 1..8), seed in 0u64..1000) {
        prop_assume!(w.iter().sum::<f64>() > 0.0);
        let c = Categorical::new(&w).unwrap();
        prop_assert!((c.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            prop_assert!(c.sample(&mut rng) < w.len());
        }
    }

    /// Simplex projection is idempotent and feasible.
    #[test]
    fn simplex_projection_idempotent(v in proptest::collection::vec(-5.0f64..5.0, 1..6)) {
        let p = project_to_simplex(&v);
        prop_assert!(p.iter().all(|&x| x >= -1e-12));
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let pp = project_to_simplex(&p);
        for (a, b) in p.iter().zip(&pp) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// The dense and sparse windowed-convolution kernels agree to 1e-12 on
    /// randomized PMFs whose window widths straddle the selection cutoff in
    /// `convolve_window` — both are exact enumerations of the same terms,
    /// only the accumulation order differs.
    #[test]
    fn convolution_kernels_agree(
        f in rand_pmf(),
        g in rand_pmf(),
        shift in 0u64..64,
        clip in 0u64..32,
    ) {
        let lo_full = f[0].0 + g[0].0 + shift;
        let hi_full = f[f.len() - 1].0 + g[g.len() - 1].0 + shift;
        let (lo, hi) = (lo_full + clip, hi_full.saturating_sub(clip));
        prop_assume!(lo <= hi);
        let width = (hi - lo + 1) as usize;
        let dense = pmf::convolve_dense(&f, &g, shift, lo, hi, width);
        let sparse = pmf::convolve_sparse(&f, &g, shift, lo, hi);
        prop_assert_eq!(dense.len(), sparse.len());
        for (&(kd, md), &(ks, ms)) in dense.iter().zip(&sparse) {
            prop_assert_eq!(kd, ks);
            prop_assert!((md - ms).abs() < 1e-12, "key {kd}: dense {md} vs sparse {ms}");
        }
        // Whichever path the cutoff picks, the front door returns one of them.
        let picked = pmf::convolve_window(&f, &g, shift, lo, hi);
        prop_assert!(picked == dense || picked == sparse);
    }

    /// The SoA convolution (`convolve_window_pmf`) is bit-identical to the
    /// tuple-based reference (`convolve_window`) — same path selection, same
    /// enumeration and summation order.
    #[test]
    fn soa_convolution_matches_tuple_bitwise(
        f in rand_pmf(),
        g in rand_pmf(),
        shift in 0u64..64,
        clip in 0u64..32,
    ) {
        let lo_full = f[0].0 + g[0].0 + shift;
        let hi_full = f[f.len() - 1].0 + g[g.len() - 1].0 + shift;
        let (lo, hi) = (lo_full + clip, hi_full.saturating_sub(clip));
        prop_assume!(lo <= hi);
        let tuple = pmf::convolve_window(&f, &g, shift, lo, hi);
        let soa = pmf::convolve_window_pmf(
            &Pmf::from_sorted(f),
            &Pmf::from_sorted(g),
            shift,
            lo,
            hi,
        );
        prop_assert_eq!(tuple.len(), soa.len());
        for ((kt, mt), (ks, ms)) in tuple.iter().zip(soa.iter()) {
            prop_assert_eq!(*kt, ks);
            prop_assert_eq!(mt.to_bits(), ms.to_bits(), "key {}: {} vs {}", kt, mt, ms);
        }
    }

    /// KL ≥ 0 and TV ∈ [0, 1] for distributions.
    #[test]
    fn divergences_behave(w1 in proptest::collection::vec(0.01f64..1.0, 4), w2 in proptest::collection::vec(0.01f64..1.0, 4)) {
        let norm = |w: &[f64]| -> Vec<f64> {
            let s: f64 = w.iter().sum();
            w.iter().map(|x| x / s).collect()
        };
        let p = norm(&w1);
        let q = norm(&w2);
        prop_assert!(kl_divergence(&p, &q) >= -1e-12);
        let tv = total_variation(&p, &q);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&tv));
    }
}

//! `ctc` — the Code Tomography command line: compile, inspect, run and
//! estimate NLC sensor programs.
//!
//! ```text
//! ctc compile <file.nlc>                      dump lowered IR and stats
//! ctc dot <file.nlc> [proc]                   CFG as Graphviz DOT
//! ctc run <file.nlc> <proc> [n]               run on the simulated mote
//! ctc estimate <file.nlc> <proc> [n] [cpt]    profile by timing and estimate
//! ```

use code_tomography::cfg::dot::to_dot;
use code_tomography::core::estimator::{estimate, EstimateOptions};
use code_tomography::core::samples::TimingSamples;
use code_tomography::core::unrolled::estimate_unrolled;
use code_tomography::ir;
use code_tomography::ir::pretty::dump_program;
use code_tomography::mote::cost::AvrCost;
use code_tomography::mote::devices::UniformAdc;
use code_tomography::mote::interp::Mote;
use code_tomography::mote::timer::VirtualTimer;
use code_tomography::mote::trace::{
    GroundTruthProfiler, NullProfiler, PairProfiler, TimingProfiler,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("compile") => cmd_compile(&args[1..]),
        Some("dot") => cmd_dot(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("estimate") => cmd_estimate(&args[1..]),
        _ => {
            eprintln!(
                "usage: ctc <compile|dot|run|estimate> <file.nlc> [args...]\n\
                 \n\
                 compile <file>                 dump lowered IR and stats\n\
                 dot <file> [proc]              CFG as Graphviz DOT\n\
                 run <file> <proc> [n=1]        run on the simulated mote\n\
                 estimate <file> <proc> [n=2000] [cpt=8]\n\
                 \x20                              profile by timing and estimate"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CmdResult = Result<(), Box<dyn std::error::Error>>;

fn load(args: &[String]) -> Result<ir::Program, Box<dyn std::error::Error>> {
    let path = args.first().ok_or("missing source file argument")?;
    let src = std::fs::read_to_string(path)?;
    Ok(ir::compile_source(&src)?)
}

fn proc_id(
    program: &ir::Program,
    args: &[String],
    idx: usize,
) -> Result<ct_ir::instr::ProcId, Box<dyn std::error::Error>> {
    let name = args.get(idx).ok_or("missing procedure name")?;
    program
        .proc_id(name)
        .ok_or_else(|| format!("no procedure named `{name}`").into())
}

fn cmd_compile(args: &[String]) -> CmdResult {
    let program = load(args)?;
    print!("{}", dump_program(&program));
    println!(
        "\n{} procs, {} instructions, {} bytes RAM",
        program.procs.len(),
        program.instr_count(),
        program.ram_bytes()
    );
    for p in &program.procs {
        if !p.counted_loops.is_empty() {
            let loops: Vec<String> = p
                .counted_loops
                .iter()
                .map(|(b, k)| format!("{b}×{k}"))
                .collect();
            println!("counted loops in {}: {}", p.name, loops.join(", "));
        }
    }
    Ok(())
}

fn cmd_dot(args: &[String]) -> CmdResult {
    let program = load(args)?;
    match args.get(1) {
        Some(name) => {
            let pid = program
                .proc_id(name)
                .ok_or_else(|| format!("no procedure named `{name}`"))?;
            println!("{}", to_dot(&program.proc(pid).cfg));
        }
        None => {
            for p in &program.procs {
                println!("{}", to_dot(&p.cfg));
            }
        }
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> CmdResult {
    let program = load(args)?;
    let pid = proc_id(&program, args, 1)?;
    let n: usize = args.get(2).map(|s| s.parse()).transpose()?.unwrap_or(1);
    if !program.proc(pid).params.is_empty() {
        return Err("ctc run only drives parameterless procedures".into());
    }
    let mut mote = Mote::new(program, Box::new(AvrCost));
    mote.devices.adc = Box::new(UniformAdc { lo: 0, hi: 1023 });
    let start = mote.cycles;
    let mut last = None;
    for _ in 0..n {
        last = mote.call(pid, &[], &mut NullProfiler)?;
    }
    println!("ran {n} invocation(s) in {} cycles", mote.cycles - start);
    if let Some(v) = last {
        println!("last result: {v}");
    }
    println!(
        "leds: {:?}  radio sent: {} packet(s)",
        mote.devices.leds.state,
        mote.devices.radio.sent.len()
    );
    Ok(())
}

fn cmd_estimate(args: &[String]) -> CmdResult {
    let program = load(args)?;
    let pid = proc_id(&program, args, 1)?;
    let n: usize = args.get(2).map(|s| s.parse()).transpose()?.unwrap_or(2000);
    let cpt: u64 = args.get(3).map(|s| s.parse()).transpose()?.unwrap_or(8);
    if !program.proc(pid).params.is_empty() {
        return Err("ctc estimate only drives parameterless procedures".into());
    }

    let mut mote = Mote::new(program.clone(), Box::new(AvrCost));
    mote.devices.adc = Box::new(UniformAdc { lo: 0, hi: 1023 });
    let timer = VirtualTimer::new(cpt);
    let mut truth = GroundTruthProfiler::new(&program);
    let mut timing = TimingProfiler::new(&program, timer, 0);
    for _ in 0..n {
        let mut pair = PairProfiler {
            a: &mut truth,
            b: &mut timing,
        };
        mote.call(pid, &[], &mut pair)?;
    }

    let proc = program.proc(pid);
    let samples = TimingSamples::new(timing.samples(pid).to_vec(), cpt);
    let bc = mote.static_block_costs(pid);
    let ec = mote.static_edge_costs(pid);

    let (probs, method) = if proc.counted_loops.is_empty() {
        let e = estimate(&proc.cfg, bc, ec, &samples, EstimateOptions::default())?;
        (e.probs, e.method.to_string())
    } else {
        match estimate_unrolled(
            &proc.cfg,
            &proc.counted_loops,
            bc,
            ec,
            &samples,
            Default::default(),
        ) {
            Ok(u) => (u.probs, "em+unroll".to_string()),
            Err(_) => {
                let e = estimate(&proc.cfg, bc, ec, &samples, EstimateOptions::default())?;
                (e.probs, e.method.to_string())
            }
        }
    };

    println!(
        "estimated `{}` from {n} samples at {cpt} cycles/tick ({method}):\n",
        proc.name
    );
    let true_probs = truth.branch_probs(pid, &proc.cfg);
    print!(
        "{}",
        code_tomography::core::report::branch_table(&proc.cfg, &probs, &true_probs)
    );
    Ok(())
}

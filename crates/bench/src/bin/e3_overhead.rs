//! E3 — Profiling overhead comparison (Table).
//!
//! Claim evaluated: entry/exit timestamps cost far less than conventional
//! instrumentation on all three mote-relevant axes: cycles, RAM, flash.

use ct_bench::{f2, write_result, Table};
use ct_mote::timer::VirtualTimer;
use ct_mote::trace::{NullProfiler, TimingProfiler};
use ct_pipeline::{run_with_profiler, EnvConfig, RunConfig};
use ct_profilers::ball_larus::BallLarusProfiler;
use ct_profilers::edge_counter::EdgeCounterProfiler;
use ct_profilers::overhead::tomography;
use ct_profilers::sampling::SamplingProfiler;

fn main() {
    let env = EnvConfig::load();
    eprintln!("e3: {}", env.banner());
    let n = env.pick(2_000, 300);
    let seed = env.seed_or(3_000);
    let mut table = Table::new(vec![
        "app",
        "approach",
        "cycles +%",
        "ram B",
        "flash B",
        "exact?",
    ]);

    let apps = ct_apps::all_apps();
    let apps = &apps[..env.pick(apps.len(), 2)];
    for app in apps {
        let program = app.compile();
        let config = RunConfig::for_app(app.clone()).invocations(n).seeded(seed);
        let replay = |profiler: &mut dyn ct_mote::trace::Profiler| {
            run_with_profiler(&config, profiler).expect("bundled apps must not trap")
        };
        let base = replay(&mut NullProfiler);

        // Code Tomography: a timestamp at every proc entry/exit.
        let mut tp = TimingProfiler::new(
            &program,
            VirtualTimer::khz32_at_8mhz(),
            tomography::TIMESTAMP_CYCLES,
        );
        let tomo = replay(&mut tp);

        let mut ec = EdgeCounterProfiler::new(&program);
        let edges = replay(&mut ec);

        let mut bl = BallLarusProfiler::new(&program);
        let ball = replay(&mut bl);

        let mut sp = SamplingProfiler::new(&program, 1009);
        let sampling = replay(&mut sp);

        let pct = |cycles: u64| f2((cycles as f64 - base as f64) / base as f64 * 100.0);
        let rows: Vec<(&str, String, u32, u32, &str)> = vec![
            (
                "tomography",
                pct(tomo),
                tomography::ram_bytes(&program),
                tomography::flash_bytes(&program),
                "estimated",
            ),
            (
                "edge-counters",
                pct(edges),
                EdgeCounterProfiler::ram_bytes(&program),
                EdgeCounterProfiler::flash_bytes(&program),
                "exact",
            ),
            (
                "ball-larus",
                pct(ball),
                bl.ram_bytes(&program),
                bl.flash_bytes(&program),
                "exact",
            ),
            (
                "sampling",
                pct(sampling),
                SamplingProfiler::ram_bytes(&program),
                SamplingProfiler::flash_bytes(&program),
                "approx",
            ),
        ];
        for (name, pct, ram, flash, exact) in rows {
            table.row(vec![
                app.name.to_string(),
                name.to_string(),
                pct,
                ram.to_string(),
                flash.to_string(),
                exact.to_string(),
            ]);
        }
        eprintln!("e3: {} done", app.name);
    }

    let out = format!(
        "# E3 — Profiling overhead: runtime cycles, RAM, flash\n\n\
         {n} target invocations per app; AVR cost model; sampling period 1009 cycles;\n\
         tomography timestamps cost {} cycles each.\n\
         {}\n\n{}",
        tomography::TIMESTAMP_CYCLES,
        env.banner(),
        table.to_markdown()
    );
    println!("{out}");
    if !env.smoke {
        write_result("e3_overhead.md", &out);
    }
}

//! Structural decomposition of reducible, single-exit CFGs into a region
//! tree.
//!
//! Code Tomography's duration model is compositional: sequences convolve,
//! branches mix, loops repeat geometrically. That composition needs the
//! program's *structure*, not just its graph. NLC has no `goto`, so every
//! lowered procedure is structured; this module recovers the structure tree
//! from the graph (so estimators work from the CFG alone, exactly as the
//! paper's tooling works from compiled binaries), and cleanly rejects
//! irreducible or unstructured graphs, which fall back to the
//! method-of-moments estimator.

use crate::dominators::Dominators;
use crate::graph::{BlockId, Cfg, Terminator};
use crate::loops::{is_reducible, LoopForest};
use std::error::Error;
use std::fmt;

/// A node of the structure tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Region {
    /// A single basic block (no control decision of its own).
    Block(BlockId),
    /// Regions executed one after another.
    Seq(Vec<Region>),
    /// Two-way conditional. `cond` is the branching block; either arm may be
    /// an empty `Seq` (an `if` without `else`).
    IfElse {
        /// The block whose terminator decides the branch.
        cond: BlockId,
        /// Region executed when the branch condition is true.
        then_arm: Box<Region>,
        /// Region executed when the branch condition is false.
        else_arm: Box<Region>,
    },
    /// A header-controlled (`while`-style) loop. The header's branch decides
    /// between one more `body` execution and the loop exit.
    Loop {
        /// The loop header block.
        header: BlockId,
        /// True when the header's *true* edge continues the loop.
        continue_on_true: bool,
        /// The loop body (excludes the header; ends with the latch).
        body: Box<Region>,
    },
}

impl Region {
    /// All blocks mentioned by this region, in traversal order.
    pub fn blocks(&self) -> Vec<BlockId> {
        let mut out = Vec::new();
        self.collect_blocks(&mut out);
        out
    }

    fn collect_blocks(&self, out: &mut Vec<BlockId>) {
        match self {
            Region::Block(b) => out.push(*b),
            Region::Seq(items) => {
                for r in items {
                    r.collect_blocks(out);
                }
            }
            Region::IfElse {
                cond,
                then_arm,
                else_arm,
            } => {
                out.push(*cond);
                then_arm.collect_blocks(out);
                else_arm.collect_blocks(out);
            }
            Region::Loop { header, body, .. } => {
                out.push(*header);
                body.collect_blocks(out);
            }
        }
    }

    /// All decision blocks (branch conditions and loop headers) in traversal
    /// order.
    pub fn decision_blocks(&self) -> Vec<BlockId> {
        let mut out = Vec::new();
        self.collect_decisions(&mut out);
        out
    }

    fn collect_decisions(&self, out: &mut Vec<BlockId>) {
        match self {
            Region::Block(_) => {}
            Region::Seq(items) => {
                for r in items {
                    r.collect_decisions(out);
                }
            }
            Region::IfElse {
                cond,
                then_arm,
                else_arm,
            } => {
                out.push(*cond);
                then_arm.collect_decisions(out);
                else_arm.collect_decisions(out);
            }
            Region::Loop { header, body, .. } => {
                out.push(*header);
                body.collect_decisions(out);
            }
        }
    }

    /// Number of decision blocks in the region tree.
    pub fn decision_count(&self) -> usize {
        self.decision_blocks().len()
    }
}

/// Why a CFG could not be decomposed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StructureError {
    /// The graph failed [`Cfg::validate`].
    Invalid(String),
    /// The graph has retreating edges that are not natural-loop back edges.
    Irreducible,
    /// The graph has more than one return block.
    MultipleExits {
        /// How many return blocks were found.
        count: usize,
    },
    /// A shape the matcher does not recognize (e.g. a branch arm that jumps
    /// into the middle of the other arm).
    Unstructured {
        /// Where the matcher gave up.
        at: BlockId,
    },
    /// A loop whose shape is not header-controlled (e.g. multiple latches).
    UnsupportedLoop {
        /// The offending loop's header.
        header: BlockId,
    },
}

impl fmt::Display for StructureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StructureError::Invalid(msg) => write!(f, "invalid control-flow graph: {msg}"),
            StructureError::Irreducible => write!(f, "control-flow graph is irreducible"),
            StructureError::MultipleExits { count } => {
                write!(
                    f,
                    "structural analysis requires a single exit, found {count}"
                )
            }
            StructureError::Unstructured { at } => {
                write!(f, "unstructured control flow at block {at}")
            }
            StructureError::UnsupportedLoop { header } => {
                write!(f, "unsupported loop shape at header {header}")
            }
        }
    }
}

impl Error for StructureError {}

/// Decomposes a validated, reducible, single-exit CFG into a [`Region`] tree.
///
/// # Errors
///
/// Returns a [`StructureError`] describing why decomposition failed; callers
/// (the estimator front end) fall back to moment matching in that case.
///
/// # Examples
///
/// ```
/// use ct_cfg::builder::while_loop;
/// use ct_cfg::structure::{decompose, Region};
/// let tree = decompose(&while_loop()).unwrap();
/// // entry block, the loop, exit block.
/// match tree {
///     Region::Seq(items) => assert_eq!(items.len(), 3),
///     other => panic!("expected Seq, got {other:?}"),
/// }
/// ```
pub fn decompose(cfg: &Cfg) -> Result<Region, StructureError> {
    cfg.validate()
        .map_err(|e| StructureError::Invalid(e.to_string()))?;
    if !is_reducible(cfg) {
        return Err(StructureError::Irreducible);
    }
    let exits = cfg.exit_blocks();
    if exits.len() != 1 {
        return Err(StructureError::MultipleExits { count: exits.len() });
    }
    let dom = Dominators::compute(cfg);
    let loops = LoopForest::compute_with(cfg, &dom);
    let pdom = PostDominators::compute(cfg);
    let mut d = Decomposer {
        cfg,
        loops: &loops,
        pdom: &pdom,
    };
    // The outermost region runs from the entry until falling off the end
    // (stop = None means "until Return").
    let region = d.parse_seq(cfg.entry(), None)?;
    Ok(region)
}

struct Decomposer<'a> {
    cfg: &'a Cfg,
    loops: &'a LoopForest,
    pdom: &'a PostDominators,
}

impl<'a> Decomposer<'a> {
    /// Parses the region starting at `start` and ending just before `stop`
    /// (or at a `Return` when `stop` is `None`). Returns a `Seq`, possibly of
    /// a single item.
    fn parse_seq(
        &mut self,
        start: BlockId,
        stop: Option<BlockId>,
    ) -> Result<Region, StructureError> {
        let mut items = Vec::new();
        let mut cur = start;
        let mut guard = 0usize;
        loop {
            if Some(cur) == stop {
                break;
            }
            guard += 1;
            if guard > self.cfg.len() * 4 + 16 {
                // A cycle the matcher failed to consume as a loop.
                return Err(StructureError::Unstructured { at: cur });
            }

            // Loop header? Consume the whole loop as one item.
            if let Some(li) = self.loop_headed_at(cur) {
                let (region, exit) = self.parse_loop(cur, li)?;
                items.push(region);
                if Some(exit) == stop {
                    break;
                }
                cur = exit;
                continue;
            }

            match self.cfg.block(cur).term {
                Terminator::Return => {
                    items.push(Region::Block(cur));
                    if stop.is_some() {
                        // A return before reaching the expected stop block.
                        return Err(StructureError::Unstructured { at: cur });
                    }
                    break;
                }
                Terminator::Jump(t) => {
                    items.push(Region::Block(cur));
                    cur = t;
                }
                Terminator::Branch { on_true, on_false } => {
                    let join = self
                        .pdom
                        .ipdom(cur)
                        .ok_or(StructureError::Unstructured { at: cur })?;
                    let then_arm = if on_true == join {
                        Region::Seq(vec![])
                    } else {
                        self.parse_seq(on_true, Some(join))?
                    };
                    let else_arm = if on_false == join {
                        Region::Seq(vec![])
                    } else {
                        self.parse_seq(on_false, Some(join))?
                    };
                    items.push(Region::IfElse {
                        cond: cur,
                        then_arm: Box::new(then_arm),
                        else_arm: Box::new(else_arm),
                    });
                    cur = join;
                }
            }
        }
        Ok(Region::Seq(items))
    }

    /// If `b` heads a natural loop, returns the loop's index.
    fn loop_headed_at(&self, b: BlockId) -> Option<usize> {
        self.loops.loops().iter().position(|l| l.header == b)
    }

    /// Parses a header-controlled loop; returns the loop region and the block
    /// control continues at after the loop exits.
    fn parse_loop(
        &mut self,
        header: BlockId,
        li: usize,
    ) -> Result<(Region, BlockId), StructureError> {
        let l = &self.loops.loops()[li];
        let Terminator::Branch { on_true, on_false } = self.cfg.block(header).term else {
            return Err(StructureError::UnsupportedLoop { header });
        };
        let true_in = l.contains(on_true);
        let false_in = l.contains(on_false);
        let (body_start, exit, continue_on_true) = match (true_in, false_in) {
            (true, false) => (on_true, on_false, true),
            (false, true) => (on_false, on_true, false),
            _ => return Err(StructureError::UnsupportedLoop { header }),
        };
        if l.latches.len() != 1 {
            return Err(StructureError::UnsupportedLoop { header });
        }
        // The body runs from body_start back to the header.
        let body = self.parse_seq(body_start, Some(header))?;
        Ok((
            Region::Loop {
                header,
                continue_on_true,
                body: Box::new(body),
            },
            exit,
        ))
    }
}

/// Immediate postdominators, computed on the reversed graph with a virtual
/// exit joining all `Return` blocks.
#[derive(Debug, Clone)]
pub struct PostDominators {
    /// `ipdom[b]`: immediate postdominator; `None` when `b`'s only
    /// postdominator is the virtual exit.
    ipdom: Vec<Option<BlockId>>,
}

impl PostDominators {
    /// Computes postdominators for every block of `cfg`.
    pub fn compute(cfg: &Cfg) -> PostDominators {
        let n = cfg.len();
        let virtual_exit = n; // index of the virtual exit in the reversed graph
                              // Reversed adjacency: rsucc[b] = predecessors of b in reverse graph = successors in cfg... careful:
                              // In the reversed graph, the "successors" of b are cfg's predecessors of b,
                              // and the entry is the virtual exit.
        let mut rev_succ: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        let mut rev_pred: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        for (id, b) in cfg.iter() {
            for s in b.term.successors() {
                // cfg edge id->s becomes reversed edge s->id
                rev_succ[s.index()].push(id.index());
                rev_pred[id.index()].push(s.index());
            }
            if matches!(b.term, Terminator::Return) {
                rev_succ[virtual_exit].push(id.index());
                rev_pred[id.index()].push(virtual_exit);
            }
        }

        // Reverse postorder DFS from the virtual exit over rev_succ.
        let mut visited = vec![false; n + 1];
        let mut postorder = Vec::with_capacity(n + 1);
        let mut stack: Vec<(usize, usize)> = vec![(virtual_exit, 0)];
        visited[virtual_exit] = true;
        while let Some(&mut (node, ref mut child)) = stack.last_mut() {
            if *child < rev_succ[node].len() {
                let next = rev_succ[node][*child];
                *child += 1;
                if !visited[next] {
                    visited[next] = true;
                    stack.push((next, 0));
                }
            } else {
                postorder.push(node);
                stack.pop();
            }
        }
        postorder.reverse();
        let mut rpo_pos = vec![usize::MAX; n + 1];
        for (i, &b) in postorder.iter().enumerate() {
            rpo_pos[b] = i;
        }

        let mut idom: Vec<Option<usize>> = vec![None; n + 1];
        idom[virtual_exit] = Some(virtual_exit);
        let intersect = |idom: &[Option<usize>], mut a: usize, mut b: usize| -> usize {
            while a != b {
                while rpo_pos[a] > rpo_pos[b] {
                    a = idom[a].expect("processed");
                }
                while rpo_pos[b] > rpo_pos[a] {
                    b = idom[b].expect("processed");
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in postorder.iter().skip(1) {
                let mut new_idom: Option<usize> = None;
                for &p in &rev_pred[b] {
                    if idom[p].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b] != Some(ni) {
                        idom[b] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        let ipdom = (0..n)
            .map(|b| match idom[b] {
                Some(d) if d < n => Some(BlockId(d as u32)),
                _ => None,
            })
            .collect();
        PostDominators { ipdom }
    }

    /// Immediate postdominator of `b`; `None` when it is the virtual exit
    /// (i.e. `b` is a return block, or every path from `b` returns
    /// immediately).
    pub fn ipdom(&self, b: BlockId) -> Option<BlockId> {
        self.ipdom[b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{diamond, diamond_chain, irreducible, linear, nested_loops, while_loop};

    #[test]
    fn linear_decomposes_to_block_seq() {
        let tree = decompose(&linear(3)).unwrap();
        match tree {
            Region::Seq(items) => {
                assert_eq!(items.len(), 3);
                assert!(items.iter().all(|r| matches!(r, Region::Block(_))));
            }
            other => panic!("expected Seq, got {other:?}"),
        }
    }

    #[test]
    fn diamond_decomposes_to_if_else() {
        let tree = decompose(&diamond()).unwrap();
        let Region::Seq(items) = tree else { panic!() };
        assert_eq!(items.len(), 2); // the IfElse, then the join block
        let Region::IfElse {
            cond,
            then_arm,
            else_arm,
        } = &items[0]
        else {
            panic!("expected IfElse, got {:?}", items[0])
        };
        assert_eq!(*cond, BlockId(0));
        assert_eq!(then_arm.blocks(), vec![BlockId(1)]);
        assert_eq!(else_arm.blocks(), vec![BlockId(2)]);
    }

    #[test]
    fn while_loop_decomposes() {
        let tree = decompose(&while_loop()).unwrap();
        let Region::Seq(items) = tree else { panic!() };
        assert_eq!(items.len(), 3); // entry, Loop, exit
        let Region::Loop {
            header,
            continue_on_true,
            body,
        } = &items[1]
        else {
            panic!("expected Loop, got {:?}", items[1])
        };
        assert_eq!(*header, BlockId(1));
        assert!(*continue_on_true);
        assert_eq!(body.blocks(), vec![BlockId(2)]);
    }

    #[test]
    fn nested_loops_decompose() {
        let tree = decompose(&nested_loops()).unwrap();
        let decisions = tree.decision_blocks();
        assert_eq!(decisions, vec![BlockId(1), BlockId(2)]);
        // Outer loop body contains the inner loop.
        let Region::Seq(items) = &tree else { panic!() };
        let Region::Loop {
            body: outer_body, ..
        } = &items[1]
        else {
            panic!()
        };
        let Region::Seq(inner_items) = outer_body.as_ref() else {
            panic!()
        };
        assert!(inner_items.iter().any(|r| matches!(r, Region::Loop { .. })));
    }

    #[test]
    fn diamond_chain_decision_count() {
        for k in 1..5 {
            let tree = decompose(&diamond_chain(k)).unwrap();
            assert_eq!(tree.decision_count(), k);
        }
    }

    #[test]
    fn irreducible_rejected() {
        assert_eq!(decompose(&irreducible()), Err(StructureError::Irreducible));
    }

    #[test]
    fn multiple_exits_rejected() {
        use crate::graph::{Cfg, Terminator};
        let mut cfg = Cfg::new("two_exits");
        let e = cfg.add_block("entry", Terminator::Return);
        let a = cfg.add_block("a", Terminator::Return);
        let b = cfg.add_block("b", Terminator::Return);
        cfg.set_terminator(
            e,
            Terminator::Branch {
                on_true: a,
                on_false: b,
            },
        );
        assert_eq!(
            decompose(&cfg),
            Err(StructureError::MultipleExits { count: 2 })
        );
    }

    #[test]
    fn region_blocks_cover_cfg() {
        let cfg = nested_loops();
        let tree = decompose(&cfg).unwrap();
        let mut blocks = tree.blocks();
        blocks.sort();
        blocks.dedup();
        assert_eq!(blocks.len(), cfg.len());
    }

    #[test]
    fn postdominators_of_diamond() {
        let cfg = diamond();
        let pdom = PostDominators::compute(&cfg);
        assert_eq!(pdom.ipdom(BlockId(0)), Some(BlockId(3)));
        assert_eq!(pdom.ipdom(BlockId(1)), Some(BlockId(3)));
        assert_eq!(pdom.ipdom(BlockId(2)), Some(BlockId(3)));
        assert_eq!(pdom.ipdom(BlockId(3)), None);
    }

    #[test]
    fn if_without_else_decomposes_with_empty_arm() {
        use crate::graph::{Cfg, Terminator};
        // cond -(true)-> then -> join; cond -(false)-> join; join -> return
        let mut cfg = Cfg::new("if_then");
        let cond = cfg.add_block("cond", Terminator::Return);
        let then_b = cfg.add_block("then", Terminator::Return);
        let join = cfg.add_block("join", Terminator::Return);
        cfg.set_terminator(
            cond,
            Terminator::Branch {
                on_true: then_b,
                on_false: join,
            },
        );
        cfg.set_terminator(then_b, Terminator::Jump(join));
        let tree = decompose(&cfg).unwrap();
        let Region::Seq(items) = tree else { panic!() };
        let Region::IfElse { else_arm, .. } = &items[0] else {
            panic!()
        };
        assert_eq!(**else_arm, Region::Seq(vec![]));
    }

    #[test]
    fn structure_error_display() {
        assert!(StructureError::Irreducible
            .to_string()
            .contains("irreducible"));
        assert!(StructureError::MultipleExits { count: 3 }
            .to_string()
            .contains('3'));
    }
}

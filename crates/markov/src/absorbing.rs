//! Absorbing-chain analysis: fundamental matrix, expected visits, absorption
//! probabilities.
//!
//! A sensor procedure's execution is an absorbing chain: basic blocks are
//! transient states and the return block absorbs. The fundamental matrix
//! `N = (I − Q)⁻¹` gives expected visit counts, the quantity the paper's
//! estimators reconstruct from timing data.

use crate::chain::{ChainError, Dtmc};
use ct_stats::matrix::Matrix;
use ct_stats::solve::Lu;

/// Absorbing-chain decomposition of a [`Dtmc`].
#[derive(Debug, Clone)]
pub struct AbsorbingAnalysis {
    /// Transient state indices (original numbering), in order.
    transient: Vec<usize>,
    /// Absorbing state indices (original numbering), in order.
    absorbing: Vec<usize>,
    /// Fundamental matrix `N = (I − Q)⁻¹` over transient states.
    fundamental: Matrix,
    /// `R`: transient → absorbing one-step probabilities.
    r: Matrix,
}

impl AbsorbingAnalysis {
    /// Decomposes `chain` and computes its fundamental matrix.
    ///
    /// # Errors
    ///
    /// [`ChainError::NoAbsorbingStates`] when nothing absorbs, and
    /// [`ChainError::AbsorptionUnreachable`] when `(I − Q)` is singular —
    /// which happens exactly when some transient state cannot reach an
    /// absorbing state.
    pub fn new(chain: &Dtmc) -> Result<AbsorbingAnalysis, ChainError> {
        let absorbing = chain.absorbing_states();
        if absorbing.is_empty() {
            return Err(ChainError::NoAbsorbingStates);
        }
        let transient = chain.transient_states();
        if transient.is_empty() {
            // Degenerate: every state absorbs; represent with empty matrices
            // by special-casing all queries.
            return Ok(AbsorbingAnalysis {
                transient,
                absorbing,
                fundamental: Matrix::identity(1),
                r: Matrix::identity(1),
            });
        }
        let t = transient.len();
        let a = absorbing.len();
        let mut i_minus_q = Matrix::identity(t);
        let mut r = Matrix::zeros(t, a);
        for (ti, &si) in transient.iter().enumerate() {
            for (tj, &sj) in transient.iter().enumerate() {
                i_minus_q[(ti, tj)] -= chain.prob(si, sj);
            }
            for (aj, &sj) in absorbing.iter().enumerate() {
                r[(ti, aj)] = chain.prob(si, sj);
            }
        }
        let lu = Lu::factor(&i_minus_q).map_err(|_| {
            // Singular (I − Q): find a witness state that cannot reach
            // absorption to make the error actionable.
            let witness = transient
                .iter()
                .copied()
                .find(|&s| !can_reach_absorption(chain, s))
                .unwrap_or(transient[0]);
            ChainError::AbsorptionUnreachable { state: witness }
        })?;
        let fundamental = lu
            .inverse()
            .map_err(|e| ChainError::Numeric(e.to_string()))?;
        Ok(AbsorbingAnalysis {
            transient,
            absorbing,
            fundamental,
            r,
        })
    }

    /// The transient states, in the order used by matrix rows.
    pub fn transient(&self) -> &[usize] {
        &self.transient
    }

    /// The absorbing states.
    pub fn absorbing(&self) -> &[usize] {
        &self.absorbing
    }

    /// Expected number of visits to each state before absorption, starting
    /// from `start` (original numbering; absorbing states report 0 visits as
    /// transient-visit counts; the start itself counts its initial visit).
    /// Returns a vector over *all* states.
    ///
    /// # Panics
    ///
    /// Panics if `start` is out of range.
    pub fn expected_visits(&self, start: usize, n_states: usize) -> Vec<f64> {
        let mut out = vec![0.0; n_states];
        let Some(si) = self.transient.iter().position(|&s| s == start) else {
            // Starting absorbed: no transient visits.
            return out;
        };
        for (tj, &sj) in self.transient.iter().enumerate() {
            out[sj] = self.fundamental[(si, tj)];
        }
        out
    }

    /// Expected number of steps before absorption from `start` (each visit
    /// counts one step).
    pub fn expected_steps(&self, start: usize, n_states: usize) -> f64 {
        self.expected_visits(start, n_states).iter().sum()
    }

    /// Probability of being absorbed in each absorbing state, starting from
    /// `start`. Indexed parallel to [`Self::absorbing`].
    pub fn absorption_probs(&self, start: usize) -> Vec<f64> {
        let Some(si) = self.transient.iter().position(|&s| s == start) else {
            // Already absorbed.
            return self
                .absorbing
                .iter()
                .map(|&s| if s == start { 1.0 } else { 0.0 })
                .collect();
        };
        let b = &self.fundamental * &self.r;
        (0..self.absorbing.len()).map(|aj| b[(si, aj)]).collect()
    }
}

#[allow(clippy::needless_range_loop)]
fn can_reach_absorption(chain: &Dtmc, from: usize) -> bool {
    let n = chain.len();
    let mut seen = vec![false; n];
    let mut stack = vec![from];
    seen[from] = true;
    while let Some(s) = stack.pop() {
        if chain.is_absorbing_state(s) {
            return true;
        }
        for j in 0..n {
            if chain.prob(s, j) > 0.0 && !seen[j] {
                seen[j] = true;
                stack.push(j);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_stats::matrix::Matrix;

    /// Classic gambler-style chain: 0 → {0 stays w.p. 0, goes to 1 or 2}.
    fn simple() -> Dtmc {
        // state 0 transient: 0.5 → 1 (transient), 0.5 → 2 (absorbing)
        // state 1 transient: 1.0 → 2
        let p = Matrix::from_rows(&[&[0.0, 0.5, 0.5], &[0.0, 0.0, 1.0], &[0.0, 0.0, 1.0]]);
        Dtmc::new(p).unwrap()
    }

    #[test]
    fn expected_visits_match_hand_computation() {
        let chain = simple();
        let a = AbsorbingAnalysis::new(&chain).unwrap();
        let v = a.expected_visits(0, 3);
        assert!((v[0] - 1.0).abs() < 1e-12);
        assert!((v[1] - 0.5).abs() < 1e-12);
        assert_eq!(v[2], 0.0);
        assert!((a.expected_steps(0, 3) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn geometric_loop_visits() {
        // Loop state 0 repeats w.p. q, exits w.p. 1-q → expected visits 1/(1-q).
        let q = 0.75;
        let p = Matrix::from_rows(&[&[q, 1.0 - q], &[0.0, 1.0]]);
        let chain = Dtmc::new(p).unwrap();
        let a = AbsorbingAnalysis::new(&chain).unwrap();
        let v = a.expected_visits(0, 2);
        assert!((v[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn absorption_probs_split_correctly() {
        // 0 → 1 (abs) w.p. 0.3, → 2 (abs) w.p. 0.7.
        let p = Matrix::from_rows(&[&[0.0, 0.3, 0.7], &[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0]]);
        let chain = Dtmc::new(p).unwrap();
        let a = AbsorbingAnalysis::new(&chain).unwrap();
        let probs = a.absorption_probs(0);
        assert!((probs[0] - 0.3).abs() < 1e-12);
        assert!((probs[1] - 0.7).abs() < 1e-12);
    }

    #[test]
    fn no_absorbing_states_rejected() {
        let p = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let chain = Dtmc::new(p).unwrap();
        assert!(matches!(
            AbsorbingAnalysis::new(&chain),
            Err(ChainError::NoAbsorbingStates)
        ));
    }

    #[test]
    fn unreachable_absorption_detected() {
        // States 0,1 cycle forever; 2 absorbs but is unreachable from them.
        let p = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 0.0], &[0.0, 0.0, 1.0]]);
        let chain = Dtmc::new(p).unwrap();
        assert!(matches!(
            AbsorbingAnalysis::new(&chain),
            Err(ChainError::AbsorptionUnreachable { .. })
        ));
    }

    #[test]
    fn start_in_absorbing_state() {
        let chain = simple();
        let a = AbsorbingAnalysis::new(&chain).unwrap();
        assert_eq!(a.expected_visits(2, 3), vec![0.0, 0.0, 0.0]);
        assert_eq!(a.absorption_probs(2), vec![1.0]);
    }

    #[test]
    fn all_states_absorbing_degenerate() {
        let p = Matrix::identity(2);
        let chain = Dtmc::new(p).unwrap();
        let a = AbsorbingAnalysis::new(&chain).unwrap();
        assert_eq!(a.expected_visits(0, 2), vec![0.0, 0.0]);
    }
}

//! Code layout: the flash-memory order of basic blocks and its cost model.
//!
//! A [`Layout`] decides which successor of every conditional branch is the
//! fall-through. On mote MCUs with static predict-not-taken pipelines, a
//! *taken* conditional branch is a misprediction (pipeline bubble), and an
//! unconditional jump costs cycles that a fall-through would not. The same
//! accounting is used prospectively by `ct-placement` (to choose a layout
//! from a profile) and dynamically by `ct-mote` (to charge cycles during
//! simulation), so the optimizer and the machine always agree.

use crate::graph::{BlockId, Cfg, Terminator};
use crate::profile::EdgeProfile;

/// Extra-cycle parameters for control transfers under a concrete layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PenaltyModel {
    /// Extra cycles when a conditional branch is taken (static
    /// predict-not-taken misprediction / pipeline refill).
    pub taken_branch_extra: u64,
    /// Cycles of an unconditional jump instruction that the layout failed to
    /// elide.
    pub jump_cycles: u64,
}

impl PenaltyModel {
    /// AVR-class defaults: a taken branch costs one extra cycle on ATmega,
    /// and `rjmp` costs two cycles.
    pub fn avr() -> PenaltyModel {
        PenaltyModel {
            taken_branch_extra: 1,
            jump_cycles: 2,
        }
    }

    /// MSP430-class defaults: both taken conditional jumps and `jmp` cost two
    /// cycles versus zero for straight-line fetch.
    pub fn msp430() -> PenaltyModel {
        PenaltyModel {
            taken_branch_extra: 2,
            jump_cycles: 2,
        }
    }
}

impl Default for PenaltyModel {
    fn default() -> Self {
        PenaltyModel::avr()
    }
}

/// A static branch-prediction model: how the front end guesses a
/// conditional branch's direction before the condition resolves.
///
/// Mote-class MCUs have no dynamic predictor; what they do have is a fixed
/// rule baked into the pipeline. The two rules that occur in practice:
///
/// - [`BranchPredictor::AlwaysNotTaken`] — every conditional is predicted
///   to fall through, so every *taken* branch pays the refill penalty.
///   This is the rule both [`PenaltyModel`] presets charge for, and the
///   implicit model behind `branches_taken == mispredictions`.
/// - [`BranchPredictor::Btfnt`] — backward-taken/forward-not-taken: a
///   branch whose taken-target lies at or before it in flash is predicted
///   taken (loop back-edges usually are), a forward branch predicted not
///   taken.
///
/// The prediction keys off the *taken-target* of the machine branch, which
/// depends on the layout's polarity for the block — see
/// [`Layout::edge_transfers`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BranchPredictor {
    /// Predict every conditional branch not taken (fall through).
    #[default]
    AlwaysNotTaken,
    /// Predict taken iff the branch's taken-target is backward in layout.
    Btfnt,
}

impl BranchPredictor {
    /// Whether this model predicts a branch taken, given whether the
    /// branch's taken-target lies backward (at or before the branch) in
    /// the layout.
    pub fn predicts_taken(self, backward_target: bool) -> bool {
        match self {
            BranchPredictor::AlwaysNotTaken => false,
            BranchPredictor::Btfnt => backward_target,
        }
    }

    /// Whether an execution that resolved to `taken` mispredicts under
    /// this model.
    pub fn mispredicts(self, taken: bool, backward_target: bool) -> bool {
        taken != self.predicts_taken(backward_target)
    }

    /// Human-readable model name.
    pub fn name(self) -> &'static str {
        match self {
            BranchPredictor::AlwaysNotTaken => "always-not-taken",
            BranchPredictor::Btfnt => "btfnt",
        }
    }
}

/// A permutation of a procedure's blocks — their flash order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    order: Vec<BlockId>,
    /// position[b] = index of block b within `order`.
    position: Vec<usize>,
}

impl Layout {
    /// The layout that keeps blocks in id order (the "original" compiler
    /// output before placement optimization).
    pub fn natural(cfg: &Cfg) -> Layout {
        Layout::from_order(cfg, cfg.block_ids().collect()).expect("identity order is valid")
    }

    /// Builds a layout from an explicit block order.
    ///
    /// Returns `None` unless `order` is a permutation of the blocks of `cfg`
    /// starting with the entry block (the entry must be first: the caller
    /// jumps to the procedure's first flash address).
    pub fn from_order(cfg: &Cfg, order: Vec<BlockId>) -> Option<Layout> {
        if order.len() != cfg.len() {
            return None;
        }
        if order.first() != Some(&cfg.entry()) {
            return None;
        }
        let mut position = vec![usize::MAX; cfg.len()];
        for (i, b) in order.iter().enumerate() {
            if b.index() >= cfg.len() || position[b.index()] != usize::MAX {
                return None;
            }
            position[b.index()] = i;
        }
        Some(Layout { order, position })
    }

    /// The block order.
    pub fn order(&self) -> &[BlockId] {
        &self.order
    }

    /// Flash position of `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range for this layout.
    pub fn position(&self, b: BlockId) -> usize {
        self.position[b.index()]
    }

    /// The block physically following `b`, if any.
    pub fn next_in_layout(&self, b: BlockId) -> Option<BlockId> {
        let p = self.position(b);
        self.order.get(p + 1).copied()
    }

    /// Extra cycles charged when control flows along `from → to` given this
    /// layout: `0` for fall-throughs, the taken penalty for taken branches,
    /// the jump cost for materialized jumps. See [`Layout::transfer_kind`].
    pub fn transfer_cost(
        &self,
        cfg: &Cfg,
        penalties: &PenaltyModel,
        from: BlockId,
        to: BlockId,
    ) -> u64 {
        match self.transfer_kind(cfg, from, to) {
            TransferKind::FallThrough => 0,
            TransferKind::TakenBranch => penalties.taken_branch_extra,
            TransferKind::Jump => penalties.jump_cycles,
            TransferKind::TakenBranchOverJump => penalties.taken_branch_extra,
        }
    }

    /// Classifies the machine-level transfer realizing CFG edge `from → to`
    /// under this layout.
    ///
    /// For a conditional branch with successors `(t, f)`:
    /// - if `f` is next in layout: `t` is a taken branch, `f` falls through;
    /// - if `t` is next in layout: the condition is inverted, so `f` is a
    ///   taken branch and `t` falls through;
    /// - otherwise the compiler emits `brcond t; jmp f`: the `t` edge is a
    ///   taken branch over the jump, and the `f` edge pays the jump.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a successor of `from`.
    pub fn transfer_kind(&self, cfg: &Cfg, from: BlockId, to: BlockId) -> TransferKind {
        let next = self.next_in_layout(from);
        match cfg.block(from).term {
            Terminator::Jump(t) => {
                assert_eq!(t, to, "to must be a successor of from");
                if next == Some(t) {
                    TransferKind::FallThrough
                } else {
                    TransferKind::Jump
                }
            }
            Terminator::Branch { on_true, on_false } => {
                assert!(
                    to == on_true || to == on_false,
                    "to must be a successor of from"
                );
                if next == Some(on_false) {
                    if to == on_true {
                        TransferKind::TakenBranch
                    } else {
                        TransferKind::FallThrough
                    }
                } else if next == Some(on_true) {
                    // Inverted polarity.
                    if to == on_false {
                        TransferKind::TakenBranch
                    } else {
                        TransferKind::FallThrough
                    }
                } else {
                    // Neither successor adjacent: brcond t; jmp f.
                    if to == on_true {
                        TransferKind::TakenBranchOverJump
                    } else {
                        TransferKind::Jump
                    }
                }
            }
            Terminator::Return => panic!("return block has no successors"),
        }
    }

    /// Classifies every CFG edge's machine-level transfer under this layout,
    /// indexed by [`Cfg::edges`] order — the per-edge facts both the virtual
    /// PMU and the predictor-aware cost evaluators consume.
    ///
    /// For a conditional branch the *taken-target* depends on the polarity
    /// the layout forces (see [`Layout::transfer_kind`]): the successor that
    /// is **not** the fall-through is the target the machine branch jumps to.
    /// When neither successor is adjacent (`brcond t; jmp f`), the machine
    /// conditional targets `t` and the false edge rides the jump with the
    /// conditional *not* taken.
    pub fn edge_transfers(&self, cfg: &Cfg) -> Vec<EdgeTransfer> {
        cfg.edges()
            .iter()
            .map(|e| {
                let kind = self.transfer_kind(cfg, e.from, e.to);
                match cfg.block(e.from).term {
                    Terminator::Branch { on_true, on_false } => {
                        let next = self.next_in_layout(e.from);
                        let taken_target = if next == Some(on_false) {
                            on_true
                        } else if next == Some(on_true) {
                            // Inverted polarity: the machine branch jumps to
                            // the false successor.
                            on_false
                        } else {
                            // brcond t; jmp f.
                            on_true
                        };
                        EdgeTransfer {
                            kind,
                            conditional: true,
                            taken: e.to == taken_target && kind != TransferKind::Jump,
                            backward_target: self.position(taken_target) <= self.position(e.from),
                        }
                    }
                    _ => EdgeTransfer {
                        kind,
                        conditional: false,
                        taken: false,
                        backward_target: false,
                    },
                }
            })
            .collect()
    }

    /// Evaluates this layout against an edge profile: total extra cycles and
    /// the conditional-branch misprediction statistics, under the
    /// [`BranchPredictor::AlwaysNotTaken`] model (both MCU presets' penalty
    /// semantics). See [`Layout::evaluate_under`] for other predictors.
    pub fn evaluate(
        &self,
        cfg: &Cfg,
        profile: &EdgeProfile,
        penalties: &PenaltyModel,
    ) -> LayoutCost {
        self.evaluate_under(cfg, profile, penalties, BranchPredictor::AlwaysNotTaken)
    }

    /// Evaluates this layout against an edge profile with an explicit
    /// predictor model deciding which conditional executions mispredict.
    ///
    /// The penalty arithmetic (`extra_cycles`) always charges the
    /// taken-branch penalty — that is what the layout costs on the machine;
    /// the predictor only attributes `mispredicted`.
    pub fn evaluate_under(
        &self,
        cfg: &Cfg,
        profile: &EdgeProfile,
        penalties: &PenaltyModel,
        predictor: BranchPredictor,
    ) -> LayoutCost {
        let mut cost = LayoutCost::default();
        for (e, t) in cfg.edges().iter().zip(self.edge_transfers(cfg)) {
            let n = profile.count(e.index);
            if n == 0 {
                continue;
            }
            match t.kind {
                TransferKind::FallThrough => {}
                TransferKind::TakenBranch | TransferKind::TakenBranchOverJump => {
                    cost.extra_cycles += n * penalties.taken_branch_extra;
                }
                TransferKind::Jump => {
                    cost.jumps_executed += n;
                    cost.extra_cycles += n * penalties.jump_cycles;
                }
            }
            if t.conditional {
                if t.taken {
                    cost.branches_taken += n;
                } else {
                    cost.branches_not_taken += n;
                }
                if predictor.mispredicts(t.taken, t.backward_target) {
                    cost.mispredicted += n;
                }
            }
        }
        cost
    }
}

/// The machine-level facts of one CFG edge under a concrete layout: what
/// instruction realizes it and how a static predictor sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeTransfer {
    /// The transfer realizing the edge.
    pub kind: TransferKind,
    /// The source block ends in a conditional branch.
    pub conditional: bool,
    /// Control following this edge takes the machine conditional branch
    /// (always `false` for unconditional sources and for the false edge of
    /// a both-ways-displaced branch, which falls through into the jump).
    pub taken: bool,
    /// The machine branch's taken-target lies at or before the branch in
    /// layout order (what [`BranchPredictor::Btfnt`] keys off).
    pub backward_target: bool,
}

/// Machine-level realization of a CFG edge under a layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferKind {
    /// Straight-line fetch continues; no extra cost.
    FallThrough,
    /// A conditional branch that is taken (mispredicted under static
    /// not-taken prediction).
    TakenBranch,
    /// A conditional branch taken over a materialized `jmp` (branch target
    /// displaced).
    TakenBranchOverJump,
    /// An executed unconditional jump.
    Jump,
}

/// Aggregate cost of running a profile under a layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LayoutCost {
    /// Conditional branch executions that were taken.
    pub branches_taken: u64,
    /// Conditional branch executions that fell through.
    pub branches_not_taken: u64,
    /// Unconditional jumps executed (not elided by adjacency).
    pub jumps_executed: u64,
    /// Total extra cycles versus an ideal all-fall-through layout.
    pub extra_cycles: u64,
    /// Conditional executions the evaluating [`BranchPredictor`] got wrong.
    /// Equal to `branches_taken` under
    /// [`BranchPredictor::AlwaysNotTaken`] (the default evaluator).
    pub mispredicted: u64,
}

impl LayoutCost {
    /// Fraction of conditional branch executions the predictor got wrong;
    /// `0.0` when no conditional branches executed.
    pub fn misprediction_rate(&self) -> f64 {
        let total = self.branches_taken + self.branches_not_taken;
        if total == 0 {
            0.0
        } else {
            self.mispredicted as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{diamond, linear};

    #[test]
    fn natural_layout_is_identity() {
        let cfg = diamond();
        let l = Layout::natural(&cfg);
        assert_eq!(l.order(), &[BlockId(0), BlockId(1), BlockId(2), BlockId(3)]);
        assert_eq!(l.position(BlockId(2)), 2);
    }

    #[test]
    fn from_order_rejects_non_permutations() {
        let cfg = diamond();
        assert!(Layout::from_order(&cfg, vec![BlockId(0), BlockId(1)]).is_none());
        assert!(
            Layout::from_order(&cfg, vec![BlockId(0), BlockId(1), BlockId(1), BlockId(3)])
                .is_none()
        );
        // Entry must come first.
        assert!(
            Layout::from_order(&cfg, vec![BlockId(1), BlockId(0), BlockId(2), BlockId(3)])
                .is_none()
        );
    }

    #[test]
    fn linear_natural_layout_is_all_fallthrough() {
        let cfg = linear(4);
        let l = Layout::natural(&cfg);
        for e in cfg.edges() {
            assert_eq!(
                l.transfer_kind(&cfg, e.from, e.to),
                TransferKind::FallThrough
            );
        }
    }

    #[test]
    fn diamond_natural_layout_classification() {
        let cfg = diamond();
        let l = Layout::natural(&cfg);
        // Order: cond, then, else, join.
        // cond: next is then (= on_true) → inverted polarity: true falls
        // through, false is a taken branch.
        assert_eq!(
            l.transfer_kind(&cfg, BlockId(0), BlockId(1)),
            TransferKind::FallThrough
        );
        assert_eq!(
            l.transfer_kind(&cfg, BlockId(0), BlockId(2)),
            TransferKind::TakenBranch
        );
        // then → join: else intervenes, so the jump is materialized.
        assert_eq!(
            l.transfer_kind(&cfg, BlockId(1), BlockId(3)),
            TransferKind::Jump
        );
        // else → join: adjacent, elided.
        assert_eq!(
            l.transfer_kind(&cfg, BlockId(2), BlockId(3)),
            TransferKind::FallThrough
        );
    }

    #[test]
    fn displaced_branch_uses_branch_over_jump() {
        let cfg = diamond();
        // Order: cond, join, then, else — neither successor adjacent to cond.
        let l =
            Layout::from_order(&cfg, vec![BlockId(0), BlockId(3), BlockId(1), BlockId(2)]).unwrap();
        assert_eq!(
            l.transfer_kind(&cfg, BlockId(0), BlockId(1)),
            TransferKind::TakenBranchOverJump
        );
        assert_eq!(
            l.transfer_kind(&cfg, BlockId(0), BlockId(2)),
            TransferKind::Jump
        );
    }

    #[test]
    fn evaluate_counts_mispredictions() {
        let cfg = diamond();
        let l = Layout::natural(&cfg);
        // 30 true, 10 false.
        let prof = EdgeProfile::from_counts(&cfg, vec![30, 10, 30, 10]);
        let cost = l.evaluate(&cfg, &prof, &PenaltyModel::avr());
        // true falls through (30 not taken), false is taken (10 mispredicts),
        // then→join is 30 executed jumps.
        assert_eq!(cost.branches_taken, 10);
        assert_eq!(cost.branches_not_taken, 30);
        assert_eq!(cost.jumps_executed, 30);
        assert_eq!(cost.extra_cycles, 10 + 30 * 2);
        assert!((cost.misprediction_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn better_layout_reduces_cost() {
        let cfg = diamond();
        let prof = EdgeProfile::from_counts(&cfg, vec![30, 10, 30, 10]);
        let natural = Layout::natural(&cfg);
        // Hot path cond→then→join contiguous: cond, then, join, else.
        let optimized =
            Layout::from_order(&cfg, vec![BlockId(0), BlockId(1), BlockId(3), BlockId(2)]).unwrap();
        let pen = PenaltyModel::avr();
        let c_nat = natural.evaluate(&cfg, &prof, &pen);
        let c_opt = optimized.evaluate(&cfg, &prof, &pen);
        assert!(
            c_opt.extra_cycles < c_nat.extra_cycles,
            "{c_opt:?} vs {c_nat:?}"
        );
        // Hot-path layout: true falls through, false taken (10), else→join
        // jump (10): extra = 10*1 + 10*2 = 30 < 70.
        assert_eq!(c_opt.extra_cycles, 30);
    }

    #[test]
    fn misprediction_rate_zero_when_no_branches() {
        let cfg = linear(3);
        let l = Layout::natural(&cfg);
        let prof = EdgeProfile::from_counts(&cfg, vec![5, 5]);
        let cost = l.evaluate(&cfg, &prof, &PenaltyModel::avr());
        assert_eq!(cost.misprediction_rate(), 0.0);
        assert_eq!(cost.extra_cycles, 0);
    }

    #[test]
    fn penalty_model_presets_differ() {
        assert_ne!(PenaltyModel::avr(), PenaltyModel::msp430());
        assert_eq!(PenaltyModel::default(), PenaltyModel::avr());
    }

    #[test]
    fn edge_transfers_track_polarity_and_direction() {
        let cfg = diamond();
        // Natural order [cond, then, else, join]: then (= on_true) is next,
        // so the machine branch targets else — a *forward* taken-target.
        let l = Layout::natural(&cfg);
        let t = l.edge_transfers(&cfg);
        // Edge 0: cond→then (true edge) falls through, branch not taken.
        assert!(t[0].conditional && !t[0].taken && !t[0].backward_target);
        // Edge 1: cond→else (false edge) takes the inverted branch forward.
        assert!(t[1].conditional && t[1].taken && !t[1].backward_target);
        // Edge 2: then→join is a materialized unconditional jump.
        assert!(!t[2].conditional && !t[2].taken);
        assert_eq!(t[2].kind, TransferKind::Jump);

        // Order [cond, join, then, else]: both successors displaced, so the
        // machine emits brcond then; jmp else — the taken-target (then) is
        // forward, and the false edge rides the jump with the branch NOT
        // taken.
        let d =
            Layout::from_order(&cfg, vec![BlockId(0), BlockId(3), BlockId(1), BlockId(2)]).unwrap();
        let t = d.edge_transfers(&cfg);
        assert!(t[0].conditional && t[0].taken && !t[0].backward_target);
        assert_eq!(t[0].kind, TransferKind::TakenBranchOverJump);
        assert!(t[1].conditional && !t[1].taken);
        assert_eq!(t[1].kind, TransferKind::Jump);
    }

    #[test]
    fn predictor_models_disagree_only_on_backward_targets() {
        let ant = BranchPredictor::AlwaysNotTaken;
        let btfnt = BranchPredictor::Btfnt;
        // Forward taken-target: both predict not-taken.
        assert!(ant.mispredicts(true, false));
        assert!(btfnt.mispredicts(true, false));
        assert!(!ant.mispredicts(false, false));
        assert!(!btfnt.mispredicts(false, false));
        // Backward taken-target: BTFNT predicts taken, ANT still not-taken.
        assert!(ant.mispredicts(true, true));
        assert!(!btfnt.mispredicts(true, true));
        assert!(!ant.mispredicts(false, true));
        assert!(btfnt.mispredicts(false, true));
        assert_eq!(BranchPredictor::default(), ant);
        assert_ne!(ant.name(), btfnt.name());
    }

    #[test]
    fn evaluate_under_ant_matches_evaluate_bitwise() {
        let cfg = diamond();
        let prof = EdgeProfile::from_counts(&cfg, vec![30, 10, 30, 10]);
        for order in [
            vec![BlockId(0), BlockId(1), BlockId(2), BlockId(3)],
            vec![BlockId(0), BlockId(2), BlockId(1), BlockId(3)],
            vec![BlockId(0), BlockId(3), BlockId(1), BlockId(2)],
        ] {
            let l = Layout::from_order(&cfg, order).unwrap();
            let pen = PenaltyModel::avr();
            let plain = l.evaluate(&cfg, &prof, &pen);
            let under = l.evaluate_under(&cfg, &prof, &pen, BranchPredictor::AlwaysNotTaken);
            assert_eq!(plain, under);
            assert_eq!(plain.mispredicted, plain.branches_taken);
        }
    }

    #[test]
    fn btfnt_flips_mispredictions_on_a_backward_branch() {
        // Layout [cond, else, then, join]: else (= on_false) is next, so
        // the machine branch targets then, which sits *after* cond —
        // forward. Reverse polarity instead: [cond, then, else, join] puts
        // the taken-target (else) forward too. To get a backward target we
        // need the taken-target at or before the branch — impossible in a
        // diamond whose entry is the branch, so the branch block's own
        // position bounds it: position(target) <= position(cond) only for
        // cond itself. Build a loop shape instead: a 2-block CFG where the
        // branch jumps back to itself.
        use crate::graph::{Cfg, Terminator};
        let mut cfg = Cfg::new("self_loop");
        let head = cfg.add_block(
            "head",
            Terminator::Branch {
                on_true: BlockId(0),
                on_false: BlockId(1),
            },
        );
        cfg.add_block("exit", Terminator::Return);
        assert_eq!(head, BlockId(0));
        cfg.validate().expect("valid loop cfg");
        let l = Layout::natural(&cfg);
        let t = l.edge_transfers(&cfg);
        // True edge loops back: taken branch with a backward target.
        assert!(t[0].taken && t[0].backward_target);
        // 7 back-edge traversals, 1 exit.
        let prof = EdgeProfile::from_counts(&cfg, vec![7, 1]);
        let pen = PenaltyModel::avr();
        let ant = l.evaluate_under(&cfg, &prof, &pen, BranchPredictor::AlwaysNotTaken);
        let btfnt = l.evaluate_under(&cfg, &prof, &pen, BranchPredictor::Btfnt);
        // ANT mispredicts every taken back-edge; BTFNT predicts them and
        // only misses the final fall-through exit.
        assert_eq!(ant.mispredicted, 7);
        assert_eq!(btfnt.mispredicted, 1);
        // The machine cost is identical — prediction models only relabel.
        assert_eq!(ant.extra_cycles, btfnt.extra_cycles);
    }
}

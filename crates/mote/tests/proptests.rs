//! Property-based tests of the mote: interpreter semantics against a Rust
//! oracle, determinism, and cycle-accounting invariants.

use ct_ir::instr::ProcId;
use ct_mote::cost::{AvrCost, Msp430Cost};
use ct_mote::interp::Mote;
use ct_mote::trace::NullProfiler;
use proptest::prelude::*;

fn boot(src: &str) -> Mote {
    Mote::new(ct_ir::compile_source(src).unwrap(), Box::new(AvrCost))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arithmetic matches a Rust oracle with u16 wrapping on stores.
    #[test]
    fn arithmetic_oracle(a in 0u16..=u16::MAX, b in 0u16..=u16::MAX) {
        let mut mote = boot(
            "module M { proc f(a: u16, b: u16) -> u16 { return a + b * 3 - (a & b); } }",
        );
        let r = mote.call(ProcId(0), &[a as i64, b as i64], &mut NullProfiler).unwrap();
        let expect = (a as i64 + b as i64 * 3 - (a & b) as i64) as u16;
        prop_assert_eq!(r, Some(expect as i64));
    }

    /// Division oracle (nonzero divisor).
    #[test]
    fn division_oracle(a in 0u16..=u16::MAX, b in 1u16..=u16::MAX) {
        let mut mote = boot(
            "module M { proc f(a: u16, b: u16) -> u16 { return a / b + a % b; } }",
        );
        let r = mote.call(ProcId(0), &[a as i64, b as i64], &mut NullProfiler).unwrap();
        let expect = ((a / b) as i64 + (a % b) as i64) as u16 as i64;
        prop_assert_eq!(r, Some(expect));
    }

    /// Loop summation oracle.
    #[test]
    fn loop_sum_oracle(n in 0u16..200) {
        let mut mote = boot(
            "module M { proc f(n: u16) -> u32 {
                var acc: u32 = 0;
                var i: u16 = 0;
                while (i < n) { acc = acc + i * i; i = i + 1; }
                return acc;
            } }",
        );
        let r = mote.call(ProcId(0), &[n as i64], &mut NullProfiler).unwrap();
        let expect: i64 = (0..n as i64).map(|i| i * i).sum::<i64>() & 0xFFFF_FFFF;
        prop_assert_eq!(r, Some(expect));
    }

    /// Identical calls cost identical cycles (pure procedures).
    #[test]
    fn cycle_cost_deterministic(x in 0u16..1000) {
        let src = "module M { var a: u32; proc f(x: u16) {
            if (x % 3 == 0) { a = a + x; } else { a = a ^ x; }
        } }";
        let mut mote = boot(src);
        let c0 = mote.cycles;
        mote.call(ProcId(0), &[x as i64], &mut NullProfiler).unwrap();
        let d1 = mote.cycles - c0;
        let c1 = mote.cycles;
        mote.call(ProcId(0), &[x as i64], &mut NullProfiler).unwrap();
        let d2 = mote.cycles - c1;
        prop_assert_eq!(d1, d2);
    }

    /// The MSP430 model runs everything the AVR model runs (same semantics,
    /// different cycles).
    #[test]
    fn models_agree_on_semantics(a in 0u16..5000, b in 0u16..5000) {
        let src = "module M { proc f(a: u16, b: u16) -> u16 {
            var m: u16 = 0;
            if (a > b) { m = a - b; } else { m = b - a; }
            return m;
        } }";
        let program = ct_ir::compile_source(src).unwrap();
        let mut avr = Mote::new(program.clone(), Box::new(AvrCost));
        let mut msp = Mote::new(program, Box::new(Msp430Cost));
        let ra = avr.call(ProcId(0), &[a as i64, b as i64], &mut NullProfiler).unwrap();
        let rm = msp.call(ProcId(0), &[a as i64, b as i64], &mut NullProfiler).unwrap();
        prop_assert_eq!(ra, rm);
        prop_assert_eq!(ra, Some((a as i64 - b as i64).abs()));
    }

    /// Bounds traps fire for exactly the out-of-range indices.
    #[test]
    fn array_bounds_exact(i in 0i64..20) {
        let mut mote = boot("module M { var b: u8[8]; proc f(i: u16) { b[i] = 1; } }");
        let r = mote.call(ProcId(0), &[i], &mut NullProfiler);
        if i < 8 {
            prop_assert!(r.is_ok());
        } else {
            prop_assert!(r.is_err());
        }
    }

    /// Seeded reruns of a stochastic workload reproduce exactly.
    #[test]
    fn seeded_determinism(seed in 0u64..500) {
        let src = "module M { var acc: u32; proc f() {
            var v: u16 = read_adc();
            if (v > 512) { acc = acc + v; } else { }
        } }";
        let run = |seed: u64| {
            let mut mote = boot(src);
            mote.reseed(seed);
            for _ in 0..20 {
                mote.call(ProcId(0), &[], &mut NullProfiler).unwrap();
            }
            (mote.cycles, mote.globals.load(ct_ir::instr::GlobalId(0)))
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}

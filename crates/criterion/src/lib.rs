#![warn(missing_docs)]

//! Vendored offline shim for the [`criterion`](https://crates.io/crates/criterion)
//! 0.5 API surface this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal wall-clock benchmark harness with the same surface:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Throughput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. There is no statistical analysis — each
//! benchmark is warmed up, timed for a fixed budget, and its mean
//! nanoseconds/iteration printed in a stable machine-greppable format:
//!
//! ```text
//! bench: <group>/<id> ... <mean_ns> ns/iter (<iters> iters)
//! ```
//!
//! Environment knobs: `CT_BENCH_WARMUP_MS` (default 200) and
//! `CT_BENCH_MEASURE_MS` (default 1000) bound the per-benchmark time budget.

use std::time::{Duration, Instant};

/// Benchmark harness entry point (mirrors `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let _ = self;
        BenchmarkGroup {
            name: name.into(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Runs a single standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        run_benchmark(&id.into(), &mut f);
    }
}

/// A group of related benchmarks (mirrors `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    name: String,
    _marker: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Declares the throughput of subsequent benchmarks (recorded for API
    /// compatibility; not reported).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Sets the nominal sample count (accepted for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` against `input` under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, &mut |b| f(b, input));
        self
    }

    /// Benchmarks a no-input closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoLabel,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_label());
        run_benchmark(&label, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Conversion into a benchmark label (accepts strings and [`BenchmarkId`]).
pub trait IntoLabel {
    /// The label text.
    fn into_label(self) -> String;
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Work per iteration, for throughput reporting (accepted, not reported).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    mode: BencherMode,
    /// Total time measured across iterations (measure mode).
    elapsed: Duration,
    /// Iterations executed.
    iters: u64,
    /// Iteration budget for the current `iter` call.
    budget: u64,
}

enum BencherMode {
    /// Calibration: run a fixed small iteration count and record elapsed.
    Calibrate,
    /// Measurement: run the budgeted iteration count.
    Measure,
}

impl Bencher {
    /// Times `f`, running it repeatedly under the harness's time budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let n = self.budget;
        let start = Instant::now();
        for _ in 0..n {
            std::hint::black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += n;
        let _ = match self.mode {
            BencherMode::Calibrate => 0,
            BencherMode::Measure => 1,
        };
    }
}

fn env_ms(name: &str, default: u64) -> Duration {
    let ms = std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default);
    Duration::from_millis(ms)
}

/// Calibrates, measures, and prints one benchmark.
fn run_benchmark(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let warmup = env_ms("CT_BENCH_WARMUP_MS", 200);
    let measure = env_ms("CT_BENCH_MEASURE_MS", 1000);

    // Calibration: find an iteration count that roughly fills the warmup
    // budget, doubling from 1.
    let mut per_iter = Duration::from_nanos(0);
    let mut budget = 1u64;
    let cal_start = Instant::now();
    loop {
        let mut b = Bencher {
            mode: BencherMode::Calibrate,
            elapsed: Duration::ZERO,
            iters: 0,
            budget,
        };
        f(&mut b);
        if b.iters > 0 {
            per_iter = b.elapsed / (b.iters as u32).max(1);
        }
        if cal_start.elapsed() >= warmup || b.elapsed >= warmup / 2 {
            break;
        }
        budget = budget.saturating_mul(2).min(1 << 30);
    }

    // Measurement: one batch sized to the measurement budget.
    let per_iter_ns = per_iter.as_nanos().max(1) as u64;
    let iters = (measure.as_nanos() as u64 / per_iter_ns).clamp(1, 1 << 32);
    let mut b = Bencher {
        mode: BencherMode::Measure,
        elapsed: Duration::ZERO,
        iters: 0,
        budget: iters,
    };
    f(&mut b);
    let mean_ns = if b.iters == 0 {
        0.0
    } else {
        b.elapsed.as_nanos() as f64 / b.iters as f64
    };
    println!(
        "bench: {label} ... {mean_ns:.1} ns/iter ({} iters)",
        b.iters
    );
}

/// Declares a benchmark group function (mirrors `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main` (mirrors `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        std::env::set_var("CT_BENCH_WARMUP_MS", "5");
        std::env::set_var("CT_BENCH_MEASURE_MS", "10");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::new("f", 1), &3u64, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            });
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 8).label, "f/8");
        assert_eq!(BenchmarkId::from_parameter("em").label, "em");
    }
}

//! Property-based tests of the estimation engine: consistency of the
//! forward–backward tables, EM recovery, and estimator agreement.

use ct_cfg::builder::{diamond, while_loop};
use ct_cfg::profile::BranchProbs;
use ct_core::fb::{compute_tables, FbParams};
use ct_core::quantize::{duration_window, tick_likelihood};
use ct_core::samples::TimingSamples;
use ct_core::unrolled::estimate_unrolled;
use ct_core::{estimate, EstimateOptions};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The backward table from the entry is a (near-)normalized distribution
    /// and its mean matches the Markov expected duration.
    #[test]
    fn duration_pmf_consistency(p in 0.05f64..0.95) {
        let cfg = diamond();
        let bc = [11u64, 70, 140, 6];
        let ec = [1u64, 2, 0, 1];
        let probs = BranchProbs::from_vec(&cfg, vec![p]);
        let t = compute_tables(&cfg, &bc, &ec, &probs, FbParams::default()).unwrap();
        let d = t.duration_pmf(&cfg);
        let total: f64 = d.total_mass();
        prop_assert!((total - 1.0).abs() < 1e-6);
        let mean: f64 = d.iter().map(|(t, m)| t as f64 * m).sum();
        // Expected: 11 + p(1+70) + (1-p)(2+140) + (exit edge 0/1 depends on
        // arm) + 6 — compute via the model directly instead:
        let (model_mean, _) = ct_core::model_moments(&cfg, &bc, &ec, &probs).unwrap();
        prop_assert!((mean - model_mean).abs() < 1e-6, "{mean} vs {model_mean}");
    }

    /// Forward mass arriving at the exit equals 1 (probability conservation).
    #[test]
    fn forward_mass_conserved(q in 0.05f64..0.8) {
        let cfg = while_loop();
        let bc = [2u64, 3, 10, 1];
        let ec = [0u64; 4];
        let probs = BranchProbs::from_vec(&cfg, vec![q]);
        let t = compute_tables(&cfg, &bc, &ec, &probs, FbParams::default()).unwrap();
        let exit_mass: f64 = t.forward[3].total_mass();
        prop_assert!((exit_mass - 1.0).abs() < 1e-6, "{exit_mass}");
    }

    /// EM recovers the empirical mixture weight on two-point samples exactly
    /// (cycle-accurate, identifiable arms).
    #[test]
    fn em_matches_empirical(k in 1usize..2000) {
        let n = 2000usize;
        let cfg = diamond();
        let bc = [10u64, 100, 220, 5];
        let ec = [0u64; 4];
        let mut ticks = vec![115u64; k];
        ticks.extend(vec![235u64; n - k]);
        let samples = TimingSamples::new(ticks, 1);
        let est = estimate(&cfg, &bc, &ec, &samples, EstimateOptions::default()).unwrap();
        let want = k as f64 / n as f64;
        prop_assert!((est.probs.as_slice()[0] - want).abs() < 5e-3,
            "est {} want {want}", est.probs.as_slice()[0]);
    }

    /// The quantization window is exactly the kernel's support.
    #[test]
    fn window_is_tight(ticks in 0u64..100, cpt in 1u64..500) {
        let (lo, hi) = duration_window(ticks, cpt);
        prop_assert!(tick_likelihood(ticks, lo, cpt) > 0.0);
        prop_assert!(tick_likelihood(ticks, hi, cpt) > 0.0);
        if lo > 0 {
            prop_assert_eq!(tick_likelihood(ticks, lo - 1, cpt), 0.0);
        }
        prop_assert_eq!(tick_likelihood(ticks, hi + 1, cpt), 0.0);
    }

    /// Unrolled estimation of a deterministic loop pins the header parameter
    /// at trips/(trips+1) regardless of data.
    #[test]
    fn unrolled_header_pinned(trips in 1u64..12) {
        let cfg = while_loop();
        let bc = [2u64, 3, 10, 1];
        let ec = [0u64; 4];
        let d = 2 + (trips + 1) * 3 + trips * 10 + 1;
        let samples = TimingSamples::new(vec![d; 50], 1);
        let r = estimate_unrolled(
            &cfg,
            &[(ct_cfg::graph::BlockId(1), trips)],
            &bc,
            &ec,
            &samples,
            Default::default(),
        )
        .unwrap();
        let q = r.probs.prob_true(ct_cfg::graph::BlockId(1)).unwrap();
        let want = trips as f64 / (trips as f64 + 1.0);
        prop_assert!((q - want).abs() < 1e-9);
        prop_assert_eq!(r.unexplained, 0);
    }
}

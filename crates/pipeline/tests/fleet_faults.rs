//! Straggler/timeout golden test: a fleet with delayed motes produces a
//! deterministic partial estimate — same surviving motes, same merged
//! statistics, same estimate bits — at any `CT_THREADS`, emits a
//! `fleet.straggler` trace event per excluded mote, and discounts the
//! estimate's confidence by coverage so a badly-degraded round refuses
//! installation (`place_with_confidence` keeps the natural layout).
//!
//! One `#[test]` owns the process globals (ct-obs registry, `CT_THREADS`);
//! splitting it would race the harness's parallel test threads.

use ct_cfg::layout::Layout;
use ct_faults::{MoteFaultKind, MoteFaultPlan};
use ct_pipeline::{edge_frequencies, Fleet, RunConfig};
use ct_placement::{place_with_confidence, Strategy, MIN_PLACEMENT_CONFIDENCE};

const MOTES: usize = 5;

#[test]
fn stragglers_degrade_deterministically_and_gate_placement() {
    let config = RunConfig::new("sense").invocations(150).seeded(31);
    // Every mote draws a straggler delay; outcomes are pure functions of
    // (seed, mote, attempt), so the test can read the delays up front and
    // pick timeouts that exclude exactly the motes it wants.
    let plan = MoteFaultPlan::single(MoteFaultKind::StragglerDelay, 1.0, 97);
    let mut delays: Vec<u64> = (0..MOTES as u64)
        .map(|m| plan.outcome(m, 0).straggler_delay)
        .collect();
    assert!(
        delays.iter().all(|&d| d > 0),
        "rate 1.0 must delay everyone"
    );
    delays.sort_unstable();
    assert!(
        delays.windows(2).all(|w| w[0] < w[1]),
        "test seed drew tied delays; pick another seed"
    );

    // Timeout between the two largest delays: exactly one straggler.
    let one_out = delays[MOTES - 2];
    // Timeout below the second-smallest delay: only one mote delivers.
    let four_out = delays[0];

    let mut per_thread = Vec::new();
    for threads in ["1", "4"] {
        std::env::set_var("CT_THREADS", threads);
        ct_obs::reset();
        ct_obs::set_stream_enabled(true);
        let fleet = Fleet::new(config.clone(), MOTES)
            .with_mote_faults(plan.clone())
            .straggler_timeout(one_out);
        let fr = fleet.run().expect("partial fleet still runs");
        let est = fleet.estimate(&fr).expect("partial fleet still estimates");
        let snap = ct_obs::snapshot();
        ct_obs::set_stream_enabled(false);
        ct_obs::reset();

        assert_eq!(fr.stragglers, 1, "threads={threads}");
        assert_eq!(fr.delivered, MOTES - 1, "threads={threads}");
        assert_eq!(fr.failed, 0, "stragglers are not failures");
        let coverage = (MOTES - 1) as f64 / MOTES as f64;
        assert_eq!(fr.coverage(), coverage);
        assert_eq!(
            est.confidence.to_bits(),
            coverage.to_bits(),
            "confidence must carry the coverage discount"
        );
        let events: Vec<_> = snap
            .events
            .iter()
            .filter(|e| e.name == "fleet.straggler")
            .collect();
        assert_eq!(events.len(), 1, "threads={threads}: straggler event count");
        assert!(
            snap.counters
                .iter()
                .any(|(k, v)| k == "fleet.straggler" && *v == 1),
            "threads={threads}: straggler counter"
        );
        per_thread.push((fr, est));
    }
    let (fr1, est1) = &per_thread[0];
    let (fr4, est4) = &per_thread[1];
    assert_eq!(fr1.stats, fr4.stats, "partial merge depends on CT_THREADS");
    assert_eq!(fr1.pmu, fr4.pmu);
    for (x, y) in est1
        .estimate
        .probs
        .as_slice()
        .iter()
        .zip(est4.estimate.probs.as_slice())
    {
        assert_eq!(x.to_bits(), y.to_bits(), "partial estimate not bitwise");
    }

    // Degrade further: one delivering mote out of five is 20% coverage,
    // under MIN_PLACEMENT_CONFIDENCE — placement must keep the natural
    // layout rather than act on a mostly-missing fleet.
    std::env::set_var("CT_THREADS", "4");
    ct_obs::reset();
    let degraded = Fleet::new(config.clone(), MOTES)
        .with_mote_faults(plan)
        .straggler_timeout(four_out);
    let fr = degraded.run().expect("one-mote fleet still runs");
    let est = degraded.estimate(&fr).expect("one-mote fleet estimates");
    ct_obs::reset();
    assert_eq!(fr.delivered, 1);
    assert_eq!(fr.stragglers, MOTES - 1);
    assert!(est.confidence < MIN_PLACEMENT_CONFIDENCE);
    let cfg = fr.cfg();
    let freq = edge_frequencies(cfg, &est.estimate.probs).expect("frequencies solve");
    let layout = place_with_confidence(
        cfg,
        &freq,
        est.confidence,
        MIN_PLACEMENT_CONFIDENCE,
        &config.penalties(),
        Strategy::default(),
    );
    assert_eq!(
        layout,
        Layout::natural(cfg),
        "degraded round must refuse installation"
    );
}

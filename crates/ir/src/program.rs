//! Lowered program containers: procedures with CFGs and instruction payloads.

use crate::instr::{GlobalId, Instr, ProcId};
use crate::types::Ty;
use ct_cfg::graph::{BlockId, Cfg};

/// A module-level variable after lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    /// Source name.
    pub name: String,
    /// Element type.
    pub ty: Ty,
    /// Element count (1 for scalars).
    pub len: u32,
    /// Initial value for scalars; arrays zero-initialize.
    pub init: i64,
}

impl Global {
    /// RAM footprint in bytes.
    pub fn size_bytes(&self) -> u32 {
        self.ty.size_bytes() * self.len
    }
}

/// A lowered procedure: its CFG plus per-block instruction lists.
#[derive(Debug, Clone, PartialEq)]
pub struct Procedure {
    /// Source name.
    pub name: String,
    /// Parameter types in order (parameters occupy local slots `0..params.len()`).
    pub params: Vec<Ty>,
    /// Return type; `None` for void.
    pub ret: Option<Ty>,
    /// Total local slots (parameters included).
    pub n_locals: u16,
    /// Control-flow graph; entry is block 0, exactly one return block.
    pub cfg: Cfg,
    /// Instruction list of each block, indexed by block id.
    pub code: Vec<Vec<Instr>>,
    /// Statically counted loops: `(header block, exact trip count)` for
    /// every loop the trip-count analysis proved deterministic.
    pub counted_loops: Vec<(BlockId, u64)>,
}

impl Procedure {
    /// The instructions of block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn block_code(&self, b: BlockId) -> &[Instr] {
        &self.code[b.index()]
    }

    /// Total instruction count across all blocks (a flash-size proxy).
    pub fn instr_count(&self) -> usize {
        self.code.iter().map(Vec::len).sum()
    }
}

/// A lowered module: globals plus procedures.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Module name.
    pub name: String,
    /// Module variables, indexed by [`GlobalId`].
    pub globals: Vec<Global>,
    /// Procedures, indexed by [`ProcId`].
    pub procs: Vec<Procedure>,
}

impl Program {
    /// Looks up a procedure id by name.
    pub fn proc_id(&self, name: &str) -> Option<ProcId> {
        self.procs
            .iter()
            .position(|p| p.name == name)
            .map(|i| ProcId(i as u32))
    }

    /// Borrow of procedure `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn proc(&self, id: ProcId) -> &Procedure {
        &self.procs[id.index()]
    }

    /// Looks up a global id by name.
    pub fn global_id(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(|i| GlobalId(i as u32))
    }

    /// Borrow of global `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.index()]
    }

    /// Total module-variable RAM in bytes.
    pub fn ram_bytes(&self) -> u32 {
        self.globals.iter().map(Global::size_bytes).sum()
    }

    /// Total instruction count across all procedures (a flash-size proxy).
    pub fn instr_count(&self) -> usize {
        self.procs.iter().map(Procedure::instr_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    const SRC: &str = "module M {
        var total: u32;
        var buf: u16[4];
        proc bump(x: u16) -> u32 { total = total + x; return total; }
        proc zero() { total = 0; }
    }";

    #[test]
    fn lookups_by_name() {
        let p = compile(SRC).unwrap();
        assert_eq!(p.proc_id("bump"), Some(ProcId(0)));
        assert_eq!(p.proc_id("zero"), Some(ProcId(1)));
        assert_eq!(p.proc_id("missing"), None);
        assert_eq!(p.global_id("buf"), Some(GlobalId(1)));
        assert_eq!(p.global_id("missing"), None);
    }

    #[test]
    fn ram_accounting() {
        let p = compile(SRC).unwrap();
        // u32 scalar (4) + u16[4] (8).
        assert_eq!(p.ram_bytes(), 12);
        assert_eq!(p.global(GlobalId(1)).size_bytes(), 8);
    }

    #[test]
    fn instruction_counts_are_positive() {
        let p = compile(SRC).unwrap();
        assert!(p.instr_count() > 0);
        assert!(p.proc(ProcId(0)).instr_count() >= p.proc(ProcId(1)).instr_count());
    }
}

//! Metrics exposition: periodic JSONL samples and a Prometheus-style text
//! rendering of the registry.
//!
//! Two consumers, two formats:
//!
//! - **JSONL samples** ([`MetricsPump`]): a coordinator ticks the pump
//!   inside its reduce loop; at most once per interval it appends one
//!   `metrics.sample` line (counters, gauges, histogram percentiles) to a
//!   file, giving a coarse time series over the run — the
//!   distribution-over-time view ROADMAP item 4's drift detection wants.
//! - **Prometheus text** ([`render_prometheus`]): a point-in-time
//!   exposition written to `CT_METRICS_PATH` by
//!   [`crate::flush_env_sinks`] at the end of every instrumented binary,
//!   scrapable by anything that speaks the text format. Names are
//!   sanitized (`.` → `_`, `ct_` prefix); histograms render as cumulative
//!   `_bucket{le="..."}` series plus `_sum`/`_count`.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use crate::hist::bucket_hi;
use crate::json::write_escaped;
use crate::recorder::Snapshot;

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn escape_label(value: &str) -> String {
    value.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders `snap` in the Prometheus text exposition format.
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, n) in &snap.counters {
        let m = sanitize(name);
        let _ = writeln!(out, "# TYPE ct_{m} counter");
        let _ = writeln!(out, "ct_{m} {n}");
    }
    for (name, v) in &snap.gauges {
        let m = sanitize(name);
        let _ = writeln!(out, "# TYPE ct_{m} gauge");
        if v.is_finite() {
            let _ = writeln!(out, "ct_{m} {v}");
        } else {
            let _ = writeln!(out, "ct_{m} NaN");
        }
    }
    for (name, agg) in &snap.spans {
        let label = escape_label(name);
        let _ = writeln!(out, "ct_span_count{{span=\"{label}\"}} {}", agg.count);
        let _ = writeln!(out, "ct_span_wall_ns{{span=\"{label}\"}} {}", agg.wall_ns);
    }
    for (name, h) in &snap.hists {
        let m = sanitize(name);
        let _ = writeln!(out, "# TYPE ct_{m} histogram");
        let mut cum = 0u64;
        for (idx, c) in h.buckets() {
            cum = cum.saturating_add(c);
            let _ = writeln!(out, "ct_{m}_bucket{{le=\"{}\"}} {cum}", bucket_hi(idx));
        }
        let _ = writeln!(out, "ct_{m}_bucket{{le=\"+Inf\"}} {}", h.count());
        let _ = writeln!(out, "ct_{m}_sum {}", h.sum());
        let _ = writeln!(out, "ct_{m}_count {}", h.count());
    }
    out
}

/// Renders one `metrics.sample` JSONL line from `snap` (no trailing
/// newline). Histograms sample as percentile summaries, not full bucket
/// tables — the time series wants shape, not replay fidelity.
pub fn render_sample(snap: &Snapshot, sample: u64) -> String {
    let mut out = String::from("{\"event\":\"metrics.sample\"");
    let _ = write!(out, ",\"sample\":{sample}");
    out.push_str(",\"counters\":{");
    for (i, (name, n)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_escaped(&mut out, name);
        let _ = write!(out, ":{n}");
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_escaped(&mut out, name);
        if v.is_finite() {
            let _ = write!(out, ":{v}");
        } else {
            out.push_str(":null");
        }
    }
    out.push_str("},\"hists\":{");
    for (i, (name, h)) in snap.hists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_escaped(&mut out, name);
        let _ = write!(
            out,
            ":{{\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
            h.count(),
            h.p50(),
            h.p90(),
            h.p99(),
            h.max()
        );
    }
    out.push_str("}}");
    out
}

/// Appends periodic `metrics.sample` lines to a file: call [`tick`] from
/// a loop; it samples at most once per interval.
///
/// [`tick`]: MetricsPump::tick
#[derive(Debug)]
pub struct MetricsPump {
    path: PathBuf,
    every: Duration,
    last: Option<Instant>,
    samples: u64,
}

impl MetricsPump {
    /// A pump appending to `path` at most every `every`. The file is
    /// truncated on creation so each run's series stands alone.
    pub fn new(path: impl Into<PathBuf>, every: Duration) -> MetricsPump {
        let path = path.into();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(dir);
            }
        }
        let _ = std::fs::write(&path, "");
        MetricsPump {
            path,
            every,
            last: None,
            samples: 0,
        }
    }

    /// Samples the registry and appends one line if the interval elapsed
    /// (always samples on the first call). Returns whether it sampled.
    /// I/O errors go to stderr — telemetry must never fail the run.
    pub fn tick(&mut self) -> bool {
        let due = self.last.is_none_or(|t| t.elapsed() >= self.every);
        if !due {
            return false;
        }
        self.last = Some(Instant::now());
        self.force_sample();
        true
    }

    /// Samples unconditionally (call once after the loop for a final row).
    pub fn force_sample(&mut self) {
        let snap = crate::recorder::snapshot();
        let line = render_sample(&snap, self.samples);
        self.samples += 1;
        let res = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(&self.path)
            .and_then(|mut f| {
                use std::io::Write as _;
                writeln!(f, "{line}")
            });
        if let Err(e) = res {
            eprintln!(
                "ct-obs: metrics sample to {} failed: {e}",
                self.path.display()
            );
        }
    }

    /// Lines written so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

/// Writes the Prometheus exposition of `snap` to `CT_METRICS_PATH` when
/// that knob is set. Called from [`crate::flush_env_sinks`]; errors are
/// reported to stderr, never propagated.
pub(crate) fn write_env_exposition(snap: &Snapshot) {
    let Ok(path) = std::env::var("CT_METRICS_PATH") else {
        return;
    };
    if path.is_empty() || path == "0" {
        return;
    }
    if let Err(e) = std::fs::write(&path, render_prometheus(snap)) {
        eprintln!("ct-obs: failed to write metrics to {path}: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::HistData;
    use crate::recorder::SpanAgg;

    fn sample_snapshot() -> Snapshot {
        let mut h = HistData::default();
        for v in [5u64, 5, 900] {
            h.record(v);
        }
        let mut snap = Snapshot::default();
        snap.counters.push(("svc.ingest.accepted".to_string(), 12));
        snap.gauges.push(("svc.queue_depth".to_string(), 3.0));
        snap.spans.push((
            "svc.reduce".to_string(),
            SpanAgg {
                count: 2,
                wall_ns: 100,
                cpu_ticks: 1,
            },
        ));
        snap.hists.push(("svc.batch_samples".to_string(), h));
        snap
    }

    #[test]
    fn prometheus_rendering_is_wellformed() {
        let text = render_prometheus(&sample_snapshot());
        assert!(text.contains("# TYPE ct_svc_ingest_accepted counter"));
        assert!(text.contains("ct_svc_ingest_accepted 12"));
        assert!(text.contains("ct_svc_queue_depth 3"));
        assert!(text.contains("ct_span_count{span=\"svc.reduce\"} 2"));
        assert!(text.contains("# TYPE ct_svc_batch_samples histogram"));
        assert!(text.contains("ct_svc_batch_samples_count 3"));
        assert!(text.contains("ct_svc_batch_samples_sum 910"));
        assert!(text.contains("_bucket{le=\"+Inf\"} 3"));
        // Cumulative: the +Inf bucket equals the count, and every bucket
        // line parses as "name{le=...} value".
        for line in text.lines().filter(|l| l.contains("_bucket")) {
            assert!(line.split_whitespace().count() == 2, "bad line {line}");
        }
    }

    #[test]
    fn sample_lines_parse_as_json() {
        let line = render_sample(&sample_snapshot(), 7);
        let doc = crate::json::parse(&line).unwrap_or_else(|e| panic!("{e}\n{line}"));
        assert_eq!(
            doc.get("event").and_then(crate::json::Json::as_str),
            Some("metrics.sample")
        );
        assert_eq!(
            doc.get("sample").and_then(crate::json::Json::as_num),
            Some(7.0)
        );
        let hist = doc
            .get("hists")
            .and_then(|h| h.get("svc.batch_samples"))
            .expect("hist summary present");
        assert_eq!(
            hist.get("count").and_then(crate::json::Json::as_num),
            Some(3.0)
        );
        assert_eq!(
            hist.get("max").and_then(crate::json::Json::as_num),
            Some(900.0)
        );
    }
}

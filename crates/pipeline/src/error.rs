//! The one error type every pipeline stage speaks.

use ct_core::estimator::EstimateError;
use ct_core::samples::SampleIssue;
use ct_core::stream::ResolutionMismatch;
use std::error::Error;
use std::fmt;

/// Why a pipeline stage could not produce its artifact.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// The deployed program trapped while driving the workload.
    Trap(String),
    /// Estimation failed hard (the naive front door's error).
    Estimate(EstimateError),
    /// Edge-frequency derivation failed (exit unreachable under the
    /// probability vector handed to placement).
    Frequency(String),
    /// A sample set was unusable before estimation even started.
    InvalidSamples(SampleIssue),
    /// Fleet statistics at incompatible timer resolutions.
    Merge(ResolutionMismatch),
    /// A fleet with zero motes has nothing to run or merge.
    EmptyFleet,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Trap(msg) => write!(f, "workload trapped: {msg}"),
            PipelineError::Estimate(e) => write!(f, "estimation failed: {e}"),
            PipelineError::Frequency(msg) => {
                write!(f, "frequency derivation failed: {msg}")
            }
            PipelineError::InvalidSamples(issue) => write!(f, "invalid samples: {issue}"),
            PipelineError::Merge(e) => write!(f, "fleet merge failed: {e}"),
            PipelineError::EmptyFleet => write!(f, "fleet has zero motes"),
        }
    }
}

impl Error for PipelineError {}

impl From<EstimateError> for PipelineError {
    fn from(e: EstimateError) -> PipelineError {
        PipelineError::Estimate(e)
    }
}

impl From<SampleIssue> for PipelineError {
    fn from(issue: SampleIssue) -> PipelineError {
        PipelineError::InvalidSamples(issue)
    }
}

impl From<ResolutionMismatch> for PipelineError {
    fn from(e: ResolutionMismatch) -> PipelineError {
        PipelineError::Merge(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PipelineError::Trap("sense trapped: stack underflow".into());
        assert!(e.to_string().contains("sense"));
        let m: PipelineError = ResolutionMismatch { ours: 1, theirs: 8 }.into();
        assert!(m.to_string().contains("cycles/tick"));
        assert!(PipelineError::EmptyFleet.to_string().contains("zero motes"));
    }
}

//! Criterion microbenchmarks: NLC front-end throughput (lex + parse + sema +
//! lower) on the benchmark app sources and generated programs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ct_apps::synthetic::{random_source, GenConfig};
use std::hint::black_box;

fn bench_frontend(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontend");
    for app in ct_apps::all_apps() {
        group.throughput(Throughput::Bytes(app.source.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("compile", app.name),
            app.source,
            |b, src| {
                b.iter(|| black_box(ct_ir::compile_source(src).unwrap()));
            },
        );
    }
    let big = random_source(
        1,
        GenConfig {
            decisions: 32,
            max_depth: 4,
            loop_share: 0.3,
        },
    );
    group.throughput(Throughput::Bytes(big.len() as u64));
    group.bench_with_input(
        BenchmarkId::new("compile", "generated_32"),
        &big,
        |b, src| {
            b.iter(|| black_box(ct_ir::compile_source(src).unwrap()));
        },
    );
    group.finish();
}

criterion_group!(benches, bench_frontend);
criterion_main!(benches);

//! Golden-equivalence tests: the flat single-pass forward–backward engine
//! (`ct_core::fb`) must reproduce the reference `BTreeMap` engine
//! (`ct_core::fb_reference`) on every app in the registry, to 1e-9.
//!
//! The reference runs one independent time-expanded DP per block and rescans
//! the `f ⊗ g` product per `(sample, edge)` pair; the current engine runs one
//! reversed-graph propagation for all blocks and one windowed convolution per
//! edge. Pruning decisions are made against different intermediate merges, so
//! the suites run at `mass_eps = 1e-12` — any pruning disagreement is then
//! orders of magnitude below the 1e-9 comparison tolerance.

use ct_cfg::profile::BranchProbs;
use ct_core::fb::{compute_tables, e_step, FbParams};
use ct_core::fb_reference;
use ct_core::samples::TimingSamples;
use ct_mote::cost::AvrCost;

const TOL: f64 = 1e-9;

fn params() -> FbParams {
    FbParams {
        mass_eps: 1e-12,
        ..FbParams::default()
    }
}

/// Deterministic non-uniform branch probabilities, distinct per branch.
fn probs_for(cfg: &ct_cfg::graph::Cfg) -> BranchProbs {
    let n = cfg.branch_blocks().len();
    let values: Vec<f64> = (0..n)
        .map(|i| 0.15 + 0.7 * (((i * 37) % 100) as f64 / 100.0))
        .collect();
    BranchProbs::from_vec(cfg, values)
}

/// Each registry app's target procedure with its real static costs.
fn registry_problems() -> Vec<(String, ct_cfg::graph::Cfg, Vec<u64>, Vec<u64>)> {
    ct_apps::all_apps()
        .iter()
        .map(|app| {
            let mote = app.boot(Box::new(AvrCost));
            let pid = app.target_id(mote.program());
            let cfg = mote.program().procs[pid.index()].cfg.clone();
            let bc = mote.static_block_costs(pid).to_vec();
            let ec = mote.static_edge_costs(pid).to_vec();
            (app.name.to_string(), cfg, bc, ec)
        })
        .collect()
}

/// The engines prune against different intermediate merges, so at the tail a
/// support point can survive in one and not the other; such points must carry
/// mass below tolerance, and shared points must agree to tolerance.
fn assert_pmf_close(name: &str, what: &str, new: &[(u64, f64)], old: &[(u64, f64)]) {
    let to_map = |p: &[(u64, f64)]| {
        p.iter()
            .copied()
            .collect::<std::collections::BTreeMap<_, _>>()
    };
    let (mn, mo) = (to_map(new), to_map(old));
    for (&d, &m) in &mn {
        let other = mo.get(&d).copied().unwrap_or(0.0);
        assert!(
            (m - other).abs() < TOL,
            "{name}: {what} mass at {d}: {m} vs {other}"
        );
    }
    for (&d, &m) in &mo {
        if !mn.contains_key(&d) {
            assert!(
                m.abs() < TOL,
                "{name}: {what} point {d} (mass {m}) missing in new engine"
            );
        }
    }
}

/// Ticks covering the duration distribution at a given timer resolution:
/// every distinct quantization of the support, with varying multiplicities.
fn ticks_covering(duration: &[(u64, f64)], cpt: u64) -> TimingSamples {
    let mut ticks = Vec::new();
    for (i, &(d, _)) in duration.iter().enumerate().take(40) {
        let t = d / cpt;
        for _ in 0..(1 + (i % 4) as u64) {
            ticks.push(t);
        }
        // Exercise the upper quantization cell too.
        if d % cpt != 0 {
            ticks.push(t + 1);
        }
    }
    // One impossible observation: both engines must agree on `unexplained`.
    ticks.push(duration.last().map_or(1, |&(d, _)| d / cpt + 1000));
    TimingSamples::new(ticks, cpt)
}

#[test]
fn tables_match_reference_on_app_registry() {
    for (name, cfg, bc, ec) in registry_problems() {
        let probs = probs_for(&cfg);
        let new = compute_tables(&cfg, &bc, &ec, &probs, params())
            .unwrap_or_else(|e| panic!("{name}: new engine failed: {e}"));
        let old = fb_reference::compute_tables(&cfg, &bc, &ec, &probs, params())
            .unwrap_or_else(|e| panic!("{name}: reference engine failed: {e}"));
        for b in 0..cfg.len() {
            assert_pmf_close(
                &name,
                &format!("forward[{b}]"),
                &new.forward[b].entries(),
                &old.forward[b].entries(),
            );
            assert_pmf_close(
                &name,
                &format!("backward[{b}]"),
                &new.backward[b].entries(),
                &old.backward[b].entries(),
            );
        }
        // `truncated` counts mass pruned at engine-specific merge points, so
        // it is not comparable entry-for-entry — but both must stay tiny.
        // (The reference runs one DP per block, so it accrues more of it.)
        assert!(
            new.truncated < 1e-6,
            "{name}: new truncated {}",
            new.truncated
        );
        assert!(
            old.truncated < 1e-5,
            "{name}: old truncated {}",
            old.truncated
        );
    }
}

#[test]
fn e_step_matches_reference_on_app_registry() {
    for (name, cfg, bc, ec) in registry_problems() {
        let probs = probs_for(&cfg);
        let tables = fb_reference::compute_tables(&cfg, &bc, &ec, &probs, params())
            .unwrap_or_else(|e| panic!("{name}: reference tables failed: {e}"));
        let duration = tables.duration_pmf(&cfg).entries();
        assert!(!duration.is_empty(), "{name}: empty duration distribution");

        // Cycle-accurate and two coarse timers.
        for cpt in [1u64, 8, 64] {
            let samples = ticks_covering(&duration, cpt);
            let (new, _) = e_step(&cfg, &bc, &ec, &probs, &samples, params())
                .unwrap_or_else(|e| panic!("{name}: new e_step failed: {e}"));
            let (old, _) = fb_reference::e_step(&cfg, &bc, &ec, &probs, &samples, params())
                .unwrap_or_else(|e| panic!("{name}: reference e_step failed: {e}"));

            let scale = 1.0 + old.loglik.abs();
            assert!(
                (new.loglik - old.loglik).abs() < TOL * scale,
                "{name} cpt={cpt}: loglik {} vs {}",
                new.loglik,
                old.loglik
            );
            assert_eq!(
                new.unexplained, old.unexplained,
                "{name} cpt={cpt}: unexplained"
            );
            assert_eq!(new.counts.len(), old.counts.len());
            for (i, (cn, co)) in new.counts.iter().zip(&old.counts).enumerate() {
                let scale = 1.0 + co.abs();
                assert!(
                    (cn - co).abs() < TOL * scale,
                    "{name} cpt={cpt}: counts[{i}] {cn} vs {co}"
                );
            }
        }
    }
}

#[test]
fn tables_match_reference_at_default_pruning() {
    // At the production mass_eps = 1e-9 the engines may prune different
    // intermediate merges; the total duration distributions must still agree
    // to well within the pruned mass budget.
    for (name, cfg, bc, ec) in registry_problems() {
        let probs = probs_for(&cfg);
        let p = FbParams::default();
        let new = compute_tables(&cfg, &bc, &ec, &probs, p).unwrap();
        let old = fb_reference::compute_tables(&cfg, &bc, &ec, &probs, p).unwrap();
        let mass_new: f64 = new.duration_pmf(&cfg).total_mass();
        let mass_old: f64 = old.duration_pmf(&cfg).total_mass();
        assert!(
            (mass_new - mass_old).abs() < 1e-6,
            "{name}: duration mass {mass_new} vs {mass_old}"
        );
    }
}

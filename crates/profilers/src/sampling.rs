//! Timer-interrupt PC sampling: the cheap-but-noisy conventional profiler.
//!
//! A periodic interrupt records which basic block the CPU is executing. The
//! block histogram is *time*-weighted, not *visit*-weighted — long blocks
//! soak up samples — so deriving branch probabilities requires dividing each
//! block's sample share by its cycle cost. Even then, the result is only an
//! approximation (and the ISR itself costs cycles), which is exactly the
//! trade-off the overhead/accuracy experiments quantify.

use ct_cfg::graph::{BlockId, Cfg, Terminator};
use ct_cfg::profile::BranchProbs;
use ct_ir::instr::ProcId;
use ct_ir::program::Program;
use ct_mote::trace::Profiler;

/// Cycles of one sampling ISR (save context, read PC, store, restore).
pub const ISR_CYCLES: u64 = 25;

/// RAM bytes per block histogram slot.
pub const SLOT_RAM_BYTES: u32 = 2;

/// Flash bytes of the ISR and setup code (per program).
pub const FIXED_FLASH_BYTES: u32 = 64;

/// A sampling profiler firing every `period` cycles.
#[derive(Debug, Clone)]
pub struct SamplingProfiler {
    period: u64,
    next_sample: u64,
    /// Per procedure, per block: samples observed.
    block_samples: Vec<Vec<u64>>,
    /// Samples taken while in each procedure (for the overhead model).
    pub total_samples: u64,
    /// Currently executing (proc, block), tracked from block events.
    current: Option<(ProcId, BlockId)>,
}

impl SamplingProfiler {
    /// Creates a sampler firing every `period` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(program: &Program, period: u64) -> SamplingProfiler {
        assert!(period > 0, "sampling period must be positive");
        SamplingProfiler {
            period,
            next_sample: period,
            block_samples: program.procs.iter().map(|p| vec![0; p.cfg.len()]).collect(),
            total_samples: 0,
            current: None,
        }
    }

    /// Raw per-block sample counts for `proc`.
    pub fn block_samples(&self, proc: ProcId) -> &[u64] {
        &self.block_samples[proc.index()]
    }

    /// Derives branch probabilities from the time-weighted histogram by
    /// cost-correcting each block's share. Unobserved branches fall back to
    /// 0.5.
    pub fn branch_probs(&self, proc: ProcId, cfg: &Cfg, block_costs: &[u64]) -> BranchProbs {
        let samples = &self.block_samples[proc.index()];
        // Visit-rate estimate: samples / cost.
        let rate = |b: BlockId| -> f64 {
            let c = block_costs[b.index()].max(1) as f64;
            samples[b.index()] as f64 / c
        };
        let mut probs = BranchProbs::uniform(cfg, 0.5);
        for bb in cfg.branch_blocks() {
            let Terminator::Branch { on_true, on_false } = cfg.block(bb).term else {
                unreachable!("branch_blocks only yields branches")
            };
            let (rt, rf) = (rate(on_true), rate(on_false));
            if rt + rf > 0.0 {
                probs.set_prob_true(bb, rt / (rt + rf));
            }
        }
        probs
    }

    /// Static RAM cost.
    pub fn ram_bytes(program: &Program) -> u32 {
        program
            .procs
            .iter()
            .map(|p| p.cfg.len() as u32 * SLOT_RAM_BYTES)
            .sum()
    }

    /// Static flash cost.
    pub fn flash_bytes(_program: &Program) -> u32 {
        FIXED_FLASH_BYTES
    }
}

impl SamplingProfiler {
    /// Fires all samples due by `cycles`, attributing them to the block that
    /// was executing (PC sampling at block granularity).
    fn drain_due(&mut self, cycles: u64) -> u64 {
        let mut overhead = 0;
        while cycles >= self.next_sample {
            if let Some((p, b)) = self.current {
                self.block_samples[p.index()][b.index()] += 1;
                self.total_samples += 1;
                overhead += ISR_CYCLES;
            }
            self.next_sample += self.period;
        }
        overhead
    }
}

impl Profiler for SamplingProfiler {
    fn on_block(&mut self, proc: ProcId, block: BlockId, cycles: u64) -> u64 {
        let overhead = self.drain_due(cycles);
        self.current = Some((proc, block));
        overhead
    }

    fn on_proc_enter(&mut self, _proc: ProcId, cycles: u64) -> u64 {
        // Skip sample points that elapsed while the CPU slept between events.
        if self.current.is_none() && cycles >= self.next_sample {
            let periods = (cycles - self.next_sample) / self.period + 1;
            self.next_sample += periods * self.period;
        }
        0
    }

    fn on_proc_exit(&mut self, _proc: ProcId, cycles: u64) -> u64 {
        let overhead = self.drain_due(cycles);
        self.current = None;
        overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_mote::cost::{block_costs, AvrCost};
    use ct_mote::interp::Mote;

    const SRC: &str = "module M { var a: u32; proc f(x: u16) {
        if (x > 100) {
            var i: u16 = 0;
            while (i < 50) { a = a + i; i = i + 1; }
        } else { a = 0; }
    } }";

    #[test]
    fn samples_accumulate_in_hot_blocks() {
        let program = ct_ir::compile_source(SRC).unwrap();
        let mut mote = Mote::new(program.clone(), Box::new(AvrCost));
        let mut sp = SamplingProfiler::new(&program, 97);
        for i in 0..200 {
            mote.call(ProcId(0), &[if i % 2 == 0 { 200 } else { 0 }], &mut sp)
                .unwrap();
        }
        assert!(sp.total_samples > 100, "{}", sp.total_samples);
        // The loop body (hot) must dominate the sample histogram.
        let samples = sp.block_samples(ProcId(0));
        let max_idx = samples
            .iter()
            .enumerate()
            .max_by_key(|&(_, &s)| s)
            .unwrap()
            .0;
        let name = &program.procs[0].cfg.block(BlockId(max_idx as u32)).name;
        assert!(
            name.contains("loop"),
            "hottest block should be in the loop, got {name} ({samples:?})"
        );
    }

    #[test]
    fn derived_probs_are_rough_but_directional() {
        let program = ct_ir::compile_source(SRC).unwrap();
        let costs = block_costs(&program.procs[0], &AvrCost);
        let mut mote = Mote::new(program.clone(), Box::new(AvrCost));
        let mut sp = SamplingProfiler::new(&program, 53);
        // 90% of calls take the loop arm.
        for i in 0..500 {
            mote.call(ProcId(0), &[if i % 10 == 0 { 0 } else { 200 }], &mut sp)
                .unwrap();
        }
        let cfg = &program.procs[0].cfg;
        let probs = sp.branch_probs(ProcId(0), cfg, &costs);
        // The outer branch (first branch block) strongly favors true.
        let outer = cfg.branch_blocks()[0];
        let p = probs.prob_true(outer).unwrap();
        assert!(p > 0.6, "expected directional estimate, got {p}");
    }

    #[test]
    fn isr_overhead_charged() {
        let program = ct_ir::compile_source(SRC).unwrap();
        let mut base = Mote::new(program.clone(), Box::new(AvrCost));
        base.call(ProcId(0), &[200], &mut ct_mote::trace::NullProfiler)
            .unwrap();
        let base_cycles = base.cycles;

        let mut mote = Mote::new(program.clone(), Box::new(AvrCost));
        let mut sp = SamplingProfiler::new(&program, 100);
        mote.call(ProcId(0), &[200], &mut sp).unwrap();
        assert_eq!(mote.cycles, base_cycles + sp.total_samples * ISR_CYCLES);
        assert!(sp.total_samples > 0);
    }

    #[test]
    fn unsampled_branch_defaults_to_half() {
        let program = ct_ir::compile_source(SRC).unwrap();
        let costs = block_costs(&program.procs[0], &AvrCost);
        let sp = SamplingProfiler::new(&program, 100);
        let cfg = &program.procs[0].cfg;
        let probs = sp.branch_probs(ProcId(0), cfg, &costs);
        for &p in probs.as_slice() {
            assert_eq!(p, 0.5);
        }
    }

    #[test]
    fn static_costs() {
        let program = ct_ir::compile_source(SRC).unwrap();
        assert!(SamplingProfiler::ram_bytes(&program) > 0);
        assert_eq!(SamplingProfiler::flash_bytes(&program), FIXED_FLASH_BYTES);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let program = ct_ir::compile_source("module M { proc f() {} }").unwrap();
        SamplingProfiler::new(&program, 0);
    }
}

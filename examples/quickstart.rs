//! Quickstart: compile a sensor program, run it on the simulated mote with
//! end-to-end timing instrumentation only, and recover its branch
//! probabilities with Code Tomography.
//!
//! Run with: `cargo run --example quickstart`

use code_tomography::core::estimator::{estimate, EstimateOptions};
use code_tomography::core::samples::TimingSamples;
use code_tomography::ir;
use code_tomography::mote::cost::AvrCost;
use code_tomography::mote::devices::UniformAdc;
use code_tomography::mote::interp::Mote;
use code_tomography::mote::timer::VirtualTimer;
use code_tomography::mote::trace::{GroundTruthProfiler, PairProfiler, TimingProfiler};

fn main() {
    // 1. A sensor program: sample the ADC, branch on a threshold.
    let source = r#"
        module Demo {
            var threshold: u16 = 768;
            var alarms: u32;

            proc check() {
                var v: u16 = read_adc();
                if (v > threshold) {
                    alarms = alarms + 1;
                    var sent: bool = send_msg(v);
                    led_set(0, 1);
                } else {
                    led_set(0, 0);
                }
            }
        }
    "#;
    let program = ir::compile_source(source).expect("demo source compiles");
    let pid = program.proc_id("check").expect("check exists");

    // 2. Boot a simulated AVR-class mote with a uniform sensor field.
    //    With threshold 768 over 0..=1023, the true alarm probability is
    //    255/1024 ≈ 0.249.
    let mut mote = Mote::new(program.clone(), Box::new(AvrCost));
    mote.devices.adc = Box::new(UniformAdc { lo: 0, hi: 1023 });

    // 3. Run 2000 activations, measuring ONLY entry/exit timestamps on a
    //    32.768 kHz timer (what a real mote can afford). Ground truth rides
    //    along for scoring only — the estimator never sees it.
    let timer = VirtualTimer::khz32_at_8mhz();
    let mut truth = GroundTruthProfiler::new(&program);
    let mut timing = TimingProfiler::new(&program, timer, 0);
    for _ in 0..2000 {
        let mut pair = PairProfiler {
            a: &mut truth,
            b: &mut timing,
        };
        mote.call(pid, &[], &mut pair).expect("runs clean");
    }

    // 4. Estimate branch probabilities from the timing samples alone.
    let cfg = &program.procs[pid.index()].cfg;
    let samples = TimingSamples::new(timing.samples(pid).to_vec(), timer.cycles_per_tick());
    let est = estimate(
        cfg,
        mote.static_block_costs(pid),
        mote.static_edge_costs(pid),
        &samples,
        EstimateOptions::default(),
    )
    .expect("estimation succeeds");

    // 5. Compare against the ground truth the estimator never saw.
    let true_probs = truth.branch_probs(pid, cfg);
    println!("Code Tomography quickstart");
    println!("--------------------------");
    println!(
        "samples:            {} activations at {} cycles/tick",
        samples.len(),
        timer.cycles_per_tick()
    );
    println!("method:             {}", est.method);
    for (i, bb) in est.probs.blocks().iter().enumerate() {
        println!(
            "branch {bb}:         estimated {:.4}   true {:.4}",
            est.probs.as_slice()[i],
            true_probs.as_slice()[i],
        );
    }
    let err = (est.probs.as_slice()[0] - true_probs.as_slice()[0]).abs();
    println!("absolute error:     {err:.4}");
    assert!(err < 0.05, "estimation should be accurate");
    println!("ok: recovered the branch profile from end-to-end timing alone");
}

#!/usr/bin/env bash
# Benchmarks the sharded estimation service's ingest path and appends one
# timestamped run to the BENCH_ingest.json trajectory at the repo root.
#
# BENCH_ingest.json is an append-only history (schema bench_ingest/1,
# maintained by the ct-bench `bench_guard` tool): every run of this script
# adds an entry, and scripts/check.sh fails when the newest
# `service/ingest` mean regresses >15% against the best recorded run.
#
# The number comes from the full e16_fleet_scale sweep — 120k motes' worth
# of 4-tick batches with ~25% duplication, pushed through producer threads,
# bounded shard queues, and tree reductions to a final drain — so it prices
# the whole ingest path, not an isolated kernel. CT_THREADS is recorded so
# single-producer vs parallel runs are distinguishable.
#
# Usage: scripts/bench_ingest.sh            # defaults
#        CT_THREADS=1 scripts/bench_ingest.sh
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=BENCH_ingest.json
THREADS="${CT_THREADS:-$(nproc 2>/dev/null || echo 1)}"

echo "== building (release) =="
cargo build --release -p ct-bench >/dev/null

echo "== running e16_fleet_scale (full sweep) =="
# e16 prints: "bench: service/ingest ... <mean_ns> ns/iter (<N> iters)"
out=$(CT_THREADS="$THREADS" ./target/release/e16_fleet_scale 2>/dev/null \
    | grep '^bench:')
echo "$out"

echo "== appending to $OUT trajectory =="
printf '%s\n' "$out" | \
    ./target/release/bench_guard append-ingest "$OUT" "$THREADS"
./target/release/bench_guard validate "$OUT"
./target/release/bench_guard check "$OUT"

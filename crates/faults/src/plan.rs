//! Fault plans and chains: reproducible composition of fault models.
//!
//! A [`FaultPlan`] is the *description* of an injection — a seed plus an
//! ordered list of `(kind, rate)` pairs — cheap to store in experiment
//! configs and results. [`FaultPlan::build`] instantiates it as a
//! [`FaultChain`] of trait objects that rewrites tick streams. The corrupted
//! stream is a pure function of `(plan, input)`: the chain derives one
//! seeded generator from the plan and threads it through the models in
//! order, so replays are bitwise identical on any machine or thread count.

use crate::model::FaultModel;
use crate::FaultKind;
use ct_core::TimingSamples;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A reproducible description of a fault injection: seed plus ordered
/// `(kind, rate)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the injection's random stream.
    pub seed: u64,
    /// The faults to apply, in order, each with its rate in `[0, 1]`.
    pub faults: Vec<(FaultKind, f64)>,
}

impl FaultPlan {
    /// An empty plan (applies nothing) with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Appends a fault to the plan (builder style).
    pub fn with(mut self, kind: FaultKind, rate: f64) -> FaultPlan {
        self.faults.push((kind, rate));
        self
    }

    /// A single-fault plan.
    pub fn single(kind: FaultKind, rate: f64, seed: u64) -> FaultPlan {
        FaultPlan::new(seed).with(kind, rate)
    }

    /// Instantiates the plan's canonical models as an executable chain.
    pub fn build(&self) -> FaultChain {
        FaultChain {
            seed: self.seed,
            models: self
                .faults
                .iter()
                .map(|&(kind, rate)| kind.model(rate))
                .collect(),
        }
    }
}

/// An ordered pipeline of instantiated fault models sharing one seeded
/// random stream.
pub struct FaultChain {
    seed: u64,
    models: Vec<Box<dyn FaultModel>>,
}

impl FaultChain {
    /// Builds a chain directly from models (for custom, non-canonical
    /// compositions; prefer [`FaultPlan::build`] for sweeps).
    pub fn from_models(seed: u64, models: Vec<Box<dyn FaultModel>>) -> FaultChain {
        FaultChain { seed, models }
    }

    /// Applies every model in order. Deterministic: the same chain and input
    /// always produce the same output, independent of the environment.
    pub fn apply(&self, samples: &TimingSamples) -> TimingSamples {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = samples.clone();
        for model in &self.models {
            out = model.apply(&out, &mut rng);
        }
        out
    }

    /// Number of models in the chain.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True when the chain applies nothing.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// The model names, in application order.
    pub fn names(&self) -> Vec<&'static str> {
        self.models.iter().map(|m| m.name()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean() -> TimingSamples {
        let mut ticks = vec![115u64; 70];
        ticks.extend(vec![215u64; 30]);
        TimingSamples::new(ticks, 244)
    }

    #[test]
    fn empty_chain_is_identity() {
        let s = clean();
        assert_eq!(FaultPlan::new(9).build().apply(&s), s);
    }

    #[test]
    fn zero_rate_chain_over_all_kinds_is_identity() {
        let s = clean();
        let mut plan = FaultPlan::new(3);
        for kind in FaultKind::ALL {
            plan = plan.with(kind, 0.0);
        }
        let chain = plan.build();
        assert_eq!(chain.len(), FaultKind::ALL.len());
        assert_eq!(chain.apply(&s), s);
    }

    #[test]
    fn same_plan_replays_bitwise() {
        let s = clean();
        let plan = FaultPlan::new(11)
            .with(FaultKind::ClockDrift, 0.4)
            .with(FaultKind::RecordLoss, 0.2)
            .with(FaultKind::StuckAt, 0.1);
        let a = plan.build().apply(&s);
        let b = plan.build().apply(&s);
        assert_eq!(a, b);
        assert_ne!(a, s);
    }

    #[test]
    fn different_seeds_diverge() {
        let s = clean();
        let a = FaultPlan::single(FaultKind::StuckAt, 0.5, 1)
            .build()
            .apply(&s);
        let b = FaultPlan::single(FaultKind::StuckAt, 0.5, 2)
            .build()
            .apply(&s);
        assert_ne!(a, b);
    }

    #[test]
    fn order_matters() {
        let s = clean();
        let ab = FaultPlan::new(5)
            .with(FaultKind::TruncatedBatch, 0.5)
            .with(FaultKind::Duplication, 0.5)
            .build()
            .apply(&s);
        let ba = FaultPlan::new(5)
            .with(FaultKind::Duplication, 0.5)
            .with(FaultKind::TruncatedBatch, 0.5)
            .build()
            .apply(&s);
        assert_ne!(ab, ba);
    }

    #[test]
    fn chain_introspection() {
        let chain = FaultPlan::new(0)
            .with(FaultKind::Reordering, 0.1)
            .with(FaultKind::MisreportedResolution, 0.2)
            .build();
        assert!(!chain.is_empty());
        assert_eq!(chain.names(), vec!["reordering", "misreported-resolution"]);
    }
}

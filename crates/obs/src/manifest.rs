//! Per-run manifest: a single JSON document recording everything needed to
//! reproduce a results artifact — seeds and env knobs, the git revision,
//! wall/CPU time per stage, counters, and the estimator audit trail.

use std::fmt::Write as _;
use std::path::Path;

use crate::event::Value;
use crate::json::write_escaped;
use crate::recorder::Snapshot;

/// Environment knobs recorded in every manifest (value or `null`).
pub const ENV_KNOBS: &[&str] = &[
    "CT_THREADS",
    "CT_SEED",
    "CT_SMOKE",
    "E13_SMOKE",
    "CT_TRACE",
    "CT_TRACE_JSON",
    "CT_MANIFEST",
    "CT_CHECKPOINT_PATH",
    "CT_CHECKPOINT_EVERY",
    "CT_SHARDS",
    "CT_QUEUE_DEPTH",
    "CT_REDUCE_EVERY",
    "CT_METRICS_PATH",
    "CT_FLIGHT_RECORDER",
    "CT_FLIGHT_DEPTH",
];

/// Event-name prefixes that belong in the manifest's estimator audit trail.
const AUDIT_PREFIXES: &[&str] = &[
    "em.", "ladder.", "gnt.", "warn.", "place.", "pmu.", "fleet.", "ckpt.", "svc.",
];

/// Counter-name prefix mirrored into the manifest's dedicated `pmu`
/// section (prefix stripped), so counter drift between runs is one
/// `ct-obs-diff` section away.
const PMU_PREFIX: &str = "pmu.";

/// Best-effort git revision: walks up from the current directory to a
/// `.git`, then resolves `HEAD` through refs and `packed-refs`. Returns
/// `"unknown"` when anything is missing — a manifest must never fail a run.
pub fn git_rev() -> String {
    let Ok(mut dir) = std::env::current_dir() else {
        return "unknown".to_string();
    };
    let git = loop {
        let candidate = dir.join(".git");
        if candidate.is_dir() {
            break candidate;
        }
        if !dir.pop() {
            return "unknown".to_string();
        }
    };
    let Ok(head) = std::fs::read_to_string(git.join("HEAD")) else {
        return "unknown".to_string();
    };
    let head = head.trim();
    let Some(refname) = head.strip_prefix("ref: ") else {
        // Detached HEAD: the hash itself.
        return head.to_string();
    };
    if let Ok(hash) = std::fs::read_to_string(git.join(refname)) {
        return hash.trim().to_string();
    }
    if let Ok(packed) = std::fs::read_to_string(git.join("packed-refs")) {
        for line in packed.lines() {
            if let Some(hash) = line.strip_suffix(refname) {
                return hash.trim().to_string();
            }
        }
    }
    "unknown".to_string()
}

fn push_kv_str(out: &mut String, key: &str, value: &str) {
    write_escaped(out, key);
    out.push(':');
    write_escaped(out, value);
}

/// Renders the manifest document for `run_name` from `snap`, with
/// caller-supplied `extra` fields (e.g. per-binary seeds) inlined at the
/// top level under `"run"`.
pub fn render_manifest(run_name: &str, snap: &Snapshot, extra: &[(&str, Value)]) -> String {
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);

    let mut out = String::with_capacity(1024);
    out.push_str("{\n  ");
    push_kv_str(&mut out, "name", run_name);
    let _ = write!(out, ",\n  \"schema\": {},", crate::SCHEMA_VERSION);
    let _ = write!(out, "\n  \"unix_time\": {unix_secs},\n  ");
    push_kv_str(&mut out, "git_rev", &git_rev());

    // Environment knobs, recorded verbatim (null when unset).
    out.push_str(",\n  \"env\": {");
    for (i, knob) in ENV_KNOBS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        write_escaped(&mut out, knob);
        out.push_str(": ");
        match std::env::var(knob) {
            Ok(v) => write_escaped(&mut out, &v),
            Err(_) => out.push_str("null"),
        }
    }
    out.push_str("\n  }");

    // Caller context (seeds, app name, estimator choice, ...).
    out.push_str(",\n  \"run\": {");
    for (i, (k, v)) in extra.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        write_escaped(&mut out, k);
        out.push_str(": ");
        v.render(&mut out);
    }
    out.push_str("\n  }");

    // Stage/phase timing.
    out.push_str(",\n  \"spans\": {");
    for (i, (name, agg)) in snap.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        write_escaped(&mut out, name);
        let _ = write!(
            out,
            ": {{\"count\": {}, \"wall_ns\": {}, \"cpu_ticks\": {}}}",
            agg.count, agg.wall_ns, agg.cpu_ticks
        );
    }
    out.push_str("\n  }");

    out.push_str(",\n  \"counters\": {");
    for (i, (name, n)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        write_escaped(&mut out, name);
        let _ = write!(out, ": {n}");
    }
    out.push_str("\n  }");

    // Gauges (max-merged across threads). Additive to the schema; the
    // service's queue-depth and reduce-latency telemetry lands here.
    out.push_str(",\n  \"gauges\": {");
    for (i, (name, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        write_escaped(&mut out, name);
        if v.is_finite() {
            let _ = write!(out, ": {v}");
        } else {
            out.push_str(": null");
        }
    }
    out.push_str("\n  }");

    // Histograms: summary stats plus the compact bucket table, so
    // `ct-obs-diff` can compare distribution shape, not just extremes.
    // Additive to the schema (absent in pre-0.11 manifests).
    out.push_str(",\n  \"hists\": {");
    for (i, (name, h)) in snap.hists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        write_escaped(&mut out, name);
        let _ = write!(
            out,
            ": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": ",
            h.count(),
            h.sum(),
            h.min(),
            h.max(),
            h.p50(),
            h.p90(),
            h.p99()
        );
        write_escaped(&mut out, &h.render_buckets());
        out.push('}');
    }
    out.push_str("\n  }");

    // Virtual-PMU bank: the `pmu.*` counters again, prefix stripped —
    // the section experiment gates diff (additive to the schema).
    out.push_str(",\n  \"pmu\": {");
    let mut first = true;
    for (name, n) in &snap.counters {
        let Some(short) = name.strip_prefix(PMU_PREFIX) else {
            continue;
        };
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    ");
        write_escaped(&mut out, short);
        let _ = write!(out, ": {n}");
    }
    out.push_str("\n  }");

    // Estimator audit trail: the deterministic-content events that explain
    // where the estimate came from.
    out.push_str(",\n  \"audit\": [");
    let mut first = true;
    for e in &snap.events {
        if !AUDIT_PREFIXES.iter().any(|p| e.name.starts_with(p)) {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    ");
        out.push_str(&e.to_jsonl());
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Takes a fresh snapshot and writes the manifest for `run_name` to
/// `path`.
///
/// # Errors
///
/// Propagates I/O errors from writing the file.
pub fn write_manifest(path: &Path, run_name: &str, extra: &[(&str, Value)]) -> std::io::Result<()> {
    let snap = crate::recorder::snapshot();
    std::fs::write(path, render_manifest(run_name, &snap, extra))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn manifest_is_valid_json_with_expected_keys() {
        let snap = Snapshot::default();
        let doc = render_manifest("e1_accuracy", &snap, &[("seed", Value::U64(42))]);
        let parsed = json::parse(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
        assert_eq!(
            parsed.get("name").and_then(json::Json::as_str),
            Some("e1_accuracy")
        );
        assert!(parsed.get("git_rev").is_some());
        assert!(parsed
            .get("env")
            .and_then(|e| e.get("CT_THREADS"))
            .is_some());
        assert_eq!(
            parsed
                .get("run")
                .and_then(|r| r.get("seed"))
                .and_then(json::Json::as_num),
            Some(42.0)
        );
        assert!(matches!(parsed.get("audit"), Some(json::Json::Arr(_))));
    }

    #[test]
    fn pmu_counters_mirror_into_their_own_section() {
        let mut snap = Snapshot::default();
        snap.counters.push(("fleet.motes".to_string(), 4));
        snap.counters.push(("pmu.cond_taken".to_string(), 7));
        snap.counters.push(("pmu.jumps".to_string(), 3));
        let doc = render_manifest("e4_placement", &snap, &[]);
        let parsed = json::parse(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
        let pmu = parsed.get("pmu").expect("pmu section");
        assert_eq!(
            pmu.get("cond_taken").and_then(json::Json::as_num),
            Some(7.0)
        );
        assert_eq!(pmu.get("jumps").and_then(json::Json::as_num), Some(3.0));
        assert!(pmu.get("fleet.motes").is_none(), "only pmu.* mirrored");
        // The raw counter stays in `counters` too.
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("pmu.cond_taken"))
                .and_then(json::Json::as_num),
            Some(7.0)
        );
    }

    #[test]
    fn gauges_render_with_non_finite_values_nulled() {
        let mut snap = Snapshot::default();
        snap.gauges.push(("svc.queue_depth".to_string(), 17.0));
        snap.gauges
            .push(("svc.reduce.latency_us".to_string(), f64::NEG_INFINITY));
        let doc = render_manifest("e16_fleet_scale", &snap, &[]);
        let parsed = json::parse(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
        let gauges = parsed.get("gauges").expect("gauges section");
        assert_eq!(
            gauges.get("svc.queue_depth").and_then(json::Json::as_num),
            Some(17.0)
        );
        assert!(
            matches!(gauges.get("svc.reduce.latency_us"), Some(json::Json::Null)),
            "non-finite gauge must render as null, not break the JSON"
        );
    }

    #[test]
    fn hists_render_with_summary_and_buckets() {
        let mut h = crate::hist::HistData::default();
        for v in [4u64, 4, 4, 90] {
            h.record(v);
        }
        let mut snap = Snapshot::default();
        snap.hists.push(("svc.batch_samples".to_string(), h));
        let doc = render_manifest("e18_telemetry", &snap, &[]);
        let parsed = json::parse(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
        let hist = parsed
            .get("hists")
            .and_then(|hs| hs.get("svc.batch_samples"))
            .expect("hist section entry");
        assert_eq!(hist.get("count").and_then(json::Json::as_num), Some(4.0));
        assert_eq!(hist.get("p50").and_then(json::Json::as_num), Some(4.0));
        assert_eq!(hist.get("max").and_then(json::Json::as_num), Some(90.0));
        let buckets = hist
            .get("buckets")
            .and_then(json::Json::as_str)
            .expect("compact bucket table");
        assert!(buckets.starts_with("4:3;"), "unexpected buckets {buckets}");
    }

    #[test]
    fn git_rev_resolves_in_this_repo() {
        // Running inside the repository: HEAD should resolve to a 40-hex
        // commit id (or "unknown" in exotic checkouts — never panic).
        let rev = git_rev();
        assert!(
            rev == "unknown" || (rev.len() == 40 && rev.chars().all(|c| c.is_ascii_hexdigit())),
            "unexpected rev {rev:?}"
        );
    }
}

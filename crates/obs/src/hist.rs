//! Deterministic log-bucketed histograms — the distribution-valued metric
//! of telemetry v2.
//!
//! # Bucket scheme
//!
//! HDR-style: values below `2^SUB_BITS` get one exact bucket each; above
//! that, every power-of-two octave is split into `2^SUB_BITS` equal-width
//! sub-buckets, so the relative quantization error is bounded by
//! `2^-SUB_BITS` (6.25% at the default 4 sub-bucket bits) across the full
//! `u64` range. Bucket indices are pure integer arithmetic on the value —
//! no floats anywhere near the data path — and counts are saturating
//! `u64`s, so [`HistData::merge`] is exactly commutative and associative:
//! any merge tree over any partition of the same observations yields a
//! bitwise-identical histogram. That is the same `SuffStats` discipline
//! the rest of the registry follows (see [`crate::recorder`]).
//!
//! # Determinism caveat
//!
//! The *merge* is always deterministic; whether the *contents* are depends
//! on what was recorded. Value-shaped histograms (batch sizes) replay
//! identically at any thread or shard count. Wall-time-derived ones
//! (latencies, queue depths over time) are scheduling artifacts;
//! [`is_volatile_hist_name`] classifies them by naming convention so
//! `ct-obs-diff` and the golden tests can tolerate exactly those.

use std::collections::BTreeMap;

/// Sub-bucket resolution: each power-of-two octave splits into
/// `2^SUB_BITS` buckets (relative error ≤ `2^-SUB_BITS`).
pub const SUB_BITS: u32 = 4;

const SUB_BUCKETS: u64 = 1 << SUB_BITS;

/// The bucket index recording `v` (pure integer arithmetic; total over
/// `u64`, at most 976 distinct buckets).
pub fn bucket_index(v: u64) -> u32 {
    if v < SUB_BUCKETS {
        return v as u32;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = ((v >> shift) & (SUB_BUCKETS - 1)) as u32;
    ((shift + 1) << SUB_BITS) + sub
}

/// The smallest value landing in bucket `i`.
pub fn bucket_lo(i: u32) -> u64 {
    let octave = i >> SUB_BITS;
    let sub = u64::from(i) & (SUB_BUCKETS - 1);
    if octave == 0 {
        return sub;
    }
    (SUB_BUCKETS + sub) << (octave - 1)
}

/// The largest value landing in bucket `i` (quantile reads report this
/// upper bound, clamped to the observed maximum).
pub fn bucket_hi(i: u32) -> u64 {
    let octave = i >> SUB_BITS;
    if octave == 0 {
        return bucket_lo(i);
    }
    bucket_lo(i).saturating_add((1u64 << (octave - 1)) - 1)
}

/// Whether a histogram's *contents* are scheduling-dependent by naming
/// convention: duration-valued histograms carry a `_ns`/`_us`/`_ms`
/// suffix, and queue-depth-over-time histograms contain `queue_depth`.
/// Volatile histograms still merge deterministically; their bucket counts
/// are simply not comparable across runs, so `ct-obs-diff` notes rather
/// than flags them (mirroring the volatile `svc.*` scalar metrics).
pub fn is_volatile_hist_name(name: &str) -> bool {
    name.ends_with("_ns")
        || name.ends_with("_us")
        || name.ends_with("_ms")
        || name.contains("queue_depth")
}

/// One log-bucketed histogram: sparse bucket table plus count/sum/min/max.
///
/// All fields are integers and every update saturates, so merging is
/// exactly commutative and associative (see the module docs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistData {
    buckets: BTreeMap<u32, u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl HistData {
    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        let slot = self.buckets.entry(bucket_index(v)).or_insert(0);
        *slot = slot.saturating_add(1);
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
    }

    /// Commutative, associative merge: bucket counts add pointwise
    /// (saturating), min/max resolve by min/max.
    pub fn merge(&mut self, other: &HistData) {
        if other.count == 0 {
            return;
        }
        for (&i, &c) in &other.buckets {
            let slot = self.buckets.entry(i).or_insert(0);
            *slot = slot.saturating_add(c);
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of every observation.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// The `q`-quantile (0 < q ≤ 1) as the covering bucket's upper bound,
    /// clamped to the observed maximum — so `quantile(1.0) == max()`
    /// exactly. Returns 0 on an empty histogram. Deterministic: a pure
    /// function of the bucket table.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (&i, &c) in &self.buckets {
            cum = cum.saturating_add(c);
            if cum >= target {
                return bucket_hi(i).min(self.max);
            }
        }
        self.max
    }

    /// Median upper bound.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile upper bound.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile upper bound.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The sparse bucket table, ascending by index.
    pub fn buckets(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.buckets.iter().map(|(&i, &c)| (i, c))
    }

    /// Compact `index:count` rendering (`;`-separated, ascending), the
    /// form embedded in JSONL `hist` lines and manifest sections.
    pub fn render_buckets(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, (idx, c)) in self.buckets().enumerate() {
            if i > 0 {
                out.push(';');
            }
            let _ = write!(out, "{idx}:{c}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_tile_the_u64_range_without_gaps() {
        // Consecutive indices abut: hi(i) + 1 == lo(i + 1), from the exact
        // region through several octaves.
        for i in 0..200 {
            assert_eq!(
                bucket_hi(i) + 1,
                bucket_lo(i + 1),
                "gap or overlap between buckets {i} and {}",
                i + 1
            );
        }
        // Every probed value round-trips into a bucket that contains it.
        for v in [0, 1, 15, 16, 17, 255, 1 << 20, u64::MAX / 3, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_lo(i) <= v && v <= bucket_hi(i), "v={v} bucket={i}");
        }
        assert_eq!(bucket_hi(bucket_index(u64::MAX)), u64::MAX);
    }

    #[test]
    fn relative_error_is_bounded_by_sub_bucket_width() {
        for v in (17..1_000_000u64).step_by(997) {
            let i = bucket_index(v);
            let err = (bucket_hi(i) - v) as f64 / v as f64;
            assert!(err <= 1.0 / SUB_BUCKETS as f64, "v={v} err={err}");
        }
    }

    #[test]
    fn quantiles_clamp_to_observed_extremes() {
        let mut h = HistData::default();
        assert_eq!(h.quantile(0.99), 0, "empty histogram reads 0");
        for v in [3, 3, 3, 1000] {
            h.record(v);
        }
        assert_eq!(h.p50(), 3);
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.min(), 3);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1009);
        // p99 of 4 samples lands on the last one; the bucket's upper bound
        // is clamped to the observed max.
        assert_eq!(h.p99(), 1000);
    }

    #[test]
    fn merge_matches_monolithic_recording() {
        let values: Vec<u64> = (0..500).map(|i| (i * i * 2654435761) % 100_000).collect();
        let mut mono = HistData::default();
        values.iter().for_each(|&v| mono.record(v));
        for parts in [2usize, 3, 7] {
            let mut shards = vec![HistData::default(); parts];
            for (i, &v) in values.iter().enumerate() {
                shards[i % parts].record(v);
            }
            let mut merged = HistData::default();
            shards.iter().for_each(|s| merged.merge(s));
            assert_eq!(merged, mono, "{parts}-way merge diverged");
        }
    }

    #[test]
    fn merging_an_empty_histogram_is_the_identity() {
        let mut h = HistData::default();
        h.record(42);
        let before = h.clone();
        h.merge(&HistData::default());
        assert_eq!(h, before);
        let mut e = HistData::default();
        e.merge(&before);
        assert_eq!(e, before, "empty ⊕ h must equal h (min/max included)");
    }

    #[test]
    fn volatile_name_convention() {
        assert!(is_volatile_hist_name("svc.ingest.enqueue_ns"));
        assert!(is_volatile_hist_name("svc.reduce.latency_us"));
        assert!(is_volatile_hist_name("svc.shard.3.queue_depth"));
        assert!(is_volatile_hist_name("stage.estimate.wall_ns"));
        assert!(!is_volatile_hist_name("svc.batch_samples"));
    }

    #[test]
    fn bucket_rendering_is_compact_and_ordered() {
        let mut h = HistData::default();
        for v in [1, 1, 70, 3] {
            h.record(v);
        }
        let s = h.render_buckets();
        assert_eq!(s, format!("1:2;3:1;{}:1", bucket_index(70)));
    }
}

//! Integration tests for the extension features: trip-count analysis,
//! unrolled estimation, and energy accounting.

use code_tomography::core::samples::TimingSamples;
use code_tomography::core::unrolled::estimate_unrolled;
use code_tomography::mote::cost::AvrCost;
use code_tomography::mote::energy::EnergyModel;
use code_tomography::mote::timer::VirtualTimer;
use code_tomography::mote::trace::{GroundTruthProfiler, PairProfiler, TimingProfiler};

#[test]
fn crc_trip_counts_are_detected_by_the_compiler() {
    let program = code_tomography::apps::crc::program();
    let proc = &program.procs[0];
    // Outer byte loop (8) and inner bit loop (8).
    let mut trips: Vec<u64> = proc.counted_loops.iter().map(|&(_, k)| k).collect();
    trips.sort_unstable();
    assert_eq!(trips, vec![8, 8]);
}

#[test]
fn all_counted_apps_unroll_within_budget() {
    for app in code_tomography::apps::all_apps() {
        let program = app.compile();
        let proc = &program.procs[app.target_id(&program).index()];
        if proc.counted_loops.is_empty() {
            continue;
        }
        let u = code_tomography::cfg::unroll::unroll(&proc.cfg, &proc.counted_loops)
            .unwrap_or_else(|e| panic!("{}: {e}", app.name));
        assert!(u.cfg.validate().is_ok(), "{}", app.name);
        // Costs map over without loss.
        assert_eq!(u.orig_block.len(), u.cfg.len());
        assert_eq!(u.orig_edge.len(), u.cfg.edges().len());
    }
}

#[test]
fn unrolled_estimation_recovers_crc_bit_branch_end_to_end() {
    let app = code_tomography::apps::app_by_name("crc").unwrap();
    let mut mote = app.boot(Box::new(AvrCost));
    mote.reseed(77);
    let program = mote.program().clone();
    let pid = app.target_id(&program);
    let mut gt = GroundTruthProfiler::new(&program);
    let mut tp = TimingProfiler::new(&program, VirtualTimer::cycle_accurate(), 0);
    for _ in 0..400 {
        let mut pair = PairProfiler {
            a: &mut gt,
            b: &mut tp,
        };
        mote.call(pid, &[], &mut pair).unwrap();
    }
    let proc = &program.procs[pid.index()];
    let samples = TimingSamples::new(tp.samples(pid).to_vec(), 1);
    let r = estimate_unrolled(
        &proc.cfg,
        &proc.counted_loops,
        mote.static_block_costs(pid),
        mote.static_edge_costs(pid),
        &samples,
        Default::default(),
    )
    .unwrap();
    let truth = gt.branch_probs(pid, &proc.cfg);
    for (est, tru) in r.probs.as_slice().iter().zip(truth.as_slice()) {
        assert!((est - tru).abs() < 0.02, "{:?} vs {:?}", r.probs, truth);
    }
    assert_eq!(r.unexplained, 0);
}

#[test]
fn energy_accounting_tracks_activity() {
    let app = code_tomography::apps::app_by_name("oscilloscope").unwrap();
    let mut mote = app.boot(Box::new(AvrCost));
    mote.reseed(5);
    let pid = app.target_id(mote.program());
    for _ in 0..64 {
        mote.call(pid, &[], &mut code_tomography::mote::trace::NullProfiler)
            .unwrap();
    }
    assert_eq!(mote.devices.adc_samples, 64);
    assert!(
        !mote.devices.radio.sent.is_empty(),
        "four flushes should transmit"
    );

    let micaz = EnergyModel::micaz().charge_of(mote.cycles, &mote.devices);
    let telosb = EnergyModel::telosb().charge_of(mote.cycles, &mote.devices);
    assert!(micaz > telosb, "MicaZ CPU draws more than TelosB");
    // Radio + ADC must be visible in the bill.
    let cpu_only = EnergyModel::micaz().charge_uc(mote.cycles, 0, 0);
    assert!(micaz > cpu_only);
}

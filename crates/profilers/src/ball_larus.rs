//! Ball–Larus efficient path profiling (PLDI 1996), the stronger
//! conventional baseline: one register update per edge and one table
//! increment per completed path, yielding exact *path* frequencies.
//!
//! Loops are handled the standard way: back edges end the current path and
//! start a new one, via pseudo edges `latch → EXIT` and `ENTRY → header` in
//! the numbering DAG. Path ids decode uniquely back to edge sequences, so an
//! exact edge profile is recoverable — at the cost of a path register, a
//! count table in scarce RAM, and instrumentation on most edges.

use ct_cfg::dominators::Dominators;
use ct_cfg::graph::Cfg;
use ct_cfg::profile::EdgeProfile;
use ct_ir::instr::ProcId;
use ct_ir::program::Program;
use ct_mote::trace::Profiler;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Cycles of one `r += val` update (only charged when `val > 0`; zero-valued
/// increments are elided by the instrumenting compiler).
pub const REGISTER_UPDATE_CYCLES: u64 = 4;

/// Cycles of one path-table increment (at exits and back edges).
pub const PATH_RECORD_CYCLES: u64 = 14;

/// RAM bytes for the path register.
pub const REGISTER_RAM_BYTES: u32 = 2;

/// Flash bytes per instrumented edge.
pub const EDGE_SITE_FLASH_BYTES: u32 = 8;

/// Flash bytes of the fixed record/dispatch code per procedure.
pub const FIXED_FLASH_BYTES: u32 = 24;

/// Ball–Larus is declared infeasible beyond this many static paths (the
/// count table would not fit mote RAM).
pub const MAX_PATHS: u64 = 4096;

/// Why a procedure cannot be Ball–Larus instrumented.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlError {
    /// Static path count exceeds [`MAX_PATHS`].
    TooManyPaths {
        /// The offending count.
        paths: u64,
    },
    /// The CFG has no single exit or failed validation.
    BadShape(String),
}

impl fmt::Display for BlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlError::TooManyPaths { paths } => {
                write!(f, "procedure has {paths} static paths (> {MAX_PATHS})")
            }
            BlError::BadShape(m) => write!(f, "cannot instrument: {m}"),
        }
    }
}

impl Error for BlError {}

/// An out-edge of the numbering DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DagEdge {
    /// Ball–Larus increment value.
    val: u64,
    /// Target vertex.
    target: usize,
    /// Index of the underlying real CFG edge, `None` for pseudo edges.
    real_edge: Option<usize>,
}

/// The Ball–Larus numbering of one procedure.
#[derive(Debug, Clone)]
pub struct BlNumbering {
    /// DAG adjacency (real non-back edges plus pseudo edges), per vertex, in
    /// numbering order.
    dag: Vec<Vec<DagEdge>>,
    /// Per real edge: the increment value (`0` for back edges; applied at
    /// traversal).
    edge_val: Vec<u64>,
    /// Per real edge: is it a back edge (ends a path)?
    is_back: Vec<bool>,
    /// Per real edge (back edges only): `(terminal value added when
    /// recording, initial register value after restart)`.
    back_vals: Vec<Option<(u64, u64)>>,
    /// Total static path count.
    num_paths: u64,
    entry: usize,
}

impl BlNumbering {
    /// Computes the numbering for a validated single-exit CFG.
    ///
    /// # Errors
    ///
    /// [`BlError::BadShape`] for invalid/multi-exit graphs,
    /// [`BlError::TooManyPaths`] beyond [`MAX_PATHS`].
    pub fn compute(cfg: &Cfg) -> Result<BlNumbering, BlError> {
        cfg.validate()
            .map_err(|e| BlError::BadShape(e.to_string()))?;
        let exits = cfg.exit_blocks();
        if exits.len() != 1 {
            return Err(BlError::BadShape(format!("{} exits", exits.len())));
        }
        let exit = exits[0].index();
        let entry = cfg.entry().index();
        let n = cfg.len();
        let dom = Dominators::compute(cfg);
        let edges = cfg.edges();

        let is_back: Vec<bool> = edges.iter().map(|e| dom.dominates(e.to, e.from)).collect();

        // DAG adjacency: real non-back edges in edge order, then pseudo
        // edges (latch→EXIT at the latch; ENTRY→header at the entry).
        let mut dag: Vec<Vec<DagEdge>> = vec![Vec::new(); n];
        for e in &edges {
            if !is_back[e.index] {
                dag[e.from.index()].push(DagEdge {
                    val: 0,
                    target: e.to.index(),
                    real_edge: Some(e.index),
                });
            }
        }
        // Pseudo edges, deterministically ordered by the back edge's index.
        for e in &edges {
            if is_back[e.index] {
                dag[e.from.index()].push(DagEdge {
                    val: 0,
                    target: exit,
                    real_edge: None,
                });
                dag[entry].push(DagEdge {
                    val: 0,
                    target: e.to.index(),
                    real_edge: None,
                });
            }
        }

        // NumPaths via reverse topological order of the DAG.
        let order = topo_order(&dag, n)
            .ok_or_else(|| BlError::BadShape("numbering DAG is cyclic (irreducible CFG)".into()))?;
        let mut num_paths = vec![0u64; n];
        for &v in order.iter().rev() {
            if v == exit {
                num_paths[v] = 1;
                // The exit may still have pseudo out-edges? No: pseudo edges
                // go *to* the exit. Real out-edges of the exit do not exist.
                continue;
            }
            let mut acc: u64 = 0;
            for de in &mut dag[v] {
                de.val = acc;
                acc = acc.saturating_add(num_paths[de.target]);
            }
            num_paths[v] = acc;
        }
        let total = num_paths[entry];
        if total > MAX_PATHS {
            return Err(BlError::TooManyPaths { paths: total });
        }
        if total == 0 {
            return Err(BlError::BadShape("no entry-to-exit path".into()));
        }

        // Per-real-edge values and back-edge records.
        let mut edge_val = vec![0u64; edges.len()];
        let mut back_vals = vec![None; edges.len()];
        for e in &edges {
            if is_back[e.index] {
                let term = dag[e.from.index()]
                    .iter()
                    .find(|de| de.real_edge.is_none() && de.target == exit)
                    .expect("latch has pseudo exit edge")
                    .val;
                let init = dag[entry]
                    .iter()
                    .find(|de| de.real_edge.is_none() && de.target == e.to.index())
                    .expect("entry has pseudo header edge")
                    .val;
                back_vals[e.index] = Some((term, init));
            } else {
                edge_val[e.index] = dag[e.from.index()]
                    .iter()
                    .find(|de| de.real_edge == Some(e.index))
                    .expect("real edge in DAG")
                    .val;
            }
        }

        Ok(BlNumbering {
            dag,
            edge_val,
            is_back,
            back_vals,
            num_paths: total,
            entry,
        })
    }

    /// Total static path count.
    pub fn num_paths(&self) -> u64 {
        self.num_paths
    }

    /// Decodes a path id into the real CFG edges it traverses.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (corrupt count table).
    pub fn decode(&self, id: u64) -> Vec<usize> {
        assert!(id < self.num_paths, "path id {id} out of range");
        let mut real_edges = Vec::new();
        let mut v = self.entry;
        let mut remaining = id;
        loop {
            let outs = &self.dag[v];
            if outs.is_empty() {
                break; // exit reached (the exit has no DAG out-edges)
            }
            // Values are cumulative in out-edge order, so the edge whose id
            // range contains `remaining` is the last one with val ≤ remaining.
            let mut chosen = outs[0];
            for de in outs {
                if de.val <= remaining {
                    chosen = *de;
                } else {
                    break;
                }
            }
            remaining -= chosen.val;
            if let Some(re) = chosen.real_edge {
                real_edges.push(re);
            }
            v = chosen.target;
        }
        real_edges
    }
}

fn topo_order(dag: &[Vec<DagEdge>], n: usize) -> Option<Vec<usize>> {
    let mut indeg = vec![0usize; n];
    for outs in dag {
        for de in outs {
            indeg[de.target] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop() {
        order.push(v);
        for de in &dag[v] {
            indeg[de.target] -= 1;
            if indeg[de.target] == 0 {
                queue.push(de.target);
            }
        }
    }
    if order.len() == n {
        Some(order)
    } else {
        None
    }
}

/// The runtime profiler: path register semantics over the interpreter's edge
/// events.
#[derive(Debug)]
pub struct BallLarusProfiler {
    numberings: Vec<Option<BlNumbering>>,
    /// Per procedure: path id → count.
    path_counts: Vec<HashMap<u64, u64>>,
    /// Per procedure, per edge: back-edge traversal counts (recorded at path
    /// breaks).
    back_counts: Vec<Vec<u64>>,
    /// Per procedure activation stack of register values (nested calls).
    reg_stack: Vec<(ProcId, u64)>,
    invocations: Vec<u64>,
}

impl BallLarusProfiler {
    /// Instruments every procedure of `program` that admits a numbering;
    /// procedures that do not (too many paths) are left uninstrumented and
    /// reported by [`Self::numbering`] as `None`.
    pub fn new(program: &Program) -> BallLarusProfiler {
        let numberings: Vec<Option<BlNumbering>> = program
            .procs
            .iter()
            .map(|p| BlNumbering::compute(&p.cfg).ok())
            .collect();
        BallLarusProfiler {
            path_counts: vec![HashMap::new(); program.procs.len()],
            back_counts: program
                .procs
                .iter()
                .map(|p| vec![0; p.cfg.edges().len()])
                .collect(),
            reg_stack: Vec::new(),
            invocations: vec![0; program.procs.len()],
            numberings,
        }
    }

    /// The numbering of `proc`, if instrumentable.
    pub fn numbering(&self, proc: ProcId) -> Option<&BlNumbering> {
        self.numberings[proc.index()].as_ref()
    }

    /// Activations of `proc`.
    pub fn invocations(&self, proc: ProcId) -> u64 {
        self.invocations[proc.index()]
    }

    /// Raw path counts of `proc`.
    pub fn path_counts(&self, proc: ProcId) -> &HashMap<u64, u64> {
        &self.path_counts[proc.index()]
    }

    /// Reconstructs the exact edge profile of `proc` from path counts.
    ///
    /// Returns `None` when the procedure was not instrumentable.
    pub fn edge_profile(&self, proc: ProcId, cfg: &Cfg) -> Option<EdgeProfile> {
        let numbering = self.numberings[proc.index()].as_ref()?;
        let mut counts = vec![0u64; cfg.edges().len()];
        for (&id, &n) in &self.path_counts[proc.index()] {
            for re in numbering.decode(id) {
                counts[re] += n;
            }
        }
        for (e, &n) in self.back_counts[proc.index()].iter().enumerate() {
            counts[e] += n;
        }
        Some(EdgeProfile::from_counts(cfg, counts))
    }

    /// Static RAM cost for `program` (register + count table per
    /// instrumentable procedure).
    pub fn ram_bytes(&self, program: &Program) -> u32 {
        program
            .procs
            .iter()
            .enumerate()
            .map(|(i, _)| match &self.numberings[i] {
                Some(nb) => REGISTER_RAM_BYTES + 2 * nb.num_paths().min(MAX_PATHS) as u32,
                None => 0,
            })
            .sum()
    }

    /// Static flash cost for `program`.
    pub fn flash_bytes(&self, program: &Program) -> u32 {
        program
            .procs
            .iter()
            .enumerate()
            .map(|(i, p)| match &self.numberings[i] {
                Some(nb) => {
                    let sites = nb
                        .edge_val
                        .iter()
                        .enumerate()
                        .filter(|&(e, &v)| v > 0 || nb.is_back[e])
                        .count() as u32;
                    let _ = p;
                    FIXED_FLASH_BYTES + sites * EDGE_SITE_FLASH_BYTES
                }
                None => 0,
            })
            .sum()
    }
}

impl Profiler for BallLarusProfiler {
    fn on_proc_enter(&mut self, proc: ProcId, _cycles: u64) -> u64 {
        self.invocations[proc.index()] += 1;
        self.reg_stack.push((proc, 0));
        0
    }

    fn on_proc_exit(&mut self, proc: ProcId, _cycles: u64) -> u64 {
        // An unbalanced event stream (exit without enter) records nothing
        // rather than panicking the profiler.
        let Some((p, r)) = self.reg_stack.pop() else {
            return 0;
        };
        debug_assert_eq!(p, proc);
        if self.numberings[proc.index()].is_some() {
            *self.path_counts[proc.index()].entry(r).or_insert(0) += 1;
            PATH_RECORD_CYCLES
        } else {
            0
        }
    }

    fn on_edge(&mut self, proc: ProcId, edge_index: usize) -> u64 {
        let Some(nb) = self.numberings[proc.index()].as_ref() else {
            return 0;
        };
        // Edge events outside any activation (unbalanced stream) record
        // nothing rather than panicking the profiler.
        let Some((p, r)) = self.reg_stack.last_mut() else {
            return 0;
        };
        debug_assert_eq!(*p, proc);
        if nb.is_back[edge_index] {
            let Some((term, init)) = nb.back_vals[edge_index] else {
                return 0; // unreachable: numbering fills every back edge
            };
            let id = *r + term;
            *self.path_counts[proc.index()].entry(id).or_insert(0) += 1;
            self.back_counts[proc.index()][edge_index] += 1;
            *r = init;
            PATH_RECORD_CYCLES
        } else {
            let v = nb.edge_val[edge_index];
            *r += v;
            if v > 0 {
                REGISTER_UPDATE_CYCLES
            } else {
                0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_cfg::builder::{diamond, diamond_chain, while_loop};
    use ct_mote::cost::AvrCost;
    use ct_mote::interp::Mote;
    use ct_mote::trace::{GroundTruthProfiler, PairProfiler};

    #[test]
    fn diamond_numbering_has_two_paths() {
        let nb = BlNumbering::compute(&diamond()).unwrap();
        assert_eq!(nb.num_paths(), 2);
        let p0 = nb.decode(0);
        let p1 = nb.decode(1);
        assert_ne!(p0, p1);
        assert_eq!(p0.len(), 2);
        assert_eq!(p1.len(), 2);
    }

    #[test]
    fn diamond_chain_path_counts_are_exponential() {
        for k in 1..6 {
            let nb = BlNumbering::compute(&diamond_chain(k)).unwrap();
            assert_eq!(nb.num_paths(), 1 << k, "k={k}");
        }
    }

    #[test]
    fn while_loop_numbering_breaks_at_back_edge() {
        let cfg = while_loop();
        let nb = BlNumbering::compute(&cfg).unwrap();
        // Paths: entry→header→exit, entry→header→body(break),
        // restart header→exit, restart header→body(break): ids exist for
        // entry-rooted and header-rooted prefixes.
        assert!(nb.num_paths() >= 3, "{}", nb.num_paths());
    }

    #[test]
    fn decode_ids_are_unique() {
        let cfg = diamond_chain(3);
        let nb = BlNumbering::compute(&cfg).unwrap();
        let mut seen = std::collections::HashSet::new();
        for id in 0..nb.num_paths() {
            assert!(seen.insert(nb.decode(id)), "duplicate decode for {id}");
        }
    }

    #[test]
    fn too_many_paths_rejected() {
        let cfg = diamond_chain(13); // 8192 paths
        assert!(matches!(
            BlNumbering::compute(&cfg),
            Err(BlError::TooManyPaths { .. })
        ));
    }

    /// End-to-end: Ball–Larus edge profile must equal ground truth exactly.
    fn assert_matches_ground_truth(src: &str, args: impl Fn(usize) -> Vec<i64>, n: usize) {
        let program = ct_ir::compile_source(src).unwrap();
        let mut mote = Mote::new(program.clone(), Box::new(AvrCost));
        let mut gt = GroundTruthProfiler::new(&program);
        let mut bl = BallLarusProfiler::new(&program);
        for i in 0..n {
            let mut pair = PairProfiler {
                a: &mut gt,
                b: &mut bl,
            };
            mote.call(ProcId(0), &args(i), &mut pair).unwrap();
        }
        let cfg = &program.procs[0].cfg;
        let from_bl = bl.edge_profile(ProcId(0), cfg).unwrap();
        assert_eq!(from_bl.counts(), gt.profile(ProcId(0)).counts());
    }

    #[test]
    fn branch_profile_matches_ground_truth() {
        assert_matches_ground_truth(
            "module M { var a: u16; proc f(x: u16) {
                if (x % 3 == 0) { a = a + x; } else { a = a * 2; }
            } }",
            |i| vec![i as i64],
            50,
        );
    }

    #[test]
    fn loop_profile_matches_ground_truth() {
        assert_matches_ground_truth(
            "module M { var a: u32; proc f(n: u16) {
                var i: u16 = 0;
                while (i < n) { a = a + i; i = i + 1; }
            } }",
            |i| vec![(i % 7) as i64],
            40,
        );
    }

    #[test]
    fn nested_control_flow_matches_ground_truth() {
        assert_matches_ground_truth(
            "module M { var a: u32; proc f(n: u16) {
                var i: u16 = 0;
                while (i < n) {
                    if (i % 2 == 0) { a = a + i; } else { a = a + 3; }
                    i = i + 1;
                }
            } }",
            |i| vec![(i % 9) as i64],
            60,
        );
    }

    #[test]
    fn overheads_are_charged() {
        let program = ct_ir::compile_source(
            "module M { var a: u16; proc f(x: u16) {
                if (x > 1) { a = 1; } else { a = 2; }
            } }",
        )
        .unwrap();
        let mut base = Mote::new(program.clone(), Box::new(AvrCost));
        base.call(ProcId(0), &[5], &mut ct_mote::trace::NullProfiler)
            .unwrap();
        let base_cycles = base.cycles;

        let mut mote = Mote::new(program.clone(), Box::new(AvrCost));
        let mut bl = BallLarusProfiler::new(&program);
        mote.call(ProcId(0), &[5], &mut bl).unwrap();
        assert!(mote.cycles > base_cycles);
        // Cheaper per call than edge counters on this shape: BL charges at
        // most one register update plus one record.
        assert!(mote.cycles - base_cycles <= REGISTER_UPDATE_CYCLES + PATH_RECORD_CYCLES);
    }

    #[test]
    fn static_costs_reported() {
        let program = ct_ir::compile_source(
            "module M { var a: u16; proc f(x: u16) { if (x > 1) { a = 1; } else { a = 2; } } }",
        )
        .unwrap();
        let bl = BallLarusProfiler::new(&program);
        assert!(bl.ram_bytes(&program) >= REGISTER_RAM_BYTES + 4);
        assert!(bl.flash_bytes(&program) >= FIXED_FLASH_BYTES);
    }
}

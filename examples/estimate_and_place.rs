//! The full paper pipeline on a benchmark app: profile by timing → estimate
//! the Markov parameters → feed them to code placement → measure the
//! misprediction reduction on replayed inputs.
//!
//! Run with: `cargo run --example estimate_and_place`

use code_tomography::apps;
use code_tomography::cfg::layout::Layout;
use code_tomography::core::estimator::{estimate, EstimateOptions};
use code_tomography::core::samples::TimingSamples;
use code_tomography::markov;
use code_tomography::mote::cost::{AvrCost, CostModel};
use code_tomography::mote::timer::VirtualTimer;
use code_tomography::mote::trace::{GroundTruthProfiler, PairProfiler, TimingProfiler};
use code_tomography::placement::{place_procedure, Strategy};

fn main() {
    let app = apps::app_by_name("oscilloscope").expect("app exists");
    let n = 2000;
    let seed = 4242;

    // --- Phase 1: measure on the original (natural) layout. -------------
    let mut mote = app.boot(Box::new(AvrCost));
    mote.reseed(seed);
    let program = mote.program().clone();
    let pid = app.target_id(&program);
    // A 1 MHz timer: coarse enough to be mote-realistic, fine enough to
    // resolve this app's arm-cost differences (see experiment E2 for the
    // full resolution sweep).
    let timer = VirtualTimer::mhz1_at_8mhz();
    let mut truth = GroundTruthProfiler::new(&program);
    let mut timing = TimingProfiler::new(&program, timer, 0);
    for _ in 0..n {
        let mut pair = PairProfiler {
            a: &mut truth,
            b: &mut timing,
        };
        mote.call(pid, &[], &mut pair).expect("runs clean");
    }
    let cfg = program.procs[pid.index()].cfg.clone();
    println!(
        "phase 1: profiled {} activations of `{}` by timing alone",
        n, app.target_proc
    );

    // --- Phase 2: estimate the execution profile from the timings. ------
    let samples = TimingSamples::new(timing.samples(pid).to_vec(), timer.cycles_per_tick());
    let est = estimate(
        &cfg,
        mote.static_block_costs(pid),
        mote.static_edge_costs(pid),
        &samples,
        EstimateOptions::default(),
    )
    .expect("estimation succeeds");
    println!(
        "phase 2: estimated {} branch probabilities ({})",
        est.probs.len(),
        est.method
    );
    let true_probs = truth.branch_probs(pid, &cfg);
    for (i, bb) in est.probs.blocks().iter().enumerate() {
        println!(
            "    {bb}: est {:.3} / true {:.3}",
            est.probs.as_slice()[i],
            true_probs.as_slice()[i]
        );
    }

    // --- Phase 3: feed the estimate to the code placement pass. ---------
    let freq =
        markov::visits::expected_edge_traversals(&cfg, &est.probs).expect("frequency derivation");
    let pen = AvrCost.penalties();
    // Pettis–Hansen chains hot edges into fall-throughs — the
    // misprediction-oriented strategy the paper's claim is about.
    // (Strategy::Best instead minimizes expected *cycles*, which on AVR
    // penalties sometimes trades extra 1-cycle taken branches for fewer
    // 2-cycle jumps; see experiment E4/E5 for both objectives.)
    let optimized = place_procedure(&cfg, &freq, &pen, Strategy::PettisHansen);
    println!("phase 3: computed optimized layout {:?}", optimized.order());

    // --- Phase 4: replay identical inputs on both layouts. --------------
    let measure = |layout: Layout| {
        let mut mote = app.boot(Box::new(AvrCost));
        mote.reseed(seed);
        mote.set_layout(pid, layout.clone());
        let mut gt = GroundTruthProfiler::new(&program);
        let start = mote.cycles;
        for _ in 0..n {
            mote.call(pid, &[], &mut gt).expect("runs clean");
        }
        let cost = layout.evaluate(&cfg, gt.profile(pid), &pen);
        (cost, mote.cycles - start)
    };
    let (before, cycles_before) = measure(Layout::natural(&cfg));
    let (after, cycles_after) = measure(optimized);

    println!("phase 4: replayed {} identical activations per layout", n);
    println!(
        "    misprediction rate: {:.4} -> {:.4}",
        before.misprediction_rate(),
        after.misprediction_rate()
    );
    println!(
        "    total cycles:       {} -> {} ({:+.2}%)",
        cycles_before,
        cycles_after,
        (cycles_after as f64 - cycles_before as f64) / cycles_before as f64 * 100.0
    );
    assert!(after.misprediction_rate() <= before.misprediction_rate() + 1e-9);
    assert!(cycles_after <= cycles_before);
    println!("ok: estimated-profile placement reduced taken branches");
}

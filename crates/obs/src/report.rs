//! Folds a JSONL trace stream into a human-readable stage/phase time
//! breakdown — the logic behind the `ct-obs-report` binary.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::{self, Json};

/// Percentile summary folded from `hist` summary lines. Repeated lines
/// for one name merge by adding counts and keeping the largest quantile
/// estimates (exact re-merging needs the bucket tables; the report reads
/// only the summaries).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HistSummary {
    /// Observations recorded.
    pub count: u64,
    /// Median upper bound.
    pub p50: u64,
    /// 90th-percentile upper bound.
    pub p90: u64,
    /// 99th-percentile upper bound.
    pub p99: u64,
    /// Largest observation.
    pub max: u64,
}

/// Aggregates folded out of a trace stream.
#[derive(Debug, Default, Clone)]
pub struct Report {
    /// Span name -> (count, wall_ns, cpu_ticks).
    pub spans: BTreeMap<String, (u64, u64, u64)>,
    /// Counter name -> value.
    pub counters: BTreeMap<String, u64>,
    /// Histogram name -> percentile summary.
    pub hists: BTreeMap<String, HistSummary>,
    /// Event name -> occurrences (excluding summary lines).
    pub event_counts: BTreeMap<String, u64>,
    /// Per-restart EM iteration counts, in stream order.
    pub em_iterations: Vec<u64>,
    /// EM restarts that converged.
    pub em_converged: u64,
    /// `warn.*` events, rendered back as JSONL.
    pub warnings: Vec<String>,
    /// Lines that failed to parse (reported, not fatal).
    pub malformed: Vec<String>,
}

/// Event-name prefixes whose integral fields fold into the counter table
/// (`<event>.<field>`), alongside plain `counter` lines.
const COUNTER_EVENT_PREFIXES: &[&str] = &["pmu.", "em.", "ladder."];

fn num(doc: &Json, key: &str) -> u64 {
    doc.get(key).and_then(Json::as_num).map_or(0, |n| n as u64)
}

/// Splits a `svc.shard.<i>.<metric>` name into its shard index and metric
/// suffix.
fn shard_metric(name: &str) -> Option<(u64, &str)> {
    let rest = name.strip_prefix("svc.shard.")?;
    let (idx, metric) = rest.split_once('.')?;
    Some((idx.parse().ok()?, metric))
}

impl Report {
    /// Folds a JSONL stream (one JSON object per non-empty line).
    pub fn from_jsonl(input: &str) -> Report {
        let mut r = Report::default();
        for line in input.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let doc = match json::parse(line) {
                Ok(doc) => doc,
                Err(e) => {
                    r.malformed.push(format!("{e}: {line}"));
                    continue;
                }
            };
            let Some(event) = doc.get("event").and_then(Json::as_str) else {
                r.malformed.push(format!("missing event key: {line}"));
                continue;
            };
            match event {
                "span" => {
                    if let Some(name) = doc.get("name").and_then(Json::as_str) {
                        // Saturating folds: adversarial streams carry
                        // u64-scale values that would overflow-panic in
                        // debug builds with plain `+=`.
                        let slot = r.spans.entry(name.to_string()).or_default();
                        slot.0 = slot.0.saturating_add(num(&doc, "count"));
                        slot.1 = slot.1.saturating_add(num(&doc, "wall_ns"));
                        slot.2 = slot.2.saturating_add(num(&doc, "cpu_ticks"));
                    }
                }
                "counter" => {
                    if let Some(name) = doc.get("name").and_then(Json::as_str) {
                        let slot = r.counters.entry(name.to_string()).or_default();
                        *slot = slot.saturating_add(num(&doc, "value"));
                    }
                }
                "hist" => {
                    if let Some(name) = doc.get("name").and_then(Json::as_str) {
                        let slot = r.hists.entry(name.to_string()).or_default();
                        slot.count = slot.count.saturating_add(num(&doc, "count"));
                        slot.p50 = slot.p50.max(num(&doc, "p50"));
                        slot.p90 = slot.p90.max(num(&doc, "p90"));
                        slot.p99 = slot.p99.max(num(&doc, "p99"));
                        slot.max = slot.max.max(num(&doc, "max"));
                    }
                }
                "gauge" | "trace.meta" => {}
                name => {
                    *r.event_counts.entry(name.to_string()).or_default() += 1;
                    if name == "em.restart" {
                        r.em_iterations.push(num(&doc, "iterations"));
                        if doc.get("converged") == Some(&Json::Bool(true)) {
                            r.em_converged += 1;
                        }
                    }
                    if name.starts_with("warn.") {
                        r.warnings.push(line.to_string());
                    }
                    // Counter-shaped events (PMU banks, estimator stats):
                    // fold their integral fields into the counter table so
                    // one breakdown covers timings and counts alike.
                    if COUNTER_EVENT_PREFIXES.iter().any(|p| name.starts_with(p)) {
                        if let Json::Obj(fields) = &doc {
                            for (k, v) in fields {
                                if k == "event" || crate::VOLATILE_FIELDS.contains(&k.as_str()) {
                                    continue;
                                }
                                let Some(n) = v.as_num() else { continue };
                                if n.is_finite() && n >= 0.0 && n.fract() == 0.0 {
                                    let slot = r.counters.entry(format!("{name}.{k}")).or_default();
                                    *slot = slot.saturating_add(n as u64);
                                }
                            }
                        }
                    }
                }
            }
        }
        r
    }

    /// Renders the stage-time breakdown table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let total_wall: u64 = self.spans.values().map(|(_, w, _)| *w).sum();
        let _ = writeln!(out, "== stage/phase breakdown ==");
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>12} {:>7} {:>10}",
            "span", "count", "wall_ms", "%", "cpu_ticks"
        );
        let mut by_wall: Vec<_> = self.spans.iter().collect();
        by_wall.sort_by(|a, b| b.1 .1.cmp(&a.1 .1).then_with(|| a.0.cmp(b.0)));
        for (name, (count, wall_ns, cpu)) in by_wall {
            let pct = if total_wall > 0 {
                100.0 * *wall_ns as f64 / total_wall as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>12.3} {:>6.1}% {:>10}",
                name,
                count,
                *wall_ns as f64 / 1e6,
                pct,
                cpu
            );
        }
        if !self.em_iterations.is_empty() {
            let total: u64 = self.em_iterations.iter().sum();
            let _ = writeln!(out, "== EM restarts ==");
            let _ = writeln!(
                out,
                "restarts={} converged={} iterations(total)={} iterations(per restart)={:?}",
                self.em_iterations.len(),
                self.em_converged,
                total,
                self.em_iterations
            );
        }
        self.render_service_section(&mut out);
        let plain_counters: Vec<_> = self
            .counters
            .iter()
            .filter(|(name, _)| !name.starts_with("svc."))
            .collect();
        if !plain_counters.is_empty() {
            let _ = writeln!(out, "== counters ==");
            for (name, n) in plain_counters {
                let _ = writeln!(out, "{name:<28} {n:>10}");
            }
        }
        let plain_hists: Vec<_> = self
            .hists
            .iter()
            .filter(|(name, _)| !name.starts_with("svc."))
            .collect();
        if !plain_hists.is_empty() {
            let _ = writeln!(out, "== hists ==");
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>10} {:>10} {:>10} {:>10}",
                "hist", "count", "p50", "p90", "p99", "max"
            );
            for (name, h) in plain_hists {
                let _ = writeln!(
                    out,
                    "{:<28} {:>8} {:>10} {:>10} {:>10} {:>10}",
                    name, h.count, h.p50, h.p90, h.p99, h.max
                );
            }
        }
        if !self.event_counts.is_empty() {
            let _ = writeln!(out, "== events ==");
            for (name, n) in &self.event_counts {
                let _ = writeln!(out, "{name:<28} {n:>10}");
            }
        }
        if !self.warnings.is_empty() {
            let _ = writeln!(out, "== warnings ==");
            for w in &self.warnings {
                let _ = writeln!(out, "{w}");
            }
        }
        if !self.malformed.is_empty() {
            let _ = writeln!(out, "== malformed lines ==");
            for m in &self.malformed {
                let _ = writeln!(out, "{m}");
            }
        }
        out
    }

    /// Renders the dedicated `svc.*` section: service-wide counters and
    /// histograms, then a per-shard breakdown folded from the
    /// `svc.shard.<i>.*` names. Absent entirely when the stream carries
    /// no service telemetry.
    fn render_service_section(&self, out: &mut String) {
        let svc_counters: Vec<_> = self
            .counters
            .iter()
            .filter(|(n, _)| n.starts_with("svc.") && shard_metric(n).is_none())
            .collect();
        let svc_hists: Vec<_> = self
            .hists
            .iter()
            .filter(|(n, _)| n.starts_with("svc.") && shard_metric(n).is_none())
            .collect();
        let mut shards: BTreeMap<u64, (u64, u64, Option<HistSummary>)> = BTreeMap::new();
        for (name, n) in &self.counters {
            if let Some((idx, metric)) = shard_metric(name) {
                let row = shards.entry(idx).or_default();
                match metric {
                    "accepted" => row.0 = *n,
                    "dedup" => row.1 = *n,
                    _ => {}
                }
            }
        }
        for (name, h) in &self.hists {
            if let Some((idx, "queue_depth")) = shard_metric(name) {
                shards.entry(idx).or_default().2 = Some(*h);
            }
        }
        if svc_counters.is_empty() && svc_hists.is_empty() && shards.is_empty() {
            return;
        }
        let _ = writeln!(out, "== service ==");
        for (name, n) in svc_counters {
            let _ = writeln!(out, "{name:<28} {n:>10}");
        }
        if !svc_hists.is_empty() {
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>10} {:>10} {:>10} {:>10}",
                "hist", "count", "p50", "p90", "p99", "max"
            );
            for (name, h) in svc_hists {
                let _ = writeln!(
                    out,
                    "{:<28} {:>8} {:>10} {:>10} {:>10} {:>10}",
                    name, h.count, h.p50, h.p90, h.p99, h.max
                );
            }
        }
        if !shards.is_empty() {
            let _ = writeln!(out, "-- per shard --");
            let _ = writeln!(
                out,
                "{:>5} {:>10} {:>10} {:>10} {:>10}",
                "shard", "accepted", "dedup", "depth_p99", "depth_max"
            );
            for (idx, (accepted, dedup, depth)) in &shards {
                let (p99, max) = depth.map_or((0, 0), |h| (h.p99, h.max));
                let _ = writeln!(
                    out,
                    "{idx:>5} {accepted:>10} {dedup:>10} {p99:>10} {max:>10}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STREAM: &str = r#"
{"event":"trace.meta","schema":1,"events":3}
{"event":"stage.estimate","ok":true}
{"event":"em.restart","restart":0,"iterations":12,"converged":true}
{"event":"em.restart","restart":1,"iterations":40,"converged":false}
{"event":"warn.suffstats_saturated","proc":"main"}
{"event":"span","name":"stage.estimate","count":1,"wall_ns":2000000,"cpu_ticks":3}
{"event":"span","name":"stage.run","count":1,"wall_ns":6000000,"cpu_ticks":9}
{"event":"counter","name":"fleet.motes","value":4}
"#;

    #[test]
    fn folds_spans_events_and_counters() {
        let r = Report::from_jsonl(STREAM);
        assert!(r.malformed.is_empty(), "{:?}", r.malformed);
        assert_eq!(r.spans["stage.run"], (1, 6_000_000, 9));
        assert_eq!(r.counters["fleet.motes"], 4);
        assert_eq!(r.em_iterations, vec![12, 40]);
        assert_eq!(r.em_converged, 1);
        assert_eq!(r.event_counts["stage.estimate"], 1);
        assert_eq!(r.warnings.len(), 1);
    }

    #[test]
    fn render_orders_spans_by_wall_time() {
        let r = Report::from_jsonl(STREAM);
        let table = r.render();
        let run = table.find("stage.run").unwrap_or(usize::MAX);
        let est = table.find("stage.estimate").unwrap_or(0);
        assert!(run < est, "expected stage.run (slower) first:\n{table}");
        assert!(table.contains("restarts=2 converged=1 iterations(total)=52"));
    }

    #[test]
    fn counter_events_fold_into_the_counter_table() {
        let r = Report::from_jsonl(concat!(
            "{\"event\":\"pmu.totals\",\"cond_taken\":7,\"cond_not_taken\":3,\"wall_ns\":99}\n",
            "{\"event\":\"pmu.totals\",\"cond_taken\":5,\"cond_not_taken\":5,\"rate\":0.5}\n",
            "{\"event\":\"em.restart\",\"restart\":1,\"iterations\":12,\"converged\":true}\n",
        ));
        assert_eq!(r.counters["pmu.totals.cond_taken"], 12);
        assert_eq!(r.counters["pmu.totals.cond_not_taken"], 8);
        assert_eq!(r.counters["em.restart.iterations"], 12);
        // Volatile and fractional fields stay out.
        assert!(!r.counters.contains_key("pmu.totals.wall_ns"));
        assert!(!r.counters.contains_key("pmu.totals.rate"));
        // The special-cased EM summary still works.
        assert_eq!(r.em_iterations, vec![12]);
    }

    #[test]
    fn malformed_lines_are_reported_not_fatal() {
        let r = Report::from_jsonl("not json\n{\"event\":\"x\"}\n{\"no_event\":1}\n");
        assert_eq!(r.malformed.len(), 2);
        assert_eq!(r.event_counts["x"], 1);
    }

    #[test]
    fn service_telemetry_groups_into_its_own_section() {
        let r = Report::from_jsonl(concat!(
            "{\"event\":\"counter\",\"name\":\"svc.ingest.accepted\",\"value\":40}\n",
            "{\"event\":\"counter\",\"name\":\"svc.shard.0.accepted\",\"value\":22}\n",
            "{\"event\":\"counter\",\"name\":\"svc.shard.1.accepted\",\"value\":18}\n",
            "{\"event\":\"counter\",\"name\":\"svc.shard.1.dedup\",\"value\":3}\n",
            "{\"event\":\"counter\",\"name\":\"fleet.motes\",\"value\":4}\n",
            "{\"event\":\"hist\",\"name\":\"svc.batch_samples\",\"count\":10,\"p50\":4,\"p90\":4,\"p99\":4,\"max\":4}\n",
            "{\"event\":\"hist\",\"name\":\"svc.shard.1.queue_depth\",\"count\":18,\"p50\":2,\"p90\":5,\"p99\":7,\"max\":7}\n",
        ));
        assert_eq!(r.hists["svc.batch_samples"].count, 10);
        let table = r.render();
        let svc = table.find("== service ==").expect("service section");
        let counters = table.find("== counters ==").expect("counters section");
        assert!(svc < counters, "service section renders first:\n{table}");
        // Per-shard rows carry both counters and the depth percentiles.
        let shard_row = table
            .lines()
            .find(|l| l.trim_start().starts_with("1 "))
            .unwrap_or_default();
        for col in ["18", "3", "7"] {
            assert!(shard_row.contains(col), "row {shard_row:?} missing {col}");
        }
        // svc.* names do not leak into the flat counter table.
        let flat = &table[counters..];
        assert!(!flat.contains("svc."), "svc.* leaked:\n{flat}");
        assert!(flat.contains("fleet.motes"));
    }

    #[test]
    fn adversarial_u64_scale_values_fold_without_panicking() {
        let big = u64::MAX;
        let r = Report::from_jsonl(&format!(
            concat!(
                "{{\"event\":\"span\",\"name\":\"s\",\"count\":{big},\"wall_ns\":{big},\"cpu_ticks\":{big}}}\n",
                "{{\"event\":\"span\",\"name\":\"s\",\"count\":{big},\"wall_ns\":{big},\"cpu_ticks\":{big}}}\n",
                "{{\"event\":\"counter\",\"name\":\"c\",\"value\":{big}}}\n",
                "{{\"event\":\"counter\",\"name\":\"c\",\"value\":{big}}}\n",
                "{{\"event\":\"pmu.totals\",\"jumps\":{big}}}\n",
                "{{\"event\":\"pmu.totals\",\"jumps\":{big}}}\n",
            ),
            big = big
        ));
        // f64 round-trip of u64::MAX lands above MAX and casts saturate,
        // so both folds clamp instead of panicking in debug builds.
        assert_eq!(r.counters["c"], u64::MAX);
        assert_eq!(r.counters["pmu.totals.jumps"], u64::MAX);
        assert_eq!(r.spans["s"].0, u64::MAX);
        let _ = r.render();
    }
}

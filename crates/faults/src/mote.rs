//! Mote-level (system) fault plans: crash, straggle, lose, duplicate.
//!
//! The measurement-channel models in [`crate::model`] corrupt the *content*
//! of a tick stream; this module models the *system* failures around it —
//! the mote or its report never arriving at all. A [`MoteFaultPlan`] mirrors
//! [`crate::FaultPlan`]: a seed plus `(kind, rate)` pairs, cheap to store in
//! experiment configs. Instead of rewriting samples it answers one question
//! per delivery attempt — [`MoteFaultPlan::outcome`] — as a **pure function
//! of `(seed, mote, attempt)`**: no shared generator threads through the
//! fleet, so the fan-out can evaluate outcomes from any worker thread in any
//! order and every run replays bitwise.
//!
//! The taxonomy covers the fleet driver's recovery paths:
//!
//! - **crash-mid-run** — the mote panics while driving the workload; the
//!   fleet catches the unwind at the fan-out boundary and retries;
//! - **crash-before-report** — the run completes but the mote dies before
//!   reporting; the work is lost and the attempt retries;
//! - **lost delivery** — the report is sent but never acknowledged; under
//!   at-least-once delivery the mote retransmits (a retry);
//! - **duplicate delivery** — the acknowledgement is lost instead, so the
//!   same report (same [`ct_core::BatchTag`]) arrives twice; ingest-side
//!   deduplication must make this invisible;
//! - **straggler delay** — the mote is alive but slow; past the fleet's
//!   straggler timeout the collection round proceeds without it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// The mote-level fault taxonomy the chaos experiments sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MoteFaultKind {
    /// Panic while driving the workload (caught at the fan-out boundary).
    CrashMidRun,
    /// The run completes but the mote dies before its report leaves.
    CrashBeforeReport,
    /// The report is lost in flight; the sender retransmits.
    LostDelivery,
    /// The acknowledgement is lost; the same report arrives twice.
    DuplicateDelivery,
    /// The mote responds, but late (delay drawn in `1..=MAX_STRAGGLER_DELAY`
    /// virtual milliseconds when triggered).
    StragglerDelay,
}

/// Largest straggler delay [`MoteFaultPlan::outcome`] can draw, in virtual
/// milliseconds. A triggered straggler draws uniformly in `1..=MAX`.
pub const MAX_STRAGGLER_DELAY: u64 = 1_000;

impl MoteFaultKind {
    /// Every mote fault kind, in taxonomy order.
    pub const ALL: [MoteFaultKind; 5] = [
        MoteFaultKind::CrashMidRun,
        MoteFaultKind::CrashBeforeReport,
        MoteFaultKind::LostDelivery,
        MoteFaultKind::DuplicateDelivery,
        MoteFaultKind::StragglerDelay,
    ];

    /// Stable machine-readable name (used in experiment CSV columns).
    pub fn name(self) -> &'static str {
        match self {
            MoteFaultKind::CrashMidRun => "crash-mid-run",
            MoteFaultKind::CrashBeforeReport => "crash-before-report",
            MoteFaultKind::LostDelivery => "lost-delivery",
            MoteFaultKind::DuplicateDelivery => "duplicate-delivery",
            MoteFaultKind::StragglerDelay => "straggler-delay",
        }
    }
}

impl fmt::Display for MoteFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What one delivery attempt suffers: every triggered fault, resolved
/// together so composed plans behave like composed failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MoteFaultOutcome {
    /// The workload panics mid-run.
    pub crash_mid_run: bool,
    /// The mote dies after the run, before reporting.
    pub crash_before_report: bool,
    /// The report is lost in flight.
    pub lost_delivery: bool,
    /// The report arrives twice under one tag.
    pub duplicate_delivery: bool,
    /// Response delay in virtual milliseconds (0 = on time).
    pub straggler_delay: u64,
}

impl MoteFaultOutcome {
    /// The no-fault outcome (what a plan-less fleet sees).
    pub fn clean() -> MoteFaultOutcome {
        MoteFaultOutcome::default()
    }
}

/// A reproducible description of mote-level fault injection: seed plus
/// ordered `(kind, rate)` pairs, mirroring [`crate::FaultPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct MoteFaultPlan {
    /// Seed of the injection's random stream.
    pub seed: u64,
    /// The faults to inject, each with its per-attempt rate in `[0, 1]`.
    pub faults: Vec<(MoteFaultKind, f64)>,
}

impl MoteFaultPlan {
    /// An empty plan (injects nothing) with the given seed.
    pub fn new(seed: u64) -> MoteFaultPlan {
        MoteFaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Appends a fault to the plan (builder style).
    pub fn with(mut self, kind: MoteFaultKind, rate: f64) -> MoteFaultPlan {
        self.faults.push((kind, rate));
        self
    }

    /// A single-fault plan.
    pub fn single(kind: MoteFaultKind, rate: f64, seed: u64) -> MoteFaultPlan {
        MoteFaultPlan::new(seed).with(kind, rate)
    }

    /// Resolves what delivery attempt `attempt` of mote `mote` suffers.
    ///
    /// Pure function of `(self, mote, attempt)`: a per-attempt generator is
    /// seeded from a SplitMix-style mix of the three, then the plan's faults
    /// draw from it in plan order. Repeated kinds OR their triggers (the
    /// maximum delay wins for stragglers). Rates are clamped into `[0, 1]`.
    pub fn outcome(&self, mote: u64, attempt: u32) -> MoteFaultOutcome {
        let mut mixed = self
            .seed
            .wrapping_add(mote.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((attempt as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        mixed = (mixed ^ (mixed >> 30)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let mut rng = StdRng::seed_from_u64(mixed ^ (mixed >> 31));
        let mut out = MoteFaultOutcome::clean();
        for &(kind, rate) in &self.faults {
            let hit = rng.gen_bool(rate.clamp(0.0, 1.0));
            match kind {
                MoteFaultKind::CrashMidRun => out.crash_mid_run |= hit,
                MoteFaultKind::CrashBeforeReport => out.crash_before_report |= hit,
                MoteFaultKind::LostDelivery => out.lost_delivery |= hit,
                MoteFaultKind::DuplicateDelivery => out.duplicate_delivery |= hit,
                MoteFaultKind::StragglerDelay => {
                    // Always consume the delay draw so the stream stays
                    // aligned whether or not the fault triggers.
                    let delay = rng.gen_range(1..=MAX_STRAGGLER_DELAY);
                    if hit {
                        out.straggler_delay = out.straggler_delay.max(delay);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_plan(seed: u64, rate: f64) -> MoteFaultPlan {
        let mut p = MoteFaultPlan::new(seed);
        for kind in MoteFaultKind::ALL {
            p = p.with(kind, rate);
        }
        p
    }

    #[test]
    fn all_kinds_have_distinct_names() {
        let mut names: Vec<&str> = MoteFaultKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), MoteFaultKind::ALL.len());
        for k in MoteFaultKind::ALL {
            assert_eq!(k.to_string(), k.name());
        }
    }

    #[test]
    fn outcome_is_a_pure_function_of_seed_mote_attempt() {
        let plan = full_plan(42, 0.5);
        for mote in 0..8u64 {
            for attempt in 0..4u32 {
                assert_eq!(plan.outcome(mote, attempt), plan.outcome(mote, attempt));
            }
        }
    }

    #[test]
    fn zero_rate_is_clean_and_rate_one_triggers_everything() {
        let zero = full_plan(7, 0.0);
        assert_eq!(zero.outcome(3, 0), MoteFaultOutcome::clean());
        assert_eq!(
            MoteFaultPlan::new(7).outcome(3, 0),
            MoteFaultOutcome::clean()
        );
        let one = full_plan(7, 1.0);
        let o = one.outcome(3, 0);
        assert!(o.crash_mid_run && o.crash_before_report);
        assert!(o.lost_delivery && o.duplicate_delivery);
        assert!((1..=MAX_STRAGGLER_DELAY).contains(&o.straggler_delay));
    }

    #[test]
    fn outcomes_vary_across_motes_attempts_and_seeds() {
        let plan = full_plan(11, 0.5);
        let motes: Vec<MoteFaultOutcome> = (0..32).map(|m| plan.outcome(m, 0)).collect();
        assert!(
            motes.windows(2).any(|w| w[0] != w[1]),
            "motes all identical"
        );
        let attempts: Vec<MoteFaultOutcome> = (0..32).map(|a| plan.outcome(0, a)).collect();
        assert!(
            attempts.windows(2).any(|w| w[0] != w[1]),
            "attempts all identical"
        );
        let reseeded = full_plan(12, 0.5);
        assert!(
            (0..32).any(|m| plan.outcome(m, 0) != reseeded.outcome(m, 0)),
            "seeds indistinguishable"
        );
    }

    #[test]
    fn rates_are_clamped() {
        let wild = MoteFaultPlan::new(5)
            .with(MoteFaultKind::LostDelivery, 7.0)
            .with(MoteFaultKind::CrashMidRun, -3.0);
        let o = wild.outcome(0, 0);
        assert!(o.lost_delivery);
        assert!(!o.crash_mid_run);
    }
}

//! `bench_guard` — maintains and gates the BENCH_fb.json benchmark
//! trajectory.
//!
//! BENCH_fb.json is an append-only history of benchmark runs (schema
//! `bench_fb/2`), not a single snapshot: each `scripts/bench_fb.sh` run
//! appends one timestamped entry, and check.sh fails when the newest
//! `estimators/em` mean regresses more than the allowed percentage against
//! the best (lowest) previously recorded run.
//!
//! Subcommands:
//!
//! - `append <file> <threads> <e1_ms>` — reads criterion-shim `bench:` lines
//!   on stdin, appends one run to the trajectory (migrating a legacy
//!   single-snapshot file into the first run, timestamped 0).
//! - `check <file> [max_regress_pct]` — regression gate (default 15%).
//! - `validate <file>` — strict schema validation of the trajectory.

use ct_obs::json::{parse, write_escaped, Json};
use std::io::Read;
use std::process::ExitCode;

const SCHEMA: &str = "bench_fb/2";
const GUARD_KERNEL: &str = "estimators/em";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("append") if args.len() == 4 => append(&args[1], &args[2], &args[3]),
        Some("check") if args.len() == 2 || args.len() == 3 => {
            check(&args[1], args.get(2).map(String::as_str))
        }
        Some("validate") if args.len() == 2 => validate_file(&args[1]),
        _ => Err(concat!(
            "usage: bench_guard append <file> <threads> <e1_ms>  (bench: lines on stdin)\n",
            "       bench_guard check <file> [max_regress_pct]\n",
            "       bench_guard validate <file>"
        )
        .to_string()),
    };
    match result {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("bench_guard: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// One benchmark run in the trajectory.
struct Run {
    timestamp: u64,
    threads: f64,
    e1_ms: f64,
    kernels: Vec<(String, f64)>,
}

/// Loads a trajectory, migrating the legacy single-snapshot schema (a bare
/// object with top-level `kernels`) into a one-run history stamped 0.
fn load_runs(path: &str) -> Result<Vec<Run>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => return Ok(Vec::new()), // no history yet
    };
    let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let runs_json: Vec<&Json> = match (doc.get("schema").and_then(Json::as_str), doc.get("runs")) {
        (Some(SCHEMA), Some(Json::Arr(runs))) => runs.iter().collect(),
        (Some(other), _) => return Err(format!("{path}: unknown schema {other:?}")),
        // Legacy snapshot: treat the whole document as the only run.
        _ => vec![&doc],
    };
    let mut runs = Vec::with_capacity(runs_json.len());
    for (i, r) in runs_json.iter().enumerate() {
        runs.push(parse_run(r).map_err(|e| format!("{path}: run {i}: {e}"))?);
    }
    Ok(runs)
}

fn parse_run(r: &Json) -> Result<Run, String> {
    let num = |key: &str| -> Result<f64, String> {
        r.get(key)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("missing numeric field {key:?}"))
    };
    let kernels_json = match r.get("kernels") {
        Some(Json::Arr(k)) => k,
        _ => return Err("missing kernels array".to_string()),
    };
    let mut kernels = Vec::with_capacity(kernels_json.len());
    for k in kernels_json {
        let name = k
            .get("kernel")
            .and_then(Json::as_str)
            .ok_or("kernel entry missing name")?;
        let ns = k
            .get("mean_ns_per_iter")
            .and_then(Json::as_num)
            .ok_or("kernel entry missing mean_ns_per_iter")?;
        if !(ns.is_finite() && ns >= 0.0) {
            return Err(format!("kernel {name:?}: invalid mean {ns}"));
        }
        kernels.push((name.to_string(), ns));
    }
    Ok(Run {
        timestamp: r.get("timestamp").and_then(Json::as_num).unwrap_or(0.0) as u64,
        threads: num("threads")?,
        e1_ms: num("e1_accuracy_wall_ms")?,
        kernels,
    })
}

/// Renders a number the way the shell writer did: integers exactly, floats
/// with their shortest round-trip form.
fn write_num(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn render(runs: &[Run]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": ");
    write_escaped(&mut out, SCHEMA);
    out.push_str(",\n  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        out.push_str("    {\"timestamp\": ");
        write_num(&mut out, r.timestamp as f64);
        out.push_str(", \"threads\": ");
        write_num(&mut out, r.threads);
        out.push_str(", \"e1_accuracy_wall_ms\": ");
        write_num(&mut out, r.e1_ms);
        out.push_str(", \"kernels\": [\n");
        for (j, (name, ns)) in r.kernels.iter().enumerate() {
            out.push_str("      {\"kernel\": ");
            write_escaped(&mut out, name);
            out.push_str(", \"mean_ns_per_iter\": ");
            write_num(&mut out, *ns);
            out.push('}');
            out.push_str(if j + 1 < r.kernels.len() { ",\n" } else { "\n" });
        }
        out.push_str("    ]}");
        out.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn append(path: &str, threads: &str, e1_ms: &str) -> Result<String, String> {
    let threads: f64 = threads
        .parse()
        .map_err(|_| format!("bad thread count {threads:?}"))?;
    let e1_ms: f64 = e1_ms
        .parse()
        .map_err(|_| format!("bad e1 wall-ms {e1_ms:?}"))?;
    let mut stdin = String::new();
    std::io::stdin()
        .read_to_string(&mut stdin)
        .map_err(|e| format!("reading stdin: {e}"))?;
    // "bench: <label> ... <mean_ns> ns/iter (<N> iters)"
    let mut kernels = Vec::new();
    for line in stdin.lines() {
        let Some(rest) = line.strip_prefix("bench: ") else {
            continue;
        };
        let Some((label, tail)) = rest.split_once(" ... ") else {
            continue;
        };
        let Some(ns_text) = tail.split(" ns/iter").next() else {
            continue;
        };
        let ns: f64 = ns_text
            .trim()
            .parse()
            .map_err(|_| format!("bad bench line {line:?}"))?;
        kernels.push((label.to_string(), ns));
    }
    if kernels.is_empty() {
        return Err("no bench: lines on stdin".to_string());
    }
    let timestamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut runs = load_runs(path)?;
    runs.push(Run {
        timestamp,
        threads,
        e1_ms,
        kernels,
    });
    std::fs::write(path, render(&runs)).map_err(|e| format!("writing {path}: {e}"))?;
    Ok(format!("appended run {} to {path}", runs.len()))
}

fn check(path: &str, max_pct: Option<&str>) -> Result<String, String> {
    let max_pct: f64 = match max_pct {
        Some(p) => p
            .parse()
            .map_err(|_| format!("bad regression percentage {p:?}"))?,
        None => 15.0,
    };
    let runs = load_runs(path)?;
    let latest = runs.last().ok_or("no recorded runs")?;
    let em_of = |r: &Run| {
        r.kernels
            .iter()
            .find(|(k, _)| k == GUARD_KERNEL)
            .map(|&(_, ns)| ns)
    };
    let current = em_of(latest).ok_or_else(|| format!("latest run lacks {GUARD_KERNEL}"))?;
    let best = runs[..runs.len() - 1]
        .iter()
        .filter_map(em_of)
        .fold(f64::INFINITY, f64::min);
    if !best.is_finite() {
        return Ok(format!(
            "{GUARD_KERNEL}: {current:.0} ns/iter (first recorded run; nothing to gate against)"
        ));
    }
    let limit = best * (1.0 + max_pct / 100.0);
    if current > limit {
        return Err(format!(
            "{GUARD_KERNEL} regressed: {current:.0} ns/iter vs best {best:.0} \
             (limit {limit:.0}, +{max_pct}%)"
        ));
    }
    Ok(format!(
        "{GUARD_KERNEL}: {current:.0} ns/iter vs best {best:.0} (within +{max_pct}%)"
    ))
}

fn validate_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(SCHEMA) => {}
        Some(other) => return Err(format!("{path}: schema {other:?}, want {SCHEMA:?}")),
        None => return Err(format!("{path}: missing schema marker (legacy snapshot?)")),
    }
    let runs = load_runs(path)?;
    if runs.is_empty() {
        return Err(format!("{path}: empty run history"));
    }
    Ok(format!(
        "{path}: valid {SCHEMA} trajectory with {} run(s)",
        runs.len()
    ))
}

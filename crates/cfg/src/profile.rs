//! Execution profiles: edge counts, block visit counts and branch
//! probabilities.
//!
//! All vectors are indexed by the stable orders defined on [`Cfg`]: edge
//! profiles by [`Cfg::edges`] index, branch probabilities by
//! [`Cfg::branch_blocks`] order. Ground-truth profiles (from full
//! instrumentation) and estimated profiles (from Code Tomography) share these
//! types, so comparing them is a vector operation.

use crate::graph::{BlockId, Cfg, EdgeKind};

/// Exact traversal counts per CFG edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeProfile {
    counts: Vec<u64>,
}

impl EdgeProfile {
    /// A zeroed profile shaped for `cfg`.
    pub fn zeroed(cfg: &Cfg) -> EdgeProfile {
        EdgeProfile {
            counts: vec![0; cfg.edges().len()],
        }
    }

    /// Wraps raw counts.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len()` differs from the edge count of `cfg`.
    pub fn from_counts(cfg: &Cfg, counts: Vec<u64>) -> EdgeProfile {
        assert_eq!(counts.len(), cfg.edges().len(), "edge count mismatch");
        EdgeProfile { counts }
    }

    /// Count of edge `index`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn count(&self, index: usize) -> u64 {
        self.counts[index]
    }

    /// Increments edge `index` by one.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn bump(&mut self, index: usize) {
        self.counts[index] += 1;
    }

    /// The raw counts, indexed by edge index.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Adds another profile elementwise (e.g. accumulating across runs).
    ///
    /// # Panics
    ///
    /// Panics if the profiles have different shapes.
    pub fn merge(&mut self, other: &EdgeProfile) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "profile shape mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Visit count of every block implied by the edge counts, given the
    /// number of procedure invocations (which is the entry block's visit
    /// count — the entry has no incoming edges).
    pub fn block_visits(&self, cfg: &Cfg, invocations: u64) -> Vec<u64> {
        let mut visits = vec![0u64; cfg.len()];
        visits[cfg.entry().index()] = invocations;
        for e in cfg.edges() {
            visits[e.to.index()] += self.counts[e.index];
        }
        visits
    }

    /// Flow-conservation check: for every block, incoming flow (plus
    /// `invocations` at the entry) equals outgoing flow (plus returns at
    /// exits). Profiles captured from complete runs always satisfy this.
    pub fn is_flow_consistent(&self, cfg: &Cfg, invocations: u64) -> bool {
        let visits = self.block_visits(cfg, invocations);
        for (id, b) in cfg.iter() {
            let outgoing: u64 = cfg
                .edges()
                .iter()
                .filter(|e| e.from == id)
                .map(|e| self.counts[e.index])
                .sum();
            let expected_out = match b.term {
                crate::graph::Terminator::Return => 0,
                _ => visits[id.index()],
            };
            if outgoing != expected_out {
                return false;
            }
        }
        true
    }

    /// Derives branch probabilities from the counts. Branches never executed
    /// get probability 0.5 (uninformative prior).
    pub fn branch_probs(&self, cfg: &Cfg) -> BranchProbs {
        let edges = cfg.edges();
        let mut p_true = Vec::new();
        for bb in cfg.branch_blocks() {
            let t = edges
                .iter()
                .find(|e| e.from == bb && e.kind == EdgeKind::BranchTrue)
                .map(|e| self.counts[e.index])
                .unwrap_or(0);
            let f = edges
                .iter()
                .find(|e| e.from == bb && e.kind == EdgeKind::BranchFalse)
                .map(|e| self.counts[e.index])
                .unwrap_or(0);
            let total = t + f;
            p_true.push(if total == 0 {
                0.5
            } else {
                t as f64 / total as f64
            });
        }
        BranchProbs {
            blocks: cfg.branch_blocks(),
            p_true,
        }
    }
}

/// Probability of taking the *true* edge at each branch block.
///
/// This is the parameter vector of the per-procedure Markov model — the thing
/// Code Tomography estimates and full instrumentation measures.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchProbs {
    blocks: Vec<BlockId>,
    p_true: Vec<f64>,
}

impl BranchProbs {
    /// Builds a parameter vector for `cfg` with every branch at `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability.
    pub fn uniform(cfg: &Cfg, p: f64) -> BranchProbs {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let blocks = cfg.branch_blocks();
        let n = blocks.len();
        BranchProbs {
            blocks,
            p_true: vec![p; n],
        }
    }

    /// Builds from explicit per-branch probabilities in
    /// [`Cfg::branch_blocks`] order.
    ///
    /// # Panics
    ///
    /// Panics if the length mismatches or any value is not a probability.
    pub fn from_vec(cfg: &Cfg, p_true: Vec<f64>) -> BranchProbs {
        let blocks = cfg.branch_blocks();
        assert_eq!(p_true.len(), blocks.len(), "branch count mismatch");
        assert!(
            p_true.iter().all(|p| (0.0..=1.0).contains(p)),
            "probabilities out of range"
        );
        BranchProbs { blocks, p_true }
    }

    /// The branch blocks, in the canonical order.
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }

    /// The probability vector, aligned with [`Self::blocks`].
    pub fn as_slice(&self) -> &[f64] {
        &self.p_true
    }

    /// Number of branches.
    pub fn len(&self) -> usize {
        self.p_true.len()
    }

    /// True when the procedure has no branches.
    pub fn is_empty(&self) -> bool {
        self.p_true.is_empty()
    }

    /// Probability of the true edge at `block`, or `None` if `block` is not a
    /// branch block.
    pub fn prob_true(&self, block: BlockId) -> Option<f64> {
        self.blocks
            .iter()
            .position(|&b| b == block)
            .map(|i| self.p_true[i])
    }

    /// Sets the probability at `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is not a branch block or `p` is not a probability.
    pub fn set_prob_true(&mut self, block: BlockId, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let i = self
            .blocks
            .iter()
            .position(|&b| b == block)
            .expect("block is a branch block");
        self.p_true[i] = p;
    }

    /// Per-edge traversal probabilities (conditioned on reaching the source
    /// block): 1.0 for jumps, `p`/`1-p` for branch edges. Indexed by edge
    /// index.
    pub fn edge_probs(&self, cfg: &Cfg) -> Vec<f64> {
        cfg.edges()
            .iter()
            .map(|e| match e.kind {
                EdgeKind::Jump => 1.0,
                EdgeKind::BranchTrue => self.prob_true(e.from).unwrap_or(0.5),
                EdgeKind::BranchFalse => 1.0 - self.prob_true(e.from).unwrap_or(0.5),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{diamond, while_loop};

    fn diamond_profile(t: u64, f: u64) -> (crate::graph::Cfg, EdgeProfile) {
        let cfg = diamond();
        // Edge order: 0 = cond→then (true), 1 = cond→else (false),
        // 2 = then→join, 3 = else→join.
        let prof = EdgeProfile::from_counts(&cfg, vec![t, f, t, f]);
        (cfg, prof)
    }

    #[test]
    fn branch_probs_from_counts() {
        let (cfg, prof) = diamond_profile(30, 10);
        let probs = prof.branch_probs(&cfg);
        assert_eq!(probs.len(), 1);
        assert!((probs.prob_true(BlockId(0)).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn unexecuted_branch_gets_half() {
        let (cfg, prof) = diamond_profile(0, 0);
        let probs = prof.branch_probs(&cfg);
        assert_eq!(probs.prob_true(BlockId(0)), Some(0.5));
    }

    #[test]
    fn block_visits_from_edges() {
        let (cfg, prof) = diamond_profile(30, 10);
        let visits = prof.block_visits(&cfg, 40);
        assert_eq!(visits, vec![40, 30, 10, 40]);
    }

    #[test]
    fn flow_consistency_detects_complete_profiles() {
        let (cfg, prof) = diamond_profile(30, 10);
        assert!(prof.is_flow_consistent(&cfg, 40));
        assert!(!prof.is_flow_consistent(&cfg, 41));
    }

    #[test]
    fn flow_consistency_rejects_corrupt_counts() {
        let cfg = diamond();
        let prof = EdgeProfile::from_counts(&cfg, vec![30, 10, 29, 10]);
        assert!(!prof.is_flow_consistent(&cfg, 40));
    }

    #[test]
    fn merge_accumulates() {
        let (cfg, mut a) = diamond_profile(1, 2);
        let b = EdgeProfile::from_counts(&cfg, vec![10, 20, 10, 20]);
        a.merge(&b);
        assert_eq!(a.counts(), &[11, 22, 11, 22]);
    }

    #[test]
    fn bump_increments_single_edge() {
        let cfg = diamond();
        let mut p = EdgeProfile::zeroed(&cfg);
        p.bump(2);
        p.bump(2);
        assert_eq!(p.count(2), 2);
        assert_eq!(p.count(0), 0);
    }

    #[test]
    fn edge_probs_partition_unity_per_branch() {
        let cfg = diamond();
        let probs = BranchProbs::from_vec(&cfg, vec![0.7]);
        let ep = probs.edge_probs(&cfg);
        assert!((ep[0] - 0.7).abs() < 1e-12);
        assert!((ep[1] - 0.3).abs() < 1e-12);
        assert_eq!(ep[2], 1.0);
        assert_eq!(ep[3], 1.0);
    }

    #[test]
    fn uniform_and_set_prob() {
        let cfg = while_loop();
        let mut probs = BranchProbs::uniform(&cfg, 0.5);
        probs.set_prob_true(BlockId(1), 0.9);
        assert_eq!(probs.prob_true(BlockId(1)), Some(0.9));
        assert_eq!(probs.prob_true(BlockId(0)), None);
    }

    #[test]
    #[should_panic(expected = "probabilities out of range")]
    fn from_vec_rejects_bad_probability() {
        let cfg = diamond();
        BranchProbs::from_vec(&cfg, vec![1.5]);
    }

    #[test]
    #[should_panic(expected = "branch count mismatch")]
    fn from_vec_rejects_wrong_length() {
        let cfg = diamond();
        BranchProbs::from_vec(&cfg, vec![0.5, 0.5]);
    }
}

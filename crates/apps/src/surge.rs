//! Surge-lite: multi-hop data collection — drain the receive queue, consume
//! packets addressed to this node, forward the rest (with a lossy radio).
//! The input-dependent loop bound (queue depth) and the address/loss branches
//! make this the most network-shaped profile target.

use ct_ir::program::Program;
use ct_mote::interp::Mote;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// NLC source.
pub const SOURCE: &str = r#"
module Surge {
    var consumed: u32;
    var forwarded: u32;
    var dropped: u32;

    proc on_receive() {
        var n: u16 = 0;
        while (recv_avail() && (n < 4)) {
            var pkt: u16 = recv_msg();
            var dest: u16 = pkt & 15;
            if (dest == node_id()) {
                consumed = consumed + 1;
            } else {
                var ok: bool = send_msg(pkt);
                if (ok) { forwarded = forwarded + 1; }
                else { dropped = dropped + 1; }
            }
            n = n + 1;
        }
    }
}
"#;

/// The procedure the experiments profile.
pub const TARGET_PROC: &str = "on_receive";

/// Compiles the app.
///
/// # Panics
///
/// Panics if the bundled source fails to compile (a bug in this crate).
pub fn program() -> Program {
    ct_ir::compile_source(SOURCE).expect("bundled Surge source compiles")
}

/// Standard workload: node id 3, 15% radio loss.
pub fn configure(mote: &mut Mote) {
    mote.devices.node_id = 3;
    mote.devices.radio.loss_prob = 0.15;
}

/// Delivers a random batch of packets before each handler invocation
/// (Poisson-ish arrivals between timer events). ~1/16 of payload addresses
/// match the node.
pub fn deliver_batch(mote: &mut Mote, call_index: usize) {
    let mut rng = StdRng::seed_from_u64(0x5D06E + call_index as u64);
    let batch = rng.gen_range(0..=3);
    for _ in 0..batch {
        mote.devices.radio.deliver(rng.gen_range(0..=1023));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_ir::instr::ProcId;
    use ct_mote::cost::AvrCost;
    use ct_mote::trace::NullProfiler;

    #[test]
    fn packets_are_routed() {
        let p = program();
        let mut mote = Mote::new(p.clone(), Box::new(AvrCost));
        configure(&mut mote);
        for i in 0..500 {
            deliver_batch(&mut mote, i);
            mote.call(ProcId(0), &[], &mut NullProfiler).unwrap();
        }
        let consumed = mote.globals.load(p.global_id("consumed").unwrap());
        let forwarded = mote.globals.load(p.global_id("forwarded").unwrap());
        let dropped = mote.globals.load(p.global_id("dropped").unwrap());
        let total = consumed + forwarded + dropped;
        assert!(total > 400, "should process most packets, got {total}");
        // ~1/16 consumed, rest forwarded/dropped with 15% loss.
        assert!(consumed > 0);
        assert!(
            forwarded > 5 * dropped / 2,
            "forwarded {forwarded} dropped {dropped}"
        );
    }

    #[test]
    fn empty_queue_takes_fast_path() {
        let p = program();
        let mut mote = Mote::new(p.clone(), Box::new(AvrCost));
        configure(&mut mote);
        let before = mote.cycles;
        mote.call(ProcId(0), &[], &mut NullProfiler).unwrap();
        let fast = mote.cycles - before;

        deliver_batch(&mut mote, 0);
        deliver_batch(&mut mote, 1);
        let before = mote.cycles;
        mote.call(ProcId(0), &[], &mut NullProfiler).unwrap();
        let busy = mote.cycles - before;
        assert!(busy > fast, "{busy} vs {fast}");
    }
}

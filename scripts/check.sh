#!/usr/bin/env bash
# Lint gate: formatting and clippy across the whole workspace, warnings as
# errors. Run before pushing; CI runs the same two commands.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo clippy (unwrap audit: ct-core, ct-faults) =="
# Estimation and fault-injection paths must not panic on data: surface any
# unwrap()/expect() as warnings so reviewers see every remaining site.
cargo clippy -p ct-core -p ct-faults --all-targets -- \
    -W clippy::unwrap_used -W clippy::expect_used

echo "== cargo doc (deny warnings) =="
# ct-pipeline carries #![deny(missing_docs)]; keep the whole workspace's
# rustdoc clean (broken intra-doc links, missing docs) as well. The vendored
# dependency shims (rand, proptest, criterion) are not ours to document.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet \
    --exclude rand --exclude proptest --exclude criterion

echo "== merge property tests (streaming ingestion fast path) =="
cargo test --release -p ct-pipeline --test merge_props --quiet

echo "== e13 smoke sweep (fault-injection pipeline end to end) =="
cargo build --release -p ct-bench --bin e13_faults
E13_SMOKE=1 ./target/release/e13_faults > /dev/null

echo "== OK =="

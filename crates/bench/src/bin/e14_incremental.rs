//! E14 — Streaming re-estimation at batch granularity (Table, extension).
//!
//! Claim evaluated: with warm-started incremental EM and the per-edge
//! convolution cache, re-estimating after **every** arriving batch costs an
//! amortized handful of sweeps — affordable at fleet cadence — instead of a
//! cold restart fan-out per batch, while landing on the same optimum as the
//! monolithic estimate.
//!
//! Part 1 runs the fleet-service path ([`ct_pipeline::Fleet::run_streaming`]):
//! per-mote `SuffStats` batches, one re-estimation each. Part 2 replays a
//! single mote's stream in radio-sized batches through
//! [`ct_core::IncrementalEm`] against cold re-estimation from scratch at
//! every batch, reporting amortized µs/batch for both.

use ct_bench::{f2, f4, write_manifest_env, write_result, Table};
use ct_core::em::{estimate_em, EmOptions};
use ct_core::stream::SuffStats;
use ct_core::IncrementalEm;
use ct_pipeline::{EnvConfig, Fleet, RunConfig, Session};
use std::time::Instant;

fn main() {
    let env = EnvConfig::load();
    eprintln!("e14: {}", env.banner());
    let n = env.pick(600, 120);
    let motes = env.pick(8, 3);
    let batches = env.pick(12, 4);
    let seed = env.seed_or(33);

    let mut table = Table::new(vec![
        "path",
        "batches",
        "samples",
        "total ms",
        "us/batch",
        "iters/batch",
        "cache hit rate",
        "mae",
    ]);

    // Part 1: the fleet-service path — one SuffStats batch per mote,
    // re-estimated as each arrives.
    let fleet = Fleet::new(RunConfig::new("sense").invocations(n).seeded(seed), motes);
    let fleet_run = fleet.run().expect("fleet runs clean");
    let start = Instant::now();
    let report = fleet
        .estimate_streaming(&fleet_run)
        .expect("streaming estimation succeeds");
    let elapsed = start.elapsed();
    assert!(
        report.cache_hits > 0,
        "streaming fleet estimation produced no convolution-cache hits"
    );
    let total_iters: usize = report.batch_iterations.iter().sum();
    table.row(vec![
        "fleet streaming".to_string(),
        report.batches.to_string(),
        ct_core::samples::DurationSamples::len(&fleet_run.stats).to_string(),
        f2(elapsed.as_secs_f64() * 1e3),
        f2(elapsed.as_secs_f64() * 1e6 / report.batches as f64),
        f2(total_iters as f64 / report.batches as f64),
        f4(report.cache_hits as f64 / (report.cache_hits + report.cache_misses).max(1) as f64),
        f4(report.estimated.accuracy.mae),
    ]);

    // Part 2: one mote's stream replayed in radio-sized batches —
    // incremental (warm + cached) vs cold re-estimation per batch.
    let session = Session::new(RunConfig::new("sense").invocations(n).seeded(seed));
    let run = session.collect().expect("runs clean");
    let cfg = run.cfg().clone();
    let ticks = run.samples.ticks();
    let cpt = run.samples.cycles_per_tick();
    let chunk = ticks.len().div_ceil(batches);
    let deltas: Vec<SuffStats> = ticks
        .chunks(chunk.max(1))
        .map(|c| {
            let mut s = SuffStats::new(cpt);
            for &t in c {
                s.push(t);
            }
            s
        })
        .collect();

    let opts = EmOptions::default();
    let start = Instant::now();
    let mut inc = IncrementalEm::new(cpt, opts);
    let mut inc_iters = 0usize;
    for d in &deltas {
        inc.ingest(d).expect("same resolution");
        inc_iters += inc
            .reestimate(&cfg, &run.block_costs, &run.edge_costs)
            .expect("incremental EM succeeds")
            .iterations;
    }
    let inc_elapsed = start.elapsed();
    let inc_result = inc.last().expect("estimated").clone();
    assert!(
        inc.cache_hits() > 0,
        "incremental replay produced no convolution-cache hits"
    );
    let inc_acc = ct_core::accuracy::compare(
        &cfg,
        &inc_result.probs,
        &run.truth,
        &run.truth_profile,
        run.invocations,
    );
    table.row(vec![
        "incremental (warm+cache)".to_string(),
        deltas.len().to_string(),
        ticks.len().to_string(),
        f2(inc_elapsed.as_secs_f64() * 1e3),
        f2(inc_elapsed.as_secs_f64() * 1e6 / deltas.len() as f64),
        f2(inc_iters as f64 / deltas.len() as f64),
        f4(inc.cache_hits() as f64 / (inc.cache_hits() + inc.cache_misses()).max(1) as f64),
        f4(inc_acc.mae),
    ]);

    let start = Instant::now();
    let mut acc = SuffStats::new(cpt);
    let mut cold_iters = 0usize;
    let mut cold_result = None;
    for d in &deltas {
        acc.merge(d).expect("same resolution");
        let r = estimate_em(&cfg, &run.block_costs, &run.edge_costs, &acc, opts)
            .expect("cold EM succeeds");
        cold_iters += r.iterations;
        cold_result = Some(r);
    }
    let cold_elapsed = start.elapsed();
    let cold_result = cold_result.expect("at least one batch");
    let cold_acc = ct_core::accuracy::compare(
        &cfg,
        &cold_result.probs,
        &run.truth,
        &run.truth_profile,
        run.invocations,
    );
    table.row(vec![
        "cold per batch".to_string(),
        deltas.len().to_string(),
        ticks.len().to_string(),
        f2(cold_elapsed.as_secs_f64() * 1e3),
        f2(cold_elapsed.as_secs_f64() * 1e6 / deltas.len() as f64),
        f2(cold_iters as f64 / deltas.len() as f64),
        "0.0000".to_string(),
        f4(cold_acc.mae),
    ]);

    // Warm starts move the optimization path, not the optimum: both batch
    // replays must land on (numerically) the same parameters.
    for (a, b) in inc_result
        .probs
        .as_slice()
        .iter()
        .zip(cold_result.probs.as_slice())
    {
        assert!(
            (a - b).abs() < 5e-3,
            "incremental {a} diverged from cold {b}"
        );
    }

    let speedup = cold_elapsed.as_secs_f64() / inc_elapsed.as_secs_f64().max(1e-9);
    let out = format!(
        "# E14 — Streaming re-estimation at batch granularity\n\n\
         `sense`, {motes} motes / {batches} replay batches, seed {seed}. Incremental EM\n\
         warm-starts each re-estimation from the previous optimum and reuses cached\n\
         windowed convolutions across batches; cold EM restarts from scratch each time.\n\
         Incremental replay speedup over cold: {speedup:.1}x.\n\
         {}\n\n{}",
        env.banner(),
        table.to_markdown()
    );
    println!("{out}");
    write_manifest_env("e14_incremental");
    if !env.smoke {
        write_result("e14_incremental.md", &out);
    }
}

//! E7 — Estimator ablation: EM vs moment matching vs flow-NNLS (Figure).
//!
//! Claim evaluated: the full likelihood (EM over the time-expanded chain)
//! extracts strictly more from the same samples than moment- or mean-based
//! inversion, at higher compute cost. Synthetic problems make the true
//! parameters exact.

use ct_apps::synthetic::{diamond_chain_problem, loop_problem};
use ct_bench::{f4, par_sweep, write_result, Table};
use ct_cfg::graph::Cfg;
use ct_cfg::profile::BranchProbs;
use ct_core::accuracy::compare_unweighted;
use ct_core::estimator::{estimate, EstimateOptions, Method};
use ct_pipeline::synth::synth_samples;
use ct_pipeline::EnvConfig;
use std::time::Instant;

fn main() {
    let env = EnvConfig::load();
    eprintln!("e7: {}", env.banner());
    let n = env.pick(3_000, 300);
    let seed = env.seed_or(7_000);
    let mut table = Table::new(vec![
        "problem", "branches", "method", "mae", "max err", "iters", "time ms",
    ]);

    type Problem = (String, Cfg, Vec<u64>, Vec<u64>, BranchProbs);
    let mut problems: Vec<Problem> = Vec::new();
    for k in env.pick(&[1usize, 2, 3, 4][..], &[1, 2][..]) {
        let k = *k;
        let (cfg, bc, ec, truth) = diamond_chain_problem(k, 70 + k as u64);
        problems.push((format!("diamond_chain_{k}"), cfg, bc, ec, truth));
    }
    let (cfg, bc, ec, truth) = loop_problem(99);
    problems.push(("while_loop".into(), cfg, bc, ec, truth));

    // One job per problem (methods stay serial inside a job so their
    // relative per-method timings remain comparable); problems fan out.
    let rows_per_problem = par_sweep(problems.iter().collect(), |(name, cfg, bc, ec, truth)| {
        let samples = synth_samples(cfg, bc, ec, truth, n, seed);
        let mut rows = Vec::new();
        for method in [Method::Em, Method::Moments, Method::FlowMean] {
            let opts = EstimateOptions {
                method: Some(method),
                ..Default::default()
            };
            let start = Instant::now();
            let est = estimate(cfg, bc, ec, &samples, opts).expect("estimation succeeds");
            let elapsed = start.elapsed().as_secs_f64() * 1e3;
            let acc = compare_unweighted(&est.probs, truth);
            rows.push(vec![
                name.clone(),
                truth.len().to_string(),
                method.to_string(),
                f4(acc.mae),
                f4(acc.max_err),
                est.iterations.to_string(),
                format!("{elapsed:.2}"),
            ]);
        }
        eprintln!("e7: {name} done");
        rows
    });
    for rows in rows_per_problem {
        for row in rows {
            table.row(row);
        }
    }

    let out = format!(
        "# E7 — Estimator ablation on synthetic problems\n\n\
         {n} exact-duration samples per problem (cycle-accurate); true parameters\n\
         known by construction. flow-mean uses only the sample mean; moments uses\n\
         mean+variance; EM uses the full duration distribution.\n\
         {}\n\n{}",
        env.banner(),
        table.to_markdown()
    );
    println!("{out}");
    if !env.smoke {
        write_result("e7_estimators.md", &out);
    }
}

//! Reference (first-generation) forward–backward implementation.
//!
//! This is the original `BTreeMap`-frontier engine: one time-expanded DP for
//! the forward table plus one *independent* DP per block for the backward
//! table, and an E-step that rescans the `f ⊗ g` product for every
//! `(sample, edge)` pair. It is kept verbatim as the numerical oracle for the
//! golden-equivalence tests of the flat single-pass engine in [`crate::fb`]
//! (`tests/golden_fb.rs` at the workspace root) — it is not wired into any
//! estimator.
//!
//! Asymptotics (the reason it was replaced): `O(|B|)` backward DPs per
//! parameter vector and `O(samples · edges · |f|·|g|)` E-step work, versus
//! one reversed-graph DP and one windowed convolution per edge in the
//! current engine.

use crate::fb::{EdgeExpectations, FbError, FbParams, FbTables, SparsePmf};
use crate::quantize::{duration_window, tick_likelihood};
use crate::samples::TimingSamples;
use ct_cfg::graph::{BlockId, Cfg, Terminator};
use ct_cfg::profile::BranchProbs;
use ct_stats::pmf::Pmf;
use std::collections::BTreeMap;

/// Computes forward and backward tables with the reference per-block DPs.
///
/// # Errors
///
/// Same contract as [`crate::fb::compute_tables`].
pub fn compute_tables(
    cfg: &Cfg,
    block_costs: &[u64],
    edge_costs: &[u64],
    probs: &BranchProbs,
    params: FbParams,
) -> Result<FbTables, FbError> {
    if block_costs.len() != cfg.len() {
        return Err(FbError::Shape(format!(
            "expected {} block costs, got {}",
            cfg.len(),
            block_costs.len()
        )));
    }
    if edge_costs.len() != cfg.edges().len() {
        return Err(FbError::Shape(format!(
            "expected {} edge costs, got {}",
            cfg.edges().len(),
            edge_costs.len()
        )));
    }
    let edge_probs = probs.edge_probs(cfg);
    let out_edges = collect_out_edges(cfg);

    let mut truncated = 0.0;
    let forward = forward_table(
        cfg,
        block_costs,
        edge_costs,
        &edge_probs,
        &out_edges,
        params,
        &mut truncated,
    )?;
    let mut backward = Vec::with_capacity(cfg.len());
    for b in cfg.block_ids() {
        backward.push(remaining_pmf(
            cfg,
            b,
            block_costs,
            edge_costs,
            &edge_probs,
            &out_edges,
            params,
            &mut truncated,
        )?);
    }
    // The reference DPs build tuple-layout PMFs; the shared `FbTables`
    // container stores them structure-of-arrays like the current engine.
    Ok(FbTables {
        forward: forward.into_iter().map(Pmf::from_sorted).collect(),
        backward: backward.into_iter().map(Pmf::from_sorted).collect(),
        truncated,
    })
}

/// Out-edges per block: `(edge_index, to)`.
fn collect_out_edges(cfg: &Cfg) -> Vec<Vec<(usize, BlockId)>> {
    let mut out = vec![Vec::new(); cfg.len()];
    for e in cfg.edges() {
        out[e.from.index()].push((e.index, e.to));
    }
    out
}

fn forward_table(
    cfg: &Cfg,
    block_costs: &[u64],
    edge_costs: &[u64],
    edge_probs: &[f64],
    out_edges: &[Vec<(usize, BlockId)>],
    params: FbParams,
    truncated: &mut f64,
) -> Result<Vec<SparsePmf>, FbError> {
    let n = cfg.len();
    let mut acc: Vec<BTreeMap<u64, f64>> = vec![BTreeMap::new(); n];
    let mut frontier: BTreeMap<(usize, u64), f64> = BTreeMap::new();
    frontier.insert((cfg.entry().index(), 0), 1.0);
    acc[cfg.entry().index()].insert(0, 1.0);
    let mut processed: usize = 0;

    while !frontier.is_empty() {
        processed += frontier.len();
        if processed > params.max_entries {
            return Err(FbError::SupportExplosion {
                max_entries: params.max_entries,
            });
        }
        let mut next: BTreeMap<(usize, u64), f64> = BTreeMap::new();
        for ((b, t), mass) in frontier {
            if matches!(cfg.block(BlockId(b as u32)).term, Terminator::Return) {
                continue; // absorbed; arrival already recorded
            }
            for &(ei, v) in &out_edges[b] {
                let p = edge_probs[ei];
                if p <= 0.0 {
                    continue;
                }
                let m = mass * p;
                if m < params.mass_eps {
                    *truncated += m;
                    continue;
                }
                let t2 = t + block_costs[b] + edge_costs[ei];
                *next.entry((v.index(), t2)).or_insert(0.0) += m;
                *acc[v.index()].entry(t2).or_insert(0.0) += m;
            }
        }
        frontier = next;
    }
    Ok(acc.into_iter().map(|m| m.into_iter().collect()).collect())
}

/// Distribution of total remaining duration from `start` (including
/// executing `start`).
#[allow(clippy::too_many_arguments)]
fn remaining_pmf(
    cfg: &Cfg,
    start: BlockId,
    block_costs: &[u64],
    edge_costs: &[u64],
    edge_probs: &[f64],
    out_edges: &[Vec<(usize, BlockId)>],
    params: FbParams,
    truncated: &mut f64,
) -> Result<SparsePmf, FbError> {
    let mut result: BTreeMap<u64, f64> = BTreeMap::new();
    let mut frontier: BTreeMap<(usize, u64), f64> = BTreeMap::new();
    frontier.insert((start.index(), 0), 1.0);
    let mut processed: usize = 0;

    while !frontier.is_empty() {
        processed += frontier.len();
        if processed > params.max_entries {
            return Err(FbError::SupportExplosion {
                max_entries: params.max_entries,
            });
        }
        let mut next: BTreeMap<(usize, u64), f64> = BTreeMap::new();
        for ((b, t), mass) in frontier {
            let t_after = t + block_costs[b];
            if matches!(cfg.block(BlockId(b as u32)).term, Terminator::Return) {
                *result.entry(t_after).or_insert(0.0) += mass;
                continue;
            }
            for &(ei, v) in &out_edges[b] {
                let p = edge_probs[ei];
                if p <= 0.0 {
                    continue;
                }
                let m = mass * p;
                if m < params.mass_eps {
                    *truncated += m;
                    continue;
                }
                *next
                    .entry((v.index(), t_after + edge_costs[ei]))
                    .or_insert(0.0) += m;
            }
        }
        frontier = next;
    }
    Ok(result.into_iter().collect())
}

/// Reference E-step: rescans the `f ⊗ g` product per `(sample, edge)` pair.
///
/// # Errors
///
/// Same contract as [`crate::fb::e_step`].
pub fn e_step(
    cfg: &Cfg,
    block_costs: &[u64],
    edge_costs: &[u64],
    probs: &BranchProbs,
    samples: &TimingSamples,
    params: FbParams,
) -> Result<(EdgeExpectations, FbTables), FbError> {
    let tables = compute_tables(cfg, block_costs, edge_costs, probs, params)?;
    let cpt = samples.cycles_per_tick();
    let edges = cfg.edges();
    let edge_probs = probs.edge_probs(cfg);
    // Materialize the tuple layout once: the reference E-step predates the
    // SoA tables and is kept verbatim below.
    let fwd: Vec<SparsePmf> = tables.forward.iter().map(|p| p.entries()).collect();
    let bwd: Vec<SparsePmf> = tables.backward.iter().map(|p| p.entries()).collect();
    let duration = &bwd[cfg.entry().index()];
    let mut counts = vec![0.0; edges.len()];
    let mut loglik = 0.0;
    let mut unexplained = 0;

    for (t_obs, n) in samples.counted() {
        let (lo, hi) = duration_window(t_obs, cpt);
        let z: f64 = pmf_slice(duration, lo, hi)
            .iter()
            .map(|&(d, p)| p * tick_likelihood(t_obs, d, cpt))
            .sum();
        if z <= 1e-300 {
            unexplained += n;
            continue;
        }
        loglik += n as f64 * z.ln();

        for e in edges.iter() {
            let p_e = edge_probs[e.index];
            if p_e <= 0.0 {
                continue;
            }
            let delta = block_costs[e.from.index()] + edge_costs[e.index];
            let f_u = &fwd[e.from.index()];
            let g_v = &bwd[e.to.index()];
            let mut acc = 0.0;
            for &(t, fm) in f_u {
                let base = t + delta;
                if base > hi {
                    continue;
                }
                let s_lo = lo.saturating_sub(base);
                let s_hi = hi - base;
                for &(s, gm) in pmf_slice(g_v, s_lo, s_hi) {
                    let k = tick_likelihood(t_obs, base + s, cpt);
                    if k > 0.0 {
                        acc += fm * gm * k;
                    }
                }
            }
            counts[e.index] += n as f64 * p_e * acc / z;
        }
    }

    Ok((
        EdgeExpectations {
            counts,
            loglik,
            unexplained,
        },
        tables,
    ))
}

fn pmf_slice(pmf: &SparsePmf, lo: u64, hi: u64) -> &[(u64, f64)] {
    if lo > hi {
        return &[];
    }
    let start = pmf.partition_point(|&(d, _)| d < lo);
    let end = pmf.partition_point(|&(d, _)| d <= hi);
    &pmf[start..end]
}

//! Branch-polarity analysis: which conditional branches have their hot edge
//! as the fall-through under a layout.
//!
//! Polarity is implicit in our layout model — the compiler inverts the
//! condition whenever the layout puts the true-successor next — so this
//! module is diagnostic: it reports per-branch alignment, which the ablation
//! experiments use to show *why* a layout wins.

use ct_cfg::graph::{BlockId, Cfg, EdgeKind, Terminator};
use ct_cfg::layout::{Layout, TransferKind};

/// Alignment of one conditional branch under a layout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchAlignment {
    /// The branch block.
    pub block: BlockId,
    /// Frequency of its hotter outgoing edge.
    pub hot_freq: f64,
    /// Frequency of its colder outgoing edge.
    pub cold_freq: f64,
    /// True when the hotter edge falls through (the desired polarity).
    pub hot_is_fallthrough: bool,
}

/// Reports the alignment of every conditional branch.
///
/// # Panics
///
/// Panics if `edge_freq.len()` differs from the edge count.
pub fn branch_alignments(cfg: &Cfg, layout: &Layout, edge_freq: &[f64]) -> Vec<BranchAlignment> {
    let edges = cfg.edges();
    assert_eq!(
        edge_freq.len(),
        edges.len(),
        "one frequency per edge required"
    );
    let mut out = Vec::new();
    for bb in cfg.branch_blocks() {
        let Terminator::Branch { .. } = cfg.block(bb).term else {
            unreachable!()
        };
        // A branch block always carries both arms by CFG construction;
        // skip (rather than panic on) a block that somehow lost one.
        let arm = |kind: EdgeKind| edges.iter().find(|e| e.from == bb && e.kind == kind);
        let (Some(te), Some(fe)) = (arm(EdgeKind::BranchTrue), arm(EdgeKind::BranchFalse)) else {
            continue;
        };
        let (hot, cold) = if edge_freq[te.index] >= edge_freq[fe.index] {
            (te, fe)
        } else {
            (fe, te)
        };
        let hot_is_fallthrough = matches!(
            layout.transfer_kind(cfg, hot.from, hot.to),
            TransferKind::FallThrough
        );
        out.push(BranchAlignment {
            block: bb,
            hot_freq: edge_freq[hot.index],
            cold_freq: edge_freq[cold.index],
            hot_is_fallthrough,
        });
    }
    out
}

/// Fraction of executed conditional decisions whose hot edge falls through
/// (1.0 = perfectly aligned layout). Branches that never execute are skipped.
pub fn alignment_rate(cfg: &Cfg, layout: &Layout, edge_freq: &[f64]) -> f64 {
    let alignments = branch_alignments(cfg, layout, edge_freq);
    let total: f64 = alignments.iter().map(|a| a.hot_freq + a.cold_freq).sum();
    if total <= 0.0 {
        return 1.0;
    }
    let aligned: f64 = alignments
        .iter()
        .filter(|a| a.hot_is_fallthrough)
        .map(|a| a.hot_freq + a.cold_freq)
        .sum();
    aligned / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pettis_hansen::pettis_hansen;
    use ct_cfg::builder::diamond;

    #[test]
    fn ph_layout_aligns_hot_branch() {
        let cfg = diamond();
        let freq = [5.0, 95.0, 5.0, 95.0]; // else-arm hot
        let ph = pettis_hansen(&cfg, &freq);
        let a = branch_alignments(&cfg, &ph, &freq);
        assert_eq!(a.len(), 1);
        assert!(a[0].hot_is_fallthrough);
        assert_eq!(a[0].hot_freq, 95.0);
        assert_eq!(alignment_rate(&cfg, &ph, &freq), 1.0);
    }

    #[test]
    fn misaligned_layout_detected() {
        let cfg = diamond();
        let freq = [5.0, 95.0, 5.0, 95.0];
        // Natural layout: lowering order [cond, join, then, else] — the hot
        // else arm is displaced, so its transfer is not a fall-through.
        let natural = ct_cfg::layout::Layout::natural(&cfg);
        let rate = alignment_rate(&cfg, &natural, &freq);
        assert!(rate < 1.0, "rate {rate}");
    }

    #[test]
    fn unexecuted_branches_are_neutral() {
        let cfg = diamond();
        let natural = ct_cfg::layout::Layout::natural(&cfg);
        assert_eq!(alignment_rate(&cfg, &natural, &[0.0; 4]), 1.0);
    }
}

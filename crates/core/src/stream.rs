//! Streaming sample ingestion: append-only tick batches and mergeable
//! sufficient statistics.
//!
//! The paper's deployment story ships end-to-end timestamps off-mote; at
//! fleet scale those records arrive as *batches from many motes*, not one
//! monolithic vector. This module splits the monolithic
//! [`crate::samples::TimingSamples`] container into:
//!
//! - [`SampleBatch`] — an append-only buffer one source (one mote, one
//!   radio batch) fills in arrival order; and
//! - [`SuffStats`] — the sufficient statistics of any number of batches:
//!   sample count, the distinct-tick histogram, exact integer moment
//!   accumulators, and validation state. [`SuffStats::merge`] is
//!   associative and commutative, so a base station can reduce per-mote
//!   statistics in any order (tree reduction, arrival order, thread-racing
//!   workers) and always obtain the statistics of the monolithic stream —
//!   bitwise.
//!
//! The estimators consume samples only through the
//! [`crate::samples::DurationSamples`] view (distinct-tick
//! histogram + first two moments), which `SuffStats` implements directly:
//! EM and moments run off merged statistics without re-materializing the
//! full sample vector.
//!
//! Exactness is what makes the merge order-insensitive: the accumulators
//! are integers (`u128` sums, saturating for the square sum — saturating
//! addition of non-negative values is still associative and commutative),
//! never floats, so no summation-order effects exist.

use crate::samples::{DurationSamples, SampleIssue, TimingSamples};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// The delivery identity of one batch: which mote produced it and its
/// per-mote sequence number.
///
/// The fleet transport is **at-least-once**: a batch may arrive twice (link
/// retransmission after a lost acknowledgement), late, or out of order — but
/// a redelivery carries the *same* tag as the original. [`SuffStats::merge`]
/// is commutative, so late and reordered arrival are already harmless;
/// duplicates are the only hazard, and an ingest path that drops every tag
/// it has already folded in makes ingestion idempotent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BatchTag {
    /// The producing mote's fleet index.
    pub mote: u64,
    /// The batch's sequence number within that mote's stream.
    pub seq: u64,
}

/// An append-only buffer of tick samples from one source, in arrival order.
///
/// A batch is the unit of ingestion: one mote's radio payload, one flash-log
/// segment. Batches reduce to [`SuffStats`] via [`SampleBatch::stats`] and
/// materialize to [`TimingSamples`] (preserving arrival order) via
/// [`SampleBatch::into_samples`].
///
/// A batch may carry a [`BatchTag`] naming its producer and sequence number;
/// tagged batches are the unit of the fleet's at-least-once delivery
/// contract (redeliveries repeat the tag, so ingest can deduplicate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleBatch {
    ticks: Vec<u64>,
    cycles_per_tick: u64,
    tag: Option<BatchTag>,
}

impl SampleBatch {
    /// An empty batch at `cycles_per_tick` resolution.
    ///
    /// # Errors
    ///
    /// [`SampleIssue::ZeroResolution`] if `cycles_per_tick == 0`.
    pub fn new(cycles_per_tick: u64) -> Result<SampleBatch, SampleIssue> {
        if cycles_per_tick == 0 {
            return Err(SampleIssue::ZeroResolution);
        }
        Ok(SampleBatch {
            ticks: Vec::new(),
            cycles_per_tick,
            tag: None,
        })
    }

    /// Stamps the batch with its delivery identity (builder style).
    pub fn tagged(mut self, tag: BatchTag) -> SampleBatch {
        self.tag = Some(tag);
        self
    }

    /// The batch's delivery identity, if stamped.
    pub fn tag(&self) -> Option<BatchTag> {
        self.tag
    }

    /// Appends one tick sample.
    pub fn push(&mut self, tick: u64) {
        self.ticks.push(tick);
    }

    /// Appends many tick samples in order.
    pub fn extend(&mut self, ticks: impl IntoIterator<Item = u64>) {
        self.ticks.extend(ticks);
    }

    /// Wraps an existing monolithic sample set as a batch (same order).
    pub fn from_samples(samples: &TimingSamples) -> SampleBatch {
        SampleBatch {
            ticks: samples.ticks().to_vec(),
            cycles_per_tick: samples.cycles_per_tick(),
            tag: None,
        }
    }

    /// Materializes the batch as a monolithic sample set, preserving
    /// arrival order.
    pub fn into_samples(self) -> TimingSamples {
        // The constructor's only failure is zero resolution, excluded by
        // `SampleBatch::new`.
        TimingSamples::new(self.ticks, self.cycles_per_tick)
    }

    /// Reduces the batch to its sufficient statistics.
    pub fn stats(&self) -> SuffStats {
        let mut s = SuffStats::new(self.cycles_per_tick);
        for &t in &self.ticks {
            s.push(t);
        }
        s
    }

    /// The buffered ticks, in arrival order.
    pub fn ticks(&self) -> &[u64] {
        &self.ticks
    }

    /// Timer resolution in cycles per tick.
    pub fn cycles_per_tick(&self) -> u64 {
        self.cycles_per_tick
    }

    /// Number of buffered samples.
    pub fn len(&self) -> usize {
        self.ticks.len()
    }

    /// True when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty()
    }
}

/// Two statistics at different timer resolutions cannot be merged: their
/// ticks are not commensurable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolutionMismatch {
    /// The receiver's resolution.
    pub ours: u64,
    /// The other operand's resolution.
    pub theirs: u64,
}

impl fmt::Display for ResolutionMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot merge sample statistics at {} cycles/tick with {} cycles/tick",
            self.ours, self.theirs
        )
    }
}

impl Error for ResolutionMismatch {}

/// Mergeable sufficient statistics of a tick-sample stream.
///
/// Holds everything the estimators need — count, distinct-tick histogram,
/// exact integer moment accumulators, and validation state (how many ticks
/// would overflow the cycle counter) — and nothing order-dependent, so
/// [`SuffStats::merge`] is associative and commutative and any merge tree
/// over any batch partition of a stream yields the statistics of the
/// monolithic stream, bitwise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuffStats {
    cycles_per_tick: u64,
    /// Distinct tick → multiplicity.
    hist: BTreeMap<u64, u64>,
    /// Total sample count (Σ multiplicities; cached).
    n: u64,
    /// Exact Σ tick.
    sum: u128,
    /// Σ tick² (saturating — still associative/commutative for
    /// non-negative addends).
    sum_sq: u128,
    /// Sticky: true once `sum_sq` has ever clamped at `u128::MAX`. A
    /// saturated square-sum silently floors the variance, so moment-based
    /// estimation must refuse (degrade) rather than trust it. Carried
    /// through [`SuffStats::merge`] by OR, which keeps the flag
    /// order-insensitive: the total either exceeds `u128::MAX` (every
    /// merge order saturates somewhere) or it does not (no order does).
    saturated: bool,
    /// Ticks whose cycle conversion `(t + 1) · cycles_per_tick` overflows
    /// `u64` — never real durations; tracked as validation state.
    overflowing: u64,
}

impl SuffStats {
    /// Empty statistics at `cycles_per_tick` resolution.
    ///
    /// Zero resolutions are representable (so stats for a misreported
    /// prescaler can still accumulate); [`SuffStats::validate`] reports
    /// them, mirroring [`TimingSamples`].
    pub fn new(cycles_per_tick: u64) -> SuffStats {
        SuffStats {
            cycles_per_tick,
            hist: BTreeMap::new(),
            n: 0,
            sum: 0,
            sum_sq: 0,
            saturated: false,
            overflowing: 0,
        }
    }

    /// The statistics of a monolithic sample set.
    pub fn from_samples(samples: &TimingSamples) -> SuffStats {
        let mut s = SuffStats::new(samples.cycles_per_tick());
        for &t in samples.ticks() {
            s.push(t);
        }
        s
    }

    /// Rebuilds statistics from a serialized distinct-tick histogram — the
    /// checkpoint/restore entry point.
    ///
    /// Every derived accumulator (`n`, `sum`, `sum_sq`, `overflowing`) is a
    /// pure function of `(hist, cycles_per_tick)`, so a snapshot only needs
    /// the histogram and the sticky saturation flag: the rebuild is bitwise
    /// identical to pushing every sample again. (The flag is also
    /// recomputable — saturation happens exactly when the true Σt² exceeds
    /// `u128::MAX`, which every accumulation order detects — but it is OR'd
    /// with `saturated` so a snapshot can never *lower* validation state.)
    /// Zero-count entries are skipped; all arithmetic saturates, so a
    /// corrupt histogram can degrade the statistics but never panic.
    pub fn from_histogram(
        cycles_per_tick: u64,
        hist: impl IntoIterator<Item = (u64, u64)>,
        saturated: bool,
    ) -> SuffStats {
        let mut s = SuffStats::new(cycles_per_tick);
        let mut clamped = false;
        for (t, c) in hist {
            if c == 0 {
                continue;
            }
            *s.hist.entry(t).or_insert(0) += c;
            s.n = s.n.saturating_add(c);
            s.sum = s.sum.saturating_add((t as u128).saturating_mul(c as u128));
            let sq_total = (t as u128)
                .checked_mul(t as u128)
                .and_then(|sq| sq.checked_mul(c as u128));
            s.sum_sq = match sq_total.and_then(|v| s.sum_sq.checked_add(v)) {
                Some(v) => v,
                None => {
                    clamped = true;
                    u128::MAX
                }
            };
            if t.checked_add(1)
                .and_then(|t1| t1.checked_mul(cycles_per_tick))
                .is_none()
            {
                s.overflowing += c;
            }
        }
        // Restores must not replay the saturation warning the original
        // accumulation already announced; set the flag without the event.
        s.saturated = saturated || clamped;
        s
    }

    /// Folds one tick sample in.
    pub fn push(&mut self, tick: u64) {
        *self.hist.entry(tick).or_insert(0) += 1;
        self.n += 1;
        self.sum += tick as u128;
        // tick² ≤ (2⁶⁴−1)² < u128::MAX, so only the accumulation can clamp.
        let sq = (tick as u128) * (tick as u128);
        self.sum_sq = match self.sum_sq.checked_add(sq) {
            Some(v) => v,
            None => {
                self.mark_saturated();
                u128::MAX
            }
        };
        if tick
            .checked_add(1)
            .and_then(|t1| t1.checked_mul(self.cycles_per_tick))
            .is_none()
        {
            self.overflowing += 1;
        }
    }

    /// Merges another stream's statistics into this one.
    ///
    /// Associative and commutative: for any split of a sample stream into
    /// batches, merging the per-batch statistics in **any** order equals
    /// the statistics of the whole stream.
    ///
    /// # Errors
    ///
    /// [`ResolutionMismatch`] when the resolutions differ.
    pub fn merge(&mut self, other: &SuffStats) -> Result<(), ResolutionMismatch> {
        if self.cycles_per_tick != other.cycles_per_tick {
            return Err(ResolutionMismatch {
                ours: self.cycles_per_tick,
                theirs: other.cycles_per_tick,
            });
        }
        for (&t, &c) in &other.hist {
            *self.hist.entry(t).or_insert(0) += c;
        }
        self.n += other.n;
        self.sum += other.sum;
        self.sum_sq = match self.sum_sq.checked_add(other.sum_sq) {
            Some(v) => v,
            None => {
                self.mark_saturated();
                u128::MAX
            }
        };
        if other.saturated {
            self.mark_saturated();
        }
        self.overflowing += other.overflowing;
        Ok(())
    }

    /// Sets the sticky saturation flag, announcing the transition once.
    fn mark_saturated(&mut self) {
        if !self.saturated {
            self.saturated = true;
            // Only order-insensitive facts in the event fields: the sample
            // count at the moment of saturation depends on merge order.
            ct_obs::emit(
                "warn.suffstats_saturated",
                vec![("cycles_per_tick", self.cycles_per_tick.into())],
            );
        }
    }

    /// True once the square-sum accumulator has ever clamped: the variance
    /// is a lower bound, not a statistic, and moment-based estimation
    /// refuses to run off it.
    pub fn saturated(&self) -> bool {
        self.saturated
    }

    /// The merge of two statistics (consuming form of [`SuffStats::merge`]).
    ///
    /// # Errors
    ///
    /// [`ResolutionMismatch`] when the resolutions differ.
    pub fn merged(mut a: SuffStats, b: &SuffStats) -> Result<SuffStats, ResolutionMismatch> {
        a.merge(b)?;
        Ok(a)
    }

    /// Takes the accumulated statistics, leaving empty statistics at the
    /// same resolution behind — the shard-snapshot entry point: an ingest
    /// shard hands its delta to the reduce tier and keeps accumulating into
    /// the emptied receiver, with no resolution drift and no window where
    /// samples could be double-counted or lost.
    pub fn take(&mut self) -> SuffStats {
        let cycles_per_tick = self.cycles_per_tick;
        std::mem::replace(self, SuffStats::new(cycles_per_tick))
    }

    /// Deterministic pairwise tree reduction of per-shard statistics:
    /// adjacent pairs merge, rounds repeat until one survivor remains.
    ///
    /// Because [`SuffStats::merge`] is associative and commutative, the
    /// survivor is bitwise the left fold of `parts` — and therefore bitwise
    /// the statistics of the monolithic stream — for **any** shard count and
    /// any partition of the stream across shards. The reduce tier leans on
    /// this to serve one global statistic from any sharding. An empty
    /// `parts` reduces to empty statistics at `cycles_per_tick`.
    ///
    /// # Errors
    ///
    /// [`ResolutionMismatch`] when any part disagrees with
    /// `cycles_per_tick` (checked up front; nothing is consumed on error).
    pub fn tree_reduce(
        cycles_per_tick: u64,
        parts: Vec<SuffStats>,
    ) -> Result<SuffStats, ResolutionMismatch> {
        if let Some(p) = parts.iter().find(|p| p.cycles_per_tick != cycles_per_tick) {
            return Err(ResolutionMismatch {
                ours: cycles_per_tick,
                theirs: p.cycles_per_tick,
            });
        }
        let mut level = parts;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            let mut it = level.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    // Resolutions were all checked above; merge cannot fail.
                    Some(b) => {
                        next.push(SuffStats::merged(a, &b).unwrap_or_else(|_| {
                            unreachable!("resolutions verified before reduction")
                        }))
                    }
                    None => next.push(a),
                }
            }
            level = next;
        }
        Ok(level
            .pop()
            .unwrap_or_else(|| SuffStats::new(cycles_per_tick)))
    }

    /// The distinct-tick histogram, ascending.
    pub fn histogram(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.hist.iter().map(|(&t, &c)| (t, c))
    }

    /// Number of distinct tick values observed.
    pub fn distinct(&self) -> usize {
        self.hist.len()
    }

    /// Ticks whose cycle conversion overflows `u64` (validation state).
    pub fn overflowing(&self) -> u64 {
        self.overflowing
    }

    /// Materializes a monolithic sample set (ticks ascending) — for
    /// interfaces that still require a concrete vector, e.g. the robust
    /// trimming ladder. The arrival order is gone; only use where order
    /// does not matter.
    pub fn to_samples(&self) -> Result<TimingSamples, SampleIssue> {
        let mut ticks = Vec::with_capacity(self.n.min(usize::MAX as u64) as usize);
        for (&t, &c) in &self.hist {
            for _ in 0..c {
                ticks.push(t);
            }
        }
        TimingSamples::try_new(ticks, self.cycles_per_tick)
    }
}

impl DurationSamples for SuffStats {
    fn cycles_per_tick(&self) -> u64 {
        self.cycles_per_tick
    }

    fn len(&self) -> usize {
        self.n.min(usize::MAX as u64) as usize
    }

    fn counted(&self) -> Vec<(u64, usize)> {
        self.hist
            .iter()
            .map(|(&t, &c)| (t, c.min(usize::MAX as u64) as usize))
            .collect()
    }

    fn mean_cycles(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        (self.sum as f64 / self.n as f64) * self.cycles_per_tick as f64
    }

    fn variance_cycles(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        // Unbiased sample variance from exact integer sums:
        // (Σt² − (Σt)²/n) / (n − 1), scaled to cycles².
        let n = self.n as f64;
        let sum = self.sum as f64;
        let sum_sq = self.sum_sq as f64;
        let var_ticks = ((sum_sq - sum * sum / n) / (n - 1.0)).max(0.0);
        var_ticks * (self.cycles_per_tick as f64).powi(2)
    }

    fn moments_saturated(&self) -> bool {
        self.saturated
    }

    fn validate(&self) -> Result<(), SampleIssue> {
        if self.cycles_per_tick == 0 {
            return Err(SampleIssue::ZeroResolution);
        }
        if self.n == 0 {
            return Err(SampleIssue::Empty);
        }
        if self.overflowing > 0 {
            // The largest tick is the offender (overflow is monotone in t).
            let &tick = self.hist.keys().next_back().expect("n > 0");
            return Err(SampleIssue::TickOverflow {
                tick,
                cycles_per_tick: self.cycles_per_tick,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_roundtrips_to_samples_preserving_order() {
        let mut b = SampleBatch::new(8).unwrap();
        b.extend([5, 3, 5, 9]);
        b.push(1);
        assert_eq!(b.len(), 5);
        let s = b.clone().into_samples();
        assert_eq!(s.ticks(), &[5, 3, 5, 9, 1]);
        assert_eq!(SampleBatch::from_samples(&s), b);
    }

    #[test]
    fn batch_rejects_zero_resolution() {
        assert_eq!(SampleBatch::new(0), Err(SampleIssue::ZeroResolution));
    }

    #[test]
    fn stats_match_monolithic_view() {
        let samples = TimingSamples::new(vec![115, 215, 115, 115, 215], 8);
        let stats = SuffStats::from_samples(&samples);
        assert_eq!(stats.len(), 5);
        assert_eq!(
            DurationSamples::counted(&stats),
            TimingSamples::counted(&samples)
        );
        assert!(
            (DurationSamples::mean_cycles(&stats) - TimingSamples::mean_cycles(&samples)).abs()
                < 1e-9
        );
        assert!(
            (DurationSamples::variance_cycles(&stats) - TimingSamples::variance_cycles(&samples))
                .abs()
                < 1e-6
        );
        assert_eq!(DurationSamples::validate(&stats), Ok(()));
    }

    #[test]
    fn merge_equals_monolithic() {
        let all = TimingSamples::new(vec![1, 2, 2, 3, 5, 8, 8, 8], 4);
        let whole = SuffStats::from_samples(&all);
        let mut a = SuffStats::new(4);
        let mut b = SuffStats::new(4);
        for (i, &t) in all.ticks().iter().enumerate() {
            if i % 2 == 0 {
                a.push(t);
            } else {
                b.push(t);
            }
        }
        let ab = SuffStats::merged(a.clone(), &b).unwrap();
        let ba = SuffStats::merged(b, &a).unwrap();
        assert_eq!(ab, whole);
        assert_eq!(ba, whole);
    }

    #[test]
    fn merge_rejects_resolution_mismatch() {
        let mut a = SuffStats::new(1);
        let b = SuffStats::new(8);
        let err = a.merge(&b).unwrap_err();
        assert_eq!(err, ResolutionMismatch { ours: 1, theirs: 8 });
        assert!(err.to_string().contains("cycles/tick"));
    }

    #[test]
    fn validation_state_tracks_overflow() {
        let mut s = SuffStats::new(8);
        s.push(5);
        assert_eq!(s.overflowing(), 0);
        assert_eq!(DurationSamples::validate(&s), Ok(()));
        s.push(u64::MAX);
        assert_eq!(s.overflowing(), 1);
        assert!(matches!(
            DurationSamples::validate(&s),
            Err(SampleIssue::TickOverflow { .. })
        ));
    }

    #[test]
    fn empty_and_zero_resolution_validation() {
        assert_eq!(
            DurationSamples::validate(&SuffStats::new(0)),
            Err(SampleIssue::ZeroResolution)
        );
        assert_eq!(
            DurationSamples::validate(&SuffStats::new(1)),
            Err(SampleIssue::Empty)
        );
    }

    #[test]
    fn to_samples_materializes_ascending() {
        let mut s = SuffStats::new(2);
        for t in [9, 1, 9, 4] {
            s.push(t);
        }
        let m = s.to_samples().unwrap();
        assert_eq!(m.ticks(), &[1, 4, 9, 9]);
        assert_eq!(m.cycles_per_tick(), 2);
    }

    #[test]
    fn saturating_square_sum_is_merge_stable() {
        // Ticks big enough to saturate Σt²: merge order still agrees.
        let big = u64::MAX - 1;
        let mut a = SuffStats::new(1);
        let mut b = SuffStats::new(1);
        a.push(big);
        a.push(big);
        b.push(big);
        let ab = SuffStats::merged(a.clone(), &b).unwrap();
        let ba = SuffStats::merged(b.clone(), &a).unwrap();
        assert_eq!(ab, ba);
        let mut mono = SuffStats::new(1);
        for _ in 0..3 {
            mono.push(big);
        }
        assert_eq!(ab, mono);
    }

    #[test]
    fn take_empties_in_place_and_preserves_resolution() {
        let mut s = SuffStats::new(8);
        s.push(5);
        s.push(5);
        let taken = s.take();
        assert_eq!(taken.len(), 2);
        assert_eq!(DurationSamples::cycles_per_tick(&taken), 8);
        assert_eq!(s, SuffStats::new(8), "receiver left empty at same cpt");
        // Accumulation continues seamlessly after the take.
        s.push(9);
        let whole = SuffStats::merged(taken, &s).unwrap();
        let mut direct = SuffStats::new(8);
        for t in [5, 5, 9] {
            direct.push(t);
        }
        assert_eq!(whole, direct);
    }

    #[test]
    fn tree_reduce_equals_left_fold_at_any_width() {
        let ticks = [1u64, 2, 2, 3, 5, 8, 8, 8, 13, 21, 34];
        let mut whole = SuffStats::new(4);
        for &t in &ticks {
            whole.push(t);
        }
        for width in 1..=ticks.len() {
            let parts: Vec<SuffStats> = ticks
                .chunks(width)
                .map(|c| {
                    let mut s = SuffStats::new(4);
                    c.iter().for_each(|&t| s.push(t));
                    s
                })
                .collect();
            let reduced = SuffStats::tree_reduce(4, parts).unwrap();
            assert_eq!(reduced, whole, "width {width} diverged");
        }
        // Degenerate widths: no parts, and parts that are all empty.
        assert_eq!(
            SuffStats::tree_reduce(4, vec![]).unwrap(),
            SuffStats::new(4)
        );
        let empties = vec![SuffStats::new(4); 5];
        assert_eq!(
            SuffStats::tree_reduce(4, empties).unwrap(),
            SuffStats::new(4)
        );
    }

    #[test]
    fn tree_reduce_rejects_mismatched_resolution_parts() {
        let err =
            SuffStats::tree_reduce(4, vec![SuffStats::new(4), SuffStats::new(8)]).unwrap_err();
        assert_eq!(err, ResolutionMismatch { ours: 4, theirs: 8 });
    }

    #[test]
    fn batch_tag_is_optional_and_preserved() {
        let tag = BatchTag { mote: 3, seq: 7 };
        let mut b = SampleBatch::new(8).unwrap().tagged(tag);
        b.extend([5, 3]);
        assert_eq!(b.tag(), Some(tag));
        assert_eq!(SampleBatch::new(8).unwrap().tag(), None);
        // The tag is delivery metadata: the statistics ignore it.
        let mut untagged = SampleBatch::new(8).unwrap();
        untagged.extend([5, 3]);
        assert_eq!(b.stats(), untagged.stats());
    }

    #[test]
    fn from_histogram_rebuilds_bitwise() {
        let mut s = SuffStats::new(8);
        for t in [5, 3, 5, 9, 0, u64::MAX] {
            s.push(t);
        }
        let pairs: Vec<(u64, u64)> = s.histogram().collect();
        let rebuilt = SuffStats::from_histogram(8, pairs, s.saturated());
        assert_eq!(rebuilt, s);
        assert_eq!(rebuilt.overflowing(), s.overflowing());
    }

    #[test]
    fn from_histogram_rebuilds_saturated_stats_and_skips_zero_counts() {
        let big = u64::MAX - 1;
        let mut s = SuffStats::new(1);
        s.push(big);
        s.push(big);
        assert!(s.saturated());
        let pairs: Vec<(u64, u64)> = s.histogram().collect();
        let rebuilt = SuffStats::from_histogram(1, pairs.clone(), s.saturated());
        assert_eq!(rebuilt, s);
        // The flag is recomputed even if the snapshot under-reports it.
        assert!(SuffStats::from_histogram(1, pairs, false).saturated());
        // Zero-count entries never exist in pushed stats; skip them.
        let padded = SuffStats::from_histogram(4, vec![(2, 3), (5, 0)], false);
        let mut direct = SuffStats::new(4);
        for _ in 0..3 {
            direct.push(2);
        }
        assert_eq!(padded, direct);
    }

    #[test]
    fn saturation_flag_is_sticky_and_merge_order_insensitive() {
        let big = u64::MAX - 1;
        // Two pushes of big² overflow u128; one does not.
        let mut a = SuffStats::new(1);
        a.push(big);
        assert!(!a.saturated());
        a.push(big);
        assert!(a.saturated(), "second big² must clamp the accumulator");
        assert!(a.moments_saturated());

        // Saturation caused by the *merge* itself, in either order.
        let mut x = SuffStats::new(1);
        let mut y = SuffStats::new(1);
        x.push(big);
        y.push(big);
        assert!(!x.saturated() && !y.saturated());
        let xy = SuffStats::merged(x.clone(), &y).unwrap();
        let yx = SuffStats::merged(y.clone(), &x).unwrap();
        assert!(xy.saturated() && yx.saturated());
        assert_eq!(xy, yx, "flag participates in Eq; orders must agree");

        // Sticky through merges with clean stats, on both sides.
        let mut clean = SuffStats::new(1);
        clean.push(3);
        let sat_then_clean = SuffStats::merged(xy.clone(), &clean).unwrap();
        let clean_then_sat = SuffStats::merged(clean.clone(), &xy).unwrap();
        assert!(sat_then_clean.saturated());
        assert!(clean_then_sat.saturated());
        assert_eq!(sat_then_clean, clean_then_sat);

        // Clean merges never raise the flag.
        let mut c2 = SuffStats::new(1);
        c2.push(7);
        assert!(!SuffStats::merged(clean, &c2).unwrap().saturated());
    }
}

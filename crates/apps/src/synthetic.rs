//! Synthetic workloads: randomly generated structured NLC programs and
//! parameterized CFG families for the estimator ablation (E7) and
//! scalability (E8) experiments.
//!
//! Generated branch conditions are `read_adc() < T` over a uniform field, so
//! every decision is i.i.d. with a known probability `T/1024` — the exact
//! regime the Markov model assumes, which makes these programs the
//! controlled environment for measuring estimator behaviour.

use ct_cfg::builder;
use ct_cfg::graph::Cfg;
use ct_cfg::profile::BranchProbs;
use ct_ir::program::Program;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// A deterministic synthetic estimation problem on a diamond chain: CFG,
/// block costs, edge costs and the true branch probabilities.
pub fn diamond_chain_problem(k: usize, seed: u64) -> (Cfg, Vec<u64>, Vec<u64>, BranchProbs) {
    let cfg = builder::diamond_chain(k);
    let mut rng = StdRng::seed_from_u64(seed);
    // Distinct arm costs keep every branch identifiable from durations.
    let block_costs: Vec<u64> = (0..cfg.len()).map(|_| rng.gen_range(5..200)).collect();
    let edge_costs: Vec<u64> = (0..cfg.edges().len())
        .map(|_| rng.gen_range(0..3))
        .collect();
    let probs: Vec<f64> = (0..k).map(|_| rng.gen_range(0.05..0.95)).collect();
    let truth = BranchProbs::from_vec(&cfg, probs);
    (cfg, block_costs, edge_costs, truth)
}

/// A deterministic synthetic estimation problem on a single loop.
pub fn loop_problem(seed: u64) -> (Cfg, Vec<u64>, Vec<u64>, BranchProbs) {
    let cfg = builder::while_loop();
    let mut rng = StdRng::seed_from_u64(seed);
    let block_costs: Vec<u64> = (0..cfg.len()).map(|_| rng.gen_range(2..50)).collect();
    let edge_costs: Vec<u64> = (0..cfg.edges().len())
        .map(|_| rng.gen_range(0..3))
        .collect();
    let q = rng.gen_range(0.2..0.85);
    let truth = BranchProbs::from_vec(&cfg, vec![q]);
    (cfg, block_costs, edge_costs, truth)
}

/// Parameters for random structured program generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenConfig {
    /// Decisions (ifs + whiles) to generate.
    pub decisions: usize,
    /// Maximum nesting depth.
    pub max_depth: usize,
    /// Probability that a decision is a loop rather than a conditional.
    pub loop_share: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            decisions: 4,
            max_depth: 3,
            loop_share: 0.3,
        }
    }
}

/// Generates a random structured NLC module with a single `target()`
/// procedure. All conditions are fresh `read_adc()` comparisons, so each
/// decision is i.i.d.; loop conditions keep continuation probability ≤ 0.8
/// to bound running time.
pub fn random_source(seed: u64, config: GenConfig) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut body = String::new();
    let mut remaining = config.decisions;
    gen_block(
        &mut rng,
        &mut body,
        &mut remaining,
        config.max_depth,
        &config,
        2,
    );
    // Spend any leftover decision budget as a flat tail of conditionals.
    while remaining > 0 {
        remaining -= 1;
        let t = rng.gen_range(100..900);
        let g = rng.gen_range(0..4);
        let _ = writeln!(
            body,
            "        if (read_adc() < {t}) {{ g{g} = g{g} + {}; }} else {{ g{g} = g{g} ^ {}; }}",
            rng.gen_range(1..50),
            rng.gen_range(1..50),
        );
    }
    format!(
        "module Synth {{\n    var g0: u32;\n    var g1: u32;\n    var g2: u32;\n    var g3: u32;\n\n    proc target() {{\n{body}    }}\n}}\n"
    )
}

fn gen_block(
    rng: &mut StdRng,
    out: &mut String,
    remaining: &mut usize,
    depth: usize,
    config: &GenConfig,
    indent: usize,
) {
    let pad = "    ".repeat(indent);
    let stmts = rng.gen_range(1..=2);
    for _ in 0..stmts {
        // A plain assignment keeps blocks nonempty and costs distinct.
        let g = rng.gen_range(0..4);
        let c = rng.gen_range(1..60);
        let op = ["+", "^", "*"][rng.gen_range(0..3usize)];
        let _ = writeln!(out, "{pad}g{g} = g{g} {op} {c};");

        if *remaining == 0 || depth == 0 {
            continue;
        }
        *remaining -= 1;
        if rng.gen_bool(config.loop_share) {
            // Loop with continuation probability ≤ 0.8 (T ≤ 819).
            let t = rng.gen_range(200..=819);
            let _ = writeln!(out, "{pad}while (read_adc() < {t}) {{");
            gen_block(rng, out, remaining, depth - 1, config, indent + 1);
            let _ = writeln!(out, "{pad}}}");
        } else {
            let t = rng.gen_range(100..=924);
            let _ = writeln!(out, "{pad}if (read_adc() < {t}) {{");
            gen_block(rng, out, remaining, depth - 1, config, indent + 1);
            let _ = writeln!(out, "{pad}}} else {{");
            gen_block(rng, out, remaining, depth - 1, config, indent + 1);
            let _ = writeln!(out, "{pad}}}");
        }
    }
}

/// Generates and compiles a random structured program.
///
/// # Panics
///
/// Panics if generation produced invalid NLC (a bug in the generator).
pub fn random_program(seed: u64, config: GenConfig) -> Program {
    let src = random_source(seed, config);
    ct_ir::compile_source(&src)
        .unwrap_or_else(|e| panic!("generated source must compile: {e}\n{src}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_cfg::structure::decompose;

    #[test]
    fn diamond_chain_problem_is_well_formed() {
        let (cfg, bc, ec, truth) = diamond_chain_problem(4, 7);
        assert!(cfg.validate().is_ok());
        assert_eq!(bc.len(), cfg.len());
        assert_eq!(ec.len(), cfg.edges().len());
        assert_eq!(truth.len(), 4);
    }

    #[test]
    fn problems_are_deterministic_per_seed() {
        assert_eq!(diamond_chain_problem(3, 9).1, diamond_chain_problem(3, 9).1);
        assert_ne!(
            diamond_chain_problem(3, 9).1,
            diamond_chain_problem(3, 10).1
        );
    }

    #[test]
    fn generated_programs_compile_and_are_structured() {
        for seed in 0..30 {
            let p = random_program(seed, GenConfig::default());
            let proc = &p.procs[0];
            assert!(proc.cfg.validate().is_ok(), "seed {seed}");
            assert!(decompose(&proc.cfg).is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn decision_budget_is_spent() {
        for seed in 0..10 {
            let config = GenConfig {
                decisions: 5,
                ..Default::default()
            };
            let p = random_program(seed, config);
            assert_eq!(
                p.procs[0].cfg.branch_blocks().len(),
                5,
                "seed {seed}: wrong decision count"
            );
        }
    }

    #[test]
    fn generated_programs_run_without_traps() {
        use ct_mote::cost::AvrCost;
        use ct_mote::devices::UniformAdc;
        use ct_mote::interp::Mote;
        use ct_mote::trace::NullProfiler;
        for seed in 0..10 {
            let p = random_program(seed, GenConfig::default());
            let mut mote = Mote::new(p, Box::new(AvrCost));
            mote.devices.adc = Box::new(UniformAdc { lo: 0, hi: 1023 });
            for _ in 0..20 {
                mote.call(ct_ir::instr::ProcId(0), &[], &mut NullProfiler)
                    .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            }
        }
    }
}

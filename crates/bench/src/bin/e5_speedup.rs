//! E5 — End-to-end cycle improvement after placement (Figure).
//!
//! Claim evaluated: the misprediction reduction of E4 translates into a
//! measurable whole-workload cycle saving, and the estimated profile
//! captures most of the saving available to the exact profile.
//!
//! The last three columns close the prediction loop: the per-invocation
//! cycle saving the optimizer *predicted* from the estimated profile
//! alone, the saving the mote's virtual PMU *measured* on the replay, and
//! the absolute gap between the two.

use ct_bench::{f4, write_manifest_env, write_result, Table};
use ct_cfg::layout::Layout;
use ct_mote::timer::VirtualTimer;
use ct_pipeline::{edge_frequencies, penalties, random_layout, EnvConfig, Mcu, RunConfig, Session};
use ct_placement::{expected_cost, Strategy};

fn main() {
    let env = EnvConfig::load();
    eprintln!("e5: {}", env.banner());
    let n = env.pick(3_000, 400);
    let seed = env.seed_or(5_000);
    let mcu = Mcu::Avr;
    let mut table = Table::new(vec![
        "app",
        "natural cycles",
        "random",
        "PH(true)",
        "PH(estimated)",
        "captured",
        "pred d/inv",
        "meas d/inv",
        "|pred-meas|",
    ]);

    let apps = ct_apps::all_apps();
    let apps = &apps[..env.pick(apps.len(), 2)];
    for app in apps {
        let session = Session::new(
            RunConfig::for_app(app.clone())
                .on(mcu)
                .invocations(n)
                .resolution(VirtualTimer::mhz1_at_8mhz().cycles_per_tick())
                .seeded(seed),
        );
        let run = session.collect().expect("bundled apps must not trap");
        let est = session.estimate(&run).expect("estimation succeeds");
        let cfg = run.cfg().clone();

        let opt_est = session
            .place(&run, &est.estimate.probs, Strategy::Best)
            .expect("estimated profile places");
        let layouts: Vec<Layout> = vec![
            Layout::natural(&cfg),
            random_layout(&cfg, 77),
            session
                .place(&run, &run.truth, Strategy::Best)
                .expect("true profile places"),
            opt_est.clone(),
        ];
        let cycles: Vec<u64> = layouts
            .iter()
            .map(|l| session.evaluate(l).expect("replay must not trap").cycles)
            .collect();

        let base = cycles[0] as f64;
        let saved_true = base - cycles[2] as f64;
        let saved_est = base - cycles[3] as f64;
        let captured = if saved_true > 0.0 {
            saved_est / saved_true
        } else {
            1.0
        };
        // Per-invocation saving: predicted from the estimate (expected
        // edge frequencies are per-invocation, so expected extra cycles
        // are too), measured as the replayed whole-workload delta over n.
        let pen = penalties(mcu);
        let pred_per_inv = edge_frequencies(&cfg, &est.estimate.probs)
            .map(|freq| {
                expected_cost(&cfg, &layouts[0], &freq, &pen).extra_cycles
                    - expected_cost(&cfg, &opt_est, &freq, &pen).extra_cycles
            })
            .unwrap_or(f64::NAN);
        let meas_per_inv = saved_est / n as f64;
        table.row(vec![
            app.name.to_string(),
            cycles[0].to_string(),
            f4(cycles[1] as f64 / base),
            f4(cycles[2] as f64 / base),
            f4(cycles[3] as f64 / base),
            f4(captured),
            f4(pred_per_inv),
            f4(meas_per_inv),
            f4((pred_per_inv - meas_per_inv).abs()),
        ]);
        eprintln!("e5: {} done", app.name);
    }

    let out = format!(
        "# E5 — Whole-workload cycles by layout (normalized to the natural layout)\n\n\
         {n} invocations, identical inputs per layout (seed {seed}); placement = best of\n\
         Pettis–Hansen / greedy traces. `captured` = estimated-profile saving as a\n\
         fraction of the exact-profile saving (1.0 = estimation loses nothing).\n\
         `pred d/inv` = per-invocation cycle saving the optimizer predicted from the\n\
         estimated profile; `meas d/inv` = the saving the replayed mote actually\n\
         banked; `|pred-meas|` is the model error in cycles per invocation.\n\
         {}\n\n{}",
        env.banner(),
        table.to_markdown()
    );
    println!("{out}");
    if !env.smoke {
        write_result("e5_speedup.md", &out);
    }
    write_manifest_env("e5_speedup");
}

//! Nonnegative least squares (Lawson–Hanson active set method).
//!
//! The flow-constrained "tomography" estimator solves `min ||A v - t||₂`
//! subject to `v ≥ 0`, where `v` are expected basic-block visit counts and
//! `t` are mean end-to-end procedure timings.

use crate::matrix::Matrix;
use crate::solve::{lstsq, SolveError};

/// Options controlling the NNLS iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NnlsOptions {
    /// Maximum number of outer iterations (each moves one variable into the
    /// passive set). Defaults to `3 * cols`.
    pub max_iter: Option<usize>,
    /// Tolerance on the dual feasibility (gradient) test.
    pub tol: f64,
}

impl Default for NnlsOptions {
    fn default() -> Self {
        NnlsOptions {
            max_iter: None,
            tol: 1e-10,
        }
    }
}

/// The result of an NNLS solve.
#[derive(Debug, Clone, PartialEq)]
pub struct NnlsSolution {
    /// The nonnegative solution vector.
    pub x: Vec<f64>,
    /// Final residual norm `||A x - b||₂`.
    pub residual_norm: f64,
    /// Number of outer iterations used.
    pub iterations: usize,
}

/// Solves `min ||A x - b||₂` subject to `x ≥ 0` with the Lawson–Hanson
/// active-set algorithm.
///
/// # Errors
///
/// Returns [`SolveError::DimensionMismatch`] when `b.len() != a.rows()`, and
/// propagates rank errors from the inner unconstrained solves (which indicate
/// a degenerate passive set).
///
/// # Examples
///
/// ```
/// use ct_stats::matrix::Matrix;
/// use ct_stats::nnls::{nnls, NnlsOptions};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Unconstrained solution would have a negative component; NNLS clamps it.
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
/// let sol = nnls(&a, &[2.0, -1.0, 1.0], NnlsOptions::default())?;
/// assert!(sol.x.iter().all(|&v| v >= 0.0));
/// # Ok(())
/// # }
/// ```
pub fn nnls(a: &Matrix, b: &[f64], opts: NnlsOptions) -> Result<NnlsSolution, SolveError> {
    let m = a.rows();
    let n = a.cols();
    if b.len() != m {
        return Err(SolveError::DimensionMismatch {
            expected: m,
            got: b.len(),
        });
    }
    let max_iter = opts.max_iter.unwrap_or(3 * n.max(1));

    let mut x = vec![0.0; n];
    let mut passive = vec![false; n];
    let mut iterations = 0;

    let residual = |x: &[f64]| -> Vec<f64> {
        let ax = a.mul_vec(x);
        ax.iter().zip(b).map(|(p, q)| q - p).collect()
    };

    loop {
        // Dual: w = Aᵀ (b - A x).
        let r = residual(&x);
        let at = a.transpose();
        let w = at.mul_vec(&r);

        // Pick the most promising active variable.
        let mut best: Option<(usize, f64)> = None;
        for j in 0..n {
            if !passive[j] && w[j] > opts.tol && best.is_none_or(|(_, bw)| w[j] > bw) {
                best = Some((j, w[j]));
            }
        }
        let Some((j_star, _)) = best else { break };
        if iterations >= max_iter {
            break;
        }
        iterations += 1;
        passive[j_star] = true;

        // Inner loop: solve on the passive set; walk back any negatives.
        loop {
            let idx: Vec<usize> = (0..n).filter(|&j| passive[j]).collect();
            let z = solve_on_subset(a, b, &idx)?;
            if z.iter().all(|&v| v > opts.tol) {
                for (k, &j) in idx.iter().enumerate() {
                    x[j] = z[k];
                }
                for j in 0..n {
                    if !passive[j] {
                        x[j] = 0.0;
                    }
                }
                break;
            }
            // Step from x toward z, stopping where the first passive variable
            // hits zero; move that variable to the active set.
            let mut alpha = f64::INFINITY;
            for (k, &j) in idx.iter().enumerate() {
                if z[k] <= opts.tol {
                    let denom = x[j] - z[k];
                    if denom > 0.0 {
                        alpha = alpha.min(x[j] / denom);
                    } else {
                        alpha = 0.0;
                    }
                }
            }
            if !alpha.is_finite() {
                alpha = 0.0;
            }
            for (k, &j) in idx.iter().enumerate() {
                x[j] += alpha * (z[k] - x[j]);
                if x[j] <= opts.tol {
                    x[j] = 0.0;
                    passive[j] = false;
                }
            }
            if idx.iter().all(|&j| !passive[j]) {
                // Everything left the passive set; restart the outer loop.
                break;
            }
        }
    }

    let r = residual(&x);
    let residual_norm = r.iter().map(|v| v * v).sum::<f64>().sqrt();
    Ok(NnlsSolution {
        x,
        residual_norm,
        iterations,
    })
}

/// Unconstrained least squares restricted to the columns in `idx`.
fn solve_on_subset(a: &Matrix, b: &[f64], idx: &[usize]) -> Result<Vec<f64>, SolveError> {
    assert!(!idx.is_empty(), "passive set must be nonempty");
    let m = a.rows();
    let mut sub = Matrix::zeros(m, idx.len());
    for i in 0..m {
        for (k, &j) in idx.iter().enumerate() {
            sub[(i, k)] = a[(i, j)];
        }
    }
    lstsq(&sub, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_optimum_is_returned_when_nonnegative() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let sol = nnls(&a, &[2.0, 3.0], NnlsOptions::default()).unwrap();
        assert!((sol.x[0] - 2.0).abs() < 1e-9);
        assert!((sol.x[1] - 3.0).abs() < 1e-9);
        assert!(sol.residual_norm < 1e-9);
    }

    #[test]
    fn negative_component_gets_clamped_to_zero() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let sol = nnls(&a, &[2.0, -3.0], NnlsOptions::default()).unwrap();
        assert!((sol.x[0] - 2.0).abs() < 1e-9);
        assert_eq!(sol.x[1], 0.0);
        assert!((sol.residual_norm - 3.0).abs() < 1e-9);
    }

    #[test]
    fn all_zero_when_b_is_nonpositive_direction() {
        let a = Matrix::from_rows(&[&[1.0], &[1.0]]);
        let sol = nnls(&a, &[-1.0, -1.0], NnlsOptions::default()).unwrap();
        assert_eq!(sol.x, vec![0.0]);
    }

    #[test]
    fn overdetermined_mixture_recovery() {
        // b = 2*col0 + 1*col1 exactly.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0], &[0.5, 0.5], &[3.0, 0.0]]);
        let b = [4.0, 5.0, 1.5, 6.0];
        let sol = nnls(&a, &b, NnlsOptions::default()).unwrap();
        assert!((sol.x[0] - 2.0).abs() < 1e-8, "{:?}", sol);
        assert!((sol.x[1] - 1.0).abs() < 1e-8, "{:?}", sol);
    }

    #[test]
    fn rejects_mismatched_rhs() {
        let a = Matrix::zeros(2, 2);
        assert!(matches!(
            nnls(&a, &[1.0], NnlsOptions::default()),
            Err(SolveError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn respects_iteration_cap() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let opts = NnlsOptions {
            max_iter: Some(0),
            ..Default::default()
        };
        let sol = nnls(&a, &[1.0, 1.0], opts).unwrap();
        assert_eq!(sol.iterations, 0);
        assert_eq!(sol.x, vec![0.0, 0.0]);
    }

    #[test]
    fn solution_is_always_nonnegative_on_random_like_inputs() {
        // A few deterministic pseudo-random cases exercised without rand.
        let cases: &[(&[f64], &[f64], &[f64])] = &[
            (&[1.0, -1.0], &[-1.0, 2.0], &[1.0, -2.0]),
            (&[0.3, 0.7], &[0.9, 0.1], &[-0.5, 0.5]),
        ];
        for (r0, r1, b) in cases {
            let a = Matrix::from_rows(&[r0, r1]);
            let sol = nnls(&a, b, NnlsOptions::default()).unwrap();
            assert!(sol.x.iter().all(|&v| v >= 0.0), "{:?}", sol);
        }
    }
}

//! E17 — Per-rung estimator comparison under measurement-channel faults
//! (Table; extension experiment).
//!
//! E13 shows the degradation ladder beating the naive pipeline; this
//! experiment opens the ladder up and races every rung **standalone** over
//! the same fault grid, so each backend's failure envelope is visible on
//! its own:
//!
//! * **em** — exact EM on the raw faulted stream ([`ct_core::estimate`],
//!   `Method::Em`).
//! * **trimmed-em** — EM after the ladder's robust outlier trim.
//! * **gnt** — generalized network tomography: characteristic-function
//!   inversion on the trimmed stream (`Method::Gnt`). Every sample
//!   contributes a modulus-1 phasor, so per-sample influence is bounded —
//!   the shape-distorting faults that drag mean/variance matching off
//!   target (long-biased duplicates, merged record-loss windows) should
//!   hurt it less.
//! * **moments** — mean/variance matching on the trimmed stream.
//! * **prior** — the uniform 0.5 static prior (the ladder's floor).
//!
//! A rung that refuses (typed error) falls back to the prior, exactly as
//! the ladder would keep descending; the `err` column counts refusals.
//! Alongside the standalone race, the full ladder runs twice per cell —
//! with the GNT rung enabled (default) and with `use_gnt = false` (the
//! pre-0.10 four-rung descent) — to prove the new rung never costs
//! accuracy.
//!
//! Acceptance (enforced via exit status on the full grid):
//! 1. On the distribution-shape-sensitive fault kinds (`RecordLoss`,
//!    `Duplication`) at rates ≥ 0.3, standalone GNT must beat standalone
//!    moments on mean weighted MAE.
//! 2. In **every** cell, ladder-with-GNT weighted MAE ≤
//!    ladder-without-GNT weighted MAE (+1e-9 slack for print rounding).
//!
//! `E17_SMOKE=1` (or `CT_SMOKE=1`) runs a tiny grid without writing
//! `results/` (for check.sh).

use ct_bench::{f4, par_sweep, write_result, Table};
use ct_cfg::graph::Cfg;
use ct_cfg::profile::BranchProbs;
use ct_core::estimator::{EstimateOptions, Method, RobustOptions};
use ct_core::{estimate, estimate_robust, TimingSamples, TrimPolicy};
use ct_faults::{FaultKind, FaultPlan};
use ct_mote::timer::VirtualTimer;
use ct_pipeline::{EnvConfig, RunConfig, Session};
use std::time::Instant;

/// Fault kinds whose surviving (in-scale) corruption distorts the *shape*
/// of the duration distribution rather than just injecting off-scale
/// garbage: record loss merges adjacent windows into heavy sums and
/// duplication is biased toward re-sending long records. These are the
/// kinds where CF matching should out-resolve mean/variance matching.
const SHAPE_SENSITIVE: &[FaultKind] = &[FaultKind::RecordLoss, FaultKind::Duplication];

/// One standalone rung measurement: weighted MAE against ground truth,
/// wall time, and whether the backend refused (prior fallback).
struct Arm {
    wmae: f64,
    ns: u64,
    refused: bool,
}

struct CellResult {
    row: Vec<String>,
    kind: FaultKind,
    rate: f64,
    gnt: Arm,
    moments: Arm,
    em_ns: u64,
    trimmed_ns: u64,
    ladder_gnt_wmae: f64,
    ladder_nognt_wmae: f64,
}

/// Runs one forced-method front-door estimate and scores it; a refusal
/// falls back to the uniform prior, like the ladder descending past the
/// rung.
#[allow(clippy::too_many_arguments)]
fn run_arm(
    cfg: &Cfg,
    bc: &[u64],
    ec: &[u64],
    samples: &TimingSamples,
    method: Method,
    truth: &BranchProbs,
    truth_profile: &ct_cfg::profile::EdgeProfile,
    invocations: u64,
) -> Arm {
    let opts = EstimateOptions {
        method: Some(method),
        ..EstimateOptions::default()
    };
    let start = Instant::now();
    let est = estimate(cfg, bc, ec, samples, opts);
    let ns = start.elapsed().as_nanos() as u64;
    let (probs, refused) = match est {
        Ok(e) => (e.probs, false),
        Err(_) => (BranchProbs::uniform(cfg, 0.5), true),
    };
    let acc = ct_core::accuracy::compare(cfg, &probs, truth, truth_profile, invocations);
    Arm {
        wmae: acc.weighted_mae,
        ns,
        refused,
    }
}

fn main() {
    let env = EnvConfig::load_with_smoke_alias(Some("E17_SMOKE"));
    eprintln!("e17: {}", env.banner());
    let n = env.pick(3_000, 400);
    let seed_base = env.seed_or(17_000);
    let apps: &[&str] = env.pick(&["sense", "event_detect", "oscilloscope"], &["sense"]);
    let rates: &[f64] = env.pick(&[0.0, 0.1, 0.3, 0.5, 1.0], &[0.0, 0.5]);

    let mut grid = Vec::new();
    for (ai, &app) in apps.iter().enumerate() {
        for (ki, kind) in FaultKind::ALL.into_iter().enumerate() {
            for (ri, &rate) in rates.iter().enumerate() {
                // Same per-cell identity scheme as e13: workload seed per
                // app (paired comparisons on one clean stream), plan seed a
                // pure function of the cell — sweep-order independent.
                let run_seed = seed_base + ai as u64;
                let plan_seed = 0x17_0000 + (ai * 1_000 + ki * 10 + ri) as u64;
                grid.push((app, kind, rate, run_seed, plan_seed));
            }
        }
    }

    let cells = par_sweep(grid, |(name, kind, rate, run_seed, plan_seed)| {
        let session = Session::new(
            RunConfig::new(name)
                .invocations(n)
                .resolution(VirtualTimer::mhz1_at_8mhz().cycles_per_tick())
                .seeded(run_seed)
                .faulted(FaultPlan::single(kind, rate, plan_seed))
                .no_unroll(),
        );
        let run = session.collect().expect("bundled apps must not trap");
        let cfg = run.cfg();
        let (bc, ec) = (&run.block_costs, &run.edge_costs);
        let score = |probs: &BranchProbs| {
            ct_core::accuracy::compare(cfg, probs, &run.truth, &run.truth_profile, run.invocations)
                .weighted_mae
        };

        // Standalone rungs. Full EM sees the raw faulted stream; the
        // trimmed rungs see what the ladder would hand them.
        let (trimmed, _dropped) = run.samples.trimmed(TrimPolicy::default());
        let em = run_arm(
            cfg,
            bc,
            ec,
            &run.samples,
            Method::Em,
            &run.truth,
            &run.truth_profile,
            run.invocations,
        );
        let trimmed_em = run_arm(
            cfg,
            bc,
            ec,
            &trimmed,
            Method::Em,
            &run.truth,
            &run.truth_profile,
            run.invocations,
        );
        let gnt = run_arm(
            cfg,
            bc,
            ec,
            &trimmed,
            Method::Gnt,
            &run.truth,
            &run.truth_profile,
            run.invocations,
        );
        let moments = run_arm(
            cfg,
            bc,
            ec,
            &trimmed,
            Method::Moments,
            &run.truth,
            &run.truth_profile,
            run.invocations,
        );
        let prior_wmae = score(&BranchProbs::uniform(cfg, 0.5));

        // Full ladder, with and without the GNT rung.
        let with = estimate_robust(cfg, bc, ec, &run.samples, RobustOptions::default());
        let without = estimate_robust(
            cfg,
            bc,
            ec,
            &run.samples,
            RobustOptions {
                use_gnt: false,
                ..RobustOptions::default()
            },
        );
        let (with_wmae, without_wmae) =
            (score(&with.estimate.probs), score(&without.estimate.probs));

        eprintln!("e17: {name} {kind} rate={rate} done");
        CellResult {
            row: vec![
                name.to_string(),
                kind.to_string(),
                format!("{rate:.1}"),
                f4(em.wmae),
                f4(trimmed_em.wmae),
                f4(gnt.wmae),
                f4(moments.wmae),
                f4(prior_wmae),
                with.rung.to_string(),
                f4(with_wmae),
                f4(without_wmae),
            ],
            kind,
            rate,
            gnt,
            moments,
            em_ns: em.ns,
            trimmed_ns: trimmed_em.ns,
            ladder_gnt_wmae: with_wmae,
            ladder_nognt_wmae: without_wmae,
        }
    });

    let mut table = Table::new(vec![
        "app",
        "fault",
        "rate",
        "em",
        "trimmed-em",
        "gnt",
        "moments",
        "prior",
        "ladder rung",
        "ladder wmae",
        "no-gnt wmae",
    ]);
    for c in &cells {
        table.row(c.row.clone());
    }

    let mut failures = Vec::new();

    // Gate 1: standalone GNT beats standalone moments on the
    // shape-sensitive kinds at rates ≥ 0.3.
    let mut verdict = Table::new(vec![
        "fault",
        "gnt wmae (rate ≥ 0.3)",
        "moments wmae (rate ≥ 0.3)",
        "gnt refusals",
        "gnt wins",
    ]);
    for kind in FaultKind::ALL {
        let hit: Vec<&CellResult> = cells
            .iter()
            .filter(|c| c.kind == kind && c.rate >= 0.3)
            .collect();
        if hit.is_empty() {
            continue;
        }
        let gnt_avg = hit.iter().map(|c| c.gnt.wmae).sum::<f64>() / hit.len() as f64;
        let mom_avg = hit.iter().map(|c| c.moments.wmae).sum::<f64>() / hit.len() as f64;
        let refusals = hit.iter().filter(|c| c.gnt.refused).count();
        let wins = gnt_avg < mom_avg;
        if SHAPE_SENSITIVE.contains(&kind) && !wins {
            failures.push(format!("{kind}: gnt {gnt_avg:.4} !< moments {mom_avg:.4}"));
        }
        verdict.row(vec![
            kind.to_string(),
            f4(gnt_avg),
            f4(mom_avg),
            refusals.to_string(),
            if wins { "yes" } else { "no" }.to_string(),
        ]);
    }

    // Gate 2: adding the GNT rung never costs the ladder accuracy.
    for c in &cells {
        if c.ladder_gnt_wmae > c.ladder_nognt_wmae + 1e-9 {
            failures.push(format!(
                "{} rate={}: ladder-with-gnt {:.4} > ladder-without {:.4}",
                c.kind, c.rate, c.ladder_gnt_wmae, c.ladder_nognt_wmae
            ));
        }
    }

    // Cost: mean wall time per standalone estimate over the whole grid.
    let mean_ns = |f: &dyn Fn(&CellResult) -> u64| {
        cells.iter().map(f).sum::<u64>() / cells.len().max(1) as u64
    };
    let mut speed = Table::new(vec!["rung", "mean ns/estimate"]);
    speed.row(vec!["em (raw)".into(), mean_ns(&|c| c.em_ns).to_string()]);
    speed.row(vec![
        "trimmed-em".into(),
        mean_ns(&|c| c.trimmed_ns).to_string(),
    ]);
    speed.row(vec!["gnt".into(), mean_ns(&|c| c.gnt.ns).to_string()]);
    speed.row(vec![
        "moments".into(),
        mean_ns(&|c| c.moments.ns).to_string(),
    ]);

    let out = format!(
        "# E17 — Ladder rungs standalone under measurement-channel faults\n\n\
         {n} samples per cell; 1 MHz timer (8 cycles/tick); AVR cost model.\n\
         Each cell corrupts the clean tick stream with one seeded fault model\n\
         at the given rate, then races every ladder rung standalone (refusals\n\
         fall back to the uniform prior) and runs the full ladder with and\n\
         without the GNT rung. All numbers are weighted MAE vs ground truth.\n\
         {}\n\n{}\n\
         ## Verdict — standalone GNT vs moments at fault rates ≥ 0.3\n\n\
         Shape-sensitive kinds (enforced): record-loss, duplication.\n\n{}\n\
         ## Cost — mean wall time per standalone estimate\n\n{}",
        env.banner(),
        table.to_markdown(),
        verdict.to_markdown(),
        speed.to_markdown()
    );
    println!("{out}");
    if !env.smoke {
        write_result("e17_estimators.md", &out);
        if !failures.is_empty() {
            eprintln!("e17: ACCEPTANCE FAILED:");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
    }
}

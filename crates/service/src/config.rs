//! Service topology knobs: shard count, queue depth, reduce cadence.

/// How the estimation service is laid out: how many shard accumulators,
/// how deep each bounded ingest queue is, and how often the reduce tier
/// folds shard deltas into the global statistics.
///
/// None of these knobs can change *what* is estimated — the reduce tier's
/// tree reduction is bitwise shard-count- and cadence-invariant (see
/// [`SuffStats::tree_reduce`](ct_core::stream::SuffStats::tree_reduce)) —
/// they only trade memory, latency, and contention.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Shard accumulators (`K`); batches route by `tag.mote % K`, so one
    /// mote's stream always lands on one shard. At least 1.
    pub shards: usize,
    /// Bounded depth of each shard's ingest queue: a full queue blocks the
    /// producer (or returns [`IngestError::QueueFull`](crate::IngestError)
    /// in non-blocking mode) — explicit backpressure instead of unbounded
    /// buffering. At least 1.
    pub queue_depth: usize,
    /// Reduce cadence hint, in accepted batches: coordinators that poll
    /// [`EstimationService::reduce`](crate::EstimationService::reduce)
    /// use it to decide how often to harvest. At least 1.
    pub reduce_every: u64,
    /// Test/bench-only: microseconds each shard worker sleeps per batch,
    /// to force backpressure deterministically in small experiments. 0 in
    /// production.
    pub ingest_stall_us: u64,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            shards: 4,
            queue_depth: 1024,
            reduce_every: 256,
            ingest_stall_us: 0,
        }
    }
}

impl ServiceConfig {
    /// The default topology: 4 shards, 1024-deep queues, reduce every 256
    /// batches.
    pub fn new() -> ServiceConfig {
        ServiceConfig::default()
    }

    /// The topology the pinned `Fleet` streaming client uses: one shard,
    /// reduced after every batch — the shape under which the service is
    /// bitwise the pre-service monolithic loop.
    pub fn pinned() -> ServiceConfig {
        ServiceConfig {
            shards: 1,
            queue_depth: 1,
            reduce_every: 1,
            ingest_stall_us: 0,
        }
    }

    /// Sets the shard count (builder style; clamped to at least 1).
    pub fn shards(mut self, shards: usize) -> ServiceConfig {
        self.shards = shards.max(1);
        self
    }

    /// Sets the per-shard queue depth (builder style; clamped to at
    /// least 1).
    pub fn queue_depth(mut self, depth: usize) -> ServiceConfig {
        self.queue_depth = depth.max(1);
        self
    }

    /// Sets the reduce cadence in batches (builder style; clamped to at
    /// least 1).
    pub fn reduce_every(mut self, batches: u64) -> ServiceConfig {
        self.reduce_every = batches.max(1);
        self
    }

    /// Sets the per-batch worker stall (builder style; test/bench only).
    pub fn ingest_stall_us(mut self, us: u64) -> ServiceConfig {
        self.ingest_stall_us = us;
        self
    }

    /// Reads `CT_SHARDS` / `CT_QUEUE_DEPTH` / `CT_REDUCE_EVERY` from the
    /// process environment, defaulting each unset or unparsable knob.
    pub fn from_env() -> ServiceConfig {
        fn knob<T: std::str::FromStr>(name: &str, default: T) -> T {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        }
        let d = ServiceConfig::default();
        ServiceConfig::new()
            .shards(knob("CT_SHARDS", d.shards))
            .queue_depth(knob("CT_QUEUE_DEPTH", d.queue_depth))
            .reduce_every(knob("CT_REDUCE_EVERY", d.reduce_every))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_clamp_degenerate_values() {
        let c = ServiceConfig::new()
            .shards(0)
            .queue_depth(0)
            .reduce_every(0);
        assert_eq!(c.shards, 1);
        assert_eq!(c.queue_depth, 1);
        assert_eq!(c.reduce_every, 1);
    }

    #[test]
    fn pinned_shape_is_one_shard_per_batch_reduction() {
        let p = ServiceConfig::pinned();
        assert_eq!((p.shards, p.queue_depth, p.reduce_every), (1, 1, 1));
        assert_eq!(p.ingest_stall_us, 0);
    }
}

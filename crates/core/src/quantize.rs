//! The quantization likelihood kernel: probability of observing a tick count
//! given a true cycle duration.
//!
//! A procedure whose activation starts at a uniformly random timer phase
//! `φ ∈ [0, cpt)` and runs for `d` cycles is observed as
//! `⌊(φ+d)/cpt⌋ − ⌊φ/cpt⌋` ticks, which equals `⌊d/cpt⌋` with probability
//! `1 − (d mod cpt)/cpt` and `⌊d/cpt⌋ + 1` otherwise. This two-point kernel
//! is what lets the estimator use coarse timers *exactly* instead of
//! pretending ticks are cycles.

/// Probability of observing `ticks` given a true duration of `d` cycles on a
/// timer with `cpt` cycles per tick, under a uniformly random start phase.
///
/// # Panics
///
/// Panics if `cpt == 0`.
pub fn tick_likelihood(ticks: u64, d: u64, cpt: u64) -> f64 {
    assert!(cpt > 0, "cycles per tick must be positive");
    let base = d / cpt;
    let frac = (d % cpt) as f64 / cpt as f64;
    if ticks == base {
        1.0 - frac
    } else if Some(ticks) == base.checked_add(1) {
        frac
    } else {
        0.0
    }
}

/// The inclusive range of cycle durations that could produce `ticks` with
/// nonzero probability: `[(ticks−1)·cpt + 1, (ticks+1)·cpt − 1]`, clipped at
/// zero.
///
/// Saturates at `u64::MAX` for tick values near the top of the counter
/// (corrupted records), where no real duration PMF has support anyway — the
/// sample then scores zero instead of tripping an arithmetic overflow.
pub fn duration_window(ticks: u64, cpt: u64) -> (u64, u64) {
    assert!(cpt > 0, "cycles per tick must be positive");
    let lo = ticks
        .saturating_sub(1)
        .saturating_mul(cpt)
        .saturating_add(u64::from(ticks > 0));
    let hi = ticks
        .saturating_add(1)
        .saturating_mul(cpt)
        .saturating_sub(1);
    (lo, hi)
}

/// Expected observed ticks for duration `d`: `d / cpt` exactly (the kernel is
/// unbiased in expectation).
pub fn expected_ticks(d: u64, cpt: u64) -> f64 {
    assert!(cpt > 0, "cycles per tick must be positive");
    d as f64 / cpt as f64
}

/// Probability of observing `ticks` under a duration PMF (sorted flat
/// `(cycles, mass)` pairs): `Σ_d p(d) · tick_likelihood(ticks, d, cpt)`.
///
/// Only the support inside [`duration_window`] is visited, so scoring is
/// O(log |pmf| + window) regardless of the PMF's full support size.
pub fn pmf_tick_score(pmf: &[(u64, f64)], ticks: u64, cpt: u64) -> f64 {
    let (lo, hi) = duration_window(ticks, cpt);
    ct_stats::pmf::slice_range(pmf, lo, hi)
        .iter()
        .map(|&(d, m)| m * tick_likelihood(ticks, d, cpt))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_multiple_is_deterministic() {
        assert_eq!(tick_likelihood(3, 300, 100), 1.0);
        assert_eq!(tick_likelihood(4, 300, 100), 0.0);
        assert_eq!(tick_likelihood(2, 300, 100), 0.0);
    }

    #[test]
    fn kernel_sums_to_one() {
        for d in [0u64, 1, 99, 100, 101, 250, 999] {
            let total: f64 = (0..20).map(|t| tick_likelihood(t, d, 100)).sum();
            assert!((total - 1.0).abs() < 1e-12, "d={d}");
        }
    }

    #[test]
    fn kernel_is_unbiased() {
        let cpt = 100;
        for d in [37u64, 150, 249, 980] {
            let mean: f64 = (0..20).map(|t| t as f64 * tick_likelihood(t, d, cpt)).sum();
            assert!((mean - expected_ticks(d, cpt)).abs() < 1e-12, "d={d}");
        }
    }

    #[test]
    fn fractional_part_splits_mass() {
        // d = 250, cpt = 100: 2 ticks w.p. 0.5, 3 ticks w.p. 0.5.
        assert!((tick_likelihood(2, 250, 100) - 0.5).abs() < 1e-12);
        assert!((tick_likelihood(3, 250, 100) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cycle_accurate_timer_is_exact() {
        assert_eq!(tick_likelihood(57, 57, 1), 1.0);
        assert_eq!(tick_likelihood(56, 57, 1), 0.0);
    }

    #[test]
    fn window_covers_support() {
        let cpt = 100;
        for ticks in [0u64, 1, 5] {
            let (lo, hi) = duration_window(ticks, cpt);
            // Everything inside the window has positive likelihood...
            for d in lo..=hi {
                assert!(tick_likelihood(ticks, d, cpt) > 0.0, "ticks={ticks} d={d}");
            }
            // ...and the boundary just outside has zero.
            if lo > 0 {
                assert_eq!(tick_likelihood(ticks, lo - 1, cpt), 0.0);
            }
            assert_eq!(tick_likelihood(ticks, hi + 1, cpt), 0.0);
        }
    }

    #[test]
    fn zero_duration_is_zero_ticks() {
        assert_eq!(tick_likelihood(0, 0, 244), 1.0);
        assert_eq!(duration_window(0, 244), (0, 243));
    }

    #[test]
    fn extreme_ticks_saturate_instead_of_overflowing() {
        // A stuck-at counter reports ticks near u64::MAX; the window must
        // saturate and the score must be zero, not a panic.
        // Both bounds saturate; the window degenerates to empty (lo > hi),
        // which `slice_range` treats as zero support.
        let (lo, hi) = duration_window(u64::MAX, 244);
        assert_eq!(lo, u64::MAX);
        assert_eq!(hi, u64::MAX - 1);
        assert_eq!(tick_likelihood(u64::MAX, u64::MAX, 1), 1.0);
        let pmf = vec![(116u64, 1.0)];
        assert_eq!(pmf_tick_score(&pmf, u64::MAX, 244), 0.0);
    }

    #[test]
    fn pmf_score_matches_pointwise_sum() {
        // d = 250 and d = 310 under cpt = 100, observed tick 3:
        // 0.5·0.5 (from 250) + 0.5·0.9 (from 310) = 0.7.
        let pmf = vec![(250u64, 0.5), (310u64, 0.5)];
        assert!((pmf_tick_score(&pmf, 3, 100) - 0.7).abs() < 1e-12);
        // Out-of-window support contributes nothing.
        assert_eq!(pmf_tick_score(&pmf, 9, 100), 0.0);
    }
}

//! Sorter: bubble sort over an 8-sample window. The swap branch probability
//! *decays across passes* as the window gets sorted — a deliberate violation
//! of the time-homogeneous Markov assumption, included as the honest
//! hard case for the estimators (see EXPERIMENTS.md).

use ct_ir::program::Program;
use ct_mote::devices::UniformAdc;
use ct_mote::interp::Mote;

/// NLC source.
pub const SOURCE: &str = r#"
module Sorter {
    var buf: u16[8];
    var swaps: u32;

    proc sort_window() {
        var i: u16 = 0;
        while (i < 8) {
            buf[i] = read_adc();
            i = i + 1;
        }
        var pass: u16 = 0;
        while (pass < 7) {
            var j: u16 = 0;
            while (j < 7 - pass) {
                if (buf[j] > buf[j + 1]) {
                    var t: u16 = buf[j];
                    buf[j] = buf[j + 1];
                    buf[j + 1] = t;
                    swaps = swaps + 1;
                } else { }
                j = j + 1;
            }
            pass = pass + 1;
        }
    }
}
"#;

/// The procedure the experiments profile.
pub const TARGET_PROC: &str = "sort_window";

/// Compiles the app.
///
/// # Panics
///
/// Panics if the bundled source fails to compile (a bug in this crate).
pub fn program() -> Program {
    ct_ir::compile_source(SOURCE).expect("bundled Sorter source compiles")
}

/// Standard workload: uniformly random windows.
pub fn configure(mote: &mut Mote) {
    mote.devices.adc = Box::new(UniformAdc { lo: 0, hi: 1023 });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_ir::instr::ProcId;
    use ct_mote::cost::AvrCost;
    use ct_mote::devices::TraceAdc;
    use ct_mote::trace::NullProfiler;

    #[test]
    fn sorts_the_window() {
        let p = program();
        let mut mote = Mote::new(p.clone(), Box::new(AvrCost));
        mote.devices.adc = Box::new(TraceAdc::new(vec![9, 3, 7, 1, 8, 2, 6, 4]));
        mote.call(ProcId(0), &[], &mut NullProfiler).unwrap();
        let buf = mote.globals.array(p.global_id("buf").unwrap()).to_vec();
        assert_eq!(buf, vec![1, 2, 3, 4, 6, 7, 8, 9]);
    }

    #[test]
    fn swap_count_matches_inversions() {
        let p = program();
        let mut mote = Mote::new(p.clone(), Box::new(AvrCost));
        // Reverse-sorted input: 28 inversions for 8 elements.
        mote.devices.adc = Box::new(TraceAdc::new(vec![8, 7, 6, 5, 4, 3, 2, 1]));
        mote.call(ProcId(0), &[], &mut NullProfiler).unwrap();
        assert_eq!(mote.globals.load(p.global_id("swaps").unwrap()), 28);
    }

    #[test]
    fn already_sorted_needs_no_swaps() {
        let p = program();
        let mut mote = Mote::new(p.clone(), Box::new(AvrCost));
        mote.devices.adc = Box::new(TraceAdc::new(vec![1, 2, 3, 4, 5, 6, 7, 8]));
        mote.call(ProcId(0), &[], &mut NullProfiler).unwrap();
        assert_eq!(mote.globals.load(p.global_id("swaps").unwrap()), 0);
    }

    #[test]
    fn random_windows_swap_about_half() {
        let p = program();
        let mut mote = Mote::new(p.clone(), Box::new(AvrCost));
        configure(&mut mote);
        for _ in 0..100 {
            mote.call(ProcId(0), &[], &mut NullProfiler).unwrap();
        }
        let swaps = mote.globals.load(p.global_id("swaps").unwrap());
        // Expected inversions per window = 28/2 = 14 → 1400 total, ±noise.
        assert!((1000..1800).contains(&swaps), "{swaps}");
    }
}

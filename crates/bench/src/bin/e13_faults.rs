//! E13 — Robust estimation under measurement-channel faults (Table; extension
//! experiment).
//!
//! The paper's pipeline assumes timing records survive the trip from mote to
//! base station intact. Real record channels drift, drop, duplicate, reorder,
//! truncate, and occasionally deliver garbage (all-ones bus reads, wrapped
//! wrong-order subtractions). This experiment corrupts each app's tick stream
//! with every `ct-faults` model at increasing rates and compares:
//!
//! * **naive** — the repo front door [`ct_core::estimate`]; a hard error
//!   (e.g. overflowing ticks) falls back to the uniform prior, mirroring a
//!   deployment with no recovery story; it always feeds placement.
//! * **ladder** — [`ct_core::estimate_robust`], the graceful-degradation
//!   ladder (full EM → trimmed EM → moments → prior) with confidence-gated
//!   placement ([`ct_placement::place_with_confidence`]).
//!
//! The 1 MHz timer (8 cycles/tick) is the paper's standard mote resolution:
//! coarse enough that a tick is a real quantization unit, fine enough that
//! EM is well identified. Garbled records (bitwise complements, wrapped
//! subtractions) still land astronomically off-scale, where the validation
//! gate (naive) or the trimming pre-filter (ladder) must deal with them.
//!
//! `E13_SMOKE=1` runs a tiny grid without writing `results/` (for check.sh).

use ct_bench::{f4, par_sweep, penalties, run_app, write_result, Mcu, Table};
use ct_cfg::graph::Cfg;
use ct_cfg::layout::{Layout, PenaltyModel};
use ct_cfg::profile::BranchProbs;
use ct_core::accuracy::compare;
use ct_core::estimator::{estimate, estimate_robust, EstimateOptions, RobustOptions};
use ct_faults::{FaultKind, FaultPlan};
use ct_mote::timer::VirtualTimer;
use ct_placement::{place_with_confidence, Strategy, MIN_PLACEMENT_CONFIDENCE};

/// Lays out `cfg` from an estimate, degrading to the natural layout when the
/// estimate cannot even produce edge frequencies (exit unreachable under a
/// degenerate probability vector) — placement must never crash the pipeline.
fn layout_from(cfg: &Cfg, probs: &BranchProbs, confidence: f64, pen: &PenaltyModel) -> Layout {
    match ct_markov::visits::expected_edge_traversals(cfg, probs) {
        Ok(freq) => place_with_confidence(
            cfg,
            &freq,
            confidence,
            MIN_PLACEMENT_CONFIDENCE,
            pen,
            Strategy::Best,
        ),
        Err(_) => Layout::natural(cfg),
    }
}

struct CellResult {
    row: Vec<String>,
    kind: FaultKind,
    rate: f64,
    naive_wmae: f64,
    ladder_wmae: f64,
}

fn main() {
    let smoke = std::env::var("E13_SMOKE").is_ok();
    let n = if smoke { 400 } else { 3_000 };
    let apps: &[&str] = if smoke {
        &["sense"]
    } else {
        &["sense", "event_detect", "oscilloscope"]
    };
    let rates: &[f64] = if smoke {
        &[0.0, 0.5]
    } else {
        &[0.0, 0.1, 0.3, 0.5, 1.0]
    };

    let mut grid = Vec::new();
    for (ai, &app) in apps.iter().enumerate() {
        for (ki, kind) in FaultKind::ALL.into_iter().enumerate() {
            for (ri, &rate) in rates.iter().enumerate() {
                // Stable per-cell identity: the workload seed is per-app (so
                // every fault sees the same clean stream and comparisons are
                // paired) and the plan seed is a pure function of the cell —
                // independent of sweep order and `CT_THREADS`.
                let run_seed = 13_000 + ai as u64;
                let plan_seed = 0x13_0000 + (ai * 1_000 + ki * 10 + ri) as u64;
                grid.push((app, kind, rate, run_seed, plan_seed));
            }
        }
    }

    let cells = par_sweep(grid, |(name, kind, rate, run_seed, plan_seed)| {
        let app = ct_apps::app_by_name(name).expect("app exists");
        let run = run_app(&app, Mcu::Avr, n, VirtualTimer::mhz1_at_8mhz(), 0, run_seed);
        let faulty = FaultPlan::single(kind, rate, plan_seed)
            .build()
            .apply(&run.samples);
        let cfg = run.cfg();

        // Naive: front door, hard error → uniform prior, always places.
        let naive = estimate(
            cfg,
            &run.block_costs,
            &run.edge_costs,
            &faulty,
            EstimateOptions::default(),
        )
        .map(|e| e.probs)
        .unwrap_or_else(|_| BranchProbs::uniform(cfg, 0.5));

        // Ladder: never fails; carries rung + confidence.
        let robust = estimate_robust(
            cfg,
            &run.block_costs,
            &run.edge_costs,
            &faulty,
            RobustOptions::default(),
        );

        let naive_acc = compare(cfg, &naive, &run.truth, &run.truth_profile, run.invocations);
        let ladder_acc = compare(
            cfg,
            &robust.estimate.probs,
            &run.truth,
            &run.truth_profile,
            run.invocations,
        );

        let pen = penalties(Mcu::Avr);
        let naive_mr = layout_from(cfg, &naive, 1.0, &pen)
            .evaluate(cfg, &run.truth_profile, &pen)
            .misprediction_rate();
        let ladder_mr = layout_from(cfg, &robust.estimate.probs, robust.confidence, &pen)
            .evaluate(cfg, &run.truth_profile, &pen)
            .misprediction_rate();

        if std::env::var("E13_DEBUG").is_ok() {
            for a in &robust.attempts {
                eprintln!(
                    "e13-debug: {name} {kind} rate={rate} rung={} accepted={} {}",
                    a.rung, a.accepted, a.detail
                );
            }
        }
        eprintln!("e13: {name} {kind} rate={rate} done");
        CellResult {
            row: vec![
                name.to_string(),
                kind.to_string(),
                format!("{rate:.1}"),
                f4(naive_acc.weighted_mae),
                f4(ladder_acc.weighted_mae),
                robust.rung.to_string(),
                format!("{:.2}", robust.confidence),
                f4(naive_mr),
                f4(ladder_mr),
            ],
            kind,
            rate,
            naive_wmae: naive_acc.weighted_mae,
            ladder_wmae: ladder_acc.weighted_mae,
        }
    });

    let mut table = Table::new(vec![
        "app",
        "fault",
        "rate",
        "naive wmae",
        "ladder wmae",
        "rung",
        "confidence",
        "naive mispred",
        "ladder mispred",
    ]);
    for c in &cells {
        table.row(c.row.clone());
    }

    // Verdict: per fault kind, aggregated over apps and rates ≥ 0.3, the
    // ladder must beat the naive pipeline strictly.
    let mut verdict = Table::new(vec![
        "fault",
        "naive wmae (rate ≥ 0.3)",
        "ladder wmae (rate ≥ 0.3)",
        "ladder wins",
    ]);
    let mut failures = Vec::new();
    for kind in FaultKind::ALL {
        let hit: Vec<&CellResult> = cells
            .iter()
            .filter(|c| c.kind == kind && c.rate >= 0.3)
            .collect();
        if hit.is_empty() {
            continue;
        }
        let naive_avg = hit.iter().map(|c| c.naive_wmae).sum::<f64>() / hit.len() as f64;
        let ladder_avg = hit.iter().map(|c| c.ladder_wmae).sum::<f64>() / hit.len() as f64;
        let wins = ladder_avg < naive_avg;
        if !wins {
            failures.push(format!(
                "{kind}: ladder {ladder_avg:.4} !< naive {naive_avg:.4}"
            ));
        }
        verdict.row(vec![
            kind.to_string(),
            f4(naive_avg),
            f4(ladder_avg),
            if wins { "yes" } else { "no" }.to_string(),
        ]);
    }

    let out = format!(
        "# E13 — Naive EM vs degradation ladder under measurement-channel faults\n\n\
         {n} samples per cell; 1 MHz timer (8 cycles/tick); AVR cost model.\n\
         Each cell corrupts the clean tick stream with one seeded fault model at\n\
         the given rate. naive = `estimate()` with hard errors replaced by the\n\
         uniform prior, placement ungated; ladder = `estimate_robust()` with\n\
         confidence-gated placement. `mispred` = taken-branch fraction of the\n\
         resulting layout replayed against ground truth.\n\n{}\n\
         ## Verdict — mean weighted MAE at fault rates ≥ 0.3\n\n{}",
        table.to_markdown(),
        verdict.to_markdown()
    );
    println!("{out}");
    if !smoke {
        write_result("e13_faults.md", &out);
        if !failures.is_empty() {
            eprintln!("e13: ACCEPTANCE FAILED:");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
    }
}

//! Compiler-assisted estimation: EM on a counted-loop-unrolled model.
//!
//! When the compiler proves a loop's trip count (see `ct_ir::tripcount`),
//! the Markov model's geometric approximation of that loop is pure noise:
//! it widens the duration support and lets EM trade loop iterations against
//! data-dependent branches (the crc failure mode in EXPERIMENTS.md).
//! Unrolling counted loops in the *model* (`ct_cfg::unroll`) makes them
//! deterministic; the remaining branches are estimated by EM with their
//! parameters **tied across copies** (all copies of one original branch
//! share one θ, as they must — they are the same static branch).

use crate::em::EmOptions;
use crate::fb::{e_step, FbError};
use crate::samples::DurationSamples;
use ct_cfg::graph::{BlockId, Cfg, EdgeKind};
use ct_cfg::profile::BranchProbs;
use ct_cfg::unroll::{unroll, UnrollError};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Failure of unrolled estimation.
#[derive(Debug, Clone, PartialEq)]
pub enum UnrolledError {
    /// The unroll transform failed (odd loop shape, block budget).
    Unroll(UnrollError),
    /// The EM dynamic programs failed.
    Em(FbError),
}

impl fmt::Display for UnrolledError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnrolledError::Unroll(e) => write!(f, "unroll: {e}"),
            UnrolledError::Em(e) => write!(f, "em: {e}"),
        }
    }
}

impl Error for UnrolledError {}

/// Result of unrolled estimation, expressed on the **original** CFG.
#[derive(Debug, Clone, PartialEq)]
pub struct UnrolledEstimate {
    /// Branch probabilities on the original CFG. Counted-loop headers get
    /// `trips/(trips+1)` — the probability that reproduces their exact
    /// expected visit counts under the Markov semantics.
    pub probs: BranchProbs,
    /// EM iterations.
    pub iterations: usize,
    /// Final log-likelihood.
    pub loglik: f64,
    /// Samples unexplained at the final parameters.
    pub unexplained: usize,
    /// Expected per-invocation edge traversal counts on the original CFG
    /// (folded from the unrolled model; exact for counted loops).
    pub edge_counts: Vec<f64>,
}

/// Estimates branch probabilities with counted loops unrolled and copy
/// parameters tied.
///
/// # Errors
///
/// Propagates unroll and EM failures; callers typically fall back to plain
/// [`crate::estimator::estimate`].
pub fn estimate_unrolled<S: DurationSamples + ?Sized>(
    cfg: &Cfg,
    counted: &[(BlockId, u64)],
    block_costs: &[u64],
    edge_costs: &[u64],
    samples: &S,
    opts: EmOptions,
) -> Result<UnrolledEstimate, UnrolledError> {
    let u = unroll(cfg, counted).map_err(UnrolledError::Unroll)?;
    let ubc = u.map_block_values(block_costs);
    let uec = u.map_edge_values(edge_costs);

    // Group unrolled branch blocks by their original branch block.
    let u_edges = u.cfg.edges();
    let mut groups: HashMap<BlockId, Vec<(usize, usize)>> = HashMap::new();
    for ub in u.cfg.branch_blocks() {
        let orig = u.orig_block[ub.index()];
        let t = u_edges
            .iter()
            .find(|e| e.from == ub && e.kind == EdgeKind::BranchTrue)
            .expect("true edge")
            .index;
        let f = u_edges
            .iter()
            .find(|e| e.from == ub && e.kind == EdgeKind::BranchFalse)
            .expect("false edge")
            .index;
        groups.entry(orig).or_default().push((t, f));
    }

    let mut u_probs = BranchProbs::uniform(&u.cfg, 0.5);
    let mut loglik = f64::NEG_INFINITY;
    let mut unexplained = 0;
    let mut iterations = 0;
    let mut final_counts = vec![0.0; u_edges.len()];

    for iter in 0..opts.max_iter.max(1) {
        iterations = iter + 1;
        let (exp, _) =
            e_step(&u.cfg, &ubc, &uec, &u_probs, samples, opts.fb).map_err(UnrolledError::Em)?;
        loglik = exp.loglik;
        unexplained = exp.unexplained;
        final_counts = exp.counts.clone();

        let mut max_delta: f64 = 0.0;
        let mut next = u_probs.clone();
        for pairs in groups.values() {
            // Tie: pool counts over all copies of the original branch, with
            // the same symmetric pseudo-count prior as the plain EM M-step.
            let a = opts.prior_strength.max(0.0);
            let nt: f64 = pairs.iter().map(|&(t, _)| exp.counts[t]).sum::<f64>() + a;
            let nf: f64 = pairs.iter().map(|&(_, f)| exp.counts[f]).sum::<f64>() + a;
            if nt + nf <= 0.0 {
                continue;
            }
            let theta = (nt / (nt + nf)).clamp(opts.min_prob, 1.0 - opts.min_prob);
            for &(t, _) in pairs {
                let ub = u_edges[t].from;
                let old = u_probs.prob_true(ub).expect("branch");
                max_delta = max_delta.max((theta - old).abs());
                next.set_prob_true(ub, theta);
            }
        }
        u_probs = next;
        if max_delta < opts.tol {
            break;
        }
    }

    // Express the estimate on the original CFG.
    let mut probs = BranchProbs::uniform(cfg, 0.5);
    for (&orig, pairs) in &groups {
        let ub = u_edges[pairs[0].0].from;
        let theta = u_probs.prob_true(ub).expect("branch");
        probs.set_prob_true(orig, theta);
    }
    for &(header, trips) in counted {
        // The geometric parameter matching the exact expected visits.
        let q = trips as f64 / (trips as f64 + 1.0);
        // Orient: does the original header continue on true or false?
        if let ct_cfg::graph::Terminator::Branch { on_true, .. } = cfg.block(header).term {
            // The loop body successor is the one inside the loop.
            let forest = ct_cfg::loops::LoopForest::compute(cfg);
            let l = forest
                .loops()
                .iter()
                .find(|l| l.header == header)
                .expect("counted header heads a loop");
            let continue_on_true = l.contains(on_true);
            probs.set_prob_true(header, if continue_on_true { q } else { 1.0 - q });
        }
    }

    // Per-invocation edge counts: fold and normalize by sample count.
    let n = samples.len().max(1) as f64;
    let folded = u.fold_edge_counts(&final_counts, cfg.edges().len());
    let edge_counts: Vec<f64> = folded.iter().map(|c| c / n).collect();

    Ok(UnrolledEstimate {
        probs,
        iterations,
        loglik,
        unexplained,
        edge_counts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples::TimingSamples;
    use ct_cfg::builder::while_loop;
    use ct_cfg::graph::Terminator;

    /// A counted loop (3 trips) whose body contains a data branch.
    fn counted_loop_with_branch() -> (Cfg, Vec<u64>, Vec<u64>, BlockId) {
        let mut cfg = Cfg::new("counted_branchy");
        let entry = cfg.add_block("entry", Terminator::Return);
        let header = cfg.add_block("header", Terminator::Return);
        let bcond = cfg.add_block("bcond", Terminator::Return);
        let bthen = cfg.add_block("bthen", Terminator::Return);
        let belse = cfg.add_block("belse", Terminator::Return);
        let latch = cfg.add_block("latch", Terminator::Jump(header));
        let exit = cfg.add_block("exit", Terminator::Return);
        cfg.set_terminator(entry, Terminator::Jump(header));
        cfg.set_terminator(
            header,
            Terminator::Branch {
                on_true: bcond,
                on_false: exit,
            },
        );
        cfg.set_terminator(
            bcond,
            Terminator::Branch {
                on_true: bthen,
                on_false: belse,
            },
        );
        cfg.set_terminator(bthen, Terminator::Jump(latch));
        cfg.set_terminator(belse, Terminator::Jump(latch));
        let bc = vec![5, 3, 4, 50, 20, 2, 1];
        let ec = vec![0; cfg.edges().len()];
        (cfg, bc, ec, header)
    }

    /// Synthesizes exact durations for the counted loop: 3 iterations, the
    /// inner branch true with probability `p` i.i.d.
    fn synth(_cfg: &Cfg, bc: &[u64], p: f64, n: usize) -> TimingSamples {
        let mut state = 0x12345u64;
        let mut ticks = Vec::with_capacity(n);
        for _ in 0..n {
            let mut d = bc[0] + bc[1] + bc[6]; // entry + final header visit + exit
            for _ in 0..3 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let u = (state >> 11) as f64 / (1u64 << 53) as f64;
                d += bc[1] + bc[2] + bc[5]; // header + bcond + latch
                d += if u < p { bc[3] } else { bc[4] };
            }
            // We added header 3 (iterations) + 1 (final) times: total 4 ✓.
            ticks.push(d);
        }
        TimingSamples::new(ticks, 1)
    }

    #[test]
    fn recovers_inner_branch_with_deterministic_loop() {
        let (cfg, bc, ec, header) = counted_loop_with_branch();
        let samples = synth(&cfg, &bc, 0.3, 1500);
        let r = estimate_unrolled(
            &cfg,
            &[(header, 3)],
            &bc,
            &ec,
            &samples,
            EmOptions::default(),
        )
        .unwrap();
        // Inner branch recovered.
        let inner = r.probs.prob_true(BlockId(2)).unwrap();
        assert!((inner - 0.3).abs() < 0.03, "inner {inner}");
        // Loop header pinned at 3/4 continuing.
        let q = r.probs.prob_true(header).unwrap();
        assert!((q - 0.75).abs() < 1e-9, "q {q}");
        assert_eq!(r.unexplained, 0);
    }

    #[test]
    fn edge_counts_are_exact_for_counted_edges() {
        let (cfg, bc, ec, header) = counted_loop_with_branch();
        let samples = synth(&cfg, &bc, 0.5, 800);
        let r = estimate_unrolled(
            &cfg,
            &[(header, 3)],
            &bc,
            &ec,
            &samples,
            EmOptions::default(),
        )
        .unwrap();
        let edges = cfg.edges();
        // header→bcond traversed exactly 3×/invocation; header→exit 1×.
        let h_body = edges
            .iter()
            .find(|e| e.from == header && e.to == BlockId(2))
            .unwrap()
            .index;
        let h_exit = edges
            .iter()
            .find(|e| e.from == header && e.to == BlockId(6))
            .unwrap()
            .index;
        assert!(
            (r.edge_counts[h_body] - 3.0).abs() < 1e-6,
            "{:?}",
            r.edge_counts
        );
        assert!((r.edge_counts[h_exit] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn plain_while_loop_with_no_other_branches() {
        let cfg = while_loop();
        let bc = vec![2u64, 3, 10, 1];
        let ec = vec![0u64; cfg.edges().len()];
        // Deterministic 5 trips → duration always 2 + 6·3 + 5·10 + 1 = 71.
        let samples = TimingSamples::new(vec![71; 100], 1);
        let r = estimate_unrolled(
            &cfg,
            &[(BlockId(1), 5)],
            &bc,
            &ec,
            &samples,
            EmOptions::default(),
        )
        .unwrap();
        let q = r.probs.prob_true(BlockId(1)).unwrap();
        assert!((q - 5.0 / 6.0).abs() < 1e-9);
        assert_eq!(r.unexplained, 0);
    }

    #[test]
    fn unroll_failure_is_reported() {
        let cfg = while_loop();
        let bc = vec![1u64; 4];
        let ec = vec![0u64; cfg.edges().len()];
        let samples = TimingSamples::new(vec![10], 1);
        assert!(matches!(
            estimate_unrolled(
                &cfg,
                &[(BlockId(0), 2)],
                &bc,
                &ec,
                &samples,
                EmOptions::default()
            ),
            Err(UnrolledError::Unroll(_))
        ));
    }
}

//! Tokens and source positions for the NLC lexer.

use std::fmt;

/// A half-open byte span in the source, with 1-based line/column of its start
/// for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
    /// 1-based column number of `start`.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword candidate.
    Ident(String),
    /// Integer literal (decimal or `0x` hexadecimal).
    Int(i64),
    /// `module`
    Module,
    /// `var`
    Var,
    /// `proc`
    Proc,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `return`
    Return,
    /// `true`
    True,
    /// `false`
    False,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `->`
    Arrow,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `!`
    Bang,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(v) => write!(f, "integer `{v}`"),
            Tok::Module => f.write_str("`module`"),
            Tok::Var => f.write_str("`var`"),
            Tok::Proc => f.write_str("`proc`"),
            Tok::If => f.write_str("`if`"),
            Tok::Else => f.write_str("`else`"),
            Tok::While => f.write_str("`while`"),
            Tok::Return => f.write_str("`return`"),
            Tok::True => f.write_str("`true`"),
            Tok::False => f.write_str("`false`"),
            Tok::LParen => f.write_str("`(`"),
            Tok::RParen => f.write_str("`)`"),
            Tok::LBrace => f.write_str("`{`"),
            Tok::RBrace => f.write_str("`}`"),
            Tok::LBracket => f.write_str("`[`"),
            Tok::RBracket => f.write_str("`]`"),
            Tok::Comma => f.write_str("`,`"),
            Tok::Semi => f.write_str("`;`"),
            Tok::Colon => f.write_str("`:`"),
            Tok::Arrow => f.write_str("`->`"),
            Tok::Assign => f.write_str("`=`"),
            Tok::Plus => f.write_str("`+`"),
            Tok::Minus => f.write_str("`-`"),
            Tok::Star => f.write_str("`*`"),
            Tok::Slash => f.write_str("`/`"),
            Tok::Percent => f.write_str("`%`"),
            Tok::Amp => f.write_str("`&`"),
            Tok::Pipe => f.write_str("`|`"),
            Tok::Caret => f.write_str("`^`"),
            Tok::Tilde => f.write_str("`~`"),
            Tok::Bang => f.write_str("`!`"),
            Tok::Shl => f.write_str("`<<`"),
            Tok::Shr => f.write_str("`>>`"),
            Tok::Lt => f.write_str("`<`"),
            Tok::Le => f.write_str("`<=`"),
            Tok::Gt => f.write_str("`>`"),
            Tok::Ge => f.write_str("`>=`"),
            Tok::EqEq => f.write_str("`==`"),
            Tok::NotEq => f.write_str("`!=`"),
            Tok::AndAnd => f.write_str("`&&`"),
            Tok::OrOr => f.write_str("`||`"),
            Tok::Eof => f.write_str("end of input"),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// Where it appeared.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_displays_line_col() {
        let s = Span {
            start: 0,
            end: 1,
            line: 3,
            col: 7,
        };
        assert_eq!(s.to_string(), "3:7");
    }

    #[test]
    fn token_display_is_nonempty() {
        for t in [
            Tok::Module,
            Tok::Arrow,
            Tok::Ident("x".into()),
            Tok::Int(5),
            Tok::Eof,
        ] {
            assert!(!t.to_string().is_empty());
        }
    }
}

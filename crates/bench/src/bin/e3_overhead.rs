//! E3 — Profiling overhead comparison (Table).
//!
//! Claim evaluated: entry/exit timestamps cost far less than conventional
//! instrumentation on all three mote-relevant axes: cycles, RAM, flash.
//!
//! Overhead is reported two ways: the wall "cycles +%" delta against an
//! uninstrumented run, and the virtual PMU's per-procedure cycle
//! attribution (whose activation windows *include* instrumentation
//! charges), so the same number is observable from the run manifest's
//! `pmu.e3.*` counters.

use ct_bench::{f2, write_manifest_env, write_result, Table};
use ct_mote::pmu::PmuSnapshot;
use ct_mote::timer::VirtualTimer;
use ct_mote::trace::{NullProfiler, TimingProfiler};
use ct_pipeline::{run_with_profiler_pmu, EnvConfig, RunConfig};
use ct_profilers::ball_larus::BallLarusProfiler;
use ct_profilers::edge_counter::EdgeCounterProfiler;
use ct_profilers::overhead::tomography;
use ct_profilers::sampling::SamplingProfiler;

fn main() {
    let env = EnvConfig::load();
    eprintln!("e3: {}", env.banner());
    let n = env.pick(2_000, 300);
    let seed = env.seed_or(3_000);
    let mut table = Table::new(vec![
        "app",
        "approach",
        "cycles +%",
        "pmu dCycles",
        "ram B",
        "flash B",
        "exact?",
    ]);

    let apps = ct_apps::all_apps();
    let apps = &apps[..env.pick(apps.len(), 2)];
    for app in apps {
        let program = app.compile();
        let config = RunConfig::for_app(app.clone()).invocations(n).seeded(seed);
        let replay = |profiler: &mut dyn ct_mote::trace::Profiler| {
            run_with_profiler_pmu(&config, profiler).expect("bundled apps must not trap")
        };
        let (base, base_pmu) = replay(&mut NullProfiler);

        // Code Tomography: a timestamp at every proc entry/exit.
        let mut tp = TimingProfiler::new(
            &program,
            VirtualTimer::khz32_at_8mhz(),
            tomography::TIMESTAMP_CYCLES,
        );
        let (tomo, tomo_pmu) = replay(&mut tp);

        let mut ec = EdgeCounterProfiler::new(&program);
        let (edges, edges_pmu) = replay(&mut ec);

        let mut bl = BallLarusProfiler::new(&program);
        let (ball, ball_pmu) = replay(&mut bl);

        let mut sp = SamplingProfiler::new(&program, 1009);
        let (sampling, sampling_pmu) = replay(&mut sp);

        let pct = |cycles: u64| f2((cycles as f64 - base as f64) / base as f64 * 100.0);
        // Instrumentation overhead in measured mote cycles: the PMU's
        // activation windows include profiler charges, so the counter
        // delta against the uninstrumented run IS the overhead.
        let dc = |pmu: &PmuSnapshot| pmu.total.cycles.saturating_sub(base_pmu.total.cycles);
        #[allow(clippy::type_complexity)]
        let rows: Vec<(&str, String, u64, u32, u32, &str, &'static str)> = vec![
            (
                "tomography",
                pct(tomo),
                dc(&tomo_pmu),
                tomography::ram_bytes(&program),
                tomography::flash_bytes(&program),
                "estimated",
                "pmu.e3.tomography_overhead_cycles",
            ),
            (
                "edge-counters",
                pct(edges),
                dc(&edges_pmu),
                EdgeCounterProfiler::ram_bytes(&program),
                EdgeCounterProfiler::flash_bytes(&program),
                "exact",
                "pmu.e3.edge_counters_overhead_cycles",
            ),
            (
                "ball-larus",
                pct(ball),
                dc(&ball_pmu),
                bl.ram_bytes(&program),
                bl.flash_bytes(&program),
                "exact",
                "pmu.e3.ball_larus_overhead_cycles",
            ),
            (
                "sampling",
                pct(sampling),
                dc(&sampling_pmu),
                SamplingProfiler::ram_bytes(&program),
                SamplingProfiler::flash_bytes(&program),
                "approx",
                "pmu.e3.sampling_overhead_cycles",
            ),
        ];
        for (name, pct, dcycles, ram, flash, exact, counter) in rows {
            // Manifest-observable: the overhead lands in the `pmu` section.
            ct_obs::Counter::new(counter).add(dcycles);
            table.row(vec![
                app.name.to_string(),
                name.to_string(),
                pct,
                dcycles.to_string(),
                ram.to_string(),
                flash.to_string(),
                exact.to_string(),
            ]);
        }
        ct_obs::Counter::new("pmu.e3.base_cycles").add(base_pmu.total.cycles);
        eprintln!("e3: {} done", app.name);
    }

    let out = format!(
        "# E3 — Profiling overhead: runtime cycles, RAM, flash\n\n\
         {n} target invocations per app; AVR cost model; sampling period 1009 cycles;\n\
         tomography timestamps cost {} cycles each. `pmu dCycles` is the same overhead\n\
         measured by the mote's virtual PMU (cycle attribution including instrumentation),\n\
         summed over apps in the manifest's `pmu.e3.*` counters.\n\
         {}\n\n{}",
        tomography::TIMESTAMP_CYCLES,
        env.banner(),
        table.to_markdown()
    );
    println!("{out}");
    if !env.smoke {
        write_result("e3_overhead.md", &out);
    }
    write_manifest_env("e3_overhead");
}

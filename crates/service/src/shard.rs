//! The ingest tier's unit: one shard accumulator with its dedup ledger.

use ct_core::samples::DurationSamples;
use ct_core::stream::{BatchTag, ResolutionMismatch, SuffStats};
use std::collections::BTreeSet;

/// Routes a batch to its shard: `tag.mote % shards`, so one mote's stream
/// always lands on one shard and its per-mote sequence numbers dedup
/// locally, without cross-shard coordination.
pub fn route(tag: BatchTag, shards: usize) -> usize {
    (tag.mote % shards.max(1) as u64) as usize
}

/// One shard of the ingest tier: a [`SuffStats`] delta accumulating
/// everything accepted since the last harvest, plus the at-least-once
/// dedup ledger of every tag this shard has ever folded in.
///
/// The ledger covers the shard's whole lifetime while the delta covers one
/// harvest interval — that asymmetry is what keeps harvests cheap (the
/// delta is taken, the ledger stays) and dedup exact (a redelivery is
/// recognized across harvest boundaries).
#[derive(Debug, Clone)]
pub struct Shard {
    index: usize,
    cycles_per_tick: u64,
    delta: SuffStats,
    ledger: BTreeSet<BatchTag>,
    /// Tags accepted since the last harvest (delivered to the reduce tier
    /// together with the delta, so ledger union and statistics stay
    /// consistent at every reduce boundary).
    fresh: Vec<BatchTag>,
    accepted: u64,
    dedup_dropped: u64,
    /// Precomputed `svc.shard.<i>.*` counter names plus the values already
    /// flushed under them — per-shard telemetry is flushed as *deltas* at
    /// harvest time, keeping the per-ingest path free of name formatting.
    counter_accepted: String,
    counter_dedup: String,
    flushed_accepted: u64,
    flushed_dedup: u64,
}

/// What one harvest takes from a shard: the delta statistics and the tags
/// they cover, atomically paired so the reduce tier's global ledger and
/// global statistics can never disagree.
#[derive(Debug)]
pub struct ShardHarvest {
    /// The harvested shard's index.
    pub shard: usize,
    /// Statistics accepted since the previous harvest.
    pub delta: SuffStats,
    /// The tags those statistics cover, in acceptance order.
    pub fresh: Vec<BatchTag>,
}

impl Shard {
    /// An empty shard at `cycles_per_tick` resolution.
    pub fn new(index: usize, cycles_per_tick: u64) -> Shard {
        Shard {
            index,
            cycles_per_tick,
            delta: SuffStats::new(cycles_per_tick),
            ledger: BTreeSet::new(),
            fresh: Vec::new(),
            accepted: 0,
            dedup_dropped: 0,
            counter_accepted: format!("svc.shard.{index}.accepted"),
            counter_dedup: format!("svc.shard.{index}.dedup"),
            flushed_accepted: 0,
            flushed_dedup: 0,
        }
    }

    /// Seeds the dedup ledger with tags a restored checkpoint has already
    /// folded in: redeliveries of those batches will be dropped, which is
    /// exactly how at-least-once replay resumes past a crash point. The
    /// seeded tags are *not* fresh — their statistics live in the restored
    /// global accumulator, not in this shard's delta.
    pub fn seed_ledger(&mut self, tags: impl IntoIterator<Item = BatchTag>) {
        self.ledger.extend(tags);
    }

    /// Ingests one batch delta. Returns `Ok(true)` when the batch was
    /// fresh and folded in, `Ok(false)` when its tag was already in the
    /// ledger (duplicate: dropped, counted under `svc.ingest.dedup`).
    ///
    /// # Errors
    ///
    /// [`ResolutionMismatch`] when the delta's timer resolution differs
    /// from the shard's; nothing (ledger included) is mutated on error.
    pub fn ingest(&mut self, tag: BatchTag, delta: &SuffStats) -> Result<bool, ResolutionMismatch> {
        if DurationSamples::cycles_per_tick(delta) != self.cycles_per_tick {
            return Err(ResolutionMismatch {
                ours: self.cycles_per_tick,
                theirs: DurationSamples::cycles_per_tick(delta),
            });
        }
        if !self.ledger.insert(tag) {
            self.dedup_dropped += 1;
            ct_obs::Counter::new("svc.ingest.dedup").incr();
            return Ok(false);
        }
        // Resolution was checked above; the merge cannot fail.
        let _ = self.delta.merge(delta);
        self.fresh.push(tag);
        self.accepted += 1;
        ct_obs::Counter::new("svc.ingest.accepted").incr();
        // Batch size is a property of the accepted stream, not of
        // scheduling: recorded only for fresh batches, the histogram is
        // bitwise identical at any shard/producer/thread count.
        ct_obs::hist_record("svc.batch_samples", delta.len() as u64);
        Ok(true)
    }

    /// Takes the delta and its fresh tags, leaving the shard accumulating
    /// a new interval (the ledger is untouched — dedup spans harvests).
    /// Also flushes the shard's per-shard telemetry counters
    /// (`svc.shard.<i>.accepted` / `.dedup`) as deltas since the previous
    /// harvest.
    pub fn harvest(&mut self) -> ShardHarvest {
        if self.accepted > self.flushed_accepted {
            ct_obs::counter_add(
                &self.counter_accepted,
                self.accepted - self.flushed_accepted,
            );
            self.flushed_accepted = self.accepted;
        }
        if self.dedup_dropped > self.flushed_dedup {
            ct_obs::counter_add(&self.counter_dedup, self.dedup_dropped - self.flushed_dedup);
            self.flushed_dedup = self.dedup_dropped;
        }
        ShardHarvest {
            shard: self.index,
            delta: self.delta.take(),
            fresh: std::mem::take(&mut self.fresh),
        }
    }

    /// The shard's index in the service topology.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Batches accepted over the shard's lifetime.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Duplicate deliveries dropped over the shard's lifetime.
    pub fn dedup_dropped(&self) -> u64 {
        self.dedup_dropped
    }

    /// Tags in the dedup ledger (seeded + accepted).
    pub fn ledger_len(&self) -> usize {
        self.ledger.len()
    }

    /// Batches accepted since the last harvest.
    pub fn pending(&self) -> usize {
        self.fresh.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta_of(ticks: &[u64]) -> SuffStats {
        let mut s = SuffStats::new(1);
        ticks.iter().for_each(|&t| s.push(t));
        s
    }

    fn tag(mote: u64, seq: u64) -> BatchTag {
        BatchTag { mote, seq }
    }

    #[test]
    fn routing_is_by_mote_modulo_shards() {
        assert_eq!(route(tag(0, 9), 4), 0);
        assert_eq!(route(tag(7, 0), 4), 3);
        assert_eq!(route(tag(7, 0), 1), 0);
        assert_eq!(route(tag(7, 0), 0), 0, "degenerate count clamps to 1");
    }

    #[test]
    fn dedup_spans_harvest_boundaries() {
        let mut s = Shard::new(0, 1);
        assert!(s.ingest(tag(0, 0), &delta_of(&[5])).unwrap());
        assert!(!s.ingest(tag(0, 0), &delta_of(&[5])).unwrap());
        let h = s.harvest();
        assert_eq!(h.fresh, vec![tag(0, 0)]);
        assert_eq!(h.delta.len(), 1);
        // The same tag after a harvest is still a duplicate.
        assert!(!s.ingest(tag(0, 0), &delta_of(&[5])).unwrap());
        assert_eq!(s.dedup_dropped(), 2);
        assert_eq!(s.accepted(), 1);
        assert_eq!(s.pending(), 0);
        assert_eq!(s.harvest().delta.len(), 0, "nothing fresh after dedup");
    }

    #[test]
    fn seeded_ledger_drops_replayed_tags_without_counting_them_fresh() {
        let mut s = Shard::new(2, 1);
        s.seed_ledger([tag(2, 0), tag(6, 1)]);
        assert!(!s.ingest(tag(2, 0), &delta_of(&[7])).unwrap());
        assert!(s.ingest(tag(2, 1), &delta_of(&[9])).unwrap());
        assert_eq!(s.ledger_len(), 3);
        assert_eq!(s.harvest().fresh, vec![tag(2, 1)]);
    }

    #[test]
    fn resolution_mismatch_is_rejected_without_mutation() {
        let mut s = Shard::new(0, 1);
        let wrong = SuffStats::new(8);
        assert!(s.ingest(tag(0, 0), &wrong).is_err());
        assert_eq!(s.ledger_len(), 0, "failed ingest must not ledger the tag");
        assert!(s.ingest(tag(0, 0), &delta_of(&[5])).unwrap());
    }
}

//! Loop unrolling for *estimation models*.
//!
//! A counted loop (statically known trip count, see `ct_ir::tripcount`) is
//! deterministic at runtime, but the Markov duration model approximates it as
//! geometric — a misspecification that both widens the model's duration
//! support and lets EM trade loop iterations against data-dependent branches.
//! Unrolling such loops in the *model's* CFG (k body copies in sequence, the
//! header's branch resolved statically) removes the approximation entirely.
//!
//! This transforms only the estimation model: every new block/edge maps back
//! to its original, so costs are inherited and estimated edge counts fold
//! back onto the original CFG.

use crate::graph::{BlockId, Cfg, Terminator};
use crate::loops::LoopForest;
use std::error::Error;
use std::fmt;

/// An unrolled estimation CFG with provenance maps.
#[derive(Debug, Clone)]
pub struct Unrolled {
    /// The unrolled graph.
    pub cfg: Cfg,
    /// For every unrolled block: the original block it copies.
    pub orig_block: Vec<BlockId>,
    /// For every unrolled edge (by unrolled edge index): the original edge
    /// index it corresponds to.
    pub orig_edge: Vec<usize>,
}

impl Unrolled {
    /// Maps per-original-block values (e.g. cycle costs) onto the unrolled
    /// blocks.
    pub fn map_block_values<T: Copy>(&self, values: &[T]) -> Vec<T> {
        self.orig_block.iter().map(|b| values[b.index()]).collect()
    }

    /// Maps per-original-edge values (e.g. transfer costs) onto the unrolled
    /// edges.
    pub fn map_edge_values<T: Copy>(&self, values: &[T]) -> Vec<T> {
        self.orig_edge.iter().map(|&e| values[e]).collect()
    }

    /// Folds per-unrolled-edge counts back onto original edges by summation.
    pub fn fold_edge_counts(&self, counts: &[f64], n_orig_edges: usize) -> Vec<f64> {
        let mut out = vec![0.0; n_orig_edges];
        for (ei, &c) in counts.iter().enumerate() {
            out[self.orig_edge[ei]] += c;
        }
        out
    }
}

/// Why a loop could not be unrolled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnrollError {
    /// The given block does not head a natural loop.
    NotALoopHeader {
        /// The offending block.
        header: BlockId,
    },
    /// The loop has multiple latches or exits through non-header blocks.
    UnsupportedShape {
        /// The loop's header.
        header: BlockId,
    },
    /// Unrolling would exceed the block budget.
    TooLarge {
        /// Blocks the result would need.
        blocks: usize,
    },
}

impl fmt::Display for UnrollError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnrollError::NotALoopHeader { header } => {
                write!(f, "block {header} does not head a natural loop")
            }
            UnrollError::UnsupportedShape { header } => {
                write!(f, "loop at {header} has an unsupported shape for unrolling")
            }
            UnrollError::TooLarge { blocks } => {
                write!(f, "unrolling would produce {blocks} blocks")
            }
        }
    }
}

impl Error for UnrollError {}

/// Block budget for the unrolled model.
pub const MAX_UNROLLED_BLOCKS: usize = 4096;

/// Unrolls every listed counted loop (`(header, trips)` pairs refer to the
/// *original* graph). Inner loops are processed first so nested counted
/// loops unroll multiplicatively.
///
/// # Errors
///
/// Returns the first [`UnrollError`]; the input graph is never modified.
pub fn unroll(cfg: &Cfg, counted: &[(BlockId, u64)]) -> Result<Unrolled, UnrollError> {
    // Order headers innermost-first using the original nesting depth.
    let forest = LoopForest::compute(cfg);
    let mut order: Vec<(BlockId, u64)> = counted.to_vec();
    order.sort_by_key(|&(h, _)| std::cmp::Reverse(forest.depth_of(h)));

    let mut current = Unrolled {
        cfg: cfg.clone(),
        orig_block: cfg.block_ids().collect(),
        orig_edge: cfg.edges().iter().map(|e| e.index).collect(),
    };
    for (orig_header, trips) in order {
        current = unroll_one(&current, cfg, orig_header, trips)?;
    }
    Ok(current)
}

/// Unrolls one loop (identified by its original header) inside the current
/// partially-unrolled graph.
fn unroll_one(
    cur: &Unrolled,
    orig: &Cfg,
    orig_header: BlockId,
    trips: u64,
) -> Result<Unrolled, UnrollError> {
    let g = &cur.cfg;
    // The header exists exactly once until an enclosing loop is unrolled
    // (we process innermost-first), so this lookup is unambiguous.
    let header = g
        .block_ids()
        .find(|b| cur.orig_block[b.index()] == orig_header)
        .ok_or(UnrollError::NotALoopHeader {
            header: orig_header,
        })?;

    let forest = LoopForest::compute(g);
    let Some(li) = forest.loops().iter().position(|l| l.header == header) else {
        return Err(UnrollError::NotALoopHeader {
            header: orig_header,
        });
    };
    let l = &forest.loops()[li];
    if l.latches.len() != 1 {
        return Err(UnrollError::UnsupportedShape {
            header: orig_header,
        });
    }
    let Terminator::Branch { on_true, on_false } = g.block(header).term else {
        return Err(UnrollError::UnsupportedShape {
            header: orig_header,
        });
    };
    let (body_entry, exit) = match (l.contains(on_true), l.contains(on_false)) {
        (true, false) => (on_true, on_false),
        (false, true) => (on_false, on_true),
        _ => {
            return Err(UnrollError::UnsupportedShape {
                header: orig_header,
            })
        }
    };
    // Body blocks (loop minus header); all their edges must stay inside the
    // loop or return to the header (no side exits — NLC guarantees this).
    let body: Vec<BlockId> = l.body.iter().copied().filter(|&b| b != header).collect();
    for &b in &body {
        for s in g.successors(b) {
            if !l.contains(s) {
                return Err(UnrollError::UnsupportedShape {
                    header: orig_header,
                });
            }
        }
    }

    let k = trips as usize;
    let outside: Vec<BlockId> = g.block_ids().filter(|b| !l.contains(*b)).collect();
    let new_len = outside.len() + (k + 1) + k * body.len();
    if new_len > MAX_UNROLLED_BLOCKS {
        return Err(UnrollError::TooLarge { blocks: new_len });
    }

    // Allocate the new id space: outside blocks keep relative order first
    // (entry stays block 0 — it is never inside a loop), then header copies
    // interleaved with body copies.
    let mut new_cfg = Cfg::new(g.name().to_string());
    let mut new_orig: Vec<BlockId> = Vec::with_capacity(new_len);
    let mut outside_map = vec![None; g.len()];
    for &b in &outside {
        let id = new_cfg.add_block(g.block(b).name.clone(), Terminator::Return);
        outside_map[b.index()] = Some(id);
        new_orig.push(cur.orig_block[b.index()]);
    }
    // header copy i at h_ids[i]; body copy i maps body[j] -> body_maps[i][j].
    let mut h_ids = Vec::with_capacity(k + 1);
    let mut body_maps: Vec<Vec<BlockId>> = Vec::with_capacity(k);
    for i in 0..=k {
        let id = new_cfg.add_block(
            format!("{}@{}", g.block(header).name, i),
            Terminator::Return,
        );
        new_orig.push(cur.orig_block[header.index()]);
        h_ids.push(id);
        if i < k {
            let mut m = Vec::with_capacity(body.len());
            for &b in &body {
                let bid =
                    new_cfg.add_block(format!("{}@{}", g.block(b).name, i), Terminator::Return);
                new_orig.push(cur.orig_block[b.index()]);
                m.push(bid);
            }
            body_maps.push(m);
        }
    }
    let body_pos = |b: BlockId| body.iter().position(|&x| x == b).expect("body block");

    // Terminators for outside blocks: targets inside the loop can only be
    // the header (natural-loop property) → h_0.
    let map_outside = |t: BlockId| -> BlockId {
        if t == header {
            h_ids[0]
        } else {
            outside_map[t.index()].expect("target outside the loop")
        }
    };
    for &b in &outside {
        let new_term = match g.block(b).term {
            Terminator::Jump(t) => Terminator::Jump(map_outside(t)),
            Terminator::Branch { on_true, on_false } => Terminator::Branch {
                on_true: map_outside(on_true),
                on_false: map_outside(on_false),
            },
            Terminator::Return => Terminator::Return,
        };
        new_cfg.set_terminator(outside_map[b.index()].expect("mapped"), new_term);
    }
    // Header copies: i < k continue into body copy i; the last exits.
    for i in 0..k {
        let target = body_maps[i][body_pos(body_entry)];
        new_cfg.set_terminator(h_ids[i], Terminator::Jump(target));
    }
    new_cfg.set_terminator(h_ids[k], Terminator::Jump(map_outside(exit)));
    // Body copies: internal edges stay within the copy; edges to the header
    // go to the next header copy.
    for i in 0..k {
        for (j, &b) in body.iter().enumerate() {
            let map_inside = |t: BlockId| -> BlockId {
                if t == header {
                    h_ids[i + 1]
                } else {
                    body_maps[i][body_pos(t)]
                }
            };
            let new_term = match g.block(b).term {
                Terminator::Jump(t) => Terminator::Jump(map_inside(t)),
                Terminator::Branch { on_true, on_false } => Terminator::Branch {
                    on_true: map_inside(on_true),
                    on_false: map_inside(on_false),
                },
                Terminator::Return => {
                    return Err(UnrollError::UnsupportedShape {
                        header: orig_header,
                    })
                }
            };
            new_cfg.set_terminator(body_maps[i][j], new_term);
        }
    }

    // Edge provenance: each new edge (u', v') descends from the current
    // edge (cur(u'), cur(v')), which in turn maps to an original edge.
    let cur_of: Vec<BlockId> = {
        // new block -> block id in `g` it copies.
        let mut v = Vec::with_capacity(new_len);
        for &b in &outside {
            v.push(b);
        }
        for i in 0..=k {
            v.push(header);
            if i < k {
                for &b in &body {
                    v.push(b);
                }
            }
        }
        v
    };
    debug_assert_eq!(cur_of.len(), new_cfg.len());

    let cur_edge_index: std::collections::HashMap<(u32, u32), usize> = g
        .edges()
        .iter()
        .map(|e| ((e.from.0, e.to.0), e.index))
        .collect();
    let mut orig_edge = Vec::new();
    for e in new_cfg.edges() {
        let cu = cur_of[e.from.index()];
        let cv = cur_of[e.to.index()];
        let cur_ei = *cur_edge_index
            .get(&(cu.0, cv.0))
            .expect("unrolled edge descends from an existing edge");
        orig_edge.push(cur.orig_edge[cur_ei]);
    }

    let _ = orig;
    Ok(Unrolled {
        cfg: new_cfg,
        orig_block: new_orig,
        orig_edge,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::while_loop;
    use crate::profile::BranchProbs;

    #[test]
    fn unroll_simple_loop_three_trips() {
        let cfg = while_loop(); // entry, header, body, exit
        let u = unroll(&cfg, &[(BlockId(1), 3)]).unwrap();
        // entry + exit + 4 header copies + 3 body copies = 9 blocks.
        assert_eq!(u.cfg.len(), 9);
        assert!(u.cfg.validate().is_ok());
        assert!(u.cfg.is_acyclic());
        // Exactly one path: entry → h0 → b0 → h1 → b1 → h2 → b2 → h3 → exit.
        let paths = crate::paths::enumerate_paths(&u.cfg, 10).unwrap();
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].blocks.len(), 9);
    }

    #[test]
    fn unroll_zero_trips_skips_body() {
        let cfg = while_loop();
        let u = unroll(&cfg, &[(BlockId(1), 0)]).unwrap();
        assert!(u.cfg.is_acyclic());
        let paths = crate::paths::enumerate_paths(&u.cfg, 10).unwrap();
        assert_eq!(paths.len(), 1);
        // entry → h0 → exit.
        assert_eq!(paths[0].blocks.len(), 3);
    }

    #[test]
    fn provenance_maps_costs_and_counts() {
        let cfg = while_loop();
        let u = unroll(&cfg, &[(BlockId(1), 2)]).unwrap();
        let bc = [7u64, 11, 13, 17];
        let mapped = u.map_block_values(&bc);
        // Total cost of the single path: entry + 3 headers + 2 bodies + exit.
        let total: u64 = mapped.iter().sum();
        assert_eq!(total, 7 + 3 * 11 + 2 * 13 + 17);

        // Edge counts fold back: each unrolled edge counts toward its origin.
        let n_edges = u.cfg.edges().len();
        let folded = u.fold_edge_counts(&vec![1.0; n_edges], cfg.edges().len());
        // Original edges: entry→header ×1, header→body ×2, header→exit ×1,
        // body→header ×2.
        let edges = cfg.edges();
        for e in &edges {
            let expected = match (e.from, e.to) {
                (BlockId(0), BlockId(1)) => 1.0,
                (BlockId(1), BlockId(2)) => 2.0,
                (BlockId(1), BlockId(3)) => 1.0,
                (BlockId(2), BlockId(1)) => 2.0,
                _ => unreachable!(),
            };
            assert_eq!(folded[e.index], expected, "edge {:?}", e);
        }
    }

    #[test]
    fn nested_counted_loops_unroll_multiplicatively() {
        // Build: entry → oh; oh ⊃ (ih ⊃ ibody); both counted 2.
        let cfg = crate::builder::nested_loops();
        let u = unroll(&cfg, &[(BlockId(1), 2), (BlockId(2), 2)]).unwrap();
        assert!(u.cfg.validate().is_ok());
        assert!(u.cfg.is_acyclic());
        let paths = crate::paths::enumerate_paths(&u.cfg, 10).unwrap();
        assert_eq!(paths.len(), 1, "fully counted nest has one path");
        // Inner body runs 2×2 = 4 times.
        let inner_body_copies = u.orig_block.iter().filter(|&&b| b == BlockId(3)).count();
        assert_eq!(inner_body_copies, 4);
    }

    #[test]
    fn duration_distribution_matches_deterministic_run() {
        // After unrolling, the model's duration distribution for the loop
        // must be a single point at the deterministic path cost.
        let cfg = while_loop();
        let bc = [2u64, 3, 10, 1];
        let u = unroll(&cfg, &[(BlockId(1), 4)]).unwrap();
        let ubc = u.map_block_values(&bc);
        let uec = vec![0u64; u.cfg.edges().len()];
        let probs = BranchProbs::uniform(&u.cfg, 0.5); // no branches remain
        assert!(probs.is_empty());
        let paths = crate::paths::enumerate_paths(&u.cfg, 10).unwrap();
        assert_eq!(paths[0].cost(&ubc), 2 + 5 * 3 + 4 * 10 + 1);
        let _ = uec;
    }

    #[test]
    fn non_header_rejected() {
        let cfg = while_loop();
        assert!(matches!(
            unroll(&cfg, &[(BlockId(0), 3)]),
            Err(UnrollError::NotALoopHeader { .. })
        ));
    }

    #[test]
    fn budget_enforced() {
        let cfg = while_loop();
        assert!(matches!(
            unroll(&cfg, &[(BlockId(1), 1_000_000)]),
            Err(UnrollError::TooLarge { .. })
        ));
    }

    #[test]
    fn branches_inside_loop_survive_unrolling() {
        // Loop body containing an if: body entry branches to two sub-blocks
        // that rejoin before the latch.
        let mut cfg = Cfg::new("loop_with_if");
        let entry = cfg.add_block("entry", Terminator::Return);
        let header = cfg.add_block("header", Terminator::Return);
        let bcond = cfg.add_block("bcond", Terminator::Return);
        let bthen = cfg.add_block("bthen", Terminator::Return);
        let belse = cfg.add_block("belse", Terminator::Return);
        let latch = cfg.add_block("latch", Terminator::Jump(header));
        let exit = cfg.add_block("exit", Terminator::Return);
        cfg.set_terminator(entry, Terminator::Jump(header));
        cfg.set_terminator(
            header,
            Terminator::Branch {
                on_true: bcond,
                on_false: exit,
            },
        );
        cfg.set_terminator(
            bcond,
            Terminator::Branch {
                on_true: bthen,
                on_false: belse,
            },
        );
        cfg.set_terminator(bthen, Terminator::Jump(latch));
        cfg.set_terminator(belse, Terminator::Jump(latch));
        assert!(cfg.validate().is_ok());

        let u = unroll(&cfg, &[(header, 3)]).unwrap();
        assert!(u.cfg.validate().is_ok());
        assert!(u.cfg.is_acyclic());
        // Three copies of the inner branch remain.
        assert_eq!(u.cfg.branch_blocks().len(), 3);
        // 2^3 paths.
        assert_eq!(crate::paths::count_paths(&u.cfg), 8);
    }
}

//! E12 — Cross-MCU generality and energy impact (Table; extension
//! experiment).
//!
//! The estimation machinery consumes only per-block/per-edge costs, so it
//! should work unchanged across MCU calibrations. This experiment runs the
//! full pipeline under both the AVR/MicaZ and MSP430/TelosB models and
//! converts the placement savings into charge (µC), the quantity that
//! actually sizes a mote's battery life.

use ct_bench::{f2, f4, write_result, Table};
use ct_cfg::layout::Layout;
use ct_mote::energy::EnergyModel;
use ct_mote::timer::VirtualTimer;
use ct_pipeline::{EnvConfig, Mcu, RunConfig, Session};
use ct_placement::Strategy;

fn main() {
    let env = EnvConfig::load();
    eprintln!("e12: {}", env.banner());
    let n = env.pick(3_000, 400);
    let seed = env.seed_or(12_000);
    let mut table = Table::new(vec![
        "app",
        "mcu",
        "wmae",
        "mispred before",
        "mispred after",
        "cycles saved %",
        "charge saved µC",
    ]);

    let apps = ct_apps::all_apps();
    let apps = &apps[..env.pick(apps.len(), 2)];
    for app in apps {
        for (mcu, energy) in [
            (Mcu::Avr, EnergyModel::micaz()),
            (Mcu::Msp430, EnergyModel::telosb()),
        ] {
            let session = Session::new(
                RunConfig::for_app(app.clone())
                    .on(mcu)
                    .invocations(n)
                    .resolution(VirtualTimer::mhz1_at_8mhz().cycles_per_tick())
                    .seeded(seed),
            );
            let run = session.collect().expect("bundled apps must not trap");
            let est = session.estimate(&run).expect("estimation succeeds");
            let cfg = run.cfg().clone();
            let optimized = session
                .place(&run, &est.estimate.probs, Strategy::Best)
                .expect("estimated profile places");

            let before = session
                .evaluate(&Layout::natural(&cfg))
                .expect("replay must not trap");
            let after = session.evaluate(&optimized).expect("replay must not trap");
            let saved_pct =
                (before.cycles as f64 - after.cycles as f64) / before.cycles as f64 * 100.0;
            // Placement changes CPU cycles only; device activity is identical
            // on replayed inputs, so the charge delta is pure CPU.
            let charge_saved =
                energy.charge_uc(before.cycles - after.cycles.min(before.cycles), 0, 0);

            table.row(vec![
                app.name.to_string(),
                match mcu {
                    Mcu::Avr => "avr/micaz".to_string(),
                    Mcu::Msp430 => "msp430/telosb".to_string(),
                },
                f4(est.accuracy.weighted_mae),
                f4(before.cost.misprediction_rate()),
                f4(after.cost.misprediction_rate()),
                f2(saved_pct),
                f2(charge_saved),
            ]);
        }
        eprintln!("e12: {} done", app.name);
    }

    let out = format!(
        "# E12 — Cross-MCU pipeline: estimation, placement and energy\n\n\
         {n} invocations; 1 MHz measurement timer; placement from the estimated\n\
         profile; identical replayed inputs per layout (seed {seed}). Charge model:\n\
         MicaZ ≈ 1000 µC/Mcycle, TelosB ≈ 250 µC/Mcycle (CPU active).\n\
         {}\n\n{}",
        env.banner(),
        table.to_markdown()
    );
    println!("{out}");
    if !env.smoke {
        write_result("e12_cross_mcu.md", &out);
    }
}

//! Textual dumps of lowered programs, for debugging and documentation.

use crate::program::{Procedure, Program};
use std::fmt::Write as _;

/// Renders a lowered procedure as block-structured pseudo-assembly.
///
/// # Examples
///
/// ```
/// let p = ct_ir::compile_source("module M { proc f(x: u16) -> u16 { return x + 1; } }").unwrap();
/// let text = ct_ir::pretty::dump_procedure(&p.procs[0]);
/// assert!(text.contains("proc f"));
/// assert!(text.contains("ldloc 0"));
/// ```
pub fn dump_procedure(proc: &Procedure) -> String {
    let mut out = String::new();
    let ret = proc.ret.map(|t| format!(" -> {t}")).unwrap_or_default();
    let params: Vec<String> = proc.params.iter().map(|t| t.to_string()).collect();
    let _ = writeln!(
        out,
        "proc {}({}){} [{} locals]",
        proc.name,
        params.join(", "),
        ret,
        proc.n_locals
    );
    for (id, block) in proc.cfg.iter() {
        let _ = writeln!(out, "{id} ({}):", block.name);
        for instr in proc.block_code(id) {
            let _ = writeln!(out, "    {instr}");
        }
        let _ = writeln!(out, "    => {:?}", block.term);
    }
    out
}

/// Renders every global and procedure of a program.
pub fn dump_program(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module {}", program.name);
    for g in &program.globals {
        let arr = if g.len > 1 {
            format!("[{}]", g.len)
        } else {
            String::new()
        };
        let _ = writeln!(out, "  var {}: {}{} = {}", g.name, g.ty, arr, g.init);
    }
    for p in &program.procs {
        for line in dump_procedure(p).lines() {
            let _ = writeln!(out, "  {line}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::compile_source;

    #[test]
    fn dump_contains_blocks_and_terminators() {
        let p = compile_source(
            "module M { var a: u8; proc f(x: u8) { if (x > 1) { a = 1; } else { a = 2; } } }",
        )
        .unwrap();
        let text = super::dump_procedure(&p.procs[0]);
        assert!(text.contains("b0 (entry):"));
        assert!(text.contains("Branch"));
        assert!(text.contains("stglob"));
    }

    #[test]
    fn dump_program_lists_globals() {
        let p = compile_source("module M { var a: u16 = 3; var b: u8[4]; }").unwrap();
        let text = super::dump_program(&p);
        assert!(text.contains("var a: u16 = 3"));
        assert!(text.contains("var b: u8[4]"));
    }
}

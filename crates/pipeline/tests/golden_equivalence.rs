//! Golden pipeline-equivalence tests: the typed `Session` flow must produce
//! **bitwise** the artifacts of the hand-wired legacy flow (boot a mote,
//! drive paired profilers, estimate from a monolithic sample vector) it
//! replaced, and the streaming `SuffStats` representation must feed the
//! estimators the exact same input as the sample vector.

use ct_core::estimator::{estimate, EstimateOptions, Method};
use ct_core::samples::TimingSamples;
use ct_core::stream::SuffStats;
use ct_core::unrolled::estimate_unrolled;
use ct_mote::timer::VirtualTimer;
use ct_mote::trace::{GroundTruthProfiler, PairProfiler, TimingProfiler};
use ct_pipeline::{Fleet, Mcu, RunConfig, Session};

const N: usize = 600;
const SEED: u64 = 123;

/// The pre-pipeline harness flow, inlined: boot, configure, reseed, drive
/// the workload under paired profilers, and return the raw tick stream plus
/// everything an estimator needs.
fn legacy_run(app_name: &str, cpt: u64) -> (TimingSamples, Vec<u64>, Vec<u64>, ct_cfg::graph::Cfg) {
    let app = ct_apps::app_by_name(app_name).expect("app exists");
    let mut mote = app.boot(Mcu::Avr.cost_model());
    mote.reseed(SEED);
    let program = mote.program().clone();
    let pid = app.target_id(&program);
    let mut truth = GroundTruthProfiler::new(&program);
    let mut timing = TimingProfiler::new(&program, VirtualTimer::new(cpt), 0);
    for i in 0..N {
        if let Some(hook) = app.per_call {
            hook(&mut mote, i);
        }
        let mut pair = PairProfiler {
            a: &mut truth,
            b: &mut timing,
        };
        mote.call(pid, &[], &mut pair).expect("runs clean");
    }
    let samples = TimingSamples::new(timing.samples(pid).to_vec(), cpt);
    (
        samples,
        mote.static_block_costs(pid).to_vec(),
        mote.static_edge_costs(pid).to_vec(),
        program.procs[pid.index()].cfg.clone(),
    )
}

fn bits(probs: &ct_cfg::profile::BranchProbs) -> Vec<u64> {
    probs.as_slice().iter().map(|p| p.to_bits()).collect()
}

#[test]
fn session_collect_is_bitwise_identical_to_the_legacy_flow() {
    for (app, cpt) in [("sense", 1), ("event_detect", 8), ("oscilloscope", 8)] {
        let (legacy, bc, ec, _) = legacy_run(app, cpt);
        let session = Session::new(
            RunConfig::new(app)
                .invocations(N)
                .resolution(cpt)
                .seeded(SEED),
        );
        let run = session.collect().expect("runs clean");
        assert_eq!(run.samples.ticks(), legacy.ticks(), "{app} tick stream");
        assert_eq!(run.samples.cycles_per_tick(), cpt);
        assert_eq!(run.block_costs, bc, "{app} block costs");
        assert_eq!(run.edge_costs, ec, "{app} edge costs");
    }
}

#[test]
fn session_estimate_is_bitwise_identical_to_the_legacy_flow() {
    for (app, cpt) in [("sense", 1), ("event_detect", 8), ("crc", 1)] {
        let (samples, bc, ec, cfg) = legacy_run(app, cpt);
        // Legacy estimate_run semantics: the counted-loop unrolled model
        // first when trip counts are proved, plain front door otherwise.
        let counted = {
            let a = ct_apps::app_by_name(app).unwrap();
            let p = a.compile();
            let pid = a.target_id(&p);
            p.procs[pid.index()].counted_loops.clone()
        };
        let opts = EstimateOptions::default();
        let legacy = if !counted.is_empty() {
            match estimate_unrolled(&cfg, &counted, &bc, &ec, &samples, opts.em) {
                Ok(u) => (u.probs, Method::EmUnrolled),
                Err(_) => {
                    let e = estimate(&cfg, &bc, &ec, &samples, opts).expect("estimates");
                    (e.probs, e.method)
                }
            }
        } else {
            let e = estimate(&cfg, &bc, &ec, &samples, opts).expect("estimates");
            (e.probs, e.method)
        };

        let session = Session::new(
            RunConfig::new(app)
                .invocations(N)
                .resolution(cpt)
                .seeded(SEED),
        );
        let run = session.collect().expect("runs clean");
        let est = session.estimate(&run).expect("estimates");
        assert_eq!(est.estimate.method, legacy.1, "{app} method");
        assert_eq!(bits(&est.estimate.probs), bits(&legacy.0), "{app} probs");
    }
}

#[test]
fn suffstats_feed_the_estimator_the_same_input_as_the_sample_vector() {
    let (samples, bc, ec, cfg) = legacy_run("sense", 8);
    let stats = SuffStats::from_samples(&samples);
    let from_vec =
        estimate(&cfg, &bc, &ec, &samples, EstimateOptions::default()).expect("estimates");
    let from_stats =
        estimate(&cfg, &bc, &ec, &stats, EstimateOptions::default()).expect("estimates");
    assert_eq!(from_vec.method, from_stats.method);
    assert_eq!(from_vec.iterations, from_stats.iterations);
    assert_eq!(bits(&from_vec.probs), bits(&from_stats.probs));
}

#[test]
fn fleet_estimate_from_merged_stats_is_bitwise_the_monolithic_estimate() {
    // Three motes' merged statistics must estimate bitwise-identically to
    // the concatenated (sorted-equivalent) monolithic sample vector.
    let fleet = Fleet::new(RunConfig::new("sense").invocations(200).seeded(SEED), 3);
    let fr = fleet.run().expect("fleet runs clean");
    let mut ticks = Vec::new();
    for i in 0..3 {
        let run = Session::new(fleet.mote_config(i))
            .collect()
            .expect("runs clean");
        ticks.extend_from_slice(run.samples.ticks());
    }
    let mono = TimingSamples::new(ticks, 1);
    assert_eq!(SuffStats::from_samples(&mono), fr.stats);
    let from_mono = estimate(
        fr.cfg(),
        &fr.block_costs,
        &fr.edge_costs,
        &mono,
        EstimateOptions::default(),
    )
    .expect("estimates");
    let from_fleet = fleet.estimate(&fr).expect("estimates");
    assert_eq!(bits(&from_mono.probs), bits(&from_fleet.estimate.probs));
}

//! Value-generation strategies.

use rand::rngs::StdRng;
use rand::Rng;
use std::rc::Rc;

/// A generator of test values. Unlike upstream proptest there is no shrink
/// tree: a strategy is just a deterministic function of the case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives the strategy for the
    /// previous depth level and returns the strategy for composite values.
    /// Depth is bounded by `depth`; the size hints are accepted for API
    /// compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut cur = self.boxed();
        for _ in 0..depth {
            let leaf = cur.clone();
            let composite = recurse(cur).boxed();
            cur = Union::new(vec![leaf, composite]).boxed();
        }
        cur
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.inner.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Wraps a non-empty option list.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Pattern strings: a regex-lite subset — `[class]{lo,hi}` and `\PC{lo,hi}`
/// (any printable character) — is interpreted; anything else generates the
/// pattern itself as a literal.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        match parse_pattern(self) {
            Some((chars, lo, hi)) => {
                let len = rng.gen_range(lo..=hi);
                (0..len)
                    .map(|_| chars[rng.gen_range(0..chars.len())])
                    .collect()
            }
            None => (*self).to_string(),
        }
    }
}

/// Parses `[class]{lo,hi}` / `\PC{lo,hi}` into (alphabet, lo, hi).
fn parse_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let (alphabet, rest) = if let Some(rest) = pat.strip_prefix("\\PC") {
        // \PC: printable characters. ASCII printable plus a few multibyte
        // code points to exercise UTF-8 handling.
        let mut chars: Vec<char> = (0x20u8..0x7f).map(char::from).collect();
        chars.extend(['é', 'λ', '∑', '中']);
        (chars, rest)
    } else if let Some(body) = pat.strip_prefix('[') {
        let close = find_unescaped_close(body)?;
        let mut chars = Vec::new();
        let mut it = body[..close].chars();
        while let Some(c) = it.next() {
            if c == '\\' {
                match it.next()? {
                    'n' => chars.push('\n'),
                    't' => chars.push('\t'),
                    'r' => chars.push('\r'),
                    other => chars.push(other),
                }
            } else {
                chars.push(c);
            }
        }
        if chars.is_empty() {
            return None;
        }
        (chars, &body[close + 1..])
    } else {
        return None;
    };
    let body = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    Some((alphabet, lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// Index of the first `]` in `s` not preceded by a backslash.
fn find_unescaped_close(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b']' => return Some(i),
            _ => i += 1,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pattern_parsing_handles_classes_and_escapes() {
        let (chars, lo, hi) = parse_pattern("[ab\\n]{2,5}").unwrap();
        assert_eq!(chars, vec!['a', 'b', '\n']);
        assert_eq!((lo, hi), (2, 5));
        let (chars, lo, hi) = parse_pattern("\\PC{0,120}").unwrap();
        assert!(chars.contains(&'a') && chars.contains(&' '));
        assert_eq!((lo, hi), (0, 120));
        assert!(parse_pattern("plain").is_none());
    }

    #[test]
    fn string_strategy_respects_length_and_alphabet() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let s = "[ab]{1,4}".generate(&mut rng);
            assert!((1..=4).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        }
    }

    #[test]
    fn recursive_strategy_is_bounded() {
        let leaf = (0u32..10).prop_map(|v| v.to_string());
        let strat = leaf.prop_recursive(3, 24, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| format!("({a}+{b})"))
        });
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..100 {
            let e = strat.generate(&mut rng);
            // Depth 3 → at most 2^3 leaves → bounded length.
            assert!(e.len() < 200, "{e}");
        }
    }
}

//! MCU instruction-timing cost models.
//!
//! Each abstract instruction of `ct-ir` has a fixed cycle cost under a cost
//! model, so every basic block has a *static* cost — the foundation of the
//! Code Tomography duration model. Two calibrations are provided, patterned
//! after the MCU classes of the paper's platforms:
//!
//! - [`AvrCost`] — ATmega128-class (MicaZ): 8-bit core, 1-cycle ALU,
//!   software division, 1-cycle taken-branch penalty;
//! - [`Msp430Cost`] — MSP430-class (TelosB): 16-bit core, memory-to-memory
//!   ISA with slower loads/stores, 2-cycle taken-jump penalty.
//!
//! The numbers are calibrated to datasheet orders of magnitude, not exact
//! per-opcode tables; the estimation code path only requires that they are
//! fixed and known (see DESIGN.md, substitution table).

use ct_cfg::graph::Terminator;
use ct_cfg::layout::{BranchPredictor, Layout, PenaltyModel, TransferKind};
use ct_ir::ast::BinOp;
use ct_ir::instr::{Instr, Intrinsic};
use ct_ir::program::Procedure;

/// An MCU instruction-timing model.
///
/// Implementations must be deterministic: the same instruction always costs
/// the same number of cycles.
pub trait CostModel {
    /// Cycles of one stack-machine instruction (for `Call`, the call/return
    /// overhead only — the callee's body is charged to the callee's blocks).
    fn instr_cost(&self, instr: &Instr) -> u64;
    /// Base cycles of a conditional branch terminator (compare-and-branch,
    /// not-taken case; the taken penalty comes from [`Self::penalties`]).
    fn branch_base(&self) -> u64;
    /// Cycles of a `Return` terminator.
    fn return_cost(&self) -> u64;
    /// Layout-dependent control-transfer penalties.
    fn penalties(&self) -> PenaltyModel;
    /// The static branch-prediction rule this MCU class implements. Both
    /// presets are predict-not-taken cores — the taken-branch penalty in
    /// [`Self::penalties`] *is* the misprediction penalty — so the default
    /// is [`BranchPredictor::AlwaysNotTaken`]; the virtual PMU counts the
    /// BTFNT what-if alongside regardless.
    fn predictor(&self) -> BranchPredictor {
        BranchPredictor::AlwaysNotTaken
    }
    /// Human-readable model name.
    fn name(&self) -> &str;
}

/// ATmega128-class cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AvrCost;

impl CostModel for AvrCost {
    fn instr_cost(&self, instr: &Instr) -> u64 {
        match instr {
            Instr::PushConst(_) => 2,
            Instr::LoadLocal(_) | Instr::StoreLocal(_) => 4,
            Instr::LoadGlobal(_) | Instr::StoreGlobal(_) => 4,
            Instr::LoadElem(_) => 8,
            Instr::StoreElem(_) => 8,
            Instr::Unary(_) => 2,
            Instr::Binary(op) => match op {
                BinOp::Mul => 4,
                BinOp::Div | BinOp::Rem => 40, // software divide
                BinOp::Shl | BinOp::Shr => 6,  // loop shifts on AVR
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => 4,
                _ => 2,
            },
            Instr::Cast(_) => 2,
            Instr::Call(_) => 8,
            Instr::Intrinsic(i) => match i {
                Intrinsic::ReadAdc => 120,
                Intrinsic::LedSet | Intrinsic::LedToggle => 4,
                Intrinsic::SendMsg => 300,
                Intrinsic::RecvAvail => 10,
                Intrinsic::RecvMsg => 20,
                Intrinsic::NodeId => 4,
            },
            Instr::Pop => 2,
        }
    }

    fn branch_base(&self) -> u64 {
        2
    }

    fn return_cost(&self) -> u64 {
        8
    }

    fn penalties(&self) -> PenaltyModel {
        PenaltyModel::avr()
    }

    fn name(&self) -> &str {
        "avr"
    }
}

/// MSP430-class cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Msp430Cost;

impl CostModel for Msp430Cost {
    fn instr_cost(&self, instr: &Instr) -> u64 {
        match instr {
            Instr::PushConst(_) => 2,
            Instr::LoadLocal(_) | Instr::StoreLocal(_) => 3,
            Instr::LoadGlobal(_) | Instr::StoreGlobal(_) => 4,
            Instr::LoadElem(_) => 6,
            Instr::StoreElem(_) => 6,
            Instr::Unary(_) => 1,
            Instr::Binary(op) => match op {
                BinOp::Mul => 8, // no hardware multiplier on the base core
                BinOp::Div | BinOp::Rem => 60,
                BinOp::Shl | BinOp::Shr => 4,
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => 2,
                _ => 1,
            },
            Instr::Cast(_) => 1,
            Instr::Call(_) => 10,
            Instr::Intrinsic(i) => match i {
                Intrinsic::ReadAdc => 90,
                Intrinsic::LedSet | Intrinsic::LedToggle => 5,
                Intrinsic::SendMsg => 250,
                Intrinsic::RecvAvail => 8,
                Intrinsic::RecvMsg => 16,
                Intrinsic::NodeId => 3,
            },
            Instr::Pop => 1,
        }
    }

    fn branch_base(&self) -> u64 {
        2
    }

    fn return_cost(&self) -> u64 {
        5
    }

    fn penalties(&self) -> PenaltyModel {
        PenaltyModel::msp430()
    }

    fn name(&self) -> &str {
        "msp430"
    }
}

/// Static per-block cycle costs of a procedure: instruction costs plus the
/// terminator's base cost. Layout-dependent transfer penalties are *not*
/// included — they are per-edge costs (see [`edge_costs`]).
pub fn block_costs(proc: &Procedure, model: &dyn CostModel) -> Vec<u64> {
    proc.cfg
        .iter()
        .map(|(id, b)| {
            let instrs: u64 = proc
                .block_code(id)
                .iter()
                .map(|i| model.instr_cost(i))
                .sum();
            let term = match b.term {
                Terminator::Branch { .. } => model.branch_base(),
                Terminator::Jump(_) => 0,
                Terminator::Return => model.return_cost(),
            };
            instrs + term
        })
        .collect()
}

/// Static per-edge transfer costs under a concrete layout (indexed by the
/// CFG's edge order): 0 for fall-throughs, the taken-branch penalty for taken
/// branches, the jump cost for materialized jumps.
pub fn edge_costs(proc: &Procedure, model: &dyn CostModel, layout: &Layout) -> Vec<u64> {
    let pen = model.penalties();
    proc.cfg
        .edges()
        .iter()
        .map(|e| match layout.transfer_kind(&proc.cfg, e.from, e.to) {
            TransferKind::FallThrough => 0,
            TransferKind::TakenBranch | TransferKind::TakenBranchOverJump => pen.taken_branch_extra,
            TransferKind::Jump => pen.jump_cycles,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_cfg::layout::Layout;

    fn sample_proc() -> Procedure {
        let p = ct_ir::compile_source(
            "module M { var a: u16; proc f(x: u16) {
                if (x > 5) { a = a + x; } else { a = 0; }
            } }",
        )
        .unwrap();
        p.procs.into_iter().next().unwrap()
    }

    #[test]
    fn block_costs_are_positive_and_deterministic() {
        let proc = sample_proc();
        let c1 = block_costs(&proc, &AvrCost);
        let c2 = block_costs(&proc, &AvrCost);
        assert_eq!(c1, c2);
        assert_eq!(c1.len(), proc.cfg.len());
        assert!(c1.iter().all(|&c| c > 0));
    }

    #[test]
    fn branch_block_includes_branch_base() {
        let proc = sample_proc();
        let costs = block_costs(&proc, &AvrCost);
        let bb = proc.cfg.branch_blocks()[0];
        let instr_sum: u64 = proc
            .block_code(bb)
            .iter()
            .map(|i| AvrCost.instr_cost(i))
            .sum();
        assert_eq!(costs[bb.index()], instr_sum + AvrCost.branch_base());
    }

    #[test]
    fn models_differ() {
        let proc = sample_proc();
        assert_ne!(
            block_costs(&proc, &AvrCost),
            block_costs(&proc, &Msp430Cost)
        );
        assert_eq!(AvrCost.name(), "avr");
        assert_eq!(Msp430Cost.name(), "msp430");
    }

    #[test]
    fn division_is_expensive() {
        assert!(
            AvrCost.instr_cost(&Instr::Binary(BinOp::Div))
                > 10 * AvrCost.instr_cost(&Instr::Binary(BinOp::Add))
        );
    }

    #[test]
    fn edge_costs_reflect_layout() {
        let proc = sample_proc();
        // Lowering emits [cond, join, then, else]; the natural layout leaves
        // both branch targets displaced, so every edge pays a transfer.
        let natural = edge_costs(&proc, &AvrCost, &Layout::natural(&proc.cfg));
        assert_eq!(natural.len(), proc.cfg.edges().len());
        assert!(natural.iter().all(|&c| c > 0), "{natural:?}");
        // Placing the then-arm right after the condition makes its edge free.
        use ct_cfg::graph::BlockId;
        let hot = Layout::from_order(
            &proc.cfg,
            vec![BlockId(0), BlockId(2), BlockId(1), BlockId(3)],
        )
        .unwrap();
        let optimized = edge_costs(&proc, &AvrCost, &hot);
        assert!(optimized.contains(&0), "{optimized:?}");
        assert!(optimized.iter().sum::<u64>() < natural.iter().sum::<u64>());
    }

    #[test]
    fn intrinsics_dominate_alu() {
        let adc = AvrCost.instr_cost(&Instr::Intrinsic(Intrinsic::ReadAdc));
        let add = AvrCost.instr_cost(&Instr::Binary(BinOp::Add));
        assert!(adc > 20 * add);
    }
}

#![warn(missing_docs)]

//! # ct-ir
//!
//! The NLC ("nesC-lite") front end: a small structured language for sensor
//! mote programs, compiled to per-procedure control-flow graphs of
//! stack-machine instructions with statically known per-block cycle costs.
//!
//! The pipeline is [`parser::parse_module`] → [`sema::analyze`] →
//! [`lower::lower`], bundled as [`compile_source`].
//!
//! Language restrictions (all checked by sema) guarantee that every lowered
//! procedure is *structured*: reducible, single-exit, header-controlled
//! single-latch loops. `ct_cfg::structure::decompose` therefore always
//! succeeds on NLC output, which is what lets the Code Tomography duration
//! model compose sequence/branch/loop distributions exactly.
//!
//! ## Example
//!
//! ```
//! let program = ct_ir::compile_source(r#"
//!     module Sense {
//!         var threshold: u16 = 512;
//!         var alarms: u16;
//!
//!         proc check() {
//!             var v: u16 = read_adc();
//!             if (v > threshold) { alarms = alarms + 1; led_set(0, 1); }
//!             else { led_set(0, 0); }
//!         }
//!     }
//! "#).unwrap();
//! let check = &program.procs[0];
//! assert_eq!(check.cfg.branch_blocks().len(), 1);
//! assert!(ct_cfg::structure::decompose(&check.cfg).is_ok());
//! ```

pub mod ast;
pub mod error;
pub mod instr;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod pretty;
pub mod program;
pub mod sema;
pub mod token;
pub mod tripcount;
pub mod types;

pub use error::IrError;
pub use instr::{GlobalId, Instr, Intrinsic, ProcId, ValKind};
pub use lower::compile_source;
pub use program::{Global, Procedure, Program};
pub use types::Ty;

/// Alias for [`compile_source`], the one-call front end.
///
/// # Errors
///
/// Propagates lex, parse and semantic errors.
pub fn compile(src: &str) -> Result<Program, IrError> {
    compile_source(src)
}

//! Graphviz DOT rendering of CFGs, for documentation and debugging.

use crate::graph::{Cfg, EdgeKind};
use crate::profile::EdgeProfile;
use std::fmt::Write as _;

/// Renders `cfg` as a Graphviz `digraph`.
///
/// Branch edges are labeled `T`/`F`; jumps are unlabeled.
///
/// # Examples
///
/// ```
/// use ct_cfg::builder::diamond;
/// use ct_cfg::dot::to_dot;
/// let dot = to_dot(&diamond());
/// assert!(dot.starts_with("digraph"));
/// assert!(dot.contains("label=\"T\""));
/// ```
pub fn to_dot(cfg: &Cfg) -> String {
    render(cfg, None)
}

/// Renders `cfg` with edge counts from `profile` appended to edge labels.
pub fn to_dot_with_profile(cfg: &Cfg, profile: &EdgeProfile) -> String {
    render(cfg, Some(profile))
}

fn render(cfg: &Cfg, profile: Option<&EdgeProfile>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", cfg.name());
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for (id, b) in cfg.iter() {
        let _ = writeln!(out, "  {} [label=\"{}\\n{}\"];", id, id, b.name);
    }
    for e in cfg.edges() {
        let mut label = match e.kind {
            EdgeKind::BranchTrue => "T".to_string(),
            EdgeKind::BranchFalse => "F".to_string(),
            EdgeKind::Jump => String::new(),
        };
        if let Some(p) = profile {
            if !label.is_empty() {
                label.push(' ');
            }
            let _ = write!(label, "×{}", p.count(e.index));
        }
        if label.is_empty() {
            let _ = writeln!(out, "  {} -> {};", e.from, e.to);
        } else {
            let _ = writeln!(out, "  {} -> {} [label=\"{}\"];", e.from, e.to, label);
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{diamond, linear};

    #[test]
    fn dot_contains_all_blocks_and_edges() {
        let cfg = diamond();
        let dot = to_dot(&cfg);
        for id in cfg.block_ids() {
            assert!(dot.contains(&format!("{id} [label=")));
        }
        assert_eq!(dot.matches("->").count(), cfg.edges().len());
    }

    #[test]
    fn jump_edges_have_no_label() {
        let dot = to_dot(&linear(3));
        assert!(!dot.contains("label=\"T\""));
        assert!(dot.contains("b0 -> b1;"));
    }

    #[test]
    fn profile_counts_appear() {
        let cfg = diamond();
        let prof = EdgeProfile::from_counts(&cfg, vec![7, 3, 7, 3]);
        let dot = to_dot_with_profile(&cfg, &prof);
        assert!(dot.contains("×7"));
        assert!(dot.contains("T ×7"));
    }
}

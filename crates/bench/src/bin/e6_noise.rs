//! E6 — Robustness to measurement noise (Figure).
//!
//! Claim evaluated: timing-based estimation survives realistic measurement
//! contamination — interrupts stealing cycles inside measured windows. The
//! EM estimator's `unexplained` counter shows its built-in outlier rejection.

use ct_bench::{f4, write_result, Table};
use ct_pipeline::{EnvConfig, RunConfig, Session};

fn main() {
    let env = EnvConfig::load();
    eprintln!("e6: {}", env.banner());
    let n = env.pick(4_000, 400);
    let seed_base = env.seed_or(6_000);
    let rates: &[f64] = env.pick(&[0.0, 0.01, 0.02, 0.05, 0.10], &[0.0, 0.10]);
    let burst_cycles = [100u64, 500];
    let apps: &[&str] = env.pick(&["sense", "event_detect", "crc"], &["sense"]);

    let mut headers = vec!["app".to_string(), "isr cycles".to_string()];
    headers.extend(rates.iter().map(|r| format!("rate={:.0}%", r * 100.0)));
    headers.extend(
        ["unexplained", "em iters", "converged", "final delta"]
            .iter()
            .map(|s| format!("{s}@{:.0}%", rates.last().expect("nonempty") * 100.0)),
    );
    let mut table = Table::new(headers);

    for name in apps {
        for &isr in &burst_cycles {
            let mut cells = vec![name.to_string(), isr.to_string()];
            let mut last_unexplained = 0;
            let mut last_iters = 0;
            let mut last_converged = false;
            let mut last_delta = 0.0;
            for (i, &rate) in rates.iter().enumerate() {
                let session = Session::new(
                    RunConfig::new(name)
                        .invocations(n)
                        .seeded(seed_base + i as u64)
                        .contaminated(rate, isr),
                );
                let run = session.collect().expect("bundled apps must not trap");
                let est = session.estimate(&run).expect("estimation succeeds");
                last_unexplained = est.estimate.unexplained;
                last_iters = est.estimate.iterations;
                last_converged = est.estimate.converged;
                last_delta = est.estimate.final_delta;
                cells.push(f4(est.accuracy.weighted_mae));
            }
            cells.push(last_unexplained.to_string());
            cells.push(last_iters.to_string());
            cells.push(if last_converged { "yes" } else { "no" }.to_string());
            cells.push(format!("{last_delta:.1e}"));
            table.row(cells);
            eprintln!("e6: {name} isr={isr} done");
        }
    }

    let out = format!(
        "# E6 — Estimation accuracy (weighted MAE) under interrupt contamination\n\n\
         {n} samples; cycle-accurate timer; a contaminated activation has `isr cycles`\n\
         stolen inside its measured window with probability `rate`. `unexplained` =\n\
         samples the EM likelihood rejected as impossible at the final parameters.\n\
         {}\n\n{}",
        env.banner(),
        table.to_markdown()
    );
    println!("{out}");
    if !env.smoke {
        write_result("e6_noise.md", &out);
    }
}

//! Folds a JSONL trace stream into a human-readable stage/phase time
//! breakdown — the logic behind the `ct-obs-report` binary.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::{self, Json};

/// Aggregates folded out of a trace stream.
#[derive(Debug, Default, Clone)]
pub struct Report {
    /// Span name -> (count, wall_ns, cpu_ticks).
    pub spans: BTreeMap<String, (u64, u64, u64)>,
    /// Counter name -> value.
    pub counters: BTreeMap<String, u64>,
    /// Event name -> occurrences (excluding summary lines).
    pub event_counts: BTreeMap<String, u64>,
    /// Per-restart EM iteration counts, in stream order.
    pub em_iterations: Vec<u64>,
    /// EM restarts that converged.
    pub em_converged: u64,
    /// `warn.*` events, rendered back as JSONL.
    pub warnings: Vec<String>,
    /// Lines that failed to parse (reported, not fatal).
    pub malformed: Vec<String>,
}

/// Event-name prefixes whose integral fields fold into the counter table
/// (`<event>.<field>`), alongside plain `counter` lines.
const COUNTER_EVENT_PREFIXES: &[&str] = &["pmu.", "em.", "ladder."];

fn num(doc: &Json, key: &str) -> u64 {
    doc.get(key).and_then(Json::as_num).map_or(0, |n| n as u64)
}

impl Report {
    /// Folds a JSONL stream (one JSON object per non-empty line).
    pub fn from_jsonl(input: &str) -> Report {
        let mut r = Report::default();
        for line in input.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let doc = match json::parse(line) {
                Ok(doc) => doc,
                Err(e) => {
                    r.malformed.push(format!("{e}: {line}"));
                    continue;
                }
            };
            let Some(event) = doc.get("event").and_then(Json::as_str) else {
                r.malformed.push(format!("missing event key: {line}"));
                continue;
            };
            match event {
                "span" => {
                    if let Some(name) = doc.get("name").and_then(Json::as_str) {
                        let slot = r.spans.entry(name.to_string()).or_default();
                        slot.0 += num(&doc, "count");
                        slot.1 += num(&doc, "wall_ns");
                        slot.2 += num(&doc, "cpu_ticks");
                    }
                }
                "counter" => {
                    if let Some(name) = doc.get("name").and_then(Json::as_str) {
                        *r.counters.entry(name.to_string()).or_default() += num(&doc, "value");
                    }
                }
                "gauge" | "trace.meta" => {}
                name => {
                    *r.event_counts.entry(name.to_string()).or_default() += 1;
                    if name == "em.restart" {
                        r.em_iterations.push(num(&doc, "iterations"));
                        if doc.get("converged") == Some(&Json::Bool(true)) {
                            r.em_converged += 1;
                        }
                    }
                    if name.starts_with("warn.") {
                        r.warnings.push(line.to_string());
                    }
                    // Counter-shaped events (PMU banks, estimator stats):
                    // fold their integral fields into the counter table so
                    // one breakdown covers timings and counts alike.
                    if COUNTER_EVENT_PREFIXES.iter().any(|p| name.starts_with(p)) {
                        if let Json::Obj(fields) = &doc {
                            for (k, v) in fields {
                                if k == "event" || crate::VOLATILE_FIELDS.contains(&k.as_str()) {
                                    continue;
                                }
                                let Some(n) = v.as_num() else { continue };
                                if n.is_finite() && n >= 0.0 && n.fract() == 0.0 {
                                    *r.counters.entry(format!("{name}.{k}")).or_default() +=
                                        n as u64;
                                }
                            }
                        }
                    }
                }
            }
        }
        r
    }

    /// Renders the stage-time breakdown table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let total_wall: u64 = self.spans.values().map(|(_, w, _)| *w).sum();
        let _ = writeln!(out, "== stage/phase breakdown ==");
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>12} {:>7} {:>10}",
            "span", "count", "wall_ms", "%", "cpu_ticks"
        );
        let mut by_wall: Vec<_> = self.spans.iter().collect();
        by_wall.sort_by(|a, b| b.1 .1.cmp(&a.1 .1).then_with(|| a.0.cmp(b.0)));
        for (name, (count, wall_ns, cpu)) in by_wall {
            let pct = if total_wall > 0 {
                100.0 * *wall_ns as f64 / total_wall as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>12.3} {:>6.1}% {:>10}",
                name,
                count,
                *wall_ns as f64 / 1e6,
                pct,
                cpu
            );
        }
        if !self.em_iterations.is_empty() {
            let total: u64 = self.em_iterations.iter().sum();
            let _ = writeln!(out, "== EM restarts ==");
            let _ = writeln!(
                out,
                "restarts={} converged={} iterations(total)={} iterations(per restart)={:?}",
                self.em_iterations.len(),
                self.em_converged,
                total,
                self.em_iterations
            );
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "== counters ==");
            for (name, n) in &self.counters {
                let _ = writeln!(out, "{name:<28} {n:>10}");
            }
        }
        if !self.event_counts.is_empty() {
            let _ = writeln!(out, "== events ==");
            for (name, n) in &self.event_counts {
                let _ = writeln!(out, "{name:<28} {n:>10}");
            }
        }
        if !self.warnings.is_empty() {
            let _ = writeln!(out, "== warnings ==");
            for w in &self.warnings {
                let _ = writeln!(out, "{w}");
            }
        }
        if !self.malformed.is_empty() {
            let _ = writeln!(out, "== malformed lines ==");
            for m in &self.malformed {
                let _ = writeln!(out, "{m}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STREAM: &str = r#"
{"event":"trace.meta","schema":1,"events":3}
{"event":"stage.estimate","ok":true}
{"event":"em.restart","restart":0,"iterations":12,"converged":true}
{"event":"em.restart","restart":1,"iterations":40,"converged":false}
{"event":"warn.suffstats_saturated","proc":"main"}
{"event":"span","name":"stage.estimate","count":1,"wall_ns":2000000,"cpu_ticks":3}
{"event":"span","name":"stage.run","count":1,"wall_ns":6000000,"cpu_ticks":9}
{"event":"counter","name":"fleet.motes","value":4}
"#;

    #[test]
    fn folds_spans_events_and_counters() {
        let r = Report::from_jsonl(STREAM);
        assert!(r.malformed.is_empty(), "{:?}", r.malformed);
        assert_eq!(r.spans["stage.run"], (1, 6_000_000, 9));
        assert_eq!(r.counters["fleet.motes"], 4);
        assert_eq!(r.em_iterations, vec![12, 40]);
        assert_eq!(r.em_converged, 1);
        assert_eq!(r.event_counts["stage.estimate"], 1);
        assert_eq!(r.warnings.len(), 1);
    }

    #[test]
    fn render_orders_spans_by_wall_time() {
        let r = Report::from_jsonl(STREAM);
        let table = r.render();
        let run = table.find("stage.run").unwrap_or(usize::MAX);
        let est = table.find("stage.estimate").unwrap_or(0);
        assert!(run < est, "expected stage.run (slower) first:\n{table}");
        assert!(table.contains("restarts=2 converged=1 iterations(total)=52"));
    }

    #[test]
    fn counter_events_fold_into_the_counter_table() {
        let r = Report::from_jsonl(concat!(
            "{\"event\":\"pmu.totals\",\"cond_taken\":7,\"cond_not_taken\":3,\"wall_ns\":99}\n",
            "{\"event\":\"pmu.totals\",\"cond_taken\":5,\"cond_not_taken\":5,\"rate\":0.5}\n",
            "{\"event\":\"em.restart\",\"restart\":1,\"iterations\":12,\"converged\":true}\n",
        ));
        assert_eq!(r.counters["pmu.totals.cond_taken"], 12);
        assert_eq!(r.counters["pmu.totals.cond_not_taken"], 8);
        assert_eq!(r.counters["em.restart.iterations"], 12);
        // Volatile and fractional fields stay out.
        assert!(!r.counters.contains_key("pmu.totals.wall_ns"));
        assert!(!r.counters.contains_key("pmu.totals.rate"));
        // The special-cased EM summary still works.
        assert_eq!(r.em_iterations, vec![12]);
    }

    #[test]
    fn malformed_lines_are_reported_not_fatal() {
        let r = Report::from_jsonl("not json\n{\"event\":\"x\"}\n{\"no_event\":1}\n");
        assert_eq!(r.malformed.len(), 2);
        assert_eq!(r.event_counts["x"], 1);
    }
}

//! The reduce tier: deterministic tree reduction of shard harvests into a
//! generation-stamped global accumulator, plus the front-door serving
//! logic that estimates from the latest reduced generation.

use crate::api::{EstimateRequest, EstimateResponse, ServiceError};
use crate::checkpoint::{Checkpoint, CheckpointEstimate};
use crate::shard::ShardHarvest;
use ct_cfg::graph::Cfg;
use ct_core::em::{EmOptions, EmResult};
use ct_core::fb::FbError;
use ct_core::samples::DurationSamples;
use ct_core::stream::{BatchTag, SuffStats};
use ct_core::IncrementalEm;
use std::collections::BTreeSet;

/// The generation-stamped global accumulator.
///
/// Each [`ReduceTier::absorb`] call tree-reduces one round of shard
/// harvests into the cumulative [`SuffStats`] (via
/// [`IncrementalEm::ingest_counted`], so the batch count advances by
/// batches, not reduce rounds) and, when the round carried anything,
/// stamps a new generation. Because the tree reduction and the cumulative
/// merge are both order-insensitive and exact, the accumulator after *any*
/// schedule of absorbs over *any* sharding is bitwise the monolithic fold
/// of the same distinct batches — which is the service's core determinism
/// guarantee.
#[derive(Debug, Clone)]
pub struct ReduceTier {
    cycles_per_tick: u64,
    inc: IncrementalEm,
    /// Union dedup ledger of every tag folded into the accumulator —
    /// mirrored here (shards keep their own) so checkpoints can be cut at
    /// reduce boundaries without touching the ingest tier.
    ledger: BTreeSet<BatchTag>,
    generation: u64,
    /// The generation `inc.last()` was computed from, if any — the serve
    /// cache: repeated requests against an unchanged generation replay the
    /// estimate instead of re-running EM.
    cached_generation: Option<u64>,
}

impl ReduceTier {
    /// An empty tier at `cycles_per_tick` resolution.
    pub fn new(cycles_per_tick: u64, opts: EmOptions) -> ReduceTier {
        ReduceTier {
            cycles_per_tick,
            inc: IncrementalEm::new(cycles_per_tick, opts),
            ledger: BTreeSet::new(),
            generation: 0,
            cached_generation: None,
        }
    }

    /// Rebuilds a tier from checkpointed state. The warm-start estimate
    /// (`last`) seeds the incremental EM either way; it is treated as a
    /// cached response for the restored generation only when `cached` says
    /// it was current when the snapshot was cut — a stale warm start (the
    /// snapshot absorbed generations after the last serve) must trigger a
    /// re-estimate on the first serve, exactly as it would have in the
    /// interrupted process.
    #[allow(clippy::too_many_arguments)]
    pub fn restore(
        cycles_per_tick: u64,
        opts: EmOptions,
        stats: SuffStats,
        last: Option<EmResult>,
        batches: u64,
        generation: u64,
        ledger: impl IntoIterator<Item = BatchTag>,
        cached: bool,
    ) -> ReduceTier {
        let cached_generation = (cached && last.is_some()).then_some(generation);
        ReduceTier {
            cycles_per_tick,
            inc: IncrementalEm::restore(stats, last, batches, opts),
            ledger: ledger.into_iter().collect(),
            generation,
            cached_generation,
        }
    }

    /// Absorbs one round of shard harvests: tree-reduces the deltas, folds
    /// the result into the cumulative statistics, extends the union
    /// ledger, and — when the round carried at least one fresh batch —
    /// stamps a new generation. Empty rounds are free no-ops (no
    /// generation bump), so a polling coordinator can reduce as often as
    /// it likes without perturbing anything deterministic.
    ///
    /// Returns the number of fresh batches absorbed. Emits the
    /// `svc.reduce.generations` counter, the `svc.reduce.latency_us`
    /// gauge, and the `svc.reduce.latency_ns` histogram (all
    /// scheduling-dependent: `ct-obs-diff` treats `svc.` volatile metrics
    /// and `*_ns` histograms as notes, not differences).
    ///
    /// # Errors
    ///
    /// [`FbError::Shape`] when any harvest's resolution disagrees with the
    /// tier's.
    pub fn absorb(&mut self, harvests: Vec<ShardHarvest>) -> Result<u64, FbError> {
        let started = std::time::Instant::now();
        let mut fresh = 0u64;
        let mut deltas = Vec::with_capacity(harvests.len());
        let mut tags: Vec<BatchTag> = Vec::new();
        let mut sorted = harvests;
        // Deterministic tree shape: leaves in shard order, whatever order
        // the replies arrived in. (Merge commutativity makes even this
        // unnecessary for bitwise equality; it keeps the shape canonical.)
        sorted.sort_by_key(|h| h.shard);
        for h in sorted {
            fresh += h.fresh.len() as u64;
            tags.extend(h.fresh);
            deltas.push(h.delta);
        }
        if fresh == 0 {
            return Ok(0);
        }
        let reduced = SuffStats::tree_reduce(self.cycles_per_tick, deltas)
            .map_err(|e| FbError::Shape(e.to_string()))?;
        self.inc.ingest_counted(&reduced, fresh)?;
        self.ledger.extend(tags);
        self.generation += 1;
        ct_obs::Counter::new("svc.reduce.generations").incr();
        let elapsed = started.elapsed();
        ct_obs::Gauge::new("svc.reduce.latency_us").set(elapsed.as_micros() as f64);
        ct_obs::hist_record(
            "svc.reduce.latency_ns",
            u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
        );
        Ok(fresh)
    }

    /// Re-estimates over the current generation's statistics,
    /// warm-starting from the previous optimum, and caches the result for
    /// [`ReduceTier::serve`].
    ///
    /// # Errors
    ///
    /// Propagates [`FbError`] from the dynamic programs.
    pub fn estimate(
        &mut self,
        cfg: &Cfg,
        block_costs: &[u64],
        edge_costs: &[u64],
    ) -> Result<&EmResult, FbError> {
        let r = self.inc.reestimate(cfg, block_costs, edge_costs)?;
        self.cached_generation = Some(self.generation);
        Ok(r)
    }

    /// Serves an estimate from the latest reduced generation: EM runs at
    /// most once per generation (repeat requests replay the cached
    /// optimum). `staleness` is supplied by the caller — the composition
    /// layer knows how many accepted batches have not reached a reduced
    /// generation yet. Successful serves record their end-to-end latency
    /// under the `svc.serve.latency_ns` histogram (volatile by the `_ns`
    /// convention).
    ///
    /// # Errors
    ///
    /// [`ServiceError::NoBatches`] before the first absorbed batch;
    /// [`ServiceError::Estimation`] when EM fails hard.
    pub fn serve(
        &mut self,
        req: &EstimateRequest,
        cfg: &Cfg,
        block_costs: &[u64],
        edge_costs: &[u64],
        staleness: u64,
    ) -> Result<EstimateResponse, ServiceError> {
        let started = std::time::Instant::now();
        if self.inc.batches() == 0 {
            return Err(ServiceError::NoBatches);
        }
        if self.cached_generation != Some(self.generation) {
            self.estimate(cfg, block_costs, edge_costs)?;
        }
        // Cached or just computed — either way it exists now.
        let r = self.inc.last().ok_or(ServiceError::NoBatches)?;
        let samples = DurationSamples::len(self.inc.stats());
        ct_obs::Counter::new("svc.serve").incr();
        ct_obs::hist_record(
            "svc.serve.latency_ns",
            u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
        );
        // Only schedule-independent facts in the event: the generation
        // number counts reduce rounds, which a polling coordinator makes
        // nondeterministic, so it stays out of the audit trail.
        ct_obs::emit(
            "svc.estimate",
            vec![
                ("batches", self.inc.batches().into()),
                ("samples", samples.into()),
                ("iterations", r.iterations.into()),
                ("converged", r.converged.into()),
                ("loglik", r.loglik.into()),
            ],
        );
        Ok(EstimateResponse {
            procedure: req.procedure.clone(),
            generation: self.generation,
            batches: self.inc.batches(),
            samples,
            probs: r.probs.as_slice().to_vec(),
            loglik: r.loglik,
            converged: r.converged,
            iterations: r.iterations,
            confidence: if r.converged { 1.0 } else { 0.5 },
            staleness,
        })
    }

    /// Snapshots the tier as a [`Checkpoint`]. `batch_iterations` is the
    /// caller's per-batch iteration trail (the fleet client records one
    /// entry per batch; the service's on-demand path passes an empty
    /// trail).
    pub fn checkpoint(&self, fingerprint: u64, batch_iterations: &[usize]) -> Checkpoint {
        Checkpoint {
            fingerprint,
            stats: self.inc.stats().clone(),
            // BTreeSet iterates ascending — the order the decoder requires.
            ledger: self.ledger.iter().copied().collect(),
            batch_iterations: batch_iterations.to_vec(),
            batches: self.inc.batches(),
            generations: self.generation,
            last: self.inc.last().map(CheckpointEstimate::from_em),
            // The warm start is always worth carrying; whether it doubles
            // as a cached response depends on it being current for this
            // very generation.
            cached: self.inc.last().is_some() && self.cached_generation == Some(self.generation),
        }
    }

    /// The cumulative statistics of every absorbed batch.
    pub fn stats(&self) -> &SuffStats {
        self.inc.stats()
    }

    /// The most recent estimate, if one was computed.
    pub fn last(&self) -> Option<&EmResult> {
        self.inc.last()
    }

    /// Distinct batches absorbed (restored + live).
    pub fn batches(&self) -> u64 {
        self.inc.batches()
    }

    /// Completed generations (restored + live).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The union dedup ledger at the last reduce boundary.
    pub fn ledger(&self) -> &BTreeSet<BatchTag> {
        &self.ledger
    }

    /// Convolution-cache hits across this process's re-estimations.
    pub fn cache_hits(&self) -> u64 {
        self.inc.cache_hits()
    }

    /// Convolution-cache misses across this process's re-estimations.
    pub fn cache_misses(&self) -> u64 {
        self.inc.cache_misses()
    }

    /// The tier's timer resolution.
    pub fn cycles_per_tick(&self) -> u64 {
        self.cycles_per_tick
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::Shard;

    fn delta_of(ticks: &[u64]) -> SuffStats {
        let mut s = SuffStats::new(1);
        ticks.iter().for_each(|&t| s.push(t));
        s
    }

    fn tag(mote: u64, seq: u64) -> BatchTag {
        BatchTag { mote, seq }
    }

    #[test]
    fn absorb_stamps_generations_only_for_fresh_rounds() {
        let mut tier = ReduceTier::new(1, EmOptions::default());
        let mut shard = Shard::new(0, 1);
        shard.ingest(tag(0, 0), &delta_of(&[115])).unwrap();
        assert_eq!(tier.absorb(vec![shard.harvest()]).unwrap(), 1);
        assert_eq!(tier.generation(), 1);
        assert_eq!(tier.batches(), 1);
        // An empty round is a no-op: no generation bump, no state change.
        assert_eq!(tier.absorb(vec![shard.harvest()]).unwrap(), 0);
        assert_eq!(tier.absorb(vec![]).unwrap(), 0);
        assert_eq!(tier.generation(), 1);
        assert_eq!(tier.ledger().len(), 1);
    }

    #[test]
    fn serve_before_any_batch_is_a_typed_error() {
        let cfg = ct_cfg::builder::diamond();
        let mut tier = ReduceTier::new(1, EmOptions::default());
        let req = EstimateRequest::latest("diamond");
        let err = tier
            .serve(&req, &cfg, &[10, 100, 200, 5], &[0; 4], 0)
            .unwrap_err();
        assert_eq!(err, ServiceError::NoBatches);
    }

    #[test]
    fn serve_caches_per_generation_and_replays_bitwise() {
        let cfg = ct_cfg::builder::diamond();
        let (bc, ec) = ([10u64, 100, 200, 5], [0u64; 4]);
        let mut tier = ReduceTier::new(1, EmOptions::default());
        let mut shard = Shard::new(0, 1);
        let ticks: Vec<u64> = (0..40)
            .map(|i| if i % 3 == 0 { 215 } else { 115 })
            .collect();
        shard.ingest(tag(0, 0), &delta_of(&ticks)).unwrap();
        tier.absorb(vec![shard.harvest()]).unwrap();

        let req = EstimateRequest::latest("diamond");
        let a = tier.serve(&req, &cfg, &bc, &ec, 0).unwrap();
        let b = tier.serve(&req, &cfg, &bc, &ec, 0).unwrap();
        assert_eq!(a, b, "same generation must replay the cached estimate");
        assert_eq!(a.generation, 1);
        assert_eq!(a.batches, 1);
        assert_eq!(a.samples, 40);
        assert!(a.converged && a.confidence == 1.0);

        // A new generation invalidates the cache and re-estimates.
        shard.ingest(tag(0, 1), &delta_of(&[115, 115])).unwrap();
        tier.absorb(vec![shard.harvest()]).unwrap();
        let c = tier.serve(&req, &cfg, &bc, &ec, 3).unwrap();
        assert_eq!(c.generation, 2);
        assert_eq!(c.batches, 2);
        assert_eq!(c.staleness, 3);
        assert_ne!(a.probs[0].to_bits(), c.probs[0].to_bits());
    }

    #[test]
    fn restored_tier_resumes_generation_and_cache_state() {
        let cfg = ct_cfg::builder::diamond();
        let (bc, ec) = ([10u64, 100, 200, 5], [0u64; 4]);
        let mut tier = ReduceTier::new(1, EmOptions::default());
        let mut shard = Shard::new(0, 1);
        shard
            .ingest(tag(0, 0), &delta_of(&[115, 215, 115]))
            .unwrap();
        tier.absorb(vec![shard.harvest()]).unwrap();
        let served = tier
            .serve(&EstimateRequest::latest("d"), &cfg, &bc, &ec, 0)
            .unwrap();

        let ck = tier.checkpoint(7, &[]);
        assert_eq!(ck.generations, 1);
        assert!(ck.cached, "serve cache was current at the snapshot");
        let mut back = ReduceTier::restore(
            1,
            EmOptions::default(),
            ck.stats.clone(),
            ck.last.as_ref().map(|e| e.to_em(&cfg).unwrap()),
            ck.batches,
            ck.generations,
            ck.ledger.iter().copied(),
            ck.cached,
        );
        assert_eq!(back.generation(), 1);
        assert_eq!(back.batches(), 1);
        let replay = back
            .serve(&EstimateRequest::latest("d"), &cfg, &bc, &ec, 0)
            .unwrap();
        assert_eq!(replay.probs[0].to_bits(), served.probs[0].to_bits());
        assert_eq!(
            replay.iterations, served.iterations,
            "cache restored: no EM re-run"
        );
    }

    #[test]
    fn snapshot_after_new_generations_does_not_replay_the_stale_cache() {
        // serve @ gen 1, absorb a second batch (gen 2), snapshot, restore:
        // the restored tier must re-estimate over both batches on its first
        // serve — not replay the gen-1 response as if it covered gen 2.
        let cfg = ct_cfg::builder::diamond();
        let (bc, ec) = ([10u64, 100, 200, 5], [0u64; 4]);
        let mut tier = ReduceTier::new(1, EmOptions::default());
        let mut shard = Shard::new(0, 1);
        shard
            .ingest(tag(0, 0), &delta_of(&[115, 215, 115]))
            .unwrap();
        tier.absorb(vec![shard.harvest()]).unwrap();
        let stale = tier
            .serve(&EstimateRequest::latest("d"), &cfg, &bc, &ec, 0)
            .unwrap();
        shard
            .ingest(tag(0, 1), &delta_of(&[215, 215, 215, 215]))
            .unwrap();
        tier.absorb(vec![shard.harvest()]).unwrap();

        let ck = tier.checkpoint(7, &[]);
        assert_eq!(ck.generations, 2);
        assert!(
            !ck.cached,
            "warm start predates the snapshot generation; it must not be marked cached"
        );
        let mut back = ReduceTier::restore(
            1,
            EmOptions::default(),
            ck.stats.clone(),
            ck.last.as_ref().map(|e| e.to_em(&cfg).unwrap()),
            ck.batches,
            ck.generations,
            ck.ledger.iter().copied(),
            ck.cached,
        );
        let fresh = back
            .serve(&EstimateRequest::latest("d"), &cfg, &bc, &ec, 0)
            .unwrap();
        assert_eq!(fresh.generation, 2);
        assert_eq!(fresh.batches, 2);
        assert_ne!(
            fresh.probs[0].to_bits(),
            stale.probs[0].to_bits(),
            "restored serve replayed the pre-snapshot response"
        );
        // And it matches what the uninterrupted tier serves for gen 2.
        let live = tier
            .serve(&EstimateRequest::latest("d"), &cfg, &bc, &ec, 0)
            .unwrap();
        assert_eq!(fresh.probs[0].to_bits(), live.probs[0].to_bits());
    }
}

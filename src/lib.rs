#![warn(missing_docs)]

//! # Code Tomography
//!
//! A from-scratch Rust reproduction of *"Estimation-based profiling for code
//! placement optimization in sensor network programs"* (Wan, Cao, Zhou —
//! ISPASS 2015): estimating a sensor procedure's Markov execution profile
//! from **end-to-end timing alone** — one timestamp at procedure entry and
//! exit, quantized by a cheap mote timer — and feeding the recovered edge
//! frequencies to profile-guided code placement.
//!
//! This facade re-exports every workspace crate under one roof:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`core`] | `ct-core` | the estimators (quantization-aware EM, moments, flow-NNLS, loop-unrolled EM) |
//! | [`ir`] | `ct-ir` | the NLC language front end + trip-count analysis |
//! | [`cfg`](mod@cfg) | `ct-cfg` | CFGs, dominators, loops, structure, layouts, unrolling |
//! | [`mote`] | `ct-mote` | the simulated sensor mote (CPU, timers, devices, OS, energy) |
//! | [`markov`] | `ct-markov` | absorbing-chain analysis and duration distributions |
//! | [`profilers`] | `ct-profilers` | baselines: edge counters, Ball–Larus, sampling |
//! | [`placement`] | `ct-placement` | Pettis–Hansen chaining and trace growing |
//! | [`faults`] | `ct-faults` | seeded measurement-channel fault models for robustness sweeps |
//! | [`apps`] | `ct-apps` | the benchmark sensor applications |
//! | [`pipeline`] | `ct-pipeline` | the end-to-end flow: typed stages, seeded sessions, mote fleets, streaming ingestion |
//! | [`service`] | `ct-service` | the sharded estimation service: bounded-queue ingest, tree reduction, request/response front door |
//! | [`stats`] | `ct-stats` | linear algebra and statistics substrate |
//!
//! See the repository README for the full tour, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for measured results. The `examples/`
//! directory has four runnable walkthroughs and `ctc` is the CLI.
//!
//! ## End-to-end example
//!
//! ```
//! use code_tomography::{core, ir, mote};
//! use mote::{cost::AvrCost, interp::Mote, timer::VirtualTimer, trace::TimingProfiler};
//!
//! // Compile a sensor program with one input-driven branch.
//! let program = ir::compile_source(r#"
//!     module Demo {
//!         var alarms: u32;
//!         proc check() {
//!             var v: u16 = read_adc();
//!             if (v > 700) {
//!                 alarms = alarms + 1;
//!                 var sent: bool = send_msg(v);
//!             } else { }
//!         }
//!     }
//! "#).unwrap();
//! let pid = program.proc_id("check").unwrap();
//!
//! // Run it on a simulated AVR-class mote, measuring only entry/exit
//! // timestamps on a 1 MHz timer.
//! let mut m = Mote::new(program.clone(), Box::new(AvrCost));
//! let timer = VirtualTimer::mhz1_at_8mhz();
//! let mut timing = TimingProfiler::new(&program, timer, 0);
//! for _ in 0..800 {
//!     m.call(pid, &[], &mut timing).unwrap();
//! }
//!
//! // Recover the branch probability from the tick samples alone.
//! let cfg = &program.procs[pid.index()].cfg;
//! let samples = core::TimingSamples::new(
//!     timing.samples(pid).to_vec(), timer.cycles_per_tick());
//! let est = core::estimate(
//!     cfg,
//!     m.static_block_costs(pid),
//!     m.static_edge_costs(pid),
//!     &samples,
//!     core::EstimateOptions::default(),
//! ).unwrap();
//! // The uniform 0..=1023 field crosses 700 with probability 323/1024 ≈ 0.32.
//! assert!((est.probs.as_slice()[0] - 323.0 / 1024.0).abs() < 0.05);
//! ```

pub use ct_apps as apps;
pub use ct_cfg as cfg;
pub use ct_core as core;
pub use ct_faults as faults;
pub use ct_ir as ir;
pub use ct_markov as markov;
pub use ct_mote as mote;
pub use ct_pipeline as pipeline;
pub use ct_placement as placement;
pub use ct_profilers as profilers;
pub use ct_service as service;
pub use ct_stats as stats;

//! The mote's hardware timer: a quantizing view of the cycle counter.
//!
//! Code Tomography's measurements come from cheap hardware timers — a 32.768
//! kHz crystal on TelosB-class motes — whose resolution is coarse relative to
//! the CPU clock. The estimator must recover branch probabilities *through*
//! this quantization; experiment E2 sweeps [`VirtualTimer::cycles_per_tick`].

use std::error::Error;
use std::fmt;

/// A timer configuration the hardware cannot realize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidResolution {
    /// The rejected cycles-per-tick value.
    pub cycles_per_tick: u64,
}

impl fmt::Display for InvalidResolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid timer resolution: {} cycles per tick (must be ≥ 1)",
            self.cycles_per_tick
        )
    }
}

impl Error for InvalidResolution {}

/// A deterministic quantizing timer: `ticks = floor(cycles / cycles_per_tick)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtualTimer {
    cycles_per_tick: u64,
}

impl VirtualTimer {
    /// Creates a timer with the given resolution.
    ///
    /// # Panics
    ///
    /// Panics if `cycles_per_tick == 0`. Code receiving resolutions from
    /// configuration or a measurement channel should use
    /// [`VirtualTimer::try_new`]; this constructor stays for tests and
    /// benches with literal resolutions.
    pub fn new(cycles_per_tick: u64) -> VirtualTimer {
        match VirtualTimer::try_new(cycles_per_tick) {
            Ok(t) => t,
            Err(_) => panic!("timer resolution must be at least one cycle"),
        }
    }

    /// Fallible constructor: creates a timer with the given resolution.
    ///
    /// # Errors
    ///
    /// [`InvalidResolution`] if `cycles_per_tick == 0`.
    pub fn try_new(cycles_per_tick: u64) -> Result<VirtualTimer, InvalidResolution> {
        if cycles_per_tick == 0 {
            return Err(InvalidResolution { cycles_per_tick });
        }
        Ok(VirtualTimer { cycles_per_tick })
    }

    /// A cycle-accurate timer (every cycle is a tick).
    pub fn cycle_accurate() -> VirtualTimer {
        VirtualTimer::new(1)
    }

    /// A 32.768 kHz crystal viewed from an 8 MHz core: ~244 cycles per tick.
    /// This is the TelosB/MicaZ-class configuration the paper's platform
    /// would use for low-power timestamps.
    pub fn khz32_at_8mhz() -> VirtualTimer {
        VirtualTimer::new(244)
    }

    /// A 1 MHz timer viewed from an 8 MHz core: 8 cycles per tick.
    pub fn mhz1_at_8mhz() -> VirtualTimer {
        VirtualTimer::new(8)
    }

    /// The resolution in cycles per tick.
    pub fn cycles_per_tick(&self) -> u64 {
        self.cycles_per_tick
    }

    /// The timer reading after `cycles` CPU cycles.
    pub fn ticks(&self, cycles: u64) -> u64 {
        cycles / self.cycles_per_tick
    }
}

impl Default for VirtualTimer {
    fn default() -> Self {
        VirtualTimer::cycle_accurate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_accurate_is_identity() {
        let t = VirtualTimer::cycle_accurate();
        assert_eq!(t.ticks(0), 0);
        assert_eq!(t.ticks(12345), 12345);
    }

    #[test]
    fn quantization_floors() {
        let t = VirtualTimer::new(100);
        assert_eq!(t.ticks(99), 0);
        assert_eq!(t.ticks(100), 1);
        assert_eq!(t.ticks(250), 2);
    }

    #[test]
    fn presets() {
        assert_eq!(VirtualTimer::khz32_at_8mhz().cycles_per_tick(), 244);
        assert_eq!(VirtualTimer::mhz1_at_8mhz().cycles_per_tick(), 8);
        assert_eq!(VirtualTimer::default(), VirtualTimer::cycle_accurate());
    }

    #[test]
    fn ticks_are_monotone() {
        let t = VirtualTimer::new(7);
        let mut last = 0;
        for c in 0..1000 {
            let now = t.ticks(c);
            assert!(now >= last);
            last = now;
        }
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_resolution_panics() {
        VirtualTimer::new(0);
    }

    #[test]
    fn try_new_rejects_zero_resolution() {
        let err = VirtualTimer::try_new(0).unwrap_err();
        assert_eq!(err.cycles_per_tick, 0);
        assert!(err.to_string().contains("invalid timer resolution"));
        assert_eq!(
            VirtualTimer::try_new(244),
            Ok(VirtualTimer::khz32_at_8mhz())
        );
    }
}

//! E11 — Robustness to cost-model error (Table; extension experiment).
//!
//! Code Tomography assumes the per-block cycle costs are *known*. Real
//! toolchains mis-model costs slightly (datasheet vs silicon, wait states).
//! This experiment feeds the estimator block costs perturbed by ±δ% while the
//! mote executes with true costs, at two timer resolutions. The expectation
//! worth testing: at cycle-accurate resolution even small errors push the
//! observed durations off the model's support, while a coarser tick's
//! quantization kernel absorbs them — quantization buys robustness.

use ct_bench::{f4, write_result, AppRun, Table};
use ct_core::accuracy::compare;
use ct_core::estimator::{Estimate, EstimateOptions, Method};
use ct_core::unrolled::estimate_unrolled;
use ct_pipeline::{EnvConfig, RunConfig, Session};

/// Re-estimates a run with perturbed block costs.
fn estimate_with_model_error(run: &AppRun, delta: f64) -> Option<(Estimate, f64)> {
    let bc: Vec<u64> = run
        .block_costs
        .iter()
        .map(|&c| (((c as f64) * (1.0 + delta)).round() as u64).max(1))
        .collect();
    let est = if run.counted_loops.is_empty() {
        ct_core::estimate(
            run.cfg(),
            &bc,
            &run.edge_costs,
            &run.samples,
            EstimateOptions::default(),
        )
        .ok()?
    } else {
        let u = estimate_unrolled(
            run.cfg(),
            &run.counted_loops,
            &bc,
            &run.edge_costs,
            &run.samples,
            Default::default(),
        )
        .ok()?;
        Estimate {
            probs: u.probs,
            method: Method::EmUnrolled,
            iterations: u.iterations,
            converged: true,
            final_delta: 0.0,
            loglik: Some(u.loglik),
            unexplained: u.unexplained,
        }
    };
    let acc = compare(
        run.cfg(),
        &est.probs,
        &run.truth,
        &run.truth_profile,
        run.invocations,
    );
    Some((est, acc.weighted_mae))
}

fn main() {
    let env = EnvConfig::load();
    eprintln!("e11: {}", env.banner());
    let n = env.pick(3_000, 300);
    let seed = env.seed_or(11_000);
    let deltas = [-0.10, -0.05, -0.01, 0.0, 0.01, 0.05, 0.10];
    let apps: &[&str] = env.pick(&["sense", "oscilloscope", "crc"], &["sense"]);
    let resolutions: &[u64] = env.pick(&[1u64, 8, 64], &[1, 8]);
    let mut table = Table::new(vec![
        "app", "cpt", "δ=-10%", "δ=-5%", "δ=-1%", "δ=0", "δ=+1%", "δ=+5%", "δ=+10%",
    ]);

    let collect = |name: &str, cpt: u64| {
        let session = Session::new(
            RunConfig::new(name)
                .invocations(n)
                .resolution(cpt)
                .seeded(seed),
        );
        let run = session.collect().expect("bundled apps must not trap");
        (session, run)
    };

    for name in apps {
        for &cpt in resolutions {
            let (session, run) = collect(name, cpt);
            let mut cells = vec![name.to_string(), cpt.to_string()];
            for &d in &deltas {
                let wmae = if d == 0.0 {
                    session
                        .estimate(&run)
                        .expect("estimation succeeds")
                        .accuracy
                        .weighted_mae
                } else {
                    match estimate_with_model_error(&run, d) {
                        Some((_, w)) => w,
                        None => f64::NAN,
                    }
                };
                cells.push(f4(wmae));
            }
            table.row(cells);
            eprintln!("e11: {name} cpt={cpt} done");
        }
    }

    // Also report unexplained fraction at δ=+5% to show the rejection
    // mechanism (appendix table).
    let mut rej = Table::new(vec!["app", "cpt", "unexplained @ δ=+5%"]);
    for name in apps {
        for &cpt in resolutions {
            let (_session, run) = collect(name, cpt);
            let cell = match estimate_with_model_error(&run, 0.05) {
                Some((e, _)) => format!("{}/{}", e.unexplained, run.samples.len()),
                None => "-".into(),
            };
            rej.row(vec![name.to_string(), cpt.to_string(), cell]);
        }
    }

    let out = format!(
        "# E11 — Estimation accuracy (weighted MAE) under block-cost model error\n\n\
         {n} samples; the estimator's block costs are scaled by (1+δ) while the mote\n\
         runs true costs. Coarser ticks absorb small model errors inside the\n\
         quantization kernel; cycle-accurate estimation rejects off-support samples.\n\
         {}\n\n{}\n\
         ## Rejected samples at δ=+5%\n\n{}",
        env.banner(),
        table.to_markdown(),
        rej.to_markdown()
    );
    println!("{out}");
    if !env.smoke {
        write_result("e11_model_error.md", &out);
    }
}

//! Hand-written lexer for NLC source.

use crate::error::IrError;
use crate::token::{Span, Tok, Token};

/// Tokenizes `src`, appending a final [`Tok::Eof`] token.
///
/// # Errors
///
/// Returns [`IrError::Lex`] on unknown characters, malformed numbers, or
/// unterminated block comments.
///
/// # Examples
///
/// ```
/// use ct_ir::lexer::tokenize;
/// use ct_ir::token::Tok;
/// let toks = tokenize("var x: u16 = 0x10;").unwrap();
/// assert_eq!(toks[0].tok, Tok::Var);
/// assert!(matches!(toks[5].tok, Tok::Int(16)));
/// ```
pub fn tokenize(src: &str) -> Result<Vec<Token>, IrError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn here(&self) -> Span {
        Span {
            start: self.pos,
            end: self.pos,
            line: self.line,
            col: self.col,
        }
    }

    fn err(&self, msg: impl Into<String>) -> IrError {
        IrError::Lex {
            message: msg.into(),
            span: self.here(),
        }
    }

    fn run(mut self) -> Result<Vec<Token>, IrError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let span_start = self.here();
            let Some(c) = self.peek() else {
                out.push(Token {
                    tok: Tok::Eof,
                    span: span_start,
                });
                return Ok(out);
            };
            let tok = match c {
                b'0'..=b'9' => self.number()?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident_or_keyword(),
                _ => self.punct()?,
            };
            let mut span = span_start;
            span.end = self.pos;
            out.push(Token { tok, span });
        }
    }

    fn skip_trivia(&mut self) -> Result<(), IrError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let open = self.here();
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(IrError::Lex {
                                    message: "unterminated block comment".into(),
                                    span: open,
                                });
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn number(&mut self) -> Result<Tok, IrError> {
        let start = self.pos;
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            self.bump();
            self.bump();
            let hex_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_hexdigit()) {
                self.bump();
            }
            if self.pos == hex_start {
                return Err(self.err("expected hexadecimal digits after `0x`"));
            }
            // The scanned span is all ASCII hex digits, so the lossy
            // conversion is lossless; it just cannot panic.
            let text = String::from_utf8_lossy(&self.src[hex_start..self.pos]);
            let v = i64::from_str_radix(&text, 16)
                .map_err(|_| self.err("hexadecimal literal out of range"))?;
            return Ok(Tok::Int(v));
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        // Reject identifiers glued to numbers, e.g. `12abc`.
        if matches!(self.peek(), Some(c) if c.is_ascii_alphabetic() || c == b'_') {
            return Err(self.err("malformed numeric literal"));
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]);
        let v: i64 = text
            .parse()
            .map_err(|_| self.err("decimal literal out of range"))?;
        Ok(Tok::Int(v))
    }

    fn ident_or_keyword(&mut self) -> Tok {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]);
        match text.as_ref() {
            "module" => Tok::Module,
            "var" => Tok::Var,
            "proc" => Tok::Proc,
            "if" => Tok::If,
            "else" => Tok::Else,
            "while" => Tok::While,
            "return" => Tok::Return,
            "true" => Tok::True,
            "false" => Tok::False,
            _ => Tok::Ident(text.to_string()),
        }
    }

    fn punct(&mut self) -> Result<Tok, IrError> {
        let Some(c) = self.bump() else {
            return Err(self.err("unexpected end of input"));
        };
        let two = |lexer: &mut Self, tok| {
            lexer.bump();
            tok
        };
        Ok(match c {
            b'(' => Tok::LParen,
            b')' => Tok::RParen,
            b'{' => Tok::LBrace,
            b'}' => Tok::RBrace,
            b'[' => Tok::LBracket,
            b']' => Tok::RBracket,
            b',' => Tok::Comma,
            b';' => Tok::Semi,
            b':' => Tok::Colon,
            b'+' => Tok::Plus,
            b'*' => Tok::Star,
            b'/' => Tok::Slash,
            b'%' => Tok::Percent,
            b'^' => Tok::Caret,
            b'~' => Tok::Tilde,
            b'-' => {
                if self.peek() == Some(b'>') {
                    two(self, Tok::Arrow)
                } else {
                    Tok::Minus
                }
            }
            b'=' => {
                if self.peek() == Some(b'=') {
                    two(self, Tok::EqEq)
                } else {
                    Tok::Assign
                }
            }
            b'!' => {
                if self.peek() == Some(b'=') {
                    two(self, Tok::NotEq)
                } else {
                    Tok::Bang
                }
            }
            b'<' => match self.peek() {
                Some(b'=') => two(self, Tok::Le),
                Some(b'<') => two(self, Tok::Shl),
                _ => Tok::Lt,
            },
            b'>' => match self.peek() {
                Some(b'=') => two(self, Tok::Ge),
                Some(b'>') => two(self, Tok::Shr),
                _ => Tok::Gt,
            },
            b'&' => {
                if self.peek() == Some(b'&') {
                    two(self, Tok::AndAnd)
                } else {
                    Tok::Amp
                }
            }
            b'|' => {
                if self.peek() == Some(b'|') {
                    two(self, Tok::OrOr)
                } else {
                    Tok::Pipe
                }
            }
            other => {
                return Err(self.err(format!("unexpected character `{}`", other as char)));
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_identifiers() {
        assert_eq!(
            toks("module proc if else while return var foo"),
            vec![
                Tok::Module,
                Tok::Proc,
                Tok::If,
                Tok::Else,
                Tok::While,
                Tok::Return,
                Tok::Var,
                Tok::Ident("foo".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers_decimal_and_hex() {
        assert_eq!(
            toks("42 0x2A 0"),
            vec![Tok::Int(42), Tok::Int(42), Tok::Int(0), Tok::Eof]
        );
    }

    #[test]
    fn compound_operators() {
        assert_eq!(
            toks("-> == != <= >= << >> && || = < >"),
            vec![
                Tok::Arrow,
                Tok::EqEq,
                Tok::NotEq,
                Tok::Le,
                Tok::Ge,
                Tok::Shl,
                Tok::Shr,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Assign,
                Tok::Lt,
                Tok::Gt,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let t = toks("a // line comment\n b /* block\n comment */ c");
        assert_eq!(
            t,
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(matches!(tokenize("/* oops"), Err(IrError::Lex { .. })));
    }

    #[test]
    fn malformed_number_errors() {
        assert!(matches!(tokenize("12abc"), Err(IrError::Lex { .. })));
        assert!(matches!(tokenize("0x"), Err(IrError::Lex { .. })));
    }

    #[test]
    fn unknown_character_errors() {
        assert!(matches!(tokenize("a $ b"), Err(IrError::Lex { .. })));
    }

    #[test]
    fn spans_track_lines() {
        let tokens = tokenize("a\n  b").unwrap();
        assert_eq!(tokens[0].span.line, 1);
        assert_eq!(tokens[1].span.line, 2);
        assert_eq!(tokens[1].span.col, 3);
    }

    #[test]
    fn minus_vs_arrow() {
        assert_eq!(
            toks("a - b -> c"),
            vec![
                Tok::Ident("a".into()),
                Tok::Minus,
                Tok::Ident("b".into()),
                Tok::Arrow,
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }
}

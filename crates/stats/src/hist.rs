//! Fixed-width histograms over `f64` samples.
//!
//! Used to inspect end-to-end duration distributions and to feed the
//! mixture-deconvolution diagnostics in `ct-core`.

use std::fmt;

/// A histogram with uniform bin width over `[lo, hi)`.
///
/// Samples below `lo` or at/above `hi` are counted in underflow/overflow
/// buckets rather than dropped, so total mass is conserved.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi` or either bound is not finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite(),
            "histogram bounds must be finite"
        );
        assert!(lo < hi, "histogram bounds must satisfy lo < hi");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Creates a histogram sized to the data range of `xs` with `bins` bins,
    /// then records every sample.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or `bins == 0`.
    pub fn from_samples(xs: &[f64], bins: usize) -> Self {
        assert!(
            !xs.is_empty(),
            "cannot infer histogram range from empty sample"
        );
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &x in xs {
            lo = lo.min(x);
            hi = hi.max(x);
        }
        if lo == hi {
            // Degenerate range: widen so the single value lands in-bin.
            hi = lo + 1.0;
        }
        // Nudge hi so the max sample falls inside the half-open range.
        let width = (hi - lo) / bins as f64;
        let mut h = Histogram::new(lo, hi + width * 1e-9, bins);
        for &x in xs {
            h.record(x);
        }
        h
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// The `[lo, hi)` interval of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "bin index out of range");
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + width * i as f64, self.lo + width * (i + 1) as f64)
    }

    /// Total recorded samples, including under/overflow.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Normalized bin masses (fractions of the total, ignoring under/overflow
    /// in the numerator but not the denominator). Empty histogram yields all
    /// zeros.
    pub fn densities(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Index of the fullest bin, or `None` if no in-range samples.
    pub fn mode_bin(&self) -> Option<usize> {
        let (idx, &cnt) = self.counts.iter().enumerate().max_by_key(|(_, &c)| c)?;
        if cnt == 0 {
            None
        } else {
            Some(idx)
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        for i in 0..self.counts.len() {
            let (lo, hi) = self.bin_range(i);
            let bar_len = (self.counts[i] * 40 / max) as usize;
            writeln!(
                f,
                "[{lo:10.1}, {hi:10.1})  {:>8}  {}",
                self.counts[i],
                "#".repeat(bar_len)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_places_samples_in_right_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.5);
        h.record(9.5);
        h.record(5.0);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(9), 1);
        assert_eq!(h.count(5), 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn under_and_overflow_are_counted() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(-1.0);
        h.record(2.0);
        h.record(1.0); // hi is exclusive
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn from_samples_covers_all_points() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let h = Histogram::from_samples(&xs, 4);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.total(), 5);
        let in_bins: u64 = (0..h.bins()).map(|i| h.count(i)).sum();
        assert_eq!(in_bins, 5);
    }

    #[test]
    fn from_samples_degenerate_range() {
        let h = Histogram::from_samples(&[7.0, 7.0, 7.0], 3);
        assert_eq!(h.total(), 3);
        assert_eq!(h.overflow() + h.underflow(), 0);
    }

    #[test]
    fn densities_sum_to_in_range_fraction() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for i in 0..10 {
            h.record(i as f64);
        }
        let sum: f64 = h.densities().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mode_bin_finds_fullest() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        h.record(1.5);
        h.record(1.6);
        h.record(0.5);
        assert_eq!(h.mode_bin(), Some(1));
    }

    #[test]
    fn mode_bin_empty_is_none() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert_eq!(h.mode_bin(), None);
    }

    #[test]
    fn bin_range_partitions_interval() {
        let h = Histogram::new(0.0, 10.0, 4);
        assert_eq!(h.bin_range(0), (0.0, 2.5));
        assert_eq!(h.bin_range(3), (7.5, 10.0));
    }

    #[test]
    fn display_renders_without_panic() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.record(0.5);
        let s = h.to_string();
        assert!(s.contains('#'));
    }
}

//! E8 — Estimation cost vs program size (Figure).
//!
//! Claim evaluated: the estimator scales to realistic procedure sizes, and
//! the automatic EM→moments fallback engages where the time-expanded support
//! explodes (deep diamond chains widen the duration support exponentially).

use ct_apps::synthetic::{diamond_chain_problem, random_program, GenConfig};
use ct_bench::{f4, par_sweep, write_result, Table};
use ct_core::estimator::{estimate, EstimateOptions};
use ct_mote::interp::Mote;
use ct_pipeline::synth::synth_samples;
use ct_pipeline::{EnvConfig, RunConfig, Session};
use std::time::Instant;

/// Generated programs read the field through a uniform ADC so every
/// decision sees the full input range.
fn uniform_adc(mote: &mut Mote) {
    mote.devices.adc = Box::new(ct_mote::devices::UniformAdc { lo: 0, hi: 1023 });
}

fn main() {
    let env = EnvConfig::load();
    eprintln!("e8: {}", env.banner());
    let n = env.pick(2_000, 300);
    let seed = env.seed_or(42);
    let sizes: Vec<usize> = env
        .pick(&[2usize, 4, 6, 8, 10, 12][..], &[2, 4][..])
        .to_vec();
    let mut table = Table::new(vec![
        "problem",
        "blocks",
        "branches",
        "static paths",
        "method",
        "wmae",
        "time ms",
    ]);

    // Part 1: generated structured programs of growing decision count,
    // executed on the mote (real ground truth, real timing samples).
    // Each cell is self-contained (own program, mote, seed) — fan them out.
    let part1 = par_sweep(sizes.clone(), |decisions| {
        let program = random_program(
            8_000 + decisions as u64,
            GenConfig {
                decisions,
                max_depth: 3,
                loop_share: 0.25,
            },
        );
        let session = Session::new(
            RunConfig::for_program(program, 0, uniform_adc)
                .invocations(n)
                .seeded(seed)
                .no_unroll(),
        );
        let run = session.collect().expect("generated programs run");
        let start = Instant::now();
        let est = session.estimate(&run).expect("estimation succeeds");
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        let cfg = run.cfg();
        let paths = if cfg.is_acyclic() {
            ct_cfg::paths::count_paths(cfg).to_string()
        } else {
            "∞ (loops)".into()
        };
        eprintln!("e8: generated_d{decisions} done");
        vec![
            format!("generated_d{decisions}"),
            cfg.len().to_string(),
            run.truth.len().to_string(),
            paths,
            est.estimate.method.to_string(),
            f4(est.accuracy.weighted_mae),
            format!("{elapsed:.2}"),
        ]
    });
    for row in part1 {
        table.row(row);
    }

    // Part 2: diamond chains of growing width with synthetic exact samples —
    // shows the EM→moments fallback point.
    let part2 = par_sweep(sizes, |k| {
        let (cfg, bc, ec, truth) = diamond_chain_problem(k, 900 + k as u64);
        let samples = synth_samples(&cfg, &bc, &ec, &truth, n, 9_000);

        let start = Instant::now();
        let est = estimate(&cfg, &bc, &ec, &samples, EstimateOptions::default())
            .expect("estimation succeeds");
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        let acc = ct_core::accuracy::compare_unweighted(&est.probs, &truth);
        eprintln!("e8: diamond_chain_{k} done");
        vec![
            format!("diamond_chain_{k}"),
            cfg.len().to_string(),
            k.to_string(),
            (1u64 << k).to_string(),
            est.method.to_string(),
            f4(acc.mae),
            format!("{elapsed:.2}"),
        ]
    });
    for row in part2 {
        table.row(row);
    }

    let out = format!(
        "# E8 — Estimation cost and accuracy vs program size\n\n\
         {n} samples per problem; cycle-accurate timer. Generated programs run on the\n\
         mote; diamond chains use exact synthetic samples. `method` shows where the\n\
         automatic EM→moments fallback engages.\n\
         {}\n\n{}",
        env.banner(),
        table.to_markdown()
    );
    println!("{out}");
    if !env.smoke {
        write_result("e8_scalability.md", &out);
    }
}

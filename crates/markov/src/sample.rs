//! Monte-Carlo simulation of chains: state trajectories and durations.

use crate::chain::Dtmc;
use ct_stats::dist::Categorical;
use rand::Rng;

/// Simulates one trajectory from `start` until absorption, including the
/// absorbing state. Returns `None` when `max_steps` is exceeded (a runaway
/// loop under the given parameters).
///
/// # Panics
///
/// Panics if `start` is out of range.
pub fn sample_run<R: Rng + ?Sized>(
    chain: &Dtmc,
    start: usize,
    rng: &mut R,
    max_steps: usize,
) -> Option<Vec<usize>> {
    assert!(start < chain.len(), "start state out of range");
    let n = chain.len();
    // Precompute per-state categorical distributions once per call.
    let dists: Vec<Option<Categorical>> = (0..n)
        .map(|i| {
            if chain.is_absorbing_state(i) {
                None
            } else {
                let row: Vec<f64> = (0..n).map(|j| chain.prob(i, j)).collect();
                Categorical::new(&row)
            }
        })
        .collect();

    let mut trajectory = vec![start];
    let mut cur = start;
    for _ in 0..max_steps {
        if chain.is_absorbing_state(cur) {
            return Some(trajectory);
        }
        // A transient state always carries outgoing mass in a validated
        // chain; treat a degenerate row as a failed run, not a panic.
        let dist = dists[cur].as_ref()?;
        cur = dist.sample(rng);
        trajectory.push(cur);
    }
    if chain.is_absorbing_state(cur) {
        Some(trajectory)
    } else {
        None
    }
}

/// Simulates the total integer reward accumulated until absorption.
///
/// Returns `None` when `max_steps` is exceeded.
///
/// # Panics
///
/// Panics if `costs.len()` differs from the state count.
pub fn sample_duration<R: Rng + ?Sized>(
    chain: &Dtmc,
    costs: &[u64],
    start: usize,
    rng: &mut R,
    max_steps: usize,
) -> Option<u64> {
    assert_eq!(costs.len(), chain.len(), "one cost per state required");
    let run = sample_run(chain, start, rng, max_steps)?;
    Some(run.iter().map(|&s| costs[s]).sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_stats::matrix::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn branch_chain() -> Dtmc {
        let p = Matrix::from_rows(&[
            &[0.0, 0.7, 0.3, 0.0],
            &[0.0, 0.0, 0.0, 1.0],
            &[0.0, 0.0, 0.0, 1.0],
            &[0.0, 0.0, 0.0, 1.0],
        ]);
        Dtmc::new(p).unwrap()
    }

    #[test]
    fn runs_end_in_absorbing_state() {
        let chain = branch_chain();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let run = sample_run(&chain, 0, &mut rng, 100).unwrap();
            assert_eq!(*run.last().unwrap(), 3);
            assert_eq!(run[0], 0);
            assert_eq!(run.len(), 3);
        }
    }

    #[test]
    fn empirical_branch_frequency_matches() {
        let chain = branch_chain();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mut left = 0;
        for _ in 0..n {
            let run = sample_run(&chain, 0, &mut rng, 100).unwrap();
            if run[1] == 1 {
                left += 1;
            }
        }
        let f = left as f64 / n as f64;
        assert!((f - 0.7).abs() < 0.02, "{f}");
    }

    #[test]
    fn durations_are_path_sums() {
        let chain = branch_chain();
        let mut rng = StdRng::seed_from_u64(3);
        let costs = [5, 10, 20, 1];
        for _ in 0..50 {
            let d = sample_duration(&chain, &costs, 0, &mut rng, 100).unwrap();
            assert!(d == 16 || d == 26, "{d}");
        }
    }

    #[test]
    fn runaway_loops_return_none() {
        let p = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        // Row 0 self-loops with probability 1 but is classified absorbing;
        // build a genuine runaway instead: two-state cycle.
        let p2 = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 0.0], &[0.0, 0.0, 1.0]]);
        let _ = p;
        let chain = Dtmc::new(p2).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(sample_run(&chain, 0, &mut rng, 100), None);
    }

    #[test]
    fn starting_absorbed_is_trivial_run() {
        let chain = branch_chain();
        let mut rng = StdRng::seed_from_u64(5);
        let run = sample_run(&chain, 3, &mut rng, 10).unwrap();
        assert_eq!(run, vec![3]);
    }

    #[test]
    fn sample_mean_duration_matches_moments() {
        use crate::passage::duration_moments;
        let chain = branch_chain();
        let costs = [5u64, 10, 20, 1];
        let rewards: Vec<f64> = costs.iter().map(|&c| c as f64).collect();
        let m = duration_moments(&chain, &rewards, 0).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let n = 20_000;
        let total: u64 = (0..n)
            .map(|_| sample_duration(&chain, &costs, 0, &mut rng, 100).unwrap())
            .sum();
        let mean = total as f64 / n as f64;
        assert!((mean - m.mean).abs() < 0.1, "{mean} vs {}", m.mean);
    }
}

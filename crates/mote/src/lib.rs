#![warn(missing_docs)]

//! # ct-mote
//!
//! A simulated resource-constrained sensor mote: the execution substrate the
//! paper measured on (TelosB/MicaZ class), rebuilt in software.
//!
//! - [`cost`] — MCU instruction-timing models (AVR- and MSP430-class) and the
//!   static block/edge cycle costs the estimators consume.
//! - [`timer`] — the quantizing hardware timer (32.768 kHz crystal and
//!   friends) that end-to-end measurements read.
//! - [`devices`] — ADC input sources (the nondeterminism driving branches),
//!   radio and LEDs.
//! - [`memory`] — mote RAM for module variables.
//! - [`interp`] — the cycle-accounting CPU. Its core invariant: with
//!   cycle-accurate timing and zero instrumentation overhead, a procedure's
//!   measured window equals `Σ block costs + Σ edge costs` of the executed
//!   path exactly.
//! - [`trace`] — profiling hooks: omniscient ground truth and Code
//!   Tomography's entry/exit timestamp layer (with overhead accounting).
//! - [`pmu`] — the virtual performance-monitoring unit: zero-overhead
//!   branch/jump/call counters and per-procedure cycle attribution, the
//!   measured side of every predicted-vs-measured comparison.
//! - [`sched`] — the TinyOS-style event-driven OS (timers, packet arrivals,
//!   run-to-completion handlers).
//! - [`harness`] — one-call measurement runs producing ground truth, timing
//!   samples and cycle cost together.
//!
//! ## Example
//!
//! ```
//! use ct_mote::cost::AvrCost;
//! use ct_mote::devices::UniformAdc;
//! use ct_mote::harness::profile_invocations;
//! use ct_mote::interp::Mote;
//! use ct_mote::timer::VirtualTimer;
//! use ct_ir::instr::ProcId;
//!
//! let program = ct_ir::compile_source(r#"
//!     module Sense {
//!         var threshold: u16 = 512;
//!         var alarms: u16;
//!         proc check() {
//!             var v: u16 = read_adc();
//!             if (v > threshold) { alarms = alarms + 1; } else { }
//!         }
//!     }
//! "#).unwrap();
//! let mut mote = Mote::new(program, Box::new(AvrCost));
//! mote.devices.adc = Box::new(UniformAdc { lo: 0, hi: 1023 });
//! let run = profile_invocations(
//!     &mut mote, ProcId(0), 200, VirtualTimer::khz32_at_8mhz(), 0, |_| vec![],
//! ).unwrap();
//! assert_eq!(run.samples[0].len(), 200);
//! ```

pub mod cost;
pub mod devices;
pub mod energy;
pub mod harness;
pub mod interp;
pub mod memory;
pub mod pmu;
pub mod sched;
pub mod timer;
pub mod trace;

pub use cost::{block_costs, edge_costs, AvrCost, CostModel, Msp430Cost};
pub use energy::EnergyModel;
pub use harness::{profile_events, profile_invocations, ProfiledRun};
pub use interp::{ExecConfig, Mote, TrapError, TrapKind};
pub use pmu::{Pmu, PmuCounters, PmuSnapshot};
pub use sched::{RxProcess, Scheduler, TimerBinding};
pub use timer::VirtualTimer;
pub use trace::{GroundTruthProfiler, NullProfiler, PairProfiler, Profiler, TimingProfiler};

//! Full edge-counter instrumentation: the conventional exact profiler Code
//! Tomography is positioned against.
//!
//! Every CFG edge gets a RAM counter and an inline increment. On a mote this
//! is exact but expensive: cycles on every transfer, 2 bytes of scarce RAM
//! per edge, and flash for every increment site. The overhead model here is
//! what experiment E3 charges.

use ct_cfg::graph::BlockId;
use ct_cfg::profile::EdgeProfile;
use ct_ir::instr::ProcId;
use ct_ir::program::Program;
use ct_mote::trace::Profiler;

/// Cycles of one inline counter increment (load, add-with-carry, store on an
/// 8-bit MCU with 16-bit counters).
pub const EDGE_INCREMENT_CYCLES: u64 = 8;

/// RAM bytes per edge counter.
pub const EDGE_COUNTER_RAM_BYTES: u32 = 2;

/// Flash bytes per increment site.
pub const EDGE_SITE_FLASH_BYTES: u32 = 10;

/// Exact edge profiling with per-event overhead charged to the mote.
#[derive(Debug, Clone)]
pub struct EdgeCounterProfiler {
    profiles: Vec<EdgeProfile>,
    invocations: Vec<u64>,
}

impl EdgeCounterProfiler {
    /// Shapes counters for every procedure of `program`.
    pub fn new(program: &Program) -> EdgeCounterProfiler {
        EdgeCounterProfiler {
            profiles: program
                .procs
                .iter()
                .map(|p| EdgeProfile::zeroed(&p.cfg))
                .collect(),
            invocations: vec![0; program.procs.len()],
        }
    }

    /// The collected edge profile of `proc`.
    pub fn profile(&self, proc: ProcId) -> &EdgeProfile {
        &self.profiles[proc.index()]
    }

    /// Activations of `proc`.
    pub fn invocations(&self, proc: ProcId) -> u64 {
        self.invocations[proc.index()]
    }

    /// Static RAM cost of instrumenting `program`.
    pub fn ram_bytes(program: &Program) -> u32 {
        program
            .procs
            .iter()
            .map(|p| p.cfg.edges().len() as u32 * EDGE_COUNTER_RAM_BYTES)
            .sum()
    }

    /// Static flash cost of instrumenting `program`.
    pub fn flash_bytes(program: &Program) -> u32 {
        program
            .procs
            .iter()
            .map(|p| p.cfg.edges().len() as u32 * EDGE_SITE_FLASH_BYTES)
            .sum()
    }
}

impl Profiler for EdgeCounterProfiler {
    fn on_proc_enter(&mut self, proc: ProcId, _cycles: u64) -> u64 {
        self.invocations[proc.index()] += 1;
        0
    }

    fn on_edge(&mut self, proc: ProcId, edge_index: usize) -> u64 {
        self.profiles[proc.index()].bump(edge_index);
        EDGE_INCREMENT_CYCLES
    }

    fn on_block(&mut self, _proc: ProcId, _block: BlockId, _cycles: u64) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_mote::cost::AvrCost;
    use ct_mote::interp::Mote;

    const SRC: &str = "module M { var a: u16; proc f(x: u16) {
        if (x > 10) { a = a + 1; } else { a = a + 2; }
    } }";

    #[test]
    fn counts_match_ground_truth() {
        let program = ct_ir::compile_source(SRC).unwrap();
        let mut mote = Mote::new(program.clone(), Box::new(AvrCost));
        let mut ec = EdgeCounterProfiler::new(&program);
        for x in 0..20 {
            mote.call(ProcId(0), &[x], &mut ec).unwrap();
        }
        // x in 11..=19 → true arm 9 times; 0..=10 → false arm 11 times.
        let cfg = &program.procs[0].cfg;
        let probs = ec.profile(ProcId(0)).branch_probs(cfg);
        assert!((probs.as_slice()[0] - 0.45).abs() < 1e-9);
        assert_eq!(ec.invocations(ProcId(0)), 20);
    }

    #[test]
    fn overhead_is_charged_per_edge() {
        let program = ct_ir::compile_source(SRC).unwrap();
        let mut base_mote = Mote::new(program.clone(), Box::new(AvrCost));
        base_mote
            .call(ProcId(0), &[20], &mut ct_mote::trace::NullProfiler)
            .unwrap();
        let base = base_mote.cycles;

        let mut mote = Mote::new(program.clone(), Box::new(AvrCost));
        let mut ec = EdgeCounterProfiler::new(&program);
        mote.call(ProcId(0), &[20], &mut ec).unwrap();
        // The taken path traverses 2 edges (cond→then, then→join).
        assert_eq!(mote.cycles, base + 2 * EDGE_INCREMENT_CYCLES);
    }

    #[test]
    fn static_costs_scale_with_edges() {
        let program = ct_ir::compile_source(SRC).unwrap();
        let edges = program.procs[0].cfg.edges().len() as u32;
        assert_eq!(EdgeCounterProfiler::ram_bytes(&program), edges * 2);
        assert_eq!(EdgeCounterProfiler::flash_bytes(&program), edges * 10);
    }
}

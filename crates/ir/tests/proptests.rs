//! Property-based tests of the NLC front end: pretty-print/reparse
//! stability, lowering invariants, and lexer robustness.

use ct_ir::lexer::tokenize;
use ct_ir::parser::parse_module;
use proptest::prelude::*;

/// Generates a random well-formed NLC expression string.
fn expr_strategy() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        (0u32..10_000).prop_map(|v| v.to_string()),
        Just("x".to_string()),
        Just("y".to_string()),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        (
            inner.clone(),
            prop_oneof![Just("+"), Just("*"), Just("-"), Just("&"), Just("^")],
            inner,
        )
            .prop_map(|(a, op, b)| format!("({a} {op} {b})"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The lexer never panics on arbitrary input (it may error).
    #[test]
    fn lexer_total(input in "\\PC{0,120}") {
        let _ = tokenize(&input);
    }

    /// The parser never panics on arbitrary token-ish input.
    #[test]
    fn parser_total(input in "[a-z0-9{}();=<>+*,:&|! \\n]{0,200}") {
        let _ = parse_module(&input);
    }

    /// Random well-formed expressions compile and lower.
    #[test]
    fn expressions_compile(e in expr_strategy()) {
        let src = format!(
            "module T {{ var g: u32; proc f(x: u16, y: u16) {{ g = {e}; }} }}"
        );
        let program = ct_ir::compile_source(&src).expect("well-formed expression compiles");
        prop_assert_eq!(program.procs.len(), 1);
        prop_assert!(program.procs[0].cfg.validate().is_ok());
    }

    /// Lowered straight-line procedures are single blocks with balanced
    /// stack effects (the interpreter can run them).
    #[test]
    fn straight_line_is_single_block(e in expr_strategy()) {
        let src = format!(
            "module T {{ var g: u32; proc f(x: u16, y: u16) {{ g = {e}; g = g + 1; }} }}"
        );
        let program = ct_ir::compile_source(&src).unwrap();
        prop_assert_eq!(program.procs[0].cfg.len(), 1);
        use ct_mote::cost::AvrCost;
        use ct_mote::interp::Mote;
        use ct_mote::trace::NullProfiler;
        let mut mote = Mote::new(program, Box::new(AvrCost));
        let r = mote.call(ct_ir::instr::ProcId(0), &[3, 5], &mut NullProfiler);
        prop_assert!(r.is_ok());
    }

    /// Nesting depth of ifs translates to branch counts.
    #[test]
    fn nested_ifs_have_matching_branch_count(depth in 1usize..6) {
        let mut body = "g = g + 1;".to_string();
        for i in 0..depth {
            body = format!("if (x > {i}) {{ {body} }} else {{ g = g ^ {i}; }}");
        }
        let src = format!("module T {{ var g: u32; proc f(x: u16) {{ {body} }} }}");
        let program = ct_ir::compile_source(&src).unwrap();
        prop_assert_eq!(program.procs[0].cfg.branch_blocks().len(), depth);
        prop_assert!(ct_cfg::structure::decompose(&program.procs[0].cfg).is_ok());
    }

    /// Counted-loop detection finds exactly the loops with literal bounds.
    #[test]
    fn counted_loops_detected(bound in 1u64..40, step in 1u64..5) {
        let src = format!(
            "module T {{ var g: u32; proc f() {{
                var i: u16 = 0;
                while (i < {bound}) {{ g = g + i; i = i + {step}; }}
            }} }}"
        );
        let program = ct_ir::compile_source(&src).unwrap();
        let cl = &program.procs[0].counted_loops;
        prop_assert_eq!(cl.len(), 1);
        let expected = bound.div_ceil(step);
        prop_assert_eq!(cl[0].1, expected);
    }
}

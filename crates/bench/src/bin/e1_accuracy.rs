//! E1 — Estimation accuracy vs sample count (Table).
//!
//! Claim evaluated: end-to-end timing alone recovers branch probabilities,
//! improving with more samples. Cycle-accurate timer isolates the
//! statistical (not quantization) error.

use ct_bench::{estimate_run, f4, par_sweep, run_app, write_result, Mcu, Table};
use ct_core::estimator::EstimateOptions;
use ct_mote::timer::VirtualTimer;

fn main() {
    let sample_counts = [100usize, 500, 1_000, 5_000, 20_000];
    let mut table = Table::new(vec![
        "app", "branches", "n=100", "n=500", "n=1000", "n=5000", "n=20000", "method",
    ]);

    // One job per (app, sample count) cell; results come back in grid order.
    let apps = ct_apps::all_apps();
    let grid: Vec<(usize, usize, usize)> = (0..apps.len())
        .flat_map(|a| {
            sample_counts
                .iter()
                .enumerate()
                .map(move |(i, &n)| (a, i, n))
        })
        .collect();
    let measured = par_sweep(grid, |(a, i, n)| {
        let app = &apps[a];
        let run = run_app(
            app,
            Mcu::Avr,
            n,
            VirtualTimer::cycle_accurate(),
            0,
            1000 + i as u64,
        );
        let (est, acc) = estimate_run(&run, EstimateOptions::default());
        (acc.n_branches, acc.weighted_mae, est.method.to_string())
    });

    for (a, app) in apps.iter().enumerate() {
        let row = &measured[a * sample_counts.len()..(a + 1) * sample_counts.len()];
        let mut cells = vec![app.name.to_string(), row[0].0.to_string()];
        cells.extend(row.iter().map(|&(_, wmae, _)| f4(wmae)));
        cells.push(row.last().expect("nonempty row").2.clone());
        table.row(cells);
        eprintln!("e1: {} done", app.name);
    }

    let out = format!(
        "# E1 — Estimation accuracy (weighted MAE of branch probabilities) vs sample count\n\n\
         Cycle-accurate timer; AVR cost model; seed family 1000+.\n\n{}",
        table.to_markdown()
    );
    println!("{out}");
    write_result("e1_accuracy.md", &out);
}

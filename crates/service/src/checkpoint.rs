//! Checkpoint/restore for streaming ingestion — the fleet loop and the
//! sharded estimation service share one snapshot format.
//!
//! A [`Checkpoint`] is a versioned, checksummed binary snapshot of
//! everything a streaming ingestion loop needs to resume after a process
//! restart as if it never stopped:
//!
//! - the accumulated [`SuffStats`] — stored as its distinct-tick histogram
//!   plus the sticky saturation flag; every other accumulator is a pure
//!   function of the histogram, rebuilt bitwise by
//!   [`SuffStats::from_histogram`];
//! - the dedup **ledger** of every [`BatchTag`] already folded in — under
//!   at-least-once delivery, restore-then-redeliver is indistinguishable
//!   from a duplicate delivery, so the same idempotence that kills
//!   duplicates replays the stream past the crash point;
//! - the last [`EmResult`](ct_core::em::EmResult) (the next warm start) and
//!   the per-batch iteration trail, so a resumed run's report equals the
//!   uninterrupted one;
//! - the reduce-tier **generation** count, so a restored service resumes
//!   stamping responses where the interrupted one stopped;
//! - a caller-supplied configuration **fingerprint**, so a snapshot is never
//!   restored into a run it does not describe.
//!
//! There are no RNG cursors to snapshot: every random draw in the pipeline
//! is a pure function of configured seeds (workload seeds, fault-plan
//! seeds, per-`(mote, attempt)` outcome mixes), so the seeds in the
//! fingerprinted configuration *are* the cursor state.
//!
//! The wire format is fixed little-endian: magic `CTCK`, a format version,
//! a length-prefixed payload, and an FNV-1a 64-bit checksum of the payload.
//! Version 2 appended the generation count after the batch count; version 3
//! appends the cache-currency flag after the warm-start estimate — whether
//! that estimate was computed from the snapshot's own generation, so a
//! restore knows to re-estimate instead of replaying a pre-snapshot
//! response for data it never saw. Version 1 and 2 snapshots are rejected
//! as unsupported rather than guessed at — a clean start is always a
//! correct fallback. Decoding validates
//! magic, version, length, and checksum before touching the payload, and
//! every failure is a typed [`CheckpointError`] — a corrupt or truncated
//! snapshot must *never* panic the service; callers fall back to a clean
//! start.

use ct_core::samples::DurationSamples;
use ct_core::stream::{BatchTag, SuffStats};
use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};

/// Magic bytes opening every checkpoint file.
pub const MAGIC: [u8; 4] = *b"CTCK";

/// The current checkpoint format version.
pub const VERSION: u32 = 3;

/// Why a checkpoint could not be written, read, or restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The file could not be read or written.
    Io(String),
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// The file's format version is not one this build understands.
    UnsupportedVersion(u32),
    /// The file ends before the declared payload and checksum.
    Truncated {
        /// Bytes the header promised.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The payload does not hash to the recorded checksum.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        expected: u64,
        /// Checksum of the payload as read.
        got: u64,
    },
    /// The snapshot describes a different run configuration.
    ConfigMismatch {
        /// Fingerprint of the running configuration.
        expected: u64,
        /// Fingerprint recorded in the snapshot.
        got: u64,
    },
    /// The payload is internally inconsistent (impossible lengths, ranges).
    Malformed(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(msg) => write!(f, "checkpoint io: {msg}"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v} (expected {VERSION})")
            }
            CheckpointError::Truncated { expected, got } => {
                write!(
                    f,
                    "truncated checkpoint: expected {expected} bytes, got {got}"
                )
            }
            CheckpointError::ChecksumMismatch { expected, got } => write!(
                f,
                "checkpoint checksum mismatch: recorded {expected:#018x}, computed {got:#018x}"
            ),
            CheckpointError::ConfigMismatch { expected, got } => write!(
                f,
                "checkpoint was taken under a different configuration: \
                 running {expected:#018x}, snapshot {got:#018x}"
            ),
            CheckpointError::Malformed(msg) => write!(f, "malformed checkpoint: {msg}"),
        }
    }
}

impl Error for CheckpointError {}

/// FNV-1a 64-bit hash — the zero-dependency checksum of the payload.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A serialized EM estimate: [`EmResult`](ct_core::em::EmResult) with the
/// probabilities flattened to raw `f64`s, so decoding needs no CFG and the
/// range/shape validation happens explicitly at restore time
/// ([`CheckpointEstimate::to_em`]) instead of inside a panicking
/// constructor.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointEstimate {
    /// Branch probabilities, one per CFG branch site.
    pub probs: Vec<f64>,
    /// Iterations the producing EM run executed.
    pub iterations: usize,
    /// Final log-likelihood.
    pub loglik: f64,
    /// Whether the producing run converged.
    pub converged: bool,
    /// The last parameter change observed.
    pub final_delta: f64,
    /// Samples unexplained at the final parameters.
    pub unexplained: usize,
    /// Posterior expected traversal counts per edge.
    pub edge_counts: Vec<f64>,
    /// Whether the likelihood watchdog rewound.
    pub rewound: bool,
}

impl CheckpointEstimate {
    /// Flattens an estimate for serialization.
    pub fn from_em(r: &ct_core::em::EmResult) -> CheckpointEstimate {
        CheckpointEstimate {
            probs: r.probs.as_slice().to_vec(),
            iterations: r.iterations,
            loglik: r.loglik,
            converged: r.converged,
            final_delta: r.final_delta,
            unexplained: r.unexplained,
            edge_counts: r.edge_counts.clone(),
            rewound: r.rewound,
        }
    }

    /// Revalidates the estimate against `cfg` and rebuilds the
    /// [`EmResult`](ct_core::em::EmResult).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Malformed`] when the probability vector has the
    /// wrong arity for `cfg`, any probability is outside `[0, 1]` or
    /// non-finite, or the edge-count vector has the wrong arity — the
    /// checks that keep a hostile payload from reaching the panicking
    /// [`BranchProbs::from_vec`](ct_cfg::profile::BranchProbs::from_vec).
    pub fn to_em(
        &self,
        cfg: &ct_cfg::graph::Cfg,
    ) -> Result<ct_core::em::EmResult, CheckpointError> {
        let arity = ct_cfg::profile::BranchProbs::uniform(cfg, 0.5)
            .as_slice()
            .len();
        if self.probs.len() != arity {
            return Err(CheckpointError::Malformed(format!(
                "estimate has {} branch probabilities, CFG has {arity} branch sites",
                self.probs.len()
            )));
        }
        if let Some(p) = self
            .probs
            .iter()
            .find(|p| !p.is_finite() || !(0.0..=1.0).contains(*p))
        {
            return Err(CheckpointError::Malformed(format!(
                "branch probability {p} outside [0, 1]"
            )));
        }
        if self.edge_counts.len() != cfg.edges().len() {
            return Err(CheckpointError::Malformed(format!(
                "estimate has {} edge counts, CFG has {} edges",
                self.edge_counts.len(),
                cfg.edges().len()
            )));
        }
        Ok(ct_core::em::EmResult {
            probs: ct_cfg::profile::BranchProbs::from_vec(cfg, self.probs.clone()),
            iterations: self.iterations,
            loglik: self.loglik,
            converged: self.converged,
            final_delta: self.final_delta,
            unexplained: self.unexplained,
            edge_counts: self.edge_counts.clone(),
            rewound: self.rewound,
        })
    }
}

/// A restorable snapshot of a streaming ingestion loop.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Fingerprint of the producing configuration (see
    /// [`CheckpointError::ConfigMismatch`]).
    pub fingerprint: u64,
    /// The accumulated statistics of every ingested batch.
    pub stats: SuffStats,
    /// Every batch tag already folded into `stats`, sorted — the
    /// at-least-once dedup ledger.
    pub ledger: Vec<BatchTag>,
    /// EM iterations of each per-batch re-estimation so far (empty for
    /// reduce-tier snapshots, which estimate on demand, not per batch).
    pub batch_iterations: Vec<usize>,
    /// Batches ingested (the accumulator's count).
    pub batches: u64,
    /// Reduce-tier generations completed (the fleet's per-batch path
    /// reduces once per batch, so there it equals `batches`).
    pub generations: u64,
    /// The estimate after the last ingested batch (the next warm start).
    pub last: Option<CheckpointEstimate>,
    /// Whether `last` was computed from this snapshot's own `generations`
    /// (i.e. the serve cache was current when the snapshot was cut). A
    /// snapshot taken after further generations absorbed carries `last`
    /// only as a warm start — restoring it as a cached response would
    /// replay a pre-snapshot answer for batches it never saw.
    pub cached: bool,
}

// ---------------------------------------------------------------- encoding

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// A bounds-checked little-endian payload reader: every read that would run
/// past the end returns [`CheckpointError::Malformed`] instead of panicking.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CheckpointError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(CheckpointError::Malformed(format!(
                "payload ends inside {what}"
            ))),
        }
    }

    fn u64(&mut self, what: &str) -> Result<u64, CheckpointError> {
        let s = self.take(8, what)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    fn f64(&mut self, what: &str) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn byte_flag(&mut self, what: &str) -> Result<bool, CheckpointError> {
        match self.take(1, what)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CheckpointError::Malformed(format!(
                "flag {what} has value {b}, expected 0 or 1"
            ))),
        }
    }

    /// A length prefix for `elem_bytes`-sized elements, bounded by the
    /// bytes actually remaining (so a corrupt length cannot drive a huge
    /// allocation).
    fn len_prefix(&mut self, elem_bytes: usize, what: &str) -> Result<usize, CheckpointError> {
        let n = self.u64(what)?;
        let remaining = (self.bytes.len() - self.pos) / elem_bytes.max(1);
        if n > remaining as u64 {
            return Err(CheckpointError::Malformed(format!(
                "{what} claims {n} entries but only {remaining} fit in the payload"
            )));
        }
        Ok(n as usize)
    }

    fn finished(&self) -> Result<(), CheckpointError> {
        if self.pos != self.bytes.len() {
            return Err(CheckpointError::Malformed(format!(
                "{} trailing bytes after the payload",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

impl Checkpoint {
    /// Serializes the snapshot: magic, version, length-prefixed payload,
    /// FNV-1a checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        put_u64(&mut p, self.fingerprint);
        put_u64(&mut p, DurationSamples::cycles_per_tick(&self.stats));
        p.push(self.stats.saturated() as u8);
        put_u64(&mut p, self.stats.distinct() as u64);
        for (t, c) in self.stats.histogram() {
            put_u64(&mut p, t);
            put_u64(&mut p, c);
        }
        put_u64(&mut p, self.ledger.len() as u64);
        for tag in &self.ledger {
            put_u64(&mut p, tag.mote);
            put_u64(&mut p, tag.seq);
        }
        put_u64(&mut p, self.batch_iterations.len() as u64);
        for &it in &self.batch_iterations {
            put_u64(&mut p, it as u64);
        }
        put_u64(&mut p, self.batches);
        put_u64(&mut p, self.generations);
        match &self.last {
            None => p.push(0),
            Some(e) => {
                p.push(1);
                put_u64(&mut p, e.probs.len() as u64);
                for &v in &e.probs {
                    put_f64(&mut p, v);
                }
                put_u64(&mut p, e.iterations as u64);
                put_f64(&mut p, e.loglik);
                p.push(e.converged as u8);
                put_f64(&mut p, e.final_delta);
                put_u64(&mut p, e.unexplained as u64);
                put_u64(&mut p, e.edge_counts.len() as u64);
                for &v in &e.edge_counts {
                    put_f64(&mut p, v);
                }
                p.push(e.rewound as u8);
            }
        }
        p.push(self.cached as u8);

        let mut out = Vec::with_capacity(4 + 4 + 8 + p.len() + 8);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        put_u64(&mut out, p.len() as u64);
        let checksum = fnv1a64(&p);
        out.extend_from_slice(&p);
        put_u64(&mut out, checksum);
        out
    }

    /// Deserializes a snapshot, validating magic, version, length, and
    /// checksum before parsing the payload.
    ///
    /// # Errors
    ///
    /// Every malformation maps to a typed [`CheckpointError`]; this
    /// function never panics on hostile input.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        if bytes.len() < 16 || bytes[..4] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let mut v = [0u8; 4];
        v.copy_from_slice(&bytes[4..8]);
        let version = u32::from_le_bytes(v);
        if version != VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let mut l = [0u8; 8];
        l.copy_from_slice(&bytes[8..16]);
        let payload_len = u64::from_le_bytes(l);
        let expected = (payload_len as u128 + 24) as usize;
        if payload_len > usize::MAX as u64 || bytes.len() < expected {
            return Err(CheckpointError::Truncated {
                expected,
                got: bytes.len(),
            });
        }
        let payload = &bytes[16..16 + payload_len as usize];
        let mut c = [0u8; 8];
        c.copy_from_slice(&bytes[16 + payload_len as usize..expected]);
        let recorded = u64::from_le_bytes(c);
        let computed = fnv1a64(payload);
        if recorded != computed {
            return Err(CheckpointError::ChecksumMismatch {
                expected: recorded,
                got: computed,
            });
        }

        let mut r = Reader::new(payload);
        let fingerprint = r.u64("fingerprint")?;
        let cycles_per_tick = r.u64("cycles_per_tick")?;
        let saturated = r.byte_flag("saturated flag")?;
        let hist_len = r.len_prefix(16, "histogram length")?;
        let mut hist = Vec::with_capacity(hist_len);
        for _ in 0..hist_len {
            let t = r.u64("histogram tick")?;
            let c = r.u64("histogram count")?;
            if c == 0 {
                return Err(CheckpointError::Malformed(
                    "zero-count histogram entry".into(),
                ));
            }
            if let Some(&(prev, _)) = hist.last() {
                if prev >= t {
                    return Err(CheckpointError::Malformed(
                        "histogram ticks not strictly ascending".into(),
                    ));
                }
            }
            hist.push((t, c));
        }
        let stats = SuffStats::from_histogram(cycles_per_tick, hist, saturated);

        let ledger_len = r.len_prefix(16, "ledger length")?;
        let mut ledger = Vec::with_capacity(ledger_len);
        for _ in 0..ledger_len {
            let mote = r.u64("ledger mote")?;
            let seq = r.u64("ledger seq")?;
            let tag = BatchTag { mote, seq };
            if let Some(&prev) = ledger.last() {
                if prev >= tag {
                    return Err(CheckpointError::Malformed(
                        "ledger tags not strictly ascending".into(),
                    ));
                }
            }
            ledger.push(tag);
        }

        let iters_len = r.len_prefix(8, "iteration-trail length")?;
        let mut batch_iterations = Vec::with_capacity(iters_len);
        for _ in 0..iters_len {
            batch_iterations.push(r.u64("batch iterations")? as usize);
        }
        let batches = r.u64("batch count")?;
        let generations = r.u64("generation count")?;

        let last = if r.byte_flag("estimate flag")? {
            let probs_len = r.len_prefix(8, "probability length")?;
            let mut probs = Vec::with_capacity(probs_len);
            for _ in 0..probs_len {
                probs.push(r.f64("branch probability")?);
            }
            let iterations = r.u64("estimate iterations")? as usize;
            let loglik = r.f64("loglik")?;
            let converged = r.byte_flag("converged flag")?;
            let final_delta = r.f64("final delta")?;
            let unexplained = r.u64("unexplained count")? as usize;
            let edge_len = r.len_prefix(8, "edge-count length")?;
            let mut edge_counts = Vec::with_capacity(edge_len);
            for _ in 0..edge_len {
                edge_counts.push(r.f64("edge count")?);
            }
            let rewound = r.byte_flag("rewound flag")?;
            Some(CheckpointEstimate {
                probs,
                iterations,
                loglik,
                converged,
                final_delta,
                unexplained,
                edge_counts,
                rewound,
            })
        } else {
            None
        };
        let cached = r.byte_flag("cached flag")?;
        if cached && last.is_none() {
            return Err(CheckpointError::Malformed(
                "cache-currency flag set without a warm-start estimate".into(),
            ));
        }
        r.finished()?;

        Ok(Checkpoint {
            fingerprint,
            stats,
            ledger,
            batch_iterations,
            batches,
            generations,
            last,
            cached,
        })
    }

    /// Writes the snapshot atomically: the encoding goes to a sibling
    /// temporary file first, then renames over `path`, so a crash mid-write
    /// can never leave a half-written snapshot where a restore will look.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the write or rename fails.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        let io = |e: std::io::Error| CheckpointError::Io(format!("{}: {e}", path.display()));
        std::fs::write(&tmp, self.encode()).map_err(io)?;
        std::fs::rename(&tmp, path).map_err(io)
    }

    /// Best-effort save with observability: a success bumps `ckpt.written`,
    /// a failure bumps `ckpt.write_failed` and emits a
    /// `warn.ckpt_write_failed` event — losing checkpoint durability must
    /// never fail ingestion, so no error is returned.
    pub fn save_observed(&self, path: &Path) {
        match self.save(path) {
            Ok(()) => ct_obs::Counter::new("ckpt.written").incr(),
            Err(e) => {
                ct_obs::Counter::new("ckpt.write_failed").incr();
                ct_obs::emit(
                    "warn.ckpt_write_failed",
                    vec![("error", e.to_string().into())],
                );
            }
        }
    }

    /// Reads and decodes a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the file cannot be read; otherwise the
    /// typed decoding errors of [`Checkpoint::decode`].
    pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
        let bytes = std::fs::read(path)
            .map_err(|e| CheckpointError::Io(format!("{}: {e}", path.display())))?;
        Checkpoint::decode(&bytes)
    }
}

// ---------------------------------------------------------------- policy

/// When and where a streaming loop snapshots itself.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CheckpointPolicy {
    /// Snapshot destination; `None` disables checkpointing entirely.
    pub path: Option<PathBuf>,
    /// Snapshot cadence: write after every `every` ingested batches
    /// (`0` never writes). The service's reduce tier applies the cadence
    /// at reduce boundaries: a snapshot is cut whenever a reduction's
    /// batch count crosses a multiple of `every`.
    pub every: u64,
    /// Test-only crash simulation: stop ingesting after this many batches
    /// *in this process* and return a halted report, as if the process
    /// died at that batch boundary.
    pub halt_after: Option<u64>,
}

impl CheckpointPolicy {
    /// No checkpointing (the default for one-shot runs).
    pub fn disabled() -> CheckpointPolicy {
        CheckpointPolicy::default()
    }

    /// Checkpoints to `path` after every ingested batch.
    pub fn to(path: impl Into<PathBuf>) -> CheckpointPolicy {
        CheckpointPolicy {
            path: Some(path.into()),
            every: 1,
            halt_after: None,
        }
    }

    /// Sets the snapshot cadence (builder style).
    pub fn every(mut self, batches: u64) -> CheckpointPolicy {
        self.every = batches;
        self
    }

    /// Simulates a crash after `batches` ingested batches (builder style).
    pub fn halt_after(mut self, batches: u64) -> CheckpointPolicy {
        self.halt_after = Some(batches);
        self
    }

    /// Reads `CT_CHECKPOINT_PATH` / `CT_CHECKPOINT_EVERY` from the process
    /// environment: no path means checkpointing stays disabled; an unset or
    /// unparsable cadence defaults to every batch.
    pub fn from_env() -> CheckpointPolicy {
        match std::env::var("CT_CHECKPOINT_PATH") {
            Ok(path) if !path.is_empty() => {
                let every = std::env::var("CT_CHECKPOINT_EVERY")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(1);
                CheckpointPolicy::to(path).every(every)
            }
            _ => CheckpointPolicy::disabled(),
        }
    }

    /// True when snapshots will actually be written.
    pub fn enabled(&self) -> bool {
        self.path.is_some() && self.every > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> Checkpoint {
        let mut stats = SuffStats::new(8);
        for t in [115, 215, 115, 9] {
            stats.push(t);
        }
        Checkpoint {
            fingerprint: 0xDEAD_BEEF_0BAD_F00D,
            stats,
            ledger: vec![
                BatchTag { mote: 0, seq: 0 },
                BatchTag { mote: 1, seq: 0 },
                BatchTag { mote: 2, seq: 5 },
            ],
            batch_iterations: vec![41, 7, 3],
            batches: 3,
            generations: 3,
            last: Some(CheckpointEstimate {
                probs: vec![0.7, 0.25],
                iterations: 12,
                loglik: -431.25,
                converged: true,
                final_delta: 1e-7,
                unexplained: 0,
                edge_counts: vec![700.0, 300.0, 700.0, 300.0],
                rewound: false,
            }),
            cached: true,
        }
    }

    #[test]
    fn roundtrips_bitwise() {
        let ck = sample_checkpoint();
        let decoded = Checkpoint::decode(&ck.encode()).unwrap();
        assert_eq!(decoded, ck);
        // Estimate-less snapshots too (a reduce-tier snapshot taken before
        // any estimate was requested).
        let bare = Checkpoint {
            last: None,
            cached: false,
            batch_iterations: Vec::new(),
            generations: 1,
            ..sample_checkpoint()
        };
        assert_eq!(Checkpoint::decode(&bare.encode()).unwrap(), bare);
        // A warm start that was no longer current when the snapshot was cut.
        let stale = Checkpoint {
            cached: false,
            generations: 5,
            ..sample_checkpoint()
        };
        assert_eq!(Checkpoint::decode(&stale.encode()).unwrap(), stale);
    }

    #[test]
    fn cached_flag_without_an_estimate_is_malformed() {
        let ck = Checkpoint {
            last: None,
            cached: true,
            batch_iterations: Vec::new(),
            ..sample_checkpoint()
        };
        assert!(matches!(
            Checkpoint::decode(&ck.encode()).unwrap_err(),
            CheckpointError::Malformed(_)
        ));
    }

    #[test]
    fn every_single_byte_flip_is_rejected_with_a_typed_error() {
        let bytes = sample_checkpoint().encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(
                Checkpoint::decode(&bad).is_err(),
                "flip at byte {i} was accepted"
            );
        }
    }

    #[test]
    fn every_truncation_is_rejected_with_a_typed_error() {
        let bytes = sample_checkpoint().encode();
        for len in 0..bytes.len() {
            assert!(
                Checkpoint::decode(&bytes[..len]).is_err(),
                "truncation to {len} bytes was accepted"
            );
        }
    }

    #[test]
    fn header_failures_are_distinguished() {
        let bytes = sample_checkpoint().encode();
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert_eq!(
            Checkpoint::decode(&wrong_magic).unwrap_err(),
            CheckpointError::BadMagic
        );
        let mut future = bytes.clone();
        future[4] = 99;
        assert_eq!(
            Checkpoint::decode(&future).unwrap_err(),
            CheckpointError::UnsupportedVersion(99)
        );
        // Older versions are rejected, not guessed at: v1 (pre-service) and
        // v2 (pre cache-currency flag) alike.
        for old in [1u8, 2] {
            let mut v = bytes.clone();
            v[4] = old;
            assert_eq!(
                Checkpoint::decode(&v).unwrap_err(),
                CheckpointError::UnsupportedVersion(old as u32)
            );
        }
        assert!(matches!(
            Checkpoint::decode(&bytes[..bytes.len() - 3]).unwrap_err(),
            CheckpointError::Truncated { .. }
        ));
        let mut corrupt = bytes.clone();
        let mid = 16 + 4; // inside the payload
        corrupt[mid] ^= 0xFF;
        assert!(matches!(
            Checkpoint::decode(&corrupt).unwrap_err(),
            CheckpointError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn rebuilt_stats_match_pushed_stats_bitwise() {
        let ck = sample_checkpoint();
        let decoded = Checkpoint::decode(&ck.encode()).unwrap();
        assert_eq!(decoded.stats, ck.stats);
        assert_eq!(
            DurationSamples::mean_cycles(&decoded.stats).to_bits(),
            DurationSamples::mean_cycles(&ck.stats).to_bits()
        );
    }

    #[test]
    fn estimate_revalidation_rejects_hostile_values() {
        let cfg = ct_cfg::builder::diamond();
        let mut est = CheckpointEstimate {
            probs: vec![0.7],
            iterations: 3,
            loglik: -10.0,
            converged: true,
            final_delta: 0.0,
            unexplained: 0,
            edge_counts: vec![1.0; cfg.edges().len()],
            rewound: false,
        };
        assert!(est.to_em(&cfg).is_ok());
        est.probs = vec![1.5];
        assert!(matches!(
            est.to_em(&cfg).unwrap_err(),
            CheckpointError::Malformed(_)
        ));
        est.probs = vec![f64::NAN];
        assert!(est.to_em(&cfg).is_err());
        est.probs = vec![0.5, 0.5];
        assert!(est.to_em(&cfg).is_err(), "wrong arity accepted");
        est.probs = vec![0.5];
        est.edge_counts = vec![1.0];
        assert!(est.to_em(&cfg).is_err(), "wrong edge arity accepted");
    }

    #[test]
    fn save_and_load_roundtrip_atomically() {
        let ck = sample_checkpoint();
        let path = std::env::temp_dir().join(format!("ct_ckpt_unit_{}.ckpt", std::process::id()));
        ck.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), ck);
        // No temporary residue.
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(!PathBuf::from(tmp).exists());
        let _ = std::fs::remove_file(&path);
        assert!(matches!(
            Checkpoint::load(&path).unwrap_err(),
            CheckpointError::Io(_)
        ));
    }

    #[test]
    fn policy_from_env_shape() {
        let off = CheckpointPolicy::disabled();
        assert!(!off.enabled());
        let on = CheckpointPolicy::to("/tmp/x.ckpt").every(4).halt_after(2);
        assert!(on.enabled());
        assert_eq!(on.every, 4);
        assert_eq!(on.halt_after, Some(2));
        assert!(!CheckpointPolicy::to("/tmp/x.ckpt").every(0).enabled());
    }
}

//! Lowering from checked AST to per-procedure CFGs of stack-machine
//! instructions.
//!
//! Invariants established here (and relied on by the rest of the workspace):
//!
//! - block 0 is the entry;
//! - every procedure has **exactly one** `Return` block (sema's
//!   return-as-last-statement rule plus the implicit trailing return);
//! - every loop is header-controlled with a single latch;
//! - consequently `ct_cfg::structure::decompose` always succeeds on lowered
//!   procedures.

use crate::ast::*;
use crate::error::IrError;
use crate::instr::{Instr, Intrinsic};
use crate::program::{Global, Procedure, Program};
use crate::sema::{analyze, Analysis};
use crate::tripcount::counted_whiles;
use crate::types::Ty;
use ct_cfg::graph::{BlockId, Cfg, Terminator};

/// Lowers a checked module into a [`Program`].
///
/// `analysis` must come from [`analyze`] on the same module.
pub fn lower(module: &Module, analysis: &Analysis) -> Program {
    let globals = module
        .globals
        .iter()
        .map(|g| Global {
            name: g.name.clone(),
            ty: g.ty,
            len: g.array_len.unwrap_or(1),
            init: g.init.map(|v| g.ty.wrap(v)).unwrap_or(0),
        })
        .collect();

    let procs = module
        .procs
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let mut lowerer = Lowerer::new(p, analysis);
            lowerer.lower_body();
            Procedure {
                name: p.name.clone(),
                params: p.params.iter().map(|q| q.ty).collect(),
                ret: p.ret,
                n_locals: analysis.n_locals[i],
                cfg: lowerer.cfg,
                code: lowerer.code,
                counted_loops: lowerer.counted_loops,
            }
        })
        .collect();

    Program {
        name: module.name.clone(),
        globals,
        procs,
    }
}

/// Parses, checks and lowers NLC source in one call.
///
/// # Errors
///
/// Propagates lex, parse and semantic errors.
///
/// # Examples
///
/// ```
/// let program = ct_ir::compile_source(
///     "module Blink { var on: bool; proc tick() { on = !on; led_set(0, 1); } }",
/// ).unwrap();
/// assert_eq!(program.procs.len(), 1);
/// assert!(program.procs[0].cfg.validate().is_ok());
/// ```
pub fn compile_source(src: &str) -> Result<Program, IrError> {
    let module = crate::parser::parse_module(src)?;
    let analysis = analyze(&module)?;
    Ok(lower(&module, &analysis))
}

struct Lowerer<'a> {
    proc: &'a ProcDecl,
    analysis: &'a Analysis,
    cfg: Cfg,
    code: Vec<Vec<Instr>>,
    cur: BlockId,
    /// Trip counts of counted `while`s, keyed by statement span.
    trip_counts: std::collections::HashMap<crate::token::Span, u64>,
    counted_loops: Vec<(BlockId, u64)>,
}

impl<'a> Lowerer<'a> {
    fn new(proc: &'a ProcDecl, analysis: &'a Analysis) -> Self {
        let mut cfg = Cfg::new(proc.name.clone());
        let entry = cfg.add_block("entry", Terminator::Return);
        Lowerer {
            proc,
            analysis,
            cfg,
            code: vec![Vec::new()],
            cur: entry,
            trip_counts: counted_whiles(proc),
            counted_loops: Vec::new(),
        }
    }

    fn new_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = self.cfg.add_block(name, Terminator::Return);
        self.code.push(Vec::new());
        id
    }

    fn emit(&mut self, instr: Instr) {
        self.code[self.cur.index()].push(instr);
    }

    fn local(&self, name: &str) -> Option<(u16, Ty)> {
        let pid = self.analysis.procs[&self.proc.name].0;
        self.analysis.locals[pid.index()].get(name).copied()
    }

    fn lower_body(&mut self) {
        let ends_with_return = matches!(self.proc.body.last(), Some(Stmt::Return { .. }));
        let body: &[Stmt] = &self.proc.body;
        for stmt in body {
            self.lower_stmt(stmt);
        }
        if !ends_with_return {
            // Implicit return; value procedures return zero.
            if self.proc.ret.is_some() {
                self.emit(Instr::PushConst(0));
            }
            self.cfg.set_terminator(self.cur, Terminator::Return);
        }
    }

    fn lower_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::VarDecl { name, ty, init, .. } => {
                match init {
                    Some(e) => self.lower_expr(e),
                    None => self.emit(Instr::PushConst(0)),
                }
                self.emit(Instr::Cast(*ty));
                let Some((slot, _)) = self.local(name) else {
                    // Lowering only runs over sema-checked modules, and sema
                    // allocates a slot for every declared local.
                    unreachable!("sema resolved every declared local before lowering");
                };
                self.emit(Instr::StoreLocal(slot));
            }
            Stmt::Assign { target, value, .. } => match target {
                LValue::Var(name) => {
                    self.lower_expr(value);
                    if let Some((slot, ty)) = self.local(name) {
                        self.emit(Instr::Cast(ty));
                        self.emit(Instr::StoreLocal(slot));
                    } else {
                        let (gid, ty, _) = self.analysis.globals[name];
                        self.emit(Instr::Cast(ty));
                        self.emit(Instr::StoreGlobal(gid));
                    }
                }
                LValue::Elem(name, index) => {
                    let (gid, ty, _) = self.analysis.globals[name];
                    self.lower_expr(index);
                    self.lower_expr(value);
                    self.emit(Instr::Cast(ty));
                    self.emit(Instr::StoreElem(gid));
                }
            },
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                self.lower_expr(cond);
                let join = self.new_block("join");
                let cond_block = self.cur;
                let (on_true, on_false) = match (then_blk.is_empty(), else_blk.is_empty()) {
                    (false, false) => {
                        let t = self.lower_arm("then", then_blk, join);
                        let e = self.lower_arm("else", else_blk, join);
                        (t, e)
                    }
                    (false, true) => {
                        let t = self.lower_arm("then", then_blk, join);
                        (t, join)
                    }
                    (true, false) => {
                        let e = self.lower_arm("else", else_blk, join);
                        (join, e)
                    }
                    (true, true) => {
                        // Both arms empty: still branch somewhere distinct to
                        // keep the CFG non-degenerate (the condition may have
                        // side effects through calls).
                        let t = self.lower_arm("then", &[], join);
                        (t, join)
                    }
                };
                self.cfg
                    .set_terminator(cond_block, Terminator::Branch { on_true, on_false });
                self.cur = join;
            }
            Stmt::While { cond, body, span } => {
                let header = self.new_block("loop_header");
                if let Some(&trips) = self.trip_counts.get(span) {
                    self.counted_loops.push((header, trips));
                }
                self.cfg.set_terminator(self.cur, Terminator::Jump(header));
                self.cur = header;
                self.lower_expr(cond);

                let body_block = self.new_block("loop_body");
                self.cur = body_block;
                for s in body {
                    self.lower_stmt(s);
                }
                // Single latch: wherever the body ends jumps back to the header.
                self.cfg.set_terminator(self.cur, Terminator::Jump(header));

                let exit = self.new_block("loop_exit");
                self.cfg.set_terminator(
                    header,
                    Terminator::Branch {
                        on_true: body_block,
                        on_false: exit,
                    },
                );
                self.cur = exit;
            }
            Stmt::Return { value, .. } => {
                if let Some(e) = value {
                    self.lower_expr(e);
                    if let Some(ty) = self.proc.ret {
                        self.emit(Instr::Cast(ty));
                    }
                }
                self.cfg.set_terminator(self.cur, Terminator::Return);
            }
            Stmt::Expr { expr, .. } => {
                self.lower_expr(expr);
                if self.call_produces_value(expr) {
                    self.emit(Instr::Pop);
                }
            }
        }
    }

    /// Lowers one arm of a conditional into fresh blocks ending with a jump
    /// to `join`; returns the arm's first block.
    fn lower_arm(&mut self, name: &str, stmts: &[Stmt], join: BlockId) -> BlockId {
        let first = self.new_block(name);
        self.cur = first;
        for s in stmts {
            self.lower_stmt(s);
        }
        self.cfg.set_terminator(self.cur, Terminator::Jump(join));
        first
    }

    fn call_produces_value(&self, e: &Expr) -> bool {
        match &e.kind {
            ExprKind::Call(name, _) => {
                if let Some(intr) = Intrinsic::from_name(name) {
                    intr.result().is_some()
                } else {
                    self.analysis.procs[name].2.is_some()
                }
            }
            _ => false,
        }
    }

    fn lower_expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Int(v) => self.emit(Instr::PushConst(*v)),
            ExprKind::Bool(b) => self.emit(Instr::PushConst(*b as i64)),
            ExprKind::Var(name) => {
                if let Some((slot, _)) = self.local(name) {
                    self.emit(Instr::LoadLocal(slot));
                } else {
                    let (gid, _, _) = self.analysis.globals[name];
                    self.emit(Instr::LoadGlobal(gid));
                }
            }
            ExprKind::Elem(name, index) => {
                let (gid, _, _) = self.analysis.globals[name];
                self.lower_expr(index);
                self.emit(Instr::LoadElem(gid));
            }
            ExprKind::Unary(op, operand) => {
                self.lower_expr(operand);
                self.emit(Instr::Unary(*op));
            }
            ExprKind::Binary(op, lhs, rhs) => {
                self.lower_expr(lhs);
                self.lower_expr(rhs);
                self.emit(Instr::Binary(*op));
            }
            ExprKind::Call(name, args) => {
                for a in args {
                    self.lower_expr(a);
                }
                if let Some(intr) = Intrinsic::from_name(name) {
                    self.emit(Instr::Intrinsic(intr));
                } else {
                    let (pid, _, _) = self.analysis.procs[name];
                    self.emit(Instr::Call(pid));
                }
            }
        }
    }
}

/// Sema result kinds re-exported for convenience when inspecting lowered
/// calls.
pub use crate::instr::ValKind as LoweredValKind;

#[cfg(test)]
mod tests {
    use super::*;
    use ct_cfg::structure::decompose;

    fn compile(src: &str) -> Program {
        compile_source(src).unwrap()
    }

    #[test]
    fn straight_line_proc_is_single_block() {
        let p = compile("module M { var a: u16; proc f(x: u16) { a = x + 1; } }");
        let proc = &p.procs[0];
        assert_eq!(proc.cfg.len(), 1);
        assert!(proc.cfg.validate().is_ok());
        assert_eq!(
            proc.block_code(BlockId(0)),
            &[
                Instr::LoadLocal(0),
                Instr::PushConst(1),
                Instr::Binary(BinOp::Add),
                Instr::Cast(Ty::U16),
                Instr::StoreGlobal(crate::instr::GlobalId(0)),
            ]
        );
    }

    #[test]
    fn if_else_lowers_to_diamond() {
        let p = compile(
            "module M { var a: u16; proc f(x: u16) {
                if (x > 5) { a = 1; } else { a = 2; }
            } }",
        );
        let proc = &p.procs[0];
        assert!(proc.cfg.validate().is_ok());
        assert_eq!(proc.cfg.branch_blocks().len(), 1);
        assert_eq!(proc.cfg.exit_blocks().len(), 1);
        assert!(decompose(&proc.cfg).is_ok());
    }

    #[test]
    fn if_without_else_still_valid() {
        let p = compile("module M { var a: u16; proc f(x: u16) { if (x > 5) { a = 1; } } }");
        assert!(p.procs[0].cfg.validate().is_ok());
        assert!(decompose(&p.procs[0].cfg).is_ok());
    }

    #[test]
    fn empty_if_does_not_degenerate() {
        let p = compile("module M { proc f(x: u16) { if (x > 5) { } } }");
        assert!(p.procs[0].cfg.validate().is_ok());
    }

    #[test]
    fn while_lowers_to_natural_loop() {
        let p = compile(
            "module M { proc f(n: u16) {
                var i: u16 = 0;
                while (i < n) { i = i + 1; }
            } }",
        );
        let proc = &p.procs[0];
        assert!(proc.cfg.validate().is_ok());
        assert!(!proc.cfg.is_acyclic());
        let forest = ct_cfg::loops::LoopForest::compute(&proc.cfg);
        assert_eq!(forest.len(), 1);
        assert!(decompose(&proc.cfg).is_ok());
    }

    #[test]
    fn all_lowered_procs_have_single_exit() {
        let p = compile(
            "module M {
                var a: u16;
                proc f(x: u16) -> u16 {
                    var acc: u16 = 0;
                    while (x > 0) {
                        if (x % 2 == 0) { acc = acc + x; } else { acc = acc + 1; }
                        x = x - 1;
                    }
                    return acc;
                }
                proc g() { a = f(a); }
            }",
        );
        for proc in &p.procs {
            assert_eq!(proc.cfg.exit_blocks().len(), 1, "{}", proc.name);
            assert!(decompose(&proc.cfg).is_ok(), "{}", proc.name);
        }
    }

    #[test]
    fn implicit_return_pushes_zero_for_value_proc() {
        let p = compile("module M { proc f() -> u16 { var x: u16 = 1; } }");
        let proc = &p.procs[0];
        let exit = proc.cfg.exit_blocks()[0];
        assert_eq!(proc.block_code(exit).last(), Some(&Instr::PushConst(0)));
    }

    #[test]
    fn nested_loops_lower_structurally() {
        let p = compile(
            "module M { proc f(n: u16) {
                var i: u16 = 0;
                while (i < n) {
                    var j: u16 = 0;
                    while (j < i) { j = j + 1; }
                    i = i + 1;
                }
            } }",
        );
        let proc = &p.procs[0];
        let forest = ct_cfg::loops::LoopForest::compute(&proc.cfg);
        assert_eq!(forest.len(), 2);
        assert!(decompose(&proc.cfg).is_ok());
    }

    #[test]
    fn void_call_statement_has_no_pop_value_call_pops() {
        let p = compile(
            "module M {
                proc v() { led_toggle(0); }
                proc w() -> u16 { return 1; }
                proc f() { v(); w(); }
            }",
        );
        let f = &p.procs[2];
        let code = f.block_code(BlockId(0));
        // v(): Call; w(): Call, Pop.
        assert_eq!(code.iter().filter(|i| matches!(i, Instr::Pop)).count(), 1);
    }

    #[test]
    fn array_store_order_is_index_then_value() {
        let p = compile("module M { var b: u8[4]; proc f(i: u8) { b[i] = i + 1; } }");
        let code = p.procs[0].block_code(BlockId(0));
        // ldloc i; ldloc i; push 1; add; cast; stelem
        assert_eq!(code[0], Instr::LoadLocal(0));
        assert!(matches!(code.last(), Some(Instr::StoreElem(_))));
    }

    #[test]
    fn global_initializers_are_wrapped() {
        let p = compile("module M { var a: u8 = 300; }");
        assert_eq!(p.globals[0].init, 44);
    }

    #[test]
    fn loop_condition_lives_in_header() {
        let p =
            compile("module M { proc f(n: u16) { var i: u16 = 0; while (i < n) { i = i + 1; } } }");
        let proc = &p.procs[0];
        let header = proc
            .cfg
            .branch_blocks()
            .first()
            .copied()
            .expect("loop header is the only branch");
        let code = proc.block_code(header);
        assert!(code.iter().any(|i| matches!(i, Instr::Binary(BinOp::Lt))));
    }
}

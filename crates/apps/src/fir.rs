//! Fir: an 8-tap moving-average FIR filter over the sensor stream with a
//! threshold alarm. The filter loop has a deterministic trip count (the
//! Markov geometric-loop assumption is deliberately misspecified here) while
//! the alarm branch is input-driven.

use ct_ir::instr::ProcId;
use ct_ir::program::Program;
use ct_mote::devices::SineAdc;
use ct_mote::interp::Mote;
use ct_mote::trace::NullProfiler;

/// NLC source.
pub const SOURCE: &str = r#"
module Fir {
    var taps: u16[8];
    var hist: u16[8];
    var hpos: u16;
    var output: u16;
    var alarms: u32;

    proc init() {
        var i: u16 = 0;
        while (i < 8) {
            taps[i] = 1;
            i = i + 1;
        }
    }

    proc step() {
        hist[hpos] = read_adc();
        var acc: u32 = 0;
        var i: u16 = 0;
        while (i < 8) {
            var j: u16 = (hpos + 8 - i) % 8;
            acc = acc + hist[j] * taps[i];
            i = i + 1;
        }
        hpos = (hpos + 1) % 8;
        output = acc >> 3;
        if (output > 600) {
            alarms = alarms + 1;
            led_set(1, 1);
        } else {
            led_set(1, 0);
        }
    }
}
"#;

/// The procedure the experiments profile.
pub const TARGET_PROC: &str = "step";

/// Compiles the app.
///
/// # Panics
///
/// Panics if the bundled source fails to compile (a bug in this crate).
pub fn program() -> Program {
    ct_ir::compile_source(SOURCE).expect("bundled Fir source compiles")
}

/// Standard workload: initialize taps, periodic field swinging through the
/// alarm threshold.
pub fn configure(mote: &mut Mote) {
    mote.devices.adc = Box::new(SineAdc::new(512.0, 400.0, 128.0, 30.0));
    let init = mote.program().proc_id("init").expect("init exists");
    mote.call(init, &[], &mut NullProfiler).expect("init runs");
}

/// The target procedure's id in the compiled program.
pub fn target_proc_id(program: &Program) -> ProcId {
    program.proc_id(TARGET_PROC).expect("step exists")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_mote::cost::AvrCost;
    use ct_mote::devices::ConstantAdc;
    use ct_mote::trace::GroundTruthProfiler;

    #[test]
    fn moving_average_converges_to_constant_input() {
        let p = program();
        let mut mote = Mote::new(p.clone(), Box::new(AvrCost));
        configure(&mut mote);
        mote.devices.adc = Box::new(ConstantAdc(800));
        for _ in 0..16 {
            mote.call(target_proc_id(&p), &[], &mut NullProfiler)
                .unwrap();
        }
        // After ≥8 steps of constant 800 input: output = 8·800/8 = 800.
        assert_eq!(mote.globals.load(p.global_id("output").unwrap()), 800);
        assert!(mote.globals.load(p.global_id("alarms").unwrap()) > 0);
    }

    #[test]
    fn filter_loop_runs_exactly_eight_times() {
        let p = program();
        let mut mote = Mote::new(p.clone(), Box::new(AvrCost));
        configure(&mut mote);
        let mut gt = GroundTruthProfiler::new(&p);
        let pid = target_proc_id(&p);
        mote.call(pid, &[], &mut gt).unwrap();
        let cfg = &p.proc(pid).cfg;
        // Loop header visited 9 times (8 continues + exit).
        let visits = gt.profile(pid).block_visits(cfg, 1);
        assert!(visits.contains(&9), "{visits:?}");
    }

    #[test]
    fn alarm_branch_oscillates_with_field() {
        let p = program();
        let mut mote = Mote::new(p.clone(), Box::new(AvrCost));
        configure(&mut mote);
        let mut gt = GroundTruthProfiler::new(&p);
        let pid = target_proc_id(&p);
        for _ in 0..512 {
            mote.call(pid, &[], &mut gt).unwrap();
        }
        let cfg = &p.proc(pid).cfg;
        let probs = gt.branch_probs(pid, cfg);
        // Sine centered at 512 with amplitude 400: alarm (>600) a noticeable
        // but minority fraction of the time.
        let alarm_p = probs.as_slice().last().copied().unwrap();
        assert!(alarm_p > 0.1 && alarm_p < 0.6, "{:?}", probs);
    }
}

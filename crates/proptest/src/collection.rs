//! Collection strategies: `proptest::collection::vec`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Anything usable as a element-count specification for [`vec`].
pub trait IntoSizeRange {
    /// Lower and inclusive upper bound on the length.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for core::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for core::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length is
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (lo, hi) = size.bounds();
    VecStrategy { element, lo, hi }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    lo: usize,
    hi: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.lo..=self.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

//! Single-threaded composition of the three tiers: shard accumulators,
//! reduce tier, and front door in one struct, with the caller driving the
//! schedule. This is the substrate both deployment shapes build on — the
//! pinned `Fleet` streaming client runs a `ServiceCore` with
//! [`ServiceConfig::pinned`] (one shard, reduce per batch), and each
//! worker/reducer of the threaded
//! [`EstimationService`](crate::EstimationService) is one piece of this
//! logic moved behind a queue.

use crate::api::{EstimateRequest, EstimateResponse, ServiceError};
use crate::checkpoint::Checkpoint;
use crate::config::ServiceConfig;
use crate::reduce::ReduceTier;
use crate::shard::{route, Shard};
use ct_cfg::graph::Cfg;
use ct_core::em::{EmOptions, EmResult};
use ct_core::fb::FbError;
use ct_core::stream::{BatchTag, SuffStats};
use std::collections::BTreeSet;

/// The in-process estimation service: K shard accumulators and a reduce
/// tier, driven synchronously by the caller.
///
/// The caller chooses when to [`ServiceCore::reduce`]; correctness never
/// depends on the choice. After any schedule of ingests and reduces
/// covering the same distinct batches, a final reduce leaves the global
/// accumulator bitwise identical to the monolithic fold — at any shard
/// count (see the determinism argument on [`ReduceTier`]).
#[derive(Debug, Clone)]
pub struct ServiceCore {
    shards: Vec<Shard>,
    reduce: ReduceTier,
}

impl ServiceCore {
    /// An empty service with `config.shards` shard accumulators at
    /// `cycles_per_tick` resolution.
    pub fn new(config: &ServiceConfig, cycles_per_tick: u64, opts: EmOptions) -> ServiceCore {
        let shards = (0..config.shards.max(1))
            .map(|i| Shard::new(i, cycles_per_tick))
            .collect();
        ServiceCore {
            shards,
            reduce: ReduceTier::new(cycles_per_tick, opts),
        }
    }

    /// Rebuilds a service from checkpointed state: the reduce tier resumes
    /// the accumulator, warm start, batch count, and generation; every
    /// ledger tag is seeded into its routing shard so at-least-once replay
    /// drops everything the snapshot already folded in. `cached` marks the
    /// warm start as a current serve-cache entry for the restored
    /// generation (pass the snapshot's [`Checkpoint::cached`] flag).
    #[allow(clippy::too_many_arguments)]
    pub fn restore(
        config: &ServiceConfig,
        cycles_per_tick: u64,
        opts: EmOptions,
        stats: SuffStats,
        last: Option<EmResult>,
        batches: u64,
        generation: u64,
        ledger: Vec<BatchTag>,
        cached: bool,
    ) -> ServiceCore {
        let shard_count = config.shards.max(1);
        let mut shards: Vec<Shard> = (0..shard_count)
            .map(|i| Shard::new(i, cycles_per_tick))
            .collect();
        for &tag in &ledger {
            shards[route(tag, shard_count)].seed_ledger([tag]);
        }
        ServiceCore {
            shards,
            reduce: ReduceTier::restore(
                cycles_per_tick,
                opts,
                stats,
                last,
                batches,
                generation,
                ledger,
                cached,
            ),
        }
    }

    /// Ingests one tagged batch into its routing shard. Returns `Ok(true)`
    /// for a fresh batch, `Ok(false)` for a deduplicated redelivery.
    ///
    /// # Errors
    ///
    /// [`FbError::Shape`] on a timer-resolution mismatch.
    pub fn ingest(&mut self, tag: BatchTag, delta: &SuffStats) -> Result<bool, FbError> {
        let i = route(tag, self.shards.len());
        self.shards[i]
            .ingest(tag, delta)
            .map_err(|e| FbError::Shape(e.to_string()))
    }

    /// Harvests every shard and absorbs the round into the reduce tier.
    /// Returns the number of fresh batches absorbed (0 is a free no-op).
    ///
    /// # Errors
    ///
    /// Propagates [`FbError`] from the reduction.
    pub fn reduce(&mut self) -> Result<u64, FbError> {
        let harvests = self.shards.iter_mut().map(Shard::harvest).collect();
        self.reduce.absorb(harvests)
    }

    /// Re-estimates over the current generation (see
    /// [`ReduceTier::estimate`]).
    ///
    /// # Errors
    ///
    /// Propagates [`FbError`] from the dynamic programs.
    pub fn estimate(
        &mut self,
        cfg: &Cfg,
        block_costs: &[u64],
        edge_costs: &[u64],
    ) -> Result<&EmResult, FbError> {
        self.reduce.estimate(cfg, block_costs, edge_costs)
    }

    /// Serves a front-door request from the latest reduced generation;
    /// staleness is the count of accepted-but-not-yet-reduced batches.
    ///
    /// # Errors
    ///
    /// Propagates [`ReduceTier::serve`] errors.
    pub fn serve(
        &mut self,
        req: &EstimateRequest,
        cfg: &Cfg,
        block_costs: &[u64],
        edge_costs: &[u64],
    ) -> Result<EstimateResponse, ServiceError> {
        let staleness = self.pending();
        self.reduce
            .serve(req, cfg, block_costs, edge_costs, staleness)
    }

    /// Snapshots the reduce tier (cut a reduce boundary first — pending
    /// shard deltas are by design not part of a snapshot).
    pub fn checkpoint(&self, fingerprint: u64, batch_iterations: &[usize]) -> Checkpoint {
        self.reduce.checkpoint(fingerprint, batch_iterations)
    }

    /// Batches accepted by shards but not yet absorbed by a reduce.
    pub fn pending(&self) -> u64 {
        self.shards.iter().map(|s| s.pending() as u64).sum()
    }

    /// Batches accepted across all shards over the service's lifetime.
    pub fn accepted(&self) -> u64 {
        self.shards.iter().map(Shard::accepted).sum()
    }

    /// Duplicate deliveries dropped across all shards.
    pub fn dedup_dropped(&self) -> u64 {
        self.shards.iter().map(Shard::dedup_dropped).sum()
    }

    /// The shard count K.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The cumulative statistics at the last reduce boundary.
    pub fn stats(&self) -> &SuffStats {
        self.reduce.stats()
    }

    /// The most recent estimate, if one was computed.
    pub fn last(&self) -> Option<&EmResult> {
        self.reduce.last()
    }

    /// Distinct batches absorbed into the accumulator.
    pub fn batches(&self) -> u64 {
        self.reduce.batches()
    }

    /// Completed reduce generations.
    pub fn generation(&self) -> u64 {
        self.reduce.generation()
    }

    /// The union dedup ledger at the last reduce boundary.
    pub fn ledger(&self) -> &BTreeSet<BatchTag> {
        self.reduce.ledger()
    }

    /// Convolution-cache hits across this process's re-estimations.
    pub fn cache_hits(&self) -> u64 {
        self.reduce.cache_hits()
    }

    /// Convolution-cache misses across this process's re-estimations.
    pub fn cache_misses(&self) -> u64 {
        self.reduce.cache_misses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta_of(ticks: &[u64]) -> SuffStats {
        let mut s = SuffStats::new(1);
        ticks.iter().for_each(|&t| s.push(t));
        s
    }

    fn tag(mote: u64, seq: u64) -> BatchTag {
        BatchTag { mote, seq }
    }

    #[test]
    fn any_reduce_schedule_reaches_the_monolithic_fold_bitwise() {
        let deliveries: Vec<(BatchTag, SuffStats)> = (0..24)
            .map(|i| {
                let t = if i % 5 == 0 { 215 } else { 115 };
                (tag(i % 7, i / 7), delta_of(&[t, t + i]))
            })
            .collect();
        let mut mono = SuffStats::new(1);
        for (_, d) in &deliveries {
            mono.merge(d).unwrap();
        }

        for shards in [1usize, 2, 7, 16] {
            let mut core = ServiceCore::new(
                &ServiceConfig::new().shards(shards),
                1,
                EmOptions::default(),
            );
            for (i, (t, d)) in deliveries.iter().enumerate() {
                assert!(core.ingest(*t, d).unwrap());
                // An arbitrary, shard-count-dependent reduce schedule.
                if i % (shards + 2) == 0 {
                    core.reduce().unwrap();
                }
            }
            core.reduce().unwrap();
            assert_eq!(core.pending(), 0);
            assert_eq!(core.stats(), &mono, "shards={shards} diverged");
            assert_eq!(core.batches(), 24);
            assert_eq!(core.ledger().len(), 24);
        }
    }

    #[test]
    fn duplicates_are_dropped_at_any_shard_count() {
        let mut core = ServiceCore::new(&ServiceConfig::new().shards(3), 1, EmOptions::default());
        assert!(core.ingest(tag(4, 0), &delta_of(&[115])).unwrap());
        assert!(!core.ingest(tag(4, 0), &delta_of(&[115])).unwrap());
        core.reduce().unwrap();
        // Across a reduce boundary too.
        assert!(!core.ingest(tag(4, 0), &delta_of(&[115])).unwrap());
        assert_eq!(core.dedup_dropped(), 2);
        assert_eq!(core.accepted(), 1);
    }

    #[test]
    fn restore_seeds_shard_ledgers_for_replay() {
        let cfg = ct_cfg::builder::diamond();
        let (bc, ec) = ([10u64, 100, 200, 5], [0u64; 4]);
        let config = ServiceConfig::new().shards(2);
        let mut a = ServiceCore::new(&config, 1, EmOptions::default());
        for m in 0..4u64 {
            a.ingest(tag(m, 0), &delta_of(&[115, 215])).unwrap();
        }
        a.reduce().unwrap();
        a.estimate(&cfg, &bc, &ec).unwrap();
        let ck = a.checkpoint(9, &[]);

        let mut b = ServiceCore::restore(
            &config,
            1,
            EmOptions::default(),
            ck.stats.clone(),
            ck.last.as_ref().map(|e| e.to_em(&cfg).unwrap()),
            ck.batches,
            ck.generations,
            ck.ledger.clone(),
            ck.cached,
        );
        // Replaying the whole stream dedups everything already folded in.
        for m in 0..4u64 {
            assert!(!b.ingest(tag(m, 0), &delta_of(&[115, 215])).unwrap());
        }
        assert!(b.ingest(tag(4, 0), &delta_of(&[115])).unwrap());
        b.reduce().unwrap();
        assert_eq!(b.batches(), 5);
        assert_eq!(b.generation(), ck.generations + 1);
    }

    #[test]
    fn serve_reports_staleness_from_pending_shards() {
        let cfg = ct_cfg::builder::diamond();
        let (bc, ec) = ([10u64, 100, 200, 5], [0u64; 4]);
        let mut core = ServiceCore::new(&ServiceConfig::new().shards(2), 1, EmOptions::default());
        core.ingest(tag(0, 0), &delta_of(&[115, 115, 215])).unwrap();
        core.reduce().unwrap();
        core.ingest(tag(1, 0), &delta_of(&[215])).unwrap();
        core.ingest(tag(2, 0), &delta_of(&[115])).unwrap();
        let resp = core
            .serve(&EstimateRequest::latest("d"), &cfg, &bc, &ec)
            .unwrap();
        assert_eq!(resp.staleness, 2, "two accepted batches await reduction");
        assert_eq!(resp.batches, 1);
        assert_eq!(resp.generation, 1);
    }
}

#![warn(missing_docs)]

//! # ct-stats
//!
//! Numeric substrate for the Code Tomography workspace: a small dense matrix
//! type with LU/QR solvers, Lawson–Hanson nonnegative least squares,
//! descriptive statistics, histograms, distribution helpers, and the error
//! metrics used to score estimated execution profiles against ground truth.
//!
//! Everything here is implemented from scratch (no external linear-algebra
//! dependencies) because the reproduction rules require the full substrate to
//! live in-repo, and the problem sizes — one unknown per branch edge of a
//! sensor-program procedure — are small enough that simple dense algorithms
//! are the right tool.
//!
//! ## Example
//!
//! ```
//! use ct_stats::matrix::Matrix;
//! use ct_stats::nnls::{nnls, NnlsOptions};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Recover nonnegative visit counts v from timing equations A v = t.
//! let a = Matrix::from_rows(&[&[10.0, 4.0], &[10.0, 0.0], &[0.0, 4.0]]);
//! let sol = nnls(&a, &[18.0, 10.0, 8.0], NnlsOptions::default())?;
//! assert!((sol.x[0] - 1.0).abs() < 1e-8);
//! assert!((sol.x[1] - 2.0).abs() < 1e-8);
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod descriptive;
pub mod dist;
pub mod hist;
pub mod matrix;
pub mod metrics;
pub mod nnls;
pub mod parallel;
pub mod pmf;
pub mod solve;

pub use cache::{ConvCache, ConvKey};
pub use descriptive::Summary;
pub use hist::Histogram;
pub use matrix::Matrix;
pub use nnls::{nnls, NnlsOptions, NnlsSolution};
pub use parallel::{par_map, thread_count};
pub use solve::{lstsq, Lu, SolveError};

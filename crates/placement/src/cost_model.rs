//! Prospective layout scoring and candidate selection.
//!
//! [`ct_cfg::layout::Layout::evaluate`] scores a layout against *measured*
//! integer edge counts; placement, however, works from *expected* (fractional)
//! traversal frequencies derived from estimated branch probabilities. This
//! module provides the fractional scorer and a best-of selector, so the
//! optimizer and the simulator use the same penalty arithmetic.

use ct_cfg::graph::{Cfg, EdgeKind};
use ct_cfg::layout::{Layout, PenaltyModel, TransferKind};

/// Expected extra cycles and misprediction statistics of a layout under
/// fractional edge frequencies.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ExpectedLayoutCost {
    /// Expected taken conditional branches per invocation.
    pub branches_taken: f64,
    /// Expected not-taken conditional branches per invocation.
    pub branches_not_taken: f64,
    /// Expected executed unconditional jumps per invocation.
    pub jumps_executed: f64,
    /// Expected extra cycles per invocation.
    pub extra_cycles: f64,
}

impl ExpectedLayoutCost {
    /// Expected misprediction rate (taken / all conditional executions).
    pub fn misprediction_rate(&self) -> f64 {
        let total = self.branches_taken + self.branches_not_taken;
        if total <= 0.0 {
            0.0
        } else {
            self.branches_taken / total
        }
    }
}

/// Scores `layout` against expected per-edge traversal frequencies.
///
/// # Panics
///
/// Panics if `edge_freq.len()` differs from the edge count.
pub fn expected_cost(
    cfg: &Cfg,
    layout: &Layout,
    edge_freq: &[f64],
    penalties: &PenaltyModel,
) -> ExpectedLayoutCost {
    let edges = cfg.edges();
    assert_eq!(
        edge_freq.len(),
        edges.len(),
        "one frequency per edge required"
    );
    let mut cost = ExpectedLayoutCost::default();
    for e in &edges {
        let f = edge_freq[e.index];
        if f <= 0.0 {
            continue;
        }
        let conditional = matches!(e.kind, EdgeKind::BranchTrue | EdgeKind::BranchFalse);
        match layout.transfer_kind(cfg, e.from, e.to) {
            TransferKind::FallThrough => {
                if conditional {
                    cost.branches_not_taken += f;
                }
            }
            TransferKind::TakenBranch | TransferKind::TakenBranchOverJump => {
                cost.branches_taken += f;
                cost.extra_cycles += f * penalties.taken_branch_extra as f64;
            }
            TransferKind::Jump => {
                cost.jumps_executed += f;
                cost.extra_cycles += f * penalties.jump_cycles as f64;
                if conditional {
                    cost.branches_not_taken += f;
                }
            }
        }
    }
    cost
}

/// Picks the candidate layout with the lowest expected extra cycles
/// (ties: earlier candidate wins).
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn best_layout(
    cfg: &Cfg,
    candidates: Vec<Layout>,
    edge_freq: &[f64],
    penalties: &PenaltyModel,
) -> Layout {
    assert!(!candidates.is_empty(), "need at least one candidate layout");
    candidates
        .into_iter()
        .map(|l| {
            let c = expected_cost(cfg, &l, edge_freq, penalties);
            (l, c.extra_cycles)
        })
        .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("costs are not NaN"))
        .map(|(l, _)| l)
        .expect("nonempty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_cfg::builder::diamond;
    use ct_cfg::graph::BlockId;
    use ct_cfg::profile::EdgeProfile;

    #[test]
    fn expected_cost_matches_integer_evaluate() {
        let cfg = diamond();
        let counts = vec![30u64, 10, 30, 10];
        let profile = EdgeProfile::from_counts(&cfg, counts.clone());
        let freq: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        let pen = PenaltyModel::avr();
        let layout = Layout::natural(&cfg);
        let exact = layout.evaluate(&cfg, &profile, &pen);
        let expected = expected_cost(&cfg, &layout, &freq, &pen);
        assert!((expected.extra_cycles - exact.extra_cycles as f64).abs() < 1e-9);
        assert!((expected.branches_taken - exact.branches_taken as f64).abs() < 1e-9);
        assert!((expected.misprediction_rate() - exact.misprediction_rate()).abs() < 1e-12);
    }

    #[test]
    fn best_layout_picks_cheapest() {
        let cfg = diamond();
        let freq = [90.0, 10.0, 90.0, 10.0];
        let pen = PenaltyModel::avr();
        let natural = Layout::natural(&cfg);
        let hot =
            Layout::from_order(&cfg, vec![BlockId(0), BlockId(1), BlockId(3), BlockId(2)]).unwrap();
        let best = best_layout(&cfg, vec![natural.clone(), hot.clone()], &freq, &pen);
        assert_eq!(best, hot);
    }

    #[test]
    fn zero_frequencies_cost_nothing() {
        let cfg = diamond();
        let c = expected_cost(
            &cfg,
            &Layout::natural(&cfg),
            &[0.0; 4],
            &PenaltyModel::avr(),
        );
        assert_eq!(c.extra_cycles, 0.0);
        assert_eq!(c.misprediction_rate(), 0.0);
    }
}

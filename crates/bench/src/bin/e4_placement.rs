//! E4 — Branch misprediction reduction by code placement (Table).
//!
//! Claim evaluated: placement driven by Code Tomography's *estimated*
//! profile reduces the taken-branch (misprediction) rate close to what the
//! exact profile achieves. Layouts compared on identical replayed inputs.

use ct_bench::{f4, write_result, Table};
use ct_cfg::layout::Layout;
use ct_mote::timer::VirtualTimer;
use ct_pipeline::{random_layout, EnvConfig, Mcu, RunConfig, Session};
use ct_placement::Strategy;

fn main() {
    let env = EnvConfig::load();
    eprintln!("e4: {}", env.banner());
    let n = env.pick(3_000, 400);
    let seed = env.seed_or(4_000);
    let mcu = Mcu::Avr;
    let mut table = Table::new(vec![
        "app",
        "natural",
        "random",
        "PH(true)",
        "PH(estimated)",
        "est-vs-true gap",
    ]);

    let apps = ct_apps::all_apps();
    let apps = &apps[..env.pick(apps.len(), 2)];
    for app in apps {
        // Profile once on the natural layout with the realistic coarse timer.
        let session = Session::new(
            RunConfig::for_app(app.clone())
                .on(mcu)
                .invocations(n)
                .resolution(VirtualTimer::mhz1_at_8mhz().cycles_per_tick())
                .seeded(seed),
        );
        let run = session.collect().expect("bundled apps must not trap");
        let est = session.estimate(&run).expect("estimation succeeds");
        let cfg = run.cfg().clone();

        let layouts: Vec<(&str, Layout)> = vec![
            ("natural", Layout::natural(&cfg)),
            ("random", random_layout(&cfg, 99)),
            (
                "PH(true)",
                session
                    .place(&run, &run.truth, Strategy::PettisHansen)
                    .expect("true profile places"),
            ),
            (
                "PH(estimated)",
                session
                    .place(&run, &est.estimate.probs, Strategy::PettisHansen)
                    .expect("estimated profile places"),
            ),
        ];

        let mut rates = Vec::new();
        for (_, layout) in &layouts {
            let evaluated = session.evaluate(layout).expect("replay must not trap");
            rates.push(evaluated.cost.misprediction_rate());
        }
        let gap = rates[3] - rates[2];
        table.row(vec![
            app.name.to_string(),
            f4(rates[0]),
            f4(rates[1]),
            f4(rates[2]),
            f4(rates[3]),
            f4(gap),
        ]);
        eprintln!("e4: {} done", app.name);
    }

    let out = format!(
        "# E4 — Misprediction (taken-branch) rate by layout\n\n\
         {n} invocations, identical inputs per layout (seed {seed}); profile taken on the\n\
         natural layout with a 1 MHz timer (see E2 for the resolution sweep); placement = Pettis–Hansen.\n\
         Static predict-not-taken: every taken conditional branch mispredicts.\n\
         {}\n\n{}",
        env.banner(),
        table.to_markdown()
    );
    println!("{out}");
    if !env.smoke {
        write_result("e4_placement.md", &out);
    }
}

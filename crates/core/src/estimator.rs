//! The estimator front door: method selection, a uniform result type, and
//! the graceful-degradation ladder for samples that crossed a faulty
//! measurement channel.

use crate::em::EmOptions;
use crate::fb::FbError;
use crate::flow_nnls::{estimate_flow, FlowError};
use crate::gnt::{estimate_gnt, GntError, GntOptions};
use crate::moments::{estimate_moments, MomentsError, MomentsOptions};
use crate::samples::{DurationSamples, SampleIssue, TimingSamples, TrimPolicy};
use ct_cfg::graph::Cfg;
use ct_cfg::profile::BranchProbs;
use std::error::Error;
use std::fmt;

/// Which estimation algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Exact EM over the time-expanded chain (default; most accurate).
    Em,
    /// EM on a counted-loop-unrolled model with tied copy parameters
    /// (compiler-assisted; see [`crate::unrolled`]).
    EmUnrolled,
    /// Mean/variance matching (cheap fallback for path-explosive CFGs).
    Moments,
    /// Generalized network tomography: characteristic-function matching
    /// (distribution-free; bounded per-sample influence).
    Gnt,
    /// Flow-constrained NNLS on the mean (linear inverse baseline).
    FlowMean,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Method::Em => "em",
            Method::EmUnrolled => "em+unroll",
            Method::Moments => "moments",
            Method::Gnt => "gnt",
            Method::FlowMean => "flow-mean",
        };
        f.write_str(s)
    }
}

/// Estimation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateOptions {
    /// Forced method; `None` selects EM with automatic fallback to moments
    /// when the time-expanded support explodes.
    pub method: Option<Method>,
    /// EM controls.
    pub em: EmOptions,
    /// Moments controls.
    pub moments: MomentsOptions,
    /// GNT (characteristic-function) controls.
    pub gnt: GntOptions,
    /// Extra random EM restarts beyond the flow-warm start (the best
    /// final likelihood wins). Coarse timers create mirror local optima when
    /// arm-cost differences are sub-tick; restarts are the standard cure.
    pub restarts: usize,
}

impl Default for EstimateOptions {
    fn default() -> Self {
        EstimateOptions {
            method: None,
            em: EmOptions::default(),
            moments: MomentsOptions::default(),
            gnt: GntOptions::default(),
            restarts: 2,
        }
    }
}

/// A branch-probability estimate with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    /// The estimated parameters.
    pub probs: BranchProbs,
    /// The method that produced them.
    pub method: Method,
    /// Iterations/sweeps the method used.
    pub iterations: usize,
    /// Whether the method's own convergence criterion was met (EM: the max
    /// parameter change fell below tolerance; moments: a sweep stopped
    /// improving before the cap; flow: always, it is a direct solve).
    pub converged: bool,
    /// The final convergence-criterion value (EM: max parameter change of
    /// the last iteration; other methods report `0.0`).
    pub final_delta: f64,
    /// Log-likelihood (EM only).
    pub loglik: Option<f64>,
    /// Samples the model could not explain (EM only).
    pub unexplained: usize,
}

/// Estimation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimateError {
    /// The input sample set was unusable (zero resolution, empty, or
    /// overflowing tick values).
    InvalidSamples(SampleIssue),
    /// EM failed (support explosion, shape mismatch, or the non-finite
    /// likelihood watchdog with no good iterate to rewind to).
    Em(FbError),
    /// Moments failed.
    Moments(MomentsError),
    /// GNT failed.
    Gnt(GntError),
    /// Flow failed.
    Flow(FlowError),
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimateError::InvalidSamples(i) => write!(f, "invalid samples: {i}"),
            EstimateError::Em(e) => write!(f, "em estimator: {e}"),
            EstimateError::Moments(e) => write!(f, "moments estimator: {e}"),
            EstimateError::Gnt(e) => write!(f, "gnt estimator: {e}"),
            EstimateError::Flow(e) => write!(f, "flow estimator: {e}"),
        }
    }
}

impl Error for EstimateError {}

impl From<SampleIssue> for EstimateError {
    fn from(issue: SampleIssue) -> EstimateError {
        EstimateError::InvalidSamples(issue)
    }
}

/// Estimates a procedure's branch probabilities from end-to-end timing
/// samples — the Code Tomography entry point.
///
/// With `method: None`, runs EM and falls back to moment matching when the
/// time-expanded dynamic program exceeds its budget.
///
/// # Errors
///
/// Returns the underlying method's error.
///
/// # Examples
///
/// ```
/// use ct_cfg::builder::diamond;
/// use ct_core::estimator::{estimate, EstimateOptions};
/// use ct_core::samples::TimingSamples;
///
/// let cfg = diamond();
/// let block_costs = [10, 100, 200, 5];
/// let edge_costs = [0, 0, 0, 0];
/// // 80% of runs take the fast (115-cycle) path.
/// let mut ticks = vec![115u64; 80];
/// ticks.extend(vec![215u64; 20]);
/// let samples = TimingSamples::new(ticks, 1);
/// let est = estimate(&cfg, &block_costs, &edge_costs, &samples,
///                    EstimateOptions::default()).unwrap();
/// assert!((est.probs.as_slice()[0] - 0.8).abs() < 0.01);
/// ```
pub fn estimate<S: DurationSamples + Sync + ?Sized>(
    cfg: &Cfg,
    block_costs: &[u64],
    edge_costs: &[u64],
    samples: &S,
    opts: EstimateOptions,
) -> Result<Estimate, EstimateError> {
    // Overflowing ticks would poison every downstream sum; reject up front.
    // Empty samples keep their method-specific semantics (EM reports the
    // prior, moments/flow error out).
    if let Err(issue @ SampleIssue::TickOverflow { .. }) = samples.validate() {
        return Err(issue.into());
    }
    match opts.method {
        Some(Method::Em) | Some(Method::EmUnrolled) => {
            run_em(cfg, block_costs, edge_costs, samples, opts).map_err(EstimateError::Em)
        }
        Some(Method::Moments) => {
            run_moments(cfg, block_costs, edge_costs, samples, opts).map_err(EstimateError::Moments)
        }
        Some(Method::Gnt) => {
            run_gnt(cfg, block_costs, edge_costs, samples, opts).map_err(EstimateError::Gnt)
        }
        Some(Method::FlowMean) => {
            let r = estimate_flow(cfg, block_costs, edge_costs, samples)
                .map_err(EstimateError::Flow)?;
            Ok(Estimate {
                probs: r.probs,
                method: Method::FlowMean,
                iterations: 1,
                converged: true,
                final_delta: 0.0,
                loglik: None,
                unexplained: 0,
            })
        }
        None => match run_em(cfg, block_costs, edge_costs, samples, opts) {
            Ok(e) => Ok(e),
            Err(FbError::SupportExplosion { .. }) => {
                run_moments(cfg, block_costs, edge_costs, samples, opts)
                    .map_err(EstimateError::Moments)
            }
            Err(e) => Err(EstimateError::Em(e)),
        },
    }
}

fn run_em<S: DurationSamples + Sync + ?Sized>(
    cfg: &Cfg,
    block_costs: &[u64],
    edge_costs: &[u64],
    samples: &S,
    opts: EstimateOptions,
) -> Result<Estimate, FbError> {
    // Warm-start from a cheap mean-matching flow fit: long loops at the
    // uniform prior make long observed durations exponentially unlikely (they
    // fall below the DP's pruning threshold and EM cannot move); starting
    // near the right mean fixes that. The flow NNLS solves one small linear
    // system (microseconds) where the former moments warm start ran a full
    // coordinate-descent sweep (milliseconds) — for warm-starting, matching
    // the mean is all that matters, and EM's fixed point is unchanged. Clamp
    // away from 0 and 1 so loop supports stay finite.
    let warm_init = match estimate_flow(cfg, block_costs, edge_costs, samples) {
        Ok(f) => {
            let clamped: Vec<f64> = f
                .probs
                .as_slice()
                .iter()
                .map(|p| p.clamp(0.02, 0.98))
                .collect();
            ct_cfg::profile::BranchProbs::from_vec(cfg, clamped)
        }
        Err(_) => ct_cfg::profile::BranchProbs::uniform(cfg, 0.5),
    };

    // Candidate starting points: the flow fit plus seeded random probes.
    let n_branches = warm_init.len();
    let mut inits = vec![warm_init];
    let mut state = 0x0C0D_E70Au64;
    for _ in 0..opts.restarts {
        let probe: Vec<f64> = (0..n_branches)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = (state >> 11) as f64 / (1u64 << 53) as f64;
                0.1 + 0.8 * u
            })
            .collect();
        inits.push(ct_cfg::profile::BranchProbs::from_vec(cfg, probe));
    }

    // All starting points are independent; fan them out. Results come back
    // in input order, so the best-of reduction below is identical to the
    // serial loop it replaces for any `CT_THREADS`.
    let indexed: Vec<(usize, ct_cfg::profile::BranchProbs)> =
        inits.into_iter().enumerate().collect();
    let attempts = ct_stats::parallel::par_map(indexed, |(restart, init)| {
        let res = crate::em::estimate_em_from(cfg, block_costs, edge_costs, samples, init, opts.em);
        match &res {
            Ok(r) => {
                // Restart 0 is the flow warm start, the rest are seeded
                // probes. All fields are deterministic engine outputs, so
                // the event content is thread-count-insensitive.
                let reason = if r.converged {
                    "tol"
                } else if r.rewound {
                    "rewound"
                } else {
                    "max_iter"
                };
                ct_obs::emit(
                    "em.restart",
                    vec![
                        ("restart", restart.into()),
                        ("iterations", r.iterations.into()),
                        ("converged", r.converged.into()),
                        ("reason", reason.into()),
                        ("final_delta", r.final_delta.into()),
                        ("loglik", r.loglik.into()),
                        ("unexplained", r.unexplained.into()),
                        ("rewound", r.rewound.into()),
                    ],
                );
            }
            Err(e) => ct_obs::emit(
                "em.restart_failed",
                vec![("restart", restart.into()), ("error", e.to_string().into())],
            ),
        }
        ct_obs::Counter::new("em.restarts").incr();
        res
    });

    let mut best: Option<crate::em::EmResult> = None;
    let mut last_err = None;
    for attempt in attempts {
        match attempt {
            Ok(r) => {
                // Fewer rejected samples first, then the higher likelihood.
                let better = match &best {
                    None => true,
                    Some(b) => {
                        (r.unexplained, std::cmp::Reverse(r.loglik))
                            < (b.unexplained, std::cmp::Reverse(b.loglik))
                    }
                };
                if better {
                    best = Some(r);
                }
            }
            Err(e) => last_err = Some(e),
        }
    }
    let r = match best {
        Some(r) => r,
        // `inits` is non-empty (the warm start is always pushed), so when no
        // attempt succeeded at least one error was recorded.
        None => {
            return Err(last_err.unwrap_or(FbError::Shape("no EM attempt ran".into())));
        }
    };
    Ok(Estimate {
        probs: r.probs,
        method: Method::Em,
        iterations: r.iterations,
        converged: r.converged,
        final_delta: r.final_delta,
        loglik: Some(r.loglik),
        unexplained: r.unexplained,
    })
}

fn run_moments<S: DurationSamples + ?Sized>(
    cfg: &Cfg,
    block_costs: &[u64],
    edge_costs: &[u64],
    samples: &S,
    opts: EstimateOptions,
) -> Result<Estimate, MomentsError> {
    let r = estimate_moments(cfg, block_costs, edge_costs, samples, opts.moments)?;
    Ok(Estimate {
        probs: r.probs,
        method: Method::Moments,
        iterations: r.sweeps,
        // The coordinate descent stops early only when a full sweep made no
        // progress; hitting the cap means it was still moving.
        converged: r.sweeps < opts.moments.sweeps,
        final_delta: 0.0,
        loglik: None,
        unexplained: 0,
    })
}

fn run_gnt<S: DurationSamples + ?Sized>(
    cfg: &Cfg,
    block_costs: &[u64],
    edge_costs: &[u64],
    samples: &S,
    opts: EstimateOptions,
) -> Result<Estimate, GntError> {
    let r = estimate_gnt(cfg, block_costs, edge_costs, samples, opts.gnt)?;
    Ok(Estimate {
        probs: r.probs,
        method: Method::Gnt,
        iterations: r.sweeps,
        // Same convention as moments: stopping before the sweep cap means a
        // full sweep made no progress.
        converged: r.sweeps < opts.gnt.sweeps,
        final_delta: 0.0,
        loglik: None,
        unexplained: 0,
    })
}

/// One rung of the graceful-degradation ladder, strongest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rung {
    /// Exact EM on the full (validated) sample set.
    FullEm,
    /// EM after robust outlier trimming.
    TrimmedEm,
    /// Characteristic-function inversion (GNT) on the trimmed samples:
    /// distribution-free, bounded per-sample influence — stronger than raw
    /// moment matching when the channel reshaped the distribution.
    Gnt,
    /// Method-of-moments on the trimmed samples.
    Moments,
    /// The static uniform prior — always answers, carries no information.
    Prior,
}

impl fmt::Display for Rung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rung::FullEm => "full-em",
            Rung::TrimmedEm => "trimmed-em",
            Rung::Gnt => "gnt",
            Rung::Moments => "moments",
            Rung::Prior => "prior",
        };
        f.write_str(s)
    }
}

/// Why one rung of the ladder was rejected (or how it answered).
#[derive(Debug, Clone, PartialEq)]
pub struct RungAttempt {
    /// The rung tried.
    pub rung: Rung,
    /// Whether its answer was accepted.
    pub accepted: bool,
    /// Human-readable outcome: the acceptance diagnostics or the rejection
    /// reason.
    pub detail: String,
}

/// Policy knobs for [`estimate_robust`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustOptions {
    /// Base estimation configuration for the EM/moments rungs.
    pub base: EstimateOptions,
    /// Largest tolerated fraction of samples the EM likelihood rejects as
    /// impossible before the rung's answer is considered untrustworthy.
    pub max_unexplained: f64,
    /// Slack on EM's own convergence flag: a run that stopped at the
    /// iteration cap still counts as settled when its last parameter change
    /// is below this. Coarse timers produce likelihood plateaus where EM
    /// keeps polishing long after the answer has stabilized; rejecting those
    /// runs would discard a good estimate for an optimizer technicality.
    pub max_final_delta: f64,
    /// Outlier-trimming policy of the `TrimmedEm`/`Gnt`/`Moments` rungs.
    pub trim: TrimPolicy,
    /// Largest tolerated fraction of samples removed by trimming before the
    /// trimmed rungs are considered to be estimating a different workload.
    pub max_trimmed: f64,
    /// Whether the GNT rung participates in the descent. Disabling it
    /// restores the pre-0.10 four-rung ladder exactly (the rung is recorded
    /// as policy-skipped so the audit trail stays complete).
    pub use_gnt: bool,
    /// Smallest GNT inversion confidence (fit × conditioning, the backend's
    /// own `[0, 1]` scale) the ladder accepts from that rung.
    pub min_gnt_confidence: f64,
}

impl Default for RobustOptions {
    fn default() -> Self {
        RobustOptions {
            base: EstimateOptions::default(),
            max_unexplained: 0.10,
            max_final_delta: 1e-3,
            trim: TrimPolicy::default(),
            max_trimmed: 0.60,
            use_gnt: true,
            min_gnt_confidence: 0.25,
        }
    }
}

/// A ladder estimate: the answer plus which rung produced it and why the
/// stronger rungs did not.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustEstimate {
    /// The accepted estimate.
    pub estimate: Estimate,
    /// The rung that answered.
    pub rung: Rung,
    /// Placement-facing confidence in `[0, 1]`: scaled down each rung and by
    /// the unexplained-sample fraction. `0.0` means "the prior — do not act
    /// on this".
    pub confidence: f64,
    /// Samples removed by trimming before the accepted rung ran (0 for
    /// `FullEm`/`Prior`).
    pub trimmed: usize,
    /// Every rung tried, in order, with its outcome.
    pub attempts: Vec<RungAttempt>,
}

/// Estimates branch probabilities through a degraded measurement channel by
/// walking the ladder **full EM → trimmed EM → GNT → moments → static
/// prior**, accepting the first rung whose answer passes its health checks.
///
/// Unlike [`estimate`], this never fails and never panics on hostile sample
/// sets (stuck-at ticks, merged windows, truncated batches …): every defect
/// either trims away or degrades the answer — the final rung is the uniform
/// prior with zero confidence, which downstream placement treats as "keep
/// the natural layout".
pub fn estimate_robust(
    cfg: &Cfg,
    block_costs: &[u64],
    edge_costs: &[u64],
    samples: &TimingSamples,
    opts: RobustOptions,
) -> RobustEstimate {
    let result = run_ladder(cfg, block_costs, edge_costs, samples, opts);
    // Attempts must read top-down no matter which rungs ran, were
    // policy-skipped, or short-circuited the descent.
    debug_assert!(
        result.attempts.windows(2).all(|w| w[0].rung < w[1].rung),
        "rung attempts out of descent order: {:?}",
        result.attempts
    );
    // The audit trail doubles as the observability record: one event per
    // rung attempted, one for the accepted answer. Content mirrors the
    // returned `attempts`, so it is deterministic at any `CT_THREADS`.
    for a in &result.attempts {
        ct_obs::emit(
            "ladder.rung",
            vec![
                ("rung", a.rung.to_string().into()),
                ("accepted", a.accepted.into()),
                ("detail", a.detail.as_str().into()),
            ],
        );
    }
    ct_obs::emit(
        "ladder.result",
        vec![
            ("rung", result.rung.to_string().into()),
            ("confidence", result.confidence.into()),
            ("trimmed", result.trimmed.into()),
        ],
    );
    ct_obs::Gauge::new("ladder.confidence").set(result.confidence);
    result
}

fn run_ladder(
    cfg: &Cfg,
    block_costs: &[u64],
    edge_costs: &[u64],
    samples: &TimingSamples,
    opts: RobustOptions,
) -> RobustEstimate {
    let mut attempts = Vec::new();
    let n = samples.len();

    // Rung 1: full EM on validated samples.
    if let Ok(r) = try_em_rung(
        Rung::FullEm,
        cfg,
        block_costs,
        edge_costs,
        samples,
        0,
        &opts,
        &mut attempts,
    ) {
        return r;
    }

    // Rung 2: EM on robustly trimmed samples. When this rung fails because
    // the *trimmed* data still cannot be reconciled with the timing model
    // (unexplained fraction over budget, or trimming would have to discard
    // most of the batch), the moments rung is poisoned too: means and
    // variances of data the model cannot explain measure the corruption, not
    // the program, and a confident wrong answer is worse than the prior.
    let (trimmed, dropped) = samples.trimmed(opts.trim);
    let trim_frac = if n == 0 {
        0.0
    } else {
        dropped as f64 / n as f64
    };
    let moments_poisoned;
    if trim_frac > opts.max_trimmed {
        attempts.push(RungAttempt {
            rung: Rung::TrimmedEm,
            accepted: false,
            detail: format!(
                "trimming removed {:.0}% of samples (> {:.0}% budget)",
                100.0 * trim_frac,
                100.0 * opts.max_trimmed
            ),
        });
        moments_poisoned = true;
    } else {
        match try_em_rung(
            Rung::TrimmedEm,
            cfg,
            block_costs,
            edge_costs,
            &trimmed,
            dropped,
            &opts,
            &mut attempts,
        ) {
            Ok(r) => return r,
            Err(rejection) => moments_poisoned = matches!(rejection, EmRejection::Inconsistent),
        }
    }

    // Rung 3: GNT (characteristic-function inversion) on the trimmed
    // samples. The poisoned-moments rule applies to this rung too: GNT is
    // distribution-free but it still fits the *measured* transform, and the
    // transform of data the timing model cannot explain describes the
    // corruption, not the program. Saturated statistics are refused inside
    // the backend (`GntError::SaturatedMoments`), the same contract as the
    // moments rung.
    if !opts.use_gnt {
        attempts.push(RungAttempt {
            rung: Rung::Gnt,
            accepted: false,
            detail: "skipped: disabled by policy (use_gnt = false)".into(),
        });
    } else if moments_poisoned {
        attempts.push(RungAttempt {
            rung: Rung::Gnt,
            accepted: false,
            detail: "skipped: trimmed samples are inconsistent with the timing model, \
                     so their transform is untrustworthy"
                .into(),
        });
    } else {
        match estimate_gnt(cfg, block_costs, edge_costs, &trimmed, opts.base.gnt) {
            Ok(r) if r.confidence >= opts.min_gnt_confidence => {
                attempts.push(RungAttempt {
                    rung: Rung::Gnt,
                    accepted: true,
                    detail: format!(
                        "sweeps={}, objective={:.2e}, inversion confidence {:.2}",
                        r.sweeps, r.objective, r.confidence
                    ),
                });
                let confidence = 0.55 * (1.0 - trim_frac) * r.confidence;
                return RobustEstimate {
                    estimate: Estimate {
                        probs: r.probs,
                        method: Method::Gnt,
                        iterations: r.sweeps,
                        converged: r.sweeps < opts.base.gnt.sweeps,
                        final_delta: 0.0,
                        loglik: None,
                        unexplained: 0,
                    },
                    rung: Rung::Gnt,
                    confidence,
                    trimmed: dropped,
                    attempts,
                };
            }
            Ok(r) => attempts.push(RungAttempt {
                rung: Rung::Gnt,
                accepted: false,
                detail: format!(
                    "inversion confidence {:.2} below the {:.2} floor",
                    r.confidence, opts.min_gnt_confidence
                ),
            }),
            Err(e) => attempts.push(RungAttempt {
                rung: Rung::Gnt,
                accepted: false,
                detail: e.to_string(),
            }),
        }
    }

    // Rung 4: moments on the trimmed samples (mean/variance only — outlier
    // clipping is essential before trusting second moments). Routed through
    // the front door so the overflow gate still applies.
    if moments_poisoned {
        attempts.push(RungAttempt {
            rung: Rung::Moments,
            accepted: false,
            detail: "skipped: trimmed samples are inconsistent with the timing model, \
                     so their moments are untrustworthy"
                .into(),
        });
    } else {
        let forced_moments = EstimateOptions {
            method: Some(Method::Moments),
            ..opts.base
        };
        match estimate(cfg, block_costs, edge_costs, &trimmed, forced_moments) {
            Ok(est) => {
                attempts.push(RungAttempt {
                    rung: Rung::Moments,
                    accepted: true,
                    detail: format!("sweeps={}", est.iterations),
                });
                let confidence = 0.4 * (1.0 - trim_frac);
                return RobustEstimate {
                    estimate: est,
                    rung: Rung::Moments,
                    confidence,
                    trimmed: dropped,
                    attempts,
                };
            }
            Err(e) => attempts.push(RungAttempt {
                rung: Rung::Moments,
                accepted: false,
                detail: e.to_string(),
            }),
        }
    }

    // Rung 5: the static prior always answers.
    attempts.push(RungAttempt {
        rung: Rung::Prior,
        accepted: true,
        detail: "uniform branch probabilities".into(),
    });
    RobustEstimate {
        estimate: Estimate {
            probs: BranchProbs::uniform(cfg, 0.5),
            method: Method::Moments,
            iterations: 0,
            converged: true,
            final_delta: 0.0,
            loglik: None,
            unexplained: 0,
        },
        rung: Rung::Prior,
        confidence: 0.0,
        trimmed: dropped,
        attempts,
    }
}

/// Why an EM rung declined to answer.
enum EmRejection {
    /// The samples are irreconcilable with the timing model (unexplained
    /// fraction over budget): summary statistics of the same data are
    /// untrustworthy too.
    Inconsistent,
    /// A mechanical failure (no convergence, support explosion, bad input):
    /// weaker summaries may still extract something.
    Other,
}

/// Runs one EM rung and applies its health checks; `Ok` when accepted.
#[allow(clippy::too_many_arguments)]
fn try_em_rung(
    rung: Rung,
    cfg: &Cfg,
    block_costs: &[u64],
    edge_costs: &[u64],
    samples: &TimingSamples,
    dropped: usize,
    opts: &RobustOptions,
    attempts: &mut Vec<RungAttempt>,
) -> Result<RobustEstimate, EmRejection> {
    let reject = |attempts: &mut Vec<RungAttempt>, detail: String| {
        attempts.push(RungAttempt {
            rung,
            accepted: false,
            detail,
        });
    };
    if let Err(issue) = samples.validate() {
        reject(attempts, issue.to_string());
        return Err(EmRejection::Other);
    }
    let forced = EstimateOptions {
        method: Some(Method::Em),
        ..opts.base
    };
    match estimate(cfg, block_costs, edge_costs, samples, forced) {
        Ok(est) => {
            let unex_frac = est.unexplained as f64 / samples.len().max(1) as f64;
            if !est.converged && est.final_delta > opts.max_final_delta {
                reject(
                    attempts,
                    format!(
                        "EM still moving at the iteration cap (delta {:.2e} > {:.0e})",
                        est.final_delta, opts.max_final_delta
                    ),
                );
                Err(EmRejection::Other)
            } else if est.loglik.map(|l| !l.is_finite()).unwrap_or(false)
                && est.unexplained < samples.len()
            {
                reject(attempts, "non-finite likelihood".into());
                Err(EmRejection::Other)
            } else if unex_frac > opts.max_unexplained {
                reject(
                    attempts,
                    format!(
                        "{:.0}% of samples unexplained (> {:.0}% budget)",
                        100.0 * unex_frac,
                        100.0 * opts.max_unexplained
                    ),
                );
                Err(EmRejection::Inconsistent)
            } else {
                attempts.push(RungAttempt {
                    rung,
                    accepted: true,
                    detail: format!(
                        "converged in {} iterations, {:.0}% unexplained",
                        est.iterations,
                        100.0 * unex_frac
                    ),
                });
                let base = match rung {
                    Rung::FullEm => 1.0,
                    _ => 0.7,
                };
                let total = samples.len() + dropped;
                let kept_frac = if total == 0 {
                    1.0
                } else {
                    samples.len() as f64 / total as f64
                };
                Ok(RobustEstimate {
                    confidence: base * (1.0 - unex_frac) * kept_frac,
                    estimate: est,
                    rung,
                    trimmed: dropped,
                    attempts: std::mem::take(attempts),
                })
            }
        }
        Err(e) => {
            reject(attempts, e.to_string());
            Err(EmRejection::Other)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fb::FbParams;
    use ct_cfg::builder::{diamond, while_loop};

    fn diamond_samples(
        p_fast: f64,
        n: usize,
    ) -> (ct_cfg::graph::Cfg, Vec<u64>, Vec<u64>, TimingSamples) {
        let cfg = diamond();
        let bc = vec![10u64, 100, 200, 5];
        let ec = vec![0u64; 4];
        let n_fast = (n as f64 * p_fast) as usize;
        let mut ticks = vec![115u64; n_fast];
        ticks.extend(vec![215u64; n - n_fast]);
        (cfg, bc, ec, TimingSamples::new(ticks, 1))
    }

    #[test]
    fn default_runs_em() {
        let (cfg, bc, ec, samples) = diamond_samples(0.6, 100);
        let e = estimate(&cfg, &bc, &ec, &samples, EstimateOptions::default()).unwrap();
        assert_eq!(e.method, Method::Em);
        assert!(e.loglik.is_some());
        assert!((e.probs.as_slice()[0] - 0.6).abs() < 0.01);
    }

    #[test]
    fn forced_methods_all_work() {
        let (cfg, bc, ec, samples) = diamond_samples(0.7, 200);
        for m in [Method::Em, Method::Moments, Method::FlowMean] {
            let opts = EstimateOptions {
                method: Some(m),
                ..Default::default()
            };
            let e = estimate(&cfg, &bc, &ec, &samples, opts).unwrap();
            assert_eq!(e.method, m);
            assert!(
                (e.probs.as_slice()[0] - 0.7).abs() < 0.05,
                "{m}: {:?}",
                e.probs
            );
        }
    }

    #[test]
    fn auto_falls_back_to_moments_on_explosion() {
        let cfg = while_loop();
        let bc = vec![2u64, 3, 10, 1];
        let ec = vec![0u64; cfg.edges().len()];
        // Long loop: q=0.9 → durations far out; strangle the DP budget so EM
        // cannot run.
        let mut ticks = Vec::new();
        for k in 0..60u64 {
            let copies = (2000.0 * 0.9f64.powi(k as i32) * 0.1) as usize;
            if copies > 0 {
                ticks.push(6 + 13 * k);
                ticks.extend(vec![6 + 13 * k; copies - 1]);
            }
        }
        let samples = TimingSamples::new(ticks, 1);
        let mut opts = EstimateOptions::default();
        opts.em.fb = FbParams {
            mass_eps: 1e-12,
            max_entries: 3,
            ..FbParams::default()
        };
        let e = estimate(&cfg, &bc, &ec, &samples, opts).unwrap();
        assert_eq!(e.method, Method::Moments);
        let est = e.probs.prob_true(ct_cfg::graph::BlockId(1)).unwrap();
        assert!((est - 0.9).abs() < 0.05, "estimated {est}");
    }

    #[test]
    fn method_display() {
        assert_eq!(Method::Em.to_string(), "em");
        assert_eq!(Method::FlowMean.to_string(), "flow-mean");
    }

    #[test]
    fn ladder_clean_samples_answer_at_full_em() {
        let (cfg, bc, ec, samples) = diamond_samples(0.7, 200);
        let r = estimate_robust(&cfg, &bc, &ec, &samples, RobustOptions::default());
        assert_eq!(r.rung, Rung::FullEm);
        assert!(r.confidence > 0.9, "confidence {}", r.confidence);
        assert_eq!(r.trimmed, 0);
        assert!((r.estimate.probs.as_slice()[0] - 0.7).abs() < 0.05);
        assert_eq!(r.attempts.len(), 1);
        assert!(r.attempts[0].accepted);
    }

    #[test]
    fn ladder_trims_stuck_at_counters() {
        // 9% stuck-at garbage: full EM rejects the sample set (overflow
        // validation), trimming recovers the clean bulk.
        let (cfg, bc, ec, samples) = diamond_samples(0.7, 200);
        let mut ticks = samples.ticks().to_vec();
        for _ in 0..20 {
            ticks.push(u64::MAX);
        }
        let dirty = TimingSamples::new(ticks, 1);
        let r = estimate_robust(&cfg, &bc, &ec, &dirty, RobustOptions::default());
        assert_eq!(r.rung, Rung::TrimmedEm);
        assert_eq!(r.trimmed, 20);
        assert!((r.estimate.probs.as_slice()[0] - 0.7).abs() < 0.05);
        assert!(r.confidence > 0.4 && r.confidence < 1.0);
        // The full-EM rejection is on the record.
        assert!(!r.attempts[0].accepted);
        assert_eq!(r.attempts[0].rung, Rung::FullEm);
    }

    #[test]
    fn ladder_empty_samples_reach_the_prior() {
        let cfg = diamond();
        let bc = vec![10u64, 100, 200, 5];
        let ec = vec![0u64; 4];
        let empty = TimingSamples::new(vec![], 1);
        let r = estimate_robust(&cfg, &bc, &ec, &empty, RobustOptions::default());
        assert_eq!(r.rung, Rung::Prior);
        assert_eq!(r.confidence, 0.0);
        assert_eq!(r.estimate.probs.as_slice(), &[0.5]);
        // All five rungs tried, only the last accepted, in descent order.
        assert_eq!(r.attempts.len(), 5);
        assert!(r.attempts[..4].iter().all(|a| !a.accepted));
        assert!(r.attempts[4].accepted);
        assert!(r.attempts.windows(2).all(|w| w[0].rung < w[1].rung));
    }

    #[test]
    fn ladder_skips_moments_when_bulk_is_off_model() {
        // 20% of samples sit 3 cycles off every possible path duration —
        // inside the trimming fences (they are not outliers, the channel
        // shifted them), so trimmed EM still can't explain them. Moments of
        // such a stream measure the corruption, not the program: the ladder
        // must fall through to the prior rather than answer confidently.
        let (cfg, bc, ec, samples) = diamond_samples(1.0, 80);
        let mut ticks = samples.ticks().to_vec();
        ticks.extend(vec![118u64; 20]);
        let shifted = TimingSamples::new(ticks, 1);
        let r = estimate_robust(&cfg, &bc, &ec, &shifted, RobustOptions::default());
        assert_eq!(r.rung, Rung::Prior, "attempts: {:?}", r.attempts);
        assert_eq!(r.confidence, 0.0);
        let moments = r
            .attempts
            .iter()
            .find(|a| a.rung == Rung::Moments)
            .expect("moments rung recorded");
        assert!(!moments.accepted);
        assert!(moments.detail.contains("skipped"), "{}", moments.detail);
        // The poisoned-moments rule covers the GNT rung too: the transform
        // of off-model data measures the corruption, not the program.
        let gnt = r
            .attempts
            .iter()
            .find(|a| a.rung == Rung::Gnt)
            .expect("gnt rung recorded");
        assert!(!gnt.accepted);
        assert!(gnt.detail.contains("skipped"), "{}", gnt.detail);
        assert!(r.attempts.windows(2).all(|w| w[0].rung < w[1].rung));
    }

    /// Loop samples under a strangled DP budget: both EM rungs fail with
    /// support explosion (a mechanical rejection, not inconsistency), so the
    /// descent reaches GNT, which needs no dynamic program and recovers the
    /// loop parameter from the transform.
    fn explosive_loop_case() -> (ct_cfg::graph::Cfg, Vec<u64>, Vec<u64>, TimingSamples) {
        let cfg = while_loop();
        let bc = vec![2u64, 3, 10, 1];
        let ec = vec![0u64; cfg.edges().len()];
        let mut ticks = Vec::new();
        for k in 0..60u64 {
            let copies = (2000.0 * 0.9f64.powi(k as i32) * 0.1) as usize;
            ticks.extend(vec![6 + 13 * k; copies]);
        }
        (cfg, bc, ec, TimingSamples::new(ticks, 1))
    }

    fn strangled_options() -> RobustOptions {
        let mut opts = RobustOptions::default();
        opts.base.em.fb = FbParams {
            mass_eps: 1e-12,
            max_entries: 3,
            ..FbParams::default()
        };
        opts
    }

    #[test]
    fn ladder_reaches_gnt_when_em_explodes() {
        let (cfg, bc, ec, samples) = explosive_loop_case();
        let r = estimate_robust(&cfg, &bc, &ec, &samples, strangled_options());
        assert_eq!(r.rung, Rung::Gnt, "attempts: {:?}", r.attempts);
        assert_eq!(r.estimate.method, Method::Gnt);
        let est = r
            .estimate
            .probs
            .prob_true(ct_cfg::graph::BlockId(1))
            .unwrap();
        assert!((est - 0.9).abs() < 0.05, "estimated {est}");
        // Between the trimmed-EM (0.7) and moments (0.4) confidence scales.
        assert!(r.confidence > 0.0 && r.confidence < 0.7, "{}", r.confidence);
        let rungs: Vec<Rung> = r.attempts.iter().map(|a| a.rung).collect();
        assert_eq!(rungs, vec![Rung::FullEm, Rung::TrimmedEm, Rung::Gnt]);
        assert!(r.attempts[2].accepted);
    }

    #[test]
    fn disabling_gnt_restores_the_four_rung_descent() {
        let (cfg, bc, ec, samples) = explosive_loop_case();
        let mut opts = strangled_options();
        opts.use_gnt = false;
        let r = estimate_robust(&cfg, &bc, &ec, &samples, opts);
        // Same scenario now answers at moments, and the policy skip is on
        // the record in descent position.
        assert_eq!(r.rung, Rung::Moments, "attempts: {:?}", r.attempts);
        let gnt = r
            .attempts
            .iter()
            .find(|a| a.rung == Rung::Gnt)
            .expect("policy-skipped gnt rung recorded");
        assert!(!gnt.accepted);
        assert!(gnt.detail.contains("policy"), "{}", gnt.detail);
        assert!(r.attempts.windows(2).all(|w| w[0].rung < w[1].rung));
    }

    #[test]
    fn rung_display_and_order() {
        assert_eq!(Rung::FullEm.to_string(), "full-em");
        assert_eq!(Rung::Gnt.to_string(), "gnt");
        assert_eq!(Rung::Prior.to_string(), "prior");
        assert!(Rung::FullEm < Rung::TrimmedEm);
        assert!(Rung::TrimmedEm < Rung::Gnt);
        assert!(Rung::Gnt < Rung::Moments);
        assert!(Rung::Moments < Rung::Prior);
    }

    #[test]
    fn error_display() {
        let e = EstimateError::Moments(MomentsError::NoSamples);
        assert!(e.to_string().contains("moments"));
    }
}

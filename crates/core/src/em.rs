//! The Code Tomography EM estimator.
//!
//! Maximum-likelihood estimation of the Markov branch parameters from
//! end-to-end timing observations, by expectation–maximization over the
//! time-expanded chain:
//!
//! - **E-step** ([`crate::fb::e_step`]): posterior expected traversal counts
//!   of every CFG edge given the observed (quantized) durations under the
//!   current parameters.
//! - **M-step**: each branch's probability is re-estimated as expected true
//!   traversals over expected visits.
//!
//! This is Baum–Welch on a semi-Markov chain whose emissions are cycle
//! costs, observed through the timer's quantization kernel.

use crate::fb::{e_step, e_step_cached, EStepCache, FbError, FbParams};
use crate::samples::DurationSamples;
use ct_cfg::graph::{Cfg, EdgeKind};
use ct_cfg::profile::BranchProbs;

/// EM configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmOptions {
    /// Iteration cap.
    pub max_iter: usize,
    /// Convergence threshold on the max parameter change.
    pub tol: f64,
    /// Probabilities are clamped into `[min_prob, 1 − min_prob]` to keep
    /// likelihoods finite (a branch never observed taken stays estimable).
    pub min_prob: f64,
    /// Symmetric Dirichlet pseudo-count per branch side (MAP-EM). `0.0` is
    /// plain maximum likelihood; small positive values (e.g. `1.0`) shrink
    /// low-sample estimates toward ½ and stabilize rarely-executed branches.
    pub prior_strength: f64,
    /// Dynamic-programming controls.
    pub fb: FbParams,
}

impl Default for EmOptions {
    fn default() -> Self {
        EmOptions {
            max_iter: 100,
            tol: 1e-5,
            min_prob: 1e-4,
            prior_strength: 0.0,
            fb: FbParams::default(),
        }
    }
}

/// The outcome of an EM run.
#[derive(Debug, Clone, PartialEq)]
pub struct EmResult {
    /// Estimated branch probabilities.
    pub probs: BranchProbs,
    /// Iterations executed.
    pub iterations: usize,
    /// Final log-likelihood of the explained samples.
    pub loglik: f64,
    /// Whether the parameter change fell below tolerance.
    pub converged: bool,
    /// The last max parameter change observed (the convergence criterion;
    /// `0.0` when no iteration ran).
    pub final_delta: f64,
    /// Samples the model could not explain at the final parameters.
    pub unexplained: usize,
    /// Posterior expected traversal counts per edge at the final E-step
    /// (summed over samples; used to fold unrolled-CFG estimates back).
    pub edge_counts: Vec<f64>,
    /// Whether the likelihood watchdog rewound to an earlier iterate after
    /// detecting a material likelihood decrease (numerical trouble; the
    /// returned parameters are the last good iterate).
    pub rewound: bool,
}

/// Estimates branch probabilities by EM, starting from the uninformative
/// `θ = 0.5`.
///
/// # Errors
///
/// Propagates [`FbError`] from the dynamic programs.
pub fn estimate_em<S: DurationSamples + ?Sized>(
    cfg: &Cfg,
    block_costs: &[u64],
    edge_costs: &[u64],
    samples: &S,
    opts: EmOptions,
) -> Result<EmResult, FbError> {
    estimate_em_from(
        cfg,
        block_costs,
        edge_costs,
        samples,
        BranchProbs::uniform(cfg, 0.5),
        opts,
    )
}

/// Estimates branch probabilities by EM from an explicit starting point
/// (used for restarts and warm starts).
///
/// Runs with a fresh per-run [`EStepCache`]: within the run, edges whose
/// forward/backward factors did not change between iterations reuse their
/// windowed convolution. Results are bit-identical to an uncached run.
///
/// # Errors
///
/// Propagates [`FbError`] from the dynamic programs.
pub fn estimate_em_from<S: DurationSamples + ?Sized>(
    cfg: &Cfg,
    block_costs: &[u64],
    edge_costs: &[u64],
    samples: &S,
    init: BranchProbs,
    opts: EmOptions,
) -> Result<EmResult, FbError> {
    let mut cache = EStepCache::new();
    estimate_em_cached(
        cfg,
        block_costs,
        edge_costs,
        samples,
        init,
        opts,
        &mut cache,
    )
}

/// [`estimate_em_from`] against a caller-owned [`EStepCache`], so the cache
/// survives across calls — the incremental path re-estimates each
/// [`crate::stream::SuffStats`] batch with the previous batch's cache, and
/// the warm start makes the first E-step's tables bitwise-identical to the
/// previous optimum's, turning its convolutions into pure cache hits.
///
/// Emits `em.cache.hit` / `em.cache.miss` counter deltas and one `em.cache`
/// event per run (deterministic content; thread-count-insensitive).
///
/// # Errors
///
/// Propagates [`FbError`] from the dynamic programs.
pub fn estimate_em_cached<S: DurationSamples + ?Sized>(
    cfg: &Cfg,
    block_costs: &[u64],
    edge_costs: &[u64],
    samples: &S,
    init: BranchProbs,
    opts: EmOptions,
    cache: &mut EStepCache,
) -> Result<EmResult, FbError> {
    let (h0, m0) = (cache.hits(), cache.misses());
    let result = estimate_em_loop(cfg, block_costs, edge_costs, samples, init, opts, cache);
    let (hits, misses) = (cache.hits() - h0, cache.misses() - m0);
    if hits + misses > 0 {
        ct_obs::Counter::new("em.cache.hit").add(hits);
        ct_obs::Counter::new("em.cache.miss").add(misses);
        ct_obs::emit(
            "em.cache",
            vec![
                ("hits", hits.into()),
                ("misses", misses.into()),
                ("hit_rate", (hits as f64 / (hits + misses) as f64).into()),
                ("enabled", cache.cache_enabled().into()),
            ],
        );
    }
    result
}

fn estimate_em_loop<S: DurationSamples + ?Sized>(
    cfg: &Cfg,
    block_costs: &[u64],
    edge_costs: &[u64],
    samples: &S,
    init: BranchProbs,
    opts: EmOptions,
    cache: &mut EStepCache,
) -> Result<EmResult, FbError> {
    let edges = cfg.edges();
    let branch_blocks = cfg.branch_blocks();
    // Per branch block: (true edge index, false edge index). A branch block
    // missing either arm is a malformed CFG — a data error, not a bug here.
    let mut branch_edges: Vec<(usize, usize)> = Vec::with_capacity(branch_blocks.len());
    for &bb in &branch_blocks {
        let arm = |kind: EdgeKind| {
            edges
                .iter()
                .find(|e| e.from == bb && e.kind == kind)
                .map(|e| e.index)
                .ok_or_else(|| FbError::Shape(format!("branch block {bb} lacks a {kind:?} edge")))
        };
        branch_edges.push((arm(EdgeKind::BranchTrue)?, arm(EdgeKind::BranchFalse)?));
    }

    let mut probs = init;
    let mut loglik = f64::NEG_INFINITY;
    let mut unexplained = 0;
    let mut converged = false;
    let mut iterations = 0;
    let mut final_delta = 0.0;

    if branch_blocks.is_empty() || samples.is_empty() {
        // Nothing to estimate; still report the likelihood once.
        let (exp, _) = e_step(cfg, block_costs, edge_costs, &probs, samples, opts.fb)?;
        return Ok(EmResult {
            probs,
            iterations: 0,
            loglik: exp.loglik,
            converged: true,
            final_delta: 0.0,
            unexplained: exp.unexplained,
            edge_counts: exp.counts,
            rewound: false,
        });
    }

    let mut edge_counts = vec![0.0; edges.len()];
    // Watchdog state: the last iterate whose likelihood was finite and
    // respected EM's ascent guarantee.
    let mut last_good: Option<(BranchProbs, f64, Vec<f64>, usize)> = None;
    for iter in 0..opts.max_iter {
        iterations = iter + 1;
        let (exp, _) = e_step_cached(
            cfg,
            block_costs,
            edge_costs,
            &probs,
            samples,
            opts.fb,
            cache,
        )?;

        // NaN/underflow guard: a non-finite likelihood or posterior count
        // means the DP degenerated; refuse to iterate on garbage.
        if exp.loglik.is_nan() || exp.counts.iter().any(|c| !c.is_finite()) {
            match last_good.take() {
                Some((p, ll, counts, unex)) => {
                    // Rewind to the last good iterate and stop.
                    return Ok(EmResult {
                        probs: p,
                        iterations,
                        loglik: ll,
                        converged: false,
                        final_delta,
                        unexplained: unex,
                        edge_counts: counts,
                        rewound: true,
                    });
                }
                None => {
                    return Err(FbError::NonFinite {
                        iteration: iterations,
                    })
                }
            }
        }

        // Likelihood-monotonicity watchdog: EM guarantees ascent on the
        // explained set; a material decrease signals numerical breakdown
        // (e.g. pruning interacting with near-zero mass). Rewind rather
        // than diverge. Only comparable while the explained set is stable.
        let ascent_floor = loglik - 1e-6 * loglik.abs().max(1.0);
        if iter > 0 && exp.unexplained == unexplained && exp.loglik < ascent_floor {
            if let Some((p, ll, counts, unex)) = last_good.take() {
                return Ok(EmResult {
                    probs: p,
                    iterations,
                    loglik: ll,
                    converged: false,
                    final_delta,
                    unexplained: unex,
                    edge_counts: counts,
                    rewound: true,
                });
            }
        }

        loglik = exp.loglik;
        unexplained = exp.unexplained;
        edge_counts = exp.counts.clone();
        last_good = Some((probs.clone(), loglik, edge_counts.clone(), unexplained));

        let mut max_delta: f64 = 0.0;
        let mut next = probs.clone();
        for (i, &bb) in branch_blocks.iter().enumerate() {
            let (ti, fi) = branch_edges[i];
            // MAP with a symmetric Beta(1+a, 1+a) prior: add `a` pseudo-counts
            // to each side (a = 0 recovers plain maximum likelihood).
            let a = opts.prior_strength.max(0.0);
            let nt = edge_counts[ti] + a;
            let nf = edge_counts[fi] + a;
            let total = nt + nf;
            if total <= 0.0 {
                continue; // branch unreachable under current data
            }
            let theta = (nt / total).clamp(opts.min_prob, 1.0 - opts.min_prob);
            // `bb` came from `branch_blocks`, so `prob_true` is always Some.
            let old = probs.prob_true(bb).unwrap_or(0.5);
            max_delta = max_delta.max((theta - old).abs());
            next.set_prob_true(bb, theta);
        }
        probs = next;
        final_delta = max_delta;
        if max_delta < opts.tol {
            converged = true;
            break;
        }
    }

    Ok(EmResult {
        probs,
        iterations,
        loglik,
        converged,
        final_delta,
        unexplained,
        edge_counts,
        // The watchdog's rewind paths return early above.
        rewound: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples::TimingSamples;
    use ct_cfg::builder::{diamond, diamond_chain, while_loop};
    use ct_cfg::graph::BlockId;
    use ct_markov::chain_from_cfg;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Generates synthetic tick samples from the true model.
    fn synth_samples(
        cfg: &ct_cfg::graph::Cfg,
        block_costs: &[u64],
        edge_costs: &[u64],
        truth: &BranchProbs,
        n: usize,
        cpt: u64,
        seed: u64,
    ) -> TimingSamples {
        // Fold edge costs into a sampling walk: easiest is a manual walk.
        let chain = chain_from_cfg(cfg, truth).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let edges = cfg.edges();
        let mut ticks = Vec::with_capacity(n);
        for i in 0..n {
            // Walk the chain, summing block + edge costs.
            let run = ct_markov::sample_run(&chain, cfg.entry().index(), &mut rng, 100_000)
                .expect("absorbing");
            let mut d: u64 = run.iter().map(|&b| block_costs[b]).sum();
            for w in run.windows(2) {
                let e = edges
                    .iter()
                    .find(|e| e.from.index() == w[0] && e.to.index() == w[1])
                    .expect("edge");
                d += edge_costs[e.index];
            }
            // Random phase quantization.
            let phase = (i as u64 * 7919) % cpt;
            ticks.push((phase + d) / cpt - phase / cpt);
        }
        TimingSamples::new(ticks, cpt)
    }

    #[test]
    fn recovers_diamond_probability_cycle_accurate() {
        let cfg = diamond();
        let bc = vec![10, 100, 200, 5];
        let ec = vec![1, 2, 0, 0];
        let truth = BranchProbs::from_vec(&cfg, vec![0.8]);
        let samples = synth_samples(&cfg, &bc, &ec, &truth, 2000, 1, 1);
        let r = estimate_em(&cfg, &bc, &ec, &samples, EmOptions::default()).unwrap();
        let est = r.probs.as_slice()[0];
        assert!((est - 0.8).abs() < 0.03, "estimated {est}");
        assert!(r.converged);
        assert_eq!(r.unexplained, 0);
    }

    #[test]
    fn recovers_diamond_probability_under_quantization() {
        let cfg = diamond();
        let bc = vec![10, 100, 200, 5];
        let ec = vec![1, 2, 0, 0];
        let truth = BranchProbs::from_vec(&cfg, vec![0.3]);
        // cpt = 244 is coarser than both path durations (116 / 217 cycles):
        // most samples are 0 or 1 ticks, yet the fractional split still
        // identifies the mixture.
        let samples = synth_samples(&cfg, &bc, &ec, &truth, 4000, 244, 2);
        let r = estimate_em(&cfg, &bc, &ec, &samples, EmOptions::default()).unwrap();
        let est = r.probs.as_slice()[0];
        assert!((est - 0.3).abs() < 0.06, "estimated {est}");
    }

    #[test]
    fn recovers_loop_continuation_probability() {
        let cfg = while_loop();
        let bc = vec![2, 3, 10, 1];
        let ec = vec![0; cfg.edges().len()];
        let truth = BranchProbs::from_vec(&cfg, vec![0.7]);
        let samples = synth_samples(&cfg, &bc, &ec, &truth, 1500, 1, 3);
        let r = estimate_em(&cfg, &bc, &ec, &samples, EmOptions::default()).unwrap();
        let est = r.probs.prob_true(BlockId(1)).unwrap();
        assert!((est - 0.7).abs() < 0.03, "estimated {est}");
    }

    #[test]
    fn recovers_multiple_branches() {
        let cfg = diamond_chain(3);
        // Distinct arm costs make all three branches identifiable.
        let bc = vec![10, 50, 90, 8, 120, 30, 12, 200, 70, 5];
        let ec = vec![0; cfg.edges().len()];
        let truth = BranchProbs::from_vec(&cfg, vec![0.9, 0.4, 0.65]);
        let samples = synth_samples(&cfg, &bc, &ec, &truth, 4000, 1, 4);
        let r = estimate_em(&cfg, &bc, &ec, &samples, EmOptions::default()).unwrap();
        for (est, tru) in r.probs.as_slice().iter().zip(truth.as_slice()) {
            assert!((est - tru).abs() < 0.05, "{:?} vs {:?}", r.probs, truth);
        }
    }

    #[test]
    fn branchless_cfg_is_trivially_converged() {
        let cfg = ct_cfg::builder::linear(3);
        let bc = vec![5, 6, 7];
        let ec = vec![0, 0];
        let samples = TimingSamples::new(vec![18, 18], 1);
        let r = estimate_em(&cfg, &bc, &ec, &samples, EmOptions::default()).unwrap();
        assert!(r.converged);
        assert_eq!(r.iterations, 0);
        assert!(r.probs.is_empty());
    }

    #[test]
    fn empty_samples_return_prior() {
        let cfg = diamond();
        let bc = vec![10, 100, 200, 5];
        let ec = vec![0; 4];
        let samples = TimingSamples::new(vec![], 1);
        let r = estimate_em(&cfg, &bc, &ec, &samples, EmOptions::default()).unwrap();
        assert_eq!(r.probs.as_slice()[0], 0.5);
    }

    #[test]
    fn loglik_increases_monotonically() {
        // EM guarantee: run a few fixed iteration counts and compare.
        let cfg = diamond();
        let bc = vec![10, 100, 200, 5];
        let ec = vec![0; 4];
        let truth = BranchProbs::from_vec(&cfg, vec![0.85]);
        let samples = synth_samples(&cfg, &bc, &ec, &truth, 500, 1, 5);
        let mut last = f64::NEG_INFINITY;
        for iters in [1, 2, 4, 8] {
            let opts = EmOptions {
                max_iter: iters,
                tol: 0.0,
                ..Default::default()
            };
            let r = estimate_em(&cfg, &bc, &ec, &samples, opts).unwrap();
            assert!(
                r.loglik >= last - 1e-9,
                "loglik decreased: {} -> {}",
                last,
                r.loglik
            );
            last = r.loglik;
        }
    }

    #[test]
    fn prior_shrinks_small_samples_toward_half() {
        let cfg = diamond();
        let bc = vec![10, 100, 200, 5];
        let ec = vec![0; 4];
        // Tiny, extreme sample: 5 fast observations only.
        let samples = TimingSamples::new(vec![115; 5], 1);
        let ml = estimate_em(&cfg, &bc, &ec, &samples, EmOptions::default()).unwrap();
        let map = estimate_em(
            &cfg,
            &bc,
            &ec,
            &samples,
            EmOptions {
                prior_strength: 2.0,
                ..Default::default()
            },
        )
        .unwrap();
        let p_ml = ml.probs.as_slice()[0];
        let p_map = map.probs.as_slice()[0];
        assert!(p_ml > 0.99, "ML saturates: {p_ml}");
        // MAP: (5+2)/(5+4) ≈ 0.778 — shrunk toward the prior.
        assert!((p_map - 7.0 / 9.0).abs() < 1e-6, "{p_map}");
    }

    #[test]
    fn zero_prior_is_plain_ml() {
        let cfg = diamond();
        let bc = vec![10, 100, 200, 5];
        let ec = vec![0; 4];
        let mut ticks = vec![115u64; 70];
        ticks.extend(vec![215u64; 30]);
        let samples = TimingSamples::new(ticks, 1);
        let a = estimate_em(&cfg, &bc, &ec, &samples, EmOptions::default()).unwrap();
        let b = estimate_em(
            &cfg,
            &bc,
            &ec,
            &samples,
            EmOptions {
                prior_strength: 0.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(a.probs, b.probs);
    }

    #[test]
    fn cached_em_is_bitwise_identical_to_uncached() {
        let cfg = diamond_chain(3);
        let bc = vec![10, 50, 90, 8, 120, 30, 12, 200, 70, 5];
        let ec = vec![0; cfg.edges().len()];
        let truth = BranchProbs::from_vec(&cfg, vec![0.9, 0.4, 0.65]);
        let samples = synth_samples(&cfg, &bc, &ec, &truth, 1000, 1, 11);
        let init = BranchProbs::uniform(&cfg, 0.5);
        let mut on = EStepCache::with_cache_enabled(true);
        let mut off = EStepCache::with_cache_enabled(false);
        let a = estimate_em_cached(
            &cfg,
            &bc,
            &ec,
            &samples,
            init.clone(),
            EmOptions::default(),
            &mut on,
        )
        .unwrap();
        let b = estimate_em_cached(
            &cfg,
            &bc,
            &ec,
            &samples,
            init,
            EmOptions::default(),
            &mut off,
        )
        .unwrap();
        assert_eq!(off.hits(), 0);
        for (x, y) in a.probs.as_slice().iter().zip(b.probs.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.loglik.to_bits(), b.loglik.to_bits());
        assert_eq!(a.iterations, b.iterations);
        for (x, y) in a.edge_counts.iter().zip(&b.edge_counts) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn warm_started_rerun_hits_the_cache() {
        // Re-estimating from the previous optimum rebuilds bitwise-identical
        // tables, so the first E-step's convolutions are all cache hits.
        let cfg = diamond();
        let bc = vec![10, 100, 200, 5];
        let ec = vec![0; 4];
        let truth = BranchProbs::from_vec(&cfg, vec![0.8]);
        let samples = synth_samples(&cfg, &bc, &ec, &truth, 800, 1, 12);
        let mut cache = EStepCache::with_cache_enabled(true);
        let first = estimate_em_cached(
            &cfg,
            &bc,
            &ec,
            &samples,
            BranchProbs::uniform(&cfg, 0.5),
            EmOptions::default(),
            &mut cache,
        )
        .unwrap();
        let h0 = cache.hits();
        let again = estimate_em_cached(
            &cfg,
            &bc,
            &ec,
            &samples,
            first.probs.clone(),
            EmOptions::default(),
            &mut cache,
        )
        .unwrap();
        assert!(cache.hits() > h0, "warm rerun produced no cache hits");
        for (x, y) in first.probs.as_slice().iter().zip(again.probs.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn warm_start_converges_faster() {
        let cfg = diamond();
        let bc = vec![10, 100, 200, 5];
        let ec = vec![0; 4];
        let truth = BranchProbs::from_vec(&cfg, vec![0.8]);
        let samples = synth_samples(&cfg, &bc, &ec, &truth, 1000, 1, 6);
        let cold = estimate_em(&cfg, &bc, &ec, &samples, EmOptions::default()).unwrap();
        let warm = estimate_em_from(
            &cfg,
            &bc,
            &ec,
            &samples,
            truth.clone(),
            EmOptions::default(),
        )
        .unwrap();
        assert!(warm.iterations <= cold.iterations);
        assert!((warm.probs.as_slice()[0] - cold.probs.as_slice()[0]).abs() < 0.01);
    }
}

//! Property-based tests (proptest) over the core invariants of the
//! workspace: compiler round-trips, the timing identity, Markov consistency,
//! layout validity and estimator sanity.

use code_tomography::apps::synthetic::{random_program, GenConfig};
use code_tomography::cfg::builder::diamond;
use code_tomography::cfg::layout::{Layout, PenaltyModel};
use code_tomography::cfg::profile::{BranchProbs, EdgeProfile};
use code_tomography::core::estimator::{estimate, EstimateOptions};
use code_tomography::core::quantize::tick_likelihood;
use code_tomography::core::samples::TimingSamples;
use code_tomography::markov;
use code_tomography::mote::cost::AvrCost;
use code_tomography::mote::devices::UniformAdc;
use code_tomography::mote::interp::Mote;
use code_tomography::mote::timer::VirtualTimer;
use code_tomography::mote::trace::{GroundTruthProfiler, PairProfiler, TimingProfiler};
use ct_ir::instr::ProcId;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated structured program compiles, validates, decomposes
    /// and runs trap-free.
    #[test]
    fn generated_programs_compile_and_run(seed in 0u64..500) {
        let program = random_program(seed, GenConfig::default());
        let proc = &program.procs[0];
        prop_assert!(proc.cfg.validate().is_ok());
        prop_assert!(code_tomography::cfg::structure::decompose(&proc.cfg).is_ok());
        let mut mote = Mote::new(program, Box::new(AvrCost));
        mote.devices.adc = Box::new(UniformAdc { lo: 0, hi: 1023 });
        mote.reseed(seed);
        for _ in 0..10 {
            prop_assert!(mote.call(ProcId(0), &[], &mut code_tomography::mote::trace::NullProfiler).is_ok());
        }
    }

    /// The timing identity: with a cycle-accurate timer and zero overhead,
    /// every measured window equals the executed path's static cost.
    #[test]
    fn measured_window_equals_path_cost(seed in 0u64..200) {
        let program = random_program(seed, GenConfig { decisions: 3, max_depth: 2, loop_share: 0.3 });
        let mut mote = Mote::new(program.clone(), Box::new(AvrCost));
        mote.devices.adc = Box::new(UniformAdc { lo: 0, hi: 1023 });
        mote.reseed(seed);
        let pid = ProcId(0);
        let mut gt = GroundTruthProfiler::new(&program);
        let mut tp = TimingProfiler::new(&program, VirtualTimer::cycle_accurate(), 0);
        let calls = 5u64;
        for _ in 0..calls {
            let mut pair = PairProfiler { a: &mut gt, b: &mut tp };
            mote.call(pid, &[], &mut pair).unwrap();
        }
        let cfg = &program.procs[0].cfg;
        let bc = mote.static_block_costs(pid);
        let ec = mote.static_edge_costs(pid);
        let visits = gt.profile(pid).block_visits(cfg, calls);
        let total_blocks: u64 = visits.iter().enumerate().map(|(i, &v)| v * bc[i]).sum();
        let total_edges: u64 = (0..cfg.edges().len())
            .map(|i| gt.profile(pid).count(i) * ec[i])
            .sum();
        let measured: u64 = tp.samples(pid).iter().sum();
        prop_assert_eq!(measured, total_blocks + total_edges);
    }

    /// The quantization kernel is a probability distribution and unbiased.
    #[test]
    fn quantization_kernel_sums_to_one(d in 0u64..100_000, cpt in 1u64..2_000) {
        let base = d / cpt;
        let total: f64 = (base.saturating_sub(1)..=base + 2)
            .map(|t| tick_likelihood(t, d, cpt))
            .sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let mean: f64 = (base.saturating_sub(1)..=base + 2)
            .map(|t| t as f64 * tick_likelihood(t, d, cpt))
            .sum();
        prop_assert!((mean - d as f64 / cpt as f64).abs() < 1e-9);
    }

    /// Expected visit counts from Markov theory are flow-consistent.
    #[test]
    fn expected_visits_are_flow_consistent(p in 0.01f64..0.99) {
        let cfg = diamond();
        let probs = BranchProbs::from_vec(&cfg, vec![p]);
        let visits = markov::visits::expected_visits(&cfg, &probs).unwrap();
        // entry flow in = 1; join flow = then + else.
        prop_assert!((visits[0] - 1.0).abs() < 1e-9);
        prop_assert!((visits[1] + visits[2] - 1.0).abs() < 1e-9);
        prop_assert!((visits[3] - 1.0).abs() < 1e-9);
        let edges = markov::visits::expected_edge_traversals(&cfg, &probs).unwrap();
        prop_assert!((edges[0] - p).abs() < 1e-9);
        prop_assert!((edges[1] - (1.0 - p)).abs() < 1e-9);
    }

    /// Pettis–Hansen layouts are always valid permutations with the entry
    /// first, and never lose to the natural layout on the weights they were
    /// given.
    #[test]
    fn ph_layout_validity_and_quality(w0 in 0u64..1000, w1 in 0u64..1000) {
        let cfg = diamond();
        let counts = vec![w0, w1, w0, w1];
        let profile = EdgeProfile::from_counts(&cfg, counts.clone());
        let weights: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        let layout = code_tomography::placement::pettis_hansen(&cfg, &weights);
        prop_assert_eq!(layout.order().len(), cfg.len());
        prop_assert_eq!(layout.order()[0], cfg.entry());
        let pen = PenaltyModel::avr();
        let ph_cost = layout.evaluate(&cfg, &profile, &pen);
        let nat_cost = Layout::natural(&cfg).evaluate(&cfg, &profile, &pen);
        prop_assert!(ph_cost.extra_cycles <= nat_cost.extra_cycles);
    }

    /// End-to-end estimator property: on a diamond with well-separated arm
    /// costs and exact timing, EM recovers the branch probability within
    /// sampling error.
    #[test]
    fn em_recovers_diamond_probability(p in 0.05f64..0.95, seed in 0u64..50) {
        let cfg = diamond();
        let bc = [10u64, 100, 220, 5];
        let ec = [0u64; 4];
        let n = 1500usize;
        // Deterministic pseudo-random Bernoulli stream.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut ticks = Vec::with_capacity(n);
        for _ in 0..n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            ticks.push(if u < p { 115 } else { 235 });
        }
        let empirical = ticks.iter().filter(|&&t| t == 115).count() as f64 / n as f64;
        let samples = TimingSamples::new(ticks, 1);
        let est = estimate(&cfg, &bc, &ec, &samples, EstimateOptions::default()).unwrap();
        prop_assert!((est.probs.as_slice()[0] - empirical).abs() < 0.01,
            "estimated {} vs empirical {}", est.probs.as_slice()[0], empirical);
    }
}

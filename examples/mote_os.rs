//! Event-driven mote demo: the TinyOS-style scheduler firing two timers and
//! a packet arrival process against the Surge routing app, with the timing
//! profiler collecting samples the whole time.
//!
//! Run with: `cargo run --example mote_os`

use code_tomography::apps;
use code_tomography::mote::cost::AvrCost;
use code_tomography::mote::harness::profile_events;
use code_tomography::mote::sched::{RxProcess, Scheduler, TimerBinding};
use code_tomography::mote::timer::VirtualTimer;

fn main() {
    // Two modules on one mote: the Surge router plus the Blink heartbeat,
    // compiled together.
    let source = format!(
        "{}\n",
        apps::surge::SOURCE.replace("module Surge {", "module SurgeNode {")
    );
    let program = code_tomography::ir::compile_source(&source).expect("compiles");
    let on_receive = program.proc_id("on_receive").expect("handler exists");

    let mut mote = code_tomography::mote::interp::Mote::new(program, Box::new(AvrCost));
    mote.devices.node_id = 3;
    mote.devices.radio.loss_prob = 0.1;

    // OS configuration: poll the radio every 100k cycles; packets arrive
    // every ~20k cycles on average.
    let mut sched = Scheduler::new();
    sched.add_timer(TimerBinding {
        period_cycles: 100_000,
        phase_cycles: 100_000,
        proc: on_receive,
        args: vec![],
    });
    sched.set_rx(RxProcess {
        mean_interval_cycles: 20_000,
        payload: (0, 1023),
    });

    let run = profile_events(&mut mote, &mut sched, 200, VirtualTimer::khz32_at_8mhz(), 0)
        .expect("no traps");

    let program = mote.program();
    let consumed = mote.globals.load(program.global_id("consumed").unwrap());
    let forwarded = mote.globals.load(program.global_id("forwarded").unwrap());
    let dropped = mote.globals.load(program.global_id("dropped").unwrap());

    println!(
        "mote OS demo: 200 timer events on node {}",
        mote.devices.node_id
    );
    println!("  events run:        {}", sched.events_run);
    println!("  missed deadlines:  {}", sched.missed_deadlines);
    println!("  packets consumed:  {consumed}");
    println!("  packets forwarded: {forwarded}");
    println!("  packets dropped:   {dropped}");
    println!(
        "  timing samples:    {}",
        run.samples[on_receive.index()].len()
    );
    println!("  cycles consumed:   {}", run.cycles_used);

    assert_eq!(sched.events_run, 200);
    assert_eq!(run.samples[on_receive.index()].len(), 200);
    assert!(consumed + forwarded + dropped > 100, "packets should flow");
    println!("ok: the event-driven OS drove the app and the profiler saw every activation");
}

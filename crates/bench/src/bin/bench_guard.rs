//! `bench_guard` — maintains and gates the benchmark trajectories.
//!
//! Two append-only run histories live at the repo root, each a JSON
//! document of timestamped entries (never a single snapshot):
//!
//! - `BENCH_fb.json` (schema `bench_fb/2`) — the estimation hot path.
//!   `scripts/bench_fb.sh` appends one entry per run; check.sh fails when
//!   the newest `estimators/em` mean regresses more than the allowed
//!   percentage against the best (lowest) previously recorded run.
//! - `BENCH_ingest.json` (schema `bench_ingest/1`) — the sharded service's
//!   ingest path. `scripts/bench_ingest.sh` appends the `service/ingest`
//!   mean printed by `e16_fleet_scale`, gated the same way.
//!
//! The schemas differ only in their guarded kernel and in `bench_fb/2`
//! additionally recording the e1 sweep's wall time; `check` and `validate`
//! dispatch on the schema marker the file itself declares.
//!
//! Subcommands:
//!
//! - `append <file> <threads> <e1_ms>` — reads criterion-shim `bench:` lines
//!   on stdin, appends one `bench_fb/2` run (migrating a legacy
//!   single-snapshot file into the first run, timestamped 0).
//! - `append-ingest <file> <threads>` — same, for a `bench_ingest/1` file
//!   (no e1 wall time).
//! - `check <file> [max_regress_pct]` — regression gate (default 15%).
//! - `validate <file>` — strict schema validation of the trajectory.

use ct_obs::json::{parse, write_escaped, Json};
use std::io::Read;
use std::process::ExitCode;

const SCHEMA_FB: &str = "bench_fb/2";
const SCHEMA_INGEST: &str = "bench_ingest/1";

/// The kernel a schema's regression gate guards.
fn guard_kernel(schema: &str) -> &'static str {
    if schema == SCHEMA_INGEST {
        "service/ingest"
    } else {
        "estimators/em"
    }
}

/// True when the schema records the e1 sweep's wall time per run.
fn records_e1(schema: &str) -> bool {
    schema == SCHEMA_FB
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("append") if args.len() == 4 => append(&args[1], &args[2], Some(&args[3]), SCHEMA_FB),
        Some("append-ingest") if args.len() == 3 => append(&args[1], &args[2], None, SCHEMA_INGEST),
        Some("check") if args.len() == 2 || args.len() == 3 => {
            check(&args[1], args.get(2).map(String::as_str))
        }
        Some("validate") if args.len() == 2 => validate_file(&args[1]),
        _ => Err(concat!(
            "usage: bench_guard append <file> <threads> <e1_ms>  (bench: lines on stdin)\n",
            "       bench_guard append-ingest <file> <threads>   (bench: lines on stdin)\n",
            "       bench_guard check <file> [max_regress_pct]\n",
            "       bench_guard validate <file>"
        )
        .to_string()),
    };
    match result {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("bench_guard: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// One benchmark run in a trajectory.
struct Run {
    timestamp: u64,
    threads: f64,
    /// Wall time of the full e1 sweep — recorded by `bench_fb/2` only.
    e1_ms: Option<f64>,
    kernels: Vec<(String, f64)>,
}

/// Loads a trajectory, returning the schema the file declares alongside its
/// runs. A missing file is an empty `default_schema` trajectory; a legacy
/// single-snapshot file (bare object with top-level `kernels`) migrates
/// into a one-run `bench_fb/2` history stamped 0.
fn load_runs(path: &str, default_schema: &'static str) -> Result<(&'static str, Vec<Run>), String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => return Ok((default_schema, Vec::new())), // no history yet
    };
    let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let (schema, runs_json): (&'static str, Vec<&Json>) =
        match (doc.get("schema").and_then(Json::as_str), doc.get("runs")) {
            (Some(SCHEMA_FB), Some(Json::Arr(runs))) => (SCHEMA_FB, runs.iter().collect()),
            (Some(SCHEMA_INGEST), Some(Json::Arr(runs))) => (SCHEMA_INGEST, runs.iter().collect()),
            (Some(other), _) => return Err(format!("{path}: unknown schema {other:?}")),
            // Legacy snapshot: treat the whole document as the only run.
            _ => (SCHEMA_FB, vec![&doc]),
        };
    let mut runs = Vec::with_capacity(runs_json.len());
    for (i, r) in runs_json.iter().enumerate() {
        runs.push(parse_run(r, records_e1(schema)).map_err(|e| format!("{path}: run {i}: {e}"))?);
    }
    Ok((schema, runs))
}

fn parse_run(r: &Json, requires_e1: bool) -> Result<Run, String> {
    let num = |key: &str| -> Result<f64, String> {
        r.get(key)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("missing numeric field {key:?}"))
    };
    let kernels_json = match r.get("kernels") {
        Some(Json::Arr(k)) => k,
        _ => return Err("missing kernels array".to_string()),
    };
    let mut kernels = Vec::with_capacity(kernels_json.len());
    for k in kernels_json {
        let name = k
            .get("kernel")
            .and_then(Json::as_str)
            .ok_or("kernel entry missing name")?;
        let ns = k
            .get("mean_ns_per_iter")
            .and_then(Json::as_num)
            .ok_or("kernel entry missing mean_ns_per_iter")?;
        if !(ns.is_finite() && ns >= 0.0) {
            return Err(format!("kernel {name:?}: invalid mean {ns}"));
        }
        kernels.push((name.to_string(), ns));
    }
    let e1_ms = if requires_e1 {
        Some(num("e1_accuracy_wall_ms")?)
    } else {
        None
    };
    Ok(Run {
        timestamp: r.get("timestamp").and_then(Json::as_num).unwrap_or(0.0) as u64,
        threads: num("threads")?,
        e1_ms,
        kernels,
    })
}

/// Renders a number the way the shell writer did: integers exactly, floats
/// with their shortest round-trip form.
fn write_num(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn render(schema: &str, runs: &[Run]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": ");
    write_escaped(&mut out, schema);
    out.push_str(",\n  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        out.push_str("    {\"timestamp\": ");
        write_num(&mut out, r.timestamp as f64);
        out.push_str(", \"threads\": ");
        write_num(&mut out, r.threads);
        if let Some(e1) = r.e1_ms {
            out.push_str(", \"e1_accuracy_wall_ms\": ");
            write_num(&mut out, e1);
        }
        out.push_str(", \"kernels\": [\n");
        for (j, (name, ns)) in r.kernels.iter().enumerate() {
            out.push_str("      {\"kernel\": ");
            write_escaped(&mut out, name);
            out.push_str(", \"mean_ns_per_iter\": ");
            write_num(&mut out, *ns);
            out.push('}');
            out.push_str(if j + 1 < r.kernels.len() { ",\n" } else { "\n" });
        }
        out.push_str("    ]}");
        out.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn append(
    path: &str,
    threads: &str,
    e1_ms: Option<&str>,
    schema: &'static str,
) -> Result<String, String> {
    let threads: f64 = threads
        .parse()
        .map_err(|_| format!("bad thread count {threads:?}"))?;
    let e1_ms: Option<f64> = e1_ms
        .map(|v| v.parse().map_err(|_| format!("bad e1 wall-ms {v:?}")))
        .transpose()?;
    let mut stdin = String::new();
    std::io::stdin()
        .read_to_string(&mut stdin)
        .map_err(|e| format!("reading stdin: {e}"))?;
    // "bench: <label> ... <mean_ns> ns/iter (<N> iters)"
    let mut kernels = Vec::new();
    for line in stdin.lines() {
        let Some(rest) = line.strip_prefix("bench: ") else {
            continue;
        };
        let Some((label, tail)) = rest.split_once(" ... ") else {
            continue;
        };
        let Some(ns_text) = tail.split(" ns/iter").next() else {
            continue;
        };
        let ns: f64 = ns_text
            .trim()
            .parse()
            .map_err(|_| format!("bad bench line {line:?}"))?;
        kernels.push((label.to_string(), ns));
    }
    if kernels.is_empty() {
        return Err("no bench: lines on stdin".to_string());
    }
    let timestamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (found, mut runs) = load_runs(path, schema)?;
    if found != schema {
        return Err(format!(
            "{path}: cannot append a {schema:?} run to a {found:?} trajectory"
        ));
    }
    runs.push(Run {
        timestamp,
        threads,
        e1_ms,
        kernels,
    });
    std::fs::write(path, render(schema, &runs)).map_err(|e| format!("writing {path}: {e}"))?;
    Ok(format!("appended run {} to {path}", runs.len()))
}

fn check(path: &str, max_pct: Option<&str>) -> Result<String, String> {
    let max_pct: f64 = match max_pct {
        Some(p) => p
            .parse()
            .map_err(|_| format!("bad regression percentage {p:?}"))?,
        None => 15.0,
    };
    let (schema, runs) = load_runs(path, SCHEMA_FB)?;
    let kernel = guard_kernel(schema);
    let latest = runs.last().ok_or("no recorded runs")?;
    let guarded_of = |r: &Run| {
        r.kernels
            .iter()
            .find(|(k, _)| k == kernel)
            .map(|&(_, ns)| ns)
    };
    let current = guarded_of(latest).ok_or_else(|| format!("latest run lacks {kernel}"))?;
    let best = runs[..runs.len() - 1]
        .iter()
        .filter_map(guarded_of)
        .fold(f64::INFINITY, f64::min);
    if !best.is_finite() {
        return Ok(format!(
            "{kernel}: {current:.0} ns/iter (first recorded run; nothing to gate against)"
        ));
    }
    let limit = best * (1.0 + max_pct / 100.0);
    if current > limit {
        return Err(format!(
            "{kernel} regressed: {current:.0} ns/iter vs best {best:.0} \
             (limit {limit:.0}, +{max_pct}%)"
        ));
    }
    Ok(format!(
        "{kernel}: {current:.0} ns/iter vs best {best:.0} (within +{max_pct}%)"
    ))
}

fn validate_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let schema = match doc.get("schema").and_then(Json::as_str) {
        Some(s @ (SCHEMA_FB | SCHEMA_INGEST)) => s.to_string(),
        Some(other) => {
            return Err(format!(
                "{path}: schema {other:?}, want {SCHEMA_FB:?} or {SCHEMA_INGEST:?}"
            ))
        }
        None => return Err(format!("{path}: missing schema marker (legacy snapshot?)")),
    };
    let (_, runs) = load_runs(path, SCHEMA_FB)?;
    if runs.is_empty() {
        return Err(format!("{path}: empty run history"));
    }
    Ok(format!(
        "{path}: valid {schema} trajectory with {} run(s)",
        runs.len()
    ))
}

//! Quickstart: compile a sensor program, run it on the simulated mote with
//! end-to-end timing instrumentation only, and recover its branch
//! probabilities with Code Tomography — all through the `ct-pipeline`
//! session API.
//!
//! Run with: `cargo run --example quickstart`

use code_tomography::ir;
use code_tomography::mote::devices::UniformAdc;
use code_tomography::mote::interp::Mote;
use code_tomography::pipeline::{RunConfig, Session};

/// Device setup for the demo mote: a uniform sensor field, so the
/// threshold crossing has a known true probability.
fn uniform_field(mote: &mut Mote) {
    mote.devices.adc = Box::new(UniformAdc { lo: 0, hi: 1023 });
}

fn main() {
    // 1. A sensor program: sample the ADC, branch on a threshold.
    let source = r#"
        module Demo {
            var threshold: u16 = 768;
            var alarms: u32;

            proc check() {
                var v: u16 = read_adc();
                if (v > threshold) {
                    alarms = alarms + 1;
                    var sent: bool = send_msg(v);
                    led_set(0, 1);
                } else {
                    led_set(0, 0);
                }
            }
        }
    "#;
    let program = ir::compile_source(source).expect("demo source compiles");
    let pid = program.proc_id("check").expect("check exists");

    // 2. One pipeline session: an AVR-class mote with a uniform sensor
    //    field, 2000 activations, measuring ONLY entry/exit timestamps on a
    //    32.768 kHz timer (what a real mote can afford; 244 cycles/tick at
    //    8 MHz). With threshold 768 over 0..=1023, the true alarm
    //    probability is 255/1024 ≈ 0.249.
    let session = Session::new(
        RunConfig::for_program(program, pid.index(), uniform_field)
            .invocations(2000)
            .resolution(244),
    );

    // 3. Measure. Ground truth rides along for scoring only — the
    //    estimator never sees it.
    let run = session.collect().expect("runs clean");

    // 4. Estimate branch probabilities from the timing samples alone, and
    //    score them against the ground truth the estimator never saw.
    let est = session.estimate(&run).expect("estimation succeeds");

    println!("Code Tomography quickstart");
    println!("--------------------------");
    println!(
        "samples:            {} activations at {} cycles/tick",
        run.samples.len(),
        run.samples.cycles_per_tick()
    );
    println!("method:             {}", est.estimate.method);
    for (i, bb) in est.estimate.probs.blocks().iter().enumerate() {
        println!(
            "branch {bb}:         estimated {:.4}   true {:.4}",
            est.estimate.probs.as_slice()[i],
            run.truth.as_slice()[i],
        );
    }
    let err = (est.estimate.probs.as_slice()[0] - run.truth.as_slice()[0]).abs();
    println!("absolute error:     {err:.4}");
    assert!(err < 0.05, "estimation should be accurate");
    println!("ok: recovered the branch profile from end-to-end timing alone");
}

//! Flow-constrained nonnegative least squares — the "tomography" linear
//! inverse on mean timings.
//!
//! Unknowns are the expected per-invocation traversal counts of every CFG
//! edge. Two families of equations constrain them:
//!
//! - **flow conservation**: at every non-return block, outgoing traversals
//!   equal incoming traversals (plus 1 at the entry);
//! - **the mean timing equation**: the expected end-to-end duration is the
//!   entry block's cost plus, for every edge, its traversal count times
//!   (edge cost + destination block cost).
//!
//! The system is solved by NNLS (traversal counts cannot be negative). With
//! only the mean observed, multi-branch procedures are under-determined —
//! this estimator is the weakest of the three by construction, and
//! experiment E7 shows exactly where it breaks; it earns its keep on
//! single-decision procedures and as a sanity cross-check.

use crate::samples::{DurationSamples, TimingSamples};
use ct_cfg::graph::{Cfg, EdgeKind, Terminator};
use ct_cfg::profile::BranchProbs;
use ct_stats::matrix::Matrix;
use ct_stats::nnls::{nnls, NnlsOptions};
use std::error::Error;
use std::fmt;

/// Failure of the flow estimator.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// No samples were provided.
    NoSamples,
    /// The NNLS solve failed.
    Numeric(String),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::NoSamples => write!(f, "no timing samples provided"),
            FlowError::Numeric(m) => write!(f, "numeric failure: {m}"),
        }
    }
}

impl Error for FlowError {}

/// The outcome of a flow fit.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowResult {
    /// Estimated branch probabilities.
    pub probs: BranchProbs,
    /// Estimated per-invocation edge traversal counts.
    pub edge_traversals: Vec<f64>,
    /// NNLS residual norm.
    pub residual: f64,
}

/// Weight of the flow-conservation rows relative to the (normalized) timing
/// row. Flow must hold almost exactly; the timing row absorbs noise.
const FLOW_WEIGHT: f64 = 100.0;

/// Estimates branch probabilities from the sample mean via flow-constrained
/// NNLS.
///
/// # Errors
///
/// [`FlowError::NoSamples`] on empty input; [`FlowError::Numeric`] if NNLS
/// fails.
pub fn estimate_flow<S: DurationSamples + ?Sized>(
    cfg: &Cfg,
    block_costs: &[u64],
    edge_costs: &[u64],
    samples: &S,
) -> Result<FlowResult, FlowError> {
    if samples.is_empty() {
        return Err(FlowError::NoSamples);
    }
    let edges = cfg.edges();
    let ne = edges.len();
    let mean_cycles = samples.mean_cycles();

    if ne == 0 {
        return Ok(FlowResult {
            probs: BranchProbs::uniform(cfg, 0.5),
            edge_traversals: vec![],
            residual: 0.0,
        });
    }

    // Rows: one per non-return block (flow), plus the timing row.
    let flow_blocks: Vec<_> = cfg
        .iter()
        .filter(|(_, b)| !matches!(b.term, Terminator::Return))
        .map(|(id, _)| id)
        .collect();
    let rows = flow_blocks.len() + 1;
    let mut a = Matrix::zeros(rows, ne);
    let mut b = vec![0.0; rows];

    for (ri, &blk) in flow_blocks.iter().enumerate() {
        for e in &edges {
            if e.from == blk {
                a[(ri, e.index)] += FLOW_WEIGHT;
            }
            if e.to == blk {
                a[(ri, e.index)] -= FLOW_WEIGHT;
            }
        }
        b[ri] = if blk == cfg.entry() { FLOW_WEIGHT } else { 0.0 };
    }

    // Timing row, normalized by the mean so its scale matches the flow rows.
    let scale = mean_cycles.abs().max(1.0);
    let ti = rows - 1;
    for e in &edges {
        a[(ti, e.index)] = (edge_costs[e.index] + block_costs[e.to.index()]) as f64 / scale;
    }
    b[ti] = (mean_cycles - block_costs[cfg.entry().index()] as f64) / scale;

    let sol =
        nnls(&a, &b, NnlsOptions::default()).map_err(|e| FlowError::Numeric(e.to_string()))?;

    // Branch probabilities from estimated traversals.
    let mut probs = BranchProbs::uniform(cfg, 0.5);
    for bb in cfg.branch_blocks() {
        let t = edges
            .iter()
            .find(|e| e.from == bb && e.kind == EdgeKind::BranchTrue)
            .map(|e| sol.x[e.index])
            .unwrap_or(0.0);
        let f = edges
            .iter()
            .find(|e| e.from == bb && e.kind == EdgeKind::BranchFalse)
            .map(|e| sol.x[e.index])
            .unwrap_or(0.0);
        if t + f > 1e-9 {
            probs.set_prob_true(bb, (t / (t + f)).clamp(0.0, 1.0));
        }
    }

    Ok(FlowResult {
        probs,
        edge_traversals: sol.x,
        residual: sol.residual_norm,
    })
}

/// Runs [`estimate_flow`] for a batch of procedures in parallel
/// (`ct_stats::parallel`), one result per input in input order.
///
/// Each tuple is one independent NNLS problem — a whole program's worth of
/// procedures is estimated in one fan-out. Results are position-stable, so
/// parallel and serial execution are indistinguishable to callers.
pub fn estimate_flow_many(
    procedures: Vec<(&Cfg, &[u64], &[u64], &TimingSamples)>,
) -> Vec<Result<FlowResult, FlowError>> {
    ct_stats::parallel::par_map(procedures, |(cfg, block_costs, edge_costs, samples)| {
        estimate_flow(cfg, block_costs, edge_costs, samples)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_cfg::builder::{diamond, linear, while_loop};
    use ct_cfg::graph::BlockId;

    #[test]
    fn single_branch_is_identified_from_the_mean() {
        let cfg = diamond();
        let bc = vec![10u64, 100, 200, 5];
        let ec = vec![0u64; 4];
        // p = 0.75 → mean = 10 + 0.75·100 + 0.25·200 + 5 = 140.
        let samples = TimingSamples::new(vec![140; 100], 1);
        let r = estimate_flow(&cfg, &bc, &ec, &samples).unwrap();
        let est = r.probs.as_slice()[0];
        assert!((est - 0.75).abs() < 0.02, "estimated {est}");
    }

    #[test]
    fn flow_conservation_holds_in_solution() {
        let cfg = diamond();
        let bc = vec![10u64, 100, 200, 5];
        let ec = vec![0u64; 4];
        let samples = TimingSamples::new(vec![140; 10], 1);
        let r = estimate_flow(&cfg, &bc, &ec, &samples).unwrap();
        // cond out-flow = 1; join in-flow = 1.
        let x = &r.edge_traversals;
        assert!((x[0] + x[1] - 1.0).abs() < 0.01, "{x:?}");
        assert!((x[2] + x[3] - 1.0).abs() < 0.01, "{x:?}");
    }

    #[test]
    fn loop_iteration_count_from_mean() {
        let cfg = while_loop();
        let bc = vec![2u64, 3, 10, 1];
        let ec = vec![0u64; cfg.edges().len()];
        // q = 0.75 → visits: header 4, body 3 → mean = 2 + 12 + 30 + 1 = 45.
        let samples = TimingSamples::new(vec![45; 50], 1);
        let r = estimate_flow(&cfg, &bc, &ec, &samples).unwrap();
        let est = r.probs.prob_true(BlockId(1)).unwrap();
        assert!((est - 0.75).abs() < 0.03, "estimated {est}");
    }

    #[test]
    fn branchless_procedure_is_trivial() {
        let cfg = linear(3);
        let bc = vec![5u64, 6, 7];
        let ec = vec![0u64; 2];
        let samples = TimingSamples::new(vec![18; 5], 1);
        let r = estimate_flow(&cfg, &bc, &ec, &samples).unwrap();
        assert!(r.probs.is_empty());
        assert!((r.edge_traversals[0] - 1.0).abs() < 0.01);
    }

    #[test]
    fn batch_estimation_matches_individual_runs() {
        let d = diamond();
        let w = while_loop();
        let d_bc = vec![10u64, 100, 200, 5];
        let d_ec = vec![0u64; 4];
        let w_bc = vec![2u64, 3, 10, 1];
        let w_ec = vec![0u64; w.edges().len()];
        let d_samples = TimingSamples::new(vec![140; 100], 1);
        let w_samples = TimingSamples::new(vec![45; 50], 1);
        let batch = estimate_flow_many(vec![
            (&d, &d_bc[..], &d_ec[..], &d_samples),
            (&w, &w_bc[..], &w_ec[..], &w_samples),
        ]);
        assert_eq!(batch.len(), 2);
        let d_solo = estimate_flow(&d, &d_bc, &d_ec, &d_samples).unwrap();
        let w_solo = estimate_flow(&w, &w_bc, &w_ec, &w_samples).unwrap();
        assert_eq!(batch[0].as_ref().unwrap(), &d_solo);
        assert_eq!(batch[1].as_ref().unwrap(), &w_solo);
    }

    #[test]
    fn empty_samples_rejected() {
        let cfg = diamond();
        let samples = TimingSamples::new(vec![], 1);
        assert_eq!(
            estimate_flow(&cfg, &[1; 4], &[0; 4], &samples),
            Err(FlowError::NoSamples)
        );
    }

    #[test]
    fn quantized_mean_still_works() {
        let cfg = diamond();
        let bc = vec![10u64, 100, 200, 5];
        let ec = vec![0u64; 4];
        // mean 140 cycles at cpt=8: ticks mostly 17/18.
        let mut ticks = vec![17u64; 50];
        ticks.extend(vec![18u64; 50]);
        let samples = TimingSamples::new(ticks, 8);
        let r = estimate_flow(&cfg, &bc, &ec, &samples).unwrap();
        let est = r.probs.as_slice()[0];
        assert!((est - 0.75).abs() < 0.1, "estimated {est}");
    }
}

//! Building the per-procedure Markov chain from a CFG and branch
//! probabilities — the paper's program model.

use crate::chain::{ChainError, Dtmc};
use ct_cfg::graph::{Cfg, Terminator};
use ct_cfg::profile::BranchProbs;
use ct_stats::matrix::Matrix;

/// Builds the discrete-time Markov chain of a procedure: one state per basic
/// block, transition probabilities from `probs`, return blocks absorbing.
///
/// # Errors
///
/// Propagates [`ChainError`] if the assembled matrix is invalid (which would
/// indicate an inconsistent `probs` vector).
///
/// # Examples
///
/// ```
/// use ct_cfg::builder::diamond;
/// use ct_cfg::profile::BranchProbs;
/// use ct_markov::builder::chain_from_cfg;
/// let cfg = diamond();
/// let chain = chain_from_cfg(&cfg, &BranchProbs::from_vec(&cfg, vec![0.8])).unwrap();
/// assert!((chain.prob(0, 1) - 0.8).abs() < 1e-12);
/// assert!(chain.is_absorbing_state(3));
/// ```
pub fn chain_from_cfg(cfg: &Cfg, probs: &BranchProbs) -> Result<Dtmc, ChainError> {
    let n = cfg.len();
    let mut p = Matrix::zeros(n, n);
    for (id, b) in cfg.iter() {
        match b.term {
            Terminator::Jump(t) => p[(id.index(), t.index())] = 1.0,
            Terminator::Branch { on_true, on_false } => {
                let pt = probs.prob_true(id).unwrap_or(0.5);
                p[(id.index(), on_true.index())] = pt;
                p[(id.index(), on_false.index())] = 1.0 - pt;
            }
            Terminator::Return => p[(id.index(), id.index())] = 1.0,
        }
    }
    Dtmc::new(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_cfg::builder::{diamond, linear, while_loop};
    use ct_cfg::graph::BlockId;

    #[test]
    fn linear_chain_is_deterministic() {
        let cfg = linear(3);
        let chain = chain_from_cfg(&cfg, &BranchProbs::uniform(&cfg, 0.5)).unwrap();
        assert_eq!(chain.prob(0, 1), 1.0);
        assert_eq!(chain.prob(1, 2), 1.0);
        assert!(chain.is_absorbing_state(2));
    }

    #[test]
    fn branch_probabilities_transfer() {
        let cfg = diamond();
        let probs = BranchProbs::from_vec(&cfg, vec![0.25]);
        let chain = chain_from_cfg(&cfg, &probs).unwrap();
        assert!((chain.prob(0, 1) - 0.25).abs() < 1e-12);
        assert!((chain.prob(0, 2) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn loop_back_edge_probability() {
        let cfg = while_loop();
        let mut probs = BranchProbs::uniform(&cfg, 0.5);
        probs.set_prob_true(BlockId(1), 0.9);
        let chain = chain_from_cfg(&cfg, &probs).unwrap();
        assert!((chain.prob(1, 2) - 0.9).abs() < 1e-12);
        assert!((chain.prob(1, 3) - 0.1).abs() < 1e-12);
        assert_eq!(chain.prob(2, 1), 1.0);
    }

    #[test]
    fn exactly_exits_absorb() {
        let cfg = diamond();
        let chain = chain_from_cfg(&cfg, &BranchProbs::uniform(&cfg, 0.5)).unwrap();
        assert_eq!(chain.absorbing_states(), vec![3]);
    }
}

#!/usr/bin/env bash
# Lint gate: formatting and clippy across the whole workspace, warnings as
# errors. Run before pushing; CI runs the same two commands.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== OK =="

//! Test-runner configuration and case outcomes.

/// Why a generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed (`prop_assert!` and friends).
    Fail(String),
    /// The case was discarded by `prop_assume!`.
    Reject,
}

/// Result type of a property body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (mirrors `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream defaults to 256; 64 keeps the simulation-heavy suites
        // fast while still exercising the properties.
        ProptestConfig { cases: 64 }
    }
}

//! Code layout: the flash-memory order of basic blocks and its cost model.
//!
//! A [`Layout`] decides which successor of every conditional branch is the
//! fall-through. On mote MCUs with static predict-not-taken pipelines, a
//! *taken* conditional branch is a misprediction (pipeline bubble), and an
//! unconditional jump costs cycles that a fall-through would not. The same
//! accounting is used prospectively by `ct-placement` (to choose a layout
//! from a profile) and dynamically by `ct-mote` (to charge cycles during
//! simulation), so the optimizer and the machine always agree.

use crate::graph::{BlockId, Cfg, EdgeKind, Terminator};
use crate::profile::EdgeProfile;

/// Extra-cycle parameters for control transfers under a concrete layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PenaltyModel {
    /// Extra cycles when a conditional branch is taken (static
    /// predict-not-taken misprediction / pipeline refill).
    pub taken_branch_extra: u64,
    /// Cycles of an unconditional jump instruction that the layout failed to
    /// elide.
    pub jump_cycles: u64,
}

impl PenaltyModel {
    /// AVR-class defaults: a taken branch costs one extra cycle on ATmega,
    /// and `rjmp` costs two cycles.
    pub fn avr() -> PenaltyModel {
        PenaltyModel {
            taken_branch_extra: 1,
            jump_cycles: 2,
        }
    }

    /// MSP430-class defaults: both taken conditional jumps and `jmp` cost two
    /// cycles versus zero for straight-line fetch.
    pub fn msp430() -> PenaltyModel {
        PenaltyModel {
            taken_branch_extra: 2,
            jump_cycles: 2,
        }
    }
}

impl Default for PenaltyModel {
    fn default() -> Self {
        PenaltyModel::avr()
    }
}

/// A permutation of a procedure's blocks — their flash order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    order: Vec<BlockId>,
    /// position[b] = index of block b within `order`.
    position: Vec<usize>,
}

impl Layout {
    /// The layout that keeps blocks in id order (the "original" compiler
    /// output before placement optimization).
    pub fn natural(cfg: &Cfg) -> Layout {
        Layout::from_order(cfg, cfg.block_ids().collect()).expect("identity order is valid")
    }

    /// Builds a layout from an explicit block order.
    ///
    /// Returns `None` unless `order` is a permutation of the blocks of `cfg`
    /// starting with the entry block (the entry must be first: the caller
    /// jumps to the procedure's first flash address).
    pub fn from_order(cfg: &Cfg, order: Vec<BlockId>) -> Option<Layout> {
        if order.len() != cfg.len() {
            return None;
        }
        if order.first() != Some(&cfg.entry()) {
            return None;
        }
        let mut position = vec![usize::MAX; cfg.len()];
        for (i, b) in order.iter().enumerate() {
            if b.index() >= cfg.len() || position[b.index()] != usize::MAX {
                return None;
            }
            position[b.index()] = i;
        }
        Some(Layout { order, position })
    }

    /// The block order.
    pub fn order(&self) -> &[BlockId] {
        &self.order
    }

    /// Flash position of `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range for this layout.
    pub fn position(&self, b: BlockId) -> usize {
        self.position[b.index()]
    }

    /// The block physically following `b`, if any.
    pub fn next_in_layout(&self, b: BlockId) -> Option<BlockId> {
        let p = self.position(b);
        self.order.get(p + 1).copied()
    }

    /// Extra cycles charged when control flows along `from → to` given this
    /// layout: `0` for fall-throughs, the taken penalty for taken branches,
    /// the jump cost for materialized jumps. See [`Layout::transfer_kind`].
    pub fn transfer_cost(
        &self,
        cfg: &Cfg,
        penalties: &PenaltyModel,
        from: BlockId,
        to: BlockId,
    ) -> u64 {
        match self.transfer_kind(cfg, from, to) {
            TransferKind::FallThrough => 0,
            TransferKind::TakenBranch => penalties.taken_branch_extra,
            TransferKind::Jump => penalties.jump_cycles,
            TransferKind::TakenBranchOverJump => penalties.taken_branch_extra,
        }
    }

    /// Classifies the machine-level transfer realizing CFG edge `from → to`
    /// under this layout.
    ///
    /// For a conditional branch with successors `(t, f)`:
    /// - if `f` is next in layout: `t` is a taken branch, `f` falls through;
    /// - if `t` is next in layout: the condition is inverted, so `f` is a
    ///   taken branch and `t` falls through;
    /// - otherwise the compiler emits `brcond t; jmp f`: the `t` edge is a
    ///   taken branch over the jump, and the `f` edge pays the jump.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a successor of `from`.
    pub fn transfer_kind(&self, cfg: &Cfg, from: BlockId, to: BlockId) -> TransferKind {
        let next = self.next_in_layout(from);
        match cfg.block(from).term {
            Terminator::Jump(t) => {
                assert_eq!(t, to, "to must be a successor of from");
                if next == Some(t) {
                    TransferKind::FallThrough
                } else {
                    TransferKind::Jump
                }
            }
            Terminator::Branch { on_true, on_false } => {
                assert!(
                    to == on_true || to == on_false,
                    "to must be a successor of from"
                );
                if next == Some(on_false) {
                    if to == on_true {
                        TransferKind::TakenBranch
                    } else {
                        TransferKind::FallThrough
                    }
                } else if next == Some(on_true) {
                    // Inverted polarity.
                    if to == on_false {
                        TransferKind::TakenBranch
                    } else {
                        TransferKind::FallThrough
                    }
                } else {
                    // Neither successor adjacent: brcond t; jmp f.
                    if to == on_true {
                        TransferKind::TakenBranchOverJump
                    } else {
                        TransferKind::Jump
                    }
                }
            }
            Terminator::Return => panic!("return block has no successors"),
        }
    }

    /// Evaluates this layout against an edge profile: total extra cycles and
    /// the conditional-branch misprediction statistics.
    pub fn evaluate(
        &self,
        cfg: &Cfg,
        profile: &EdgeProfile,
        penalties: &PenaltyModel,
    ) -> LayoutCost {
        let mut cost = LayoutCost::default();
        for e in cfg.edges() {
            let n = profile.count(e.index);
            if n == 0 {
                continue;
            }
            let kind = self.transfer_kind(cfg, e.from, e.to);
            let is_conditional = matches!(e.kind, EdgeKind::BranchTrue | EdgeKind::BranchFalse);
            match kind {
                TransferKind::FallThrough => {
                    if is_conditional {
                        cost.branches_not_taken += n;
                    }
                }
                TransferKind::TakenBranch | TransferKind::TakenBranchOverJump => {
                    cost.branches_taken += n;
                    cost.extra_cycles += n * penalties.taken_branch_extra;
                }
                TransferKind::Jump => {
                    cost.jumps_executed += n;
                    cost.extra_cycles += n * penalties.jump_cycles;
                    if is_conditional {
                        // The false edge of a both-ways-displaced branch: the
                        // conditional itself fell through (predicted right)
                        // before the jump, so it does not count as taken.
                        cost.branches_not_taken += n;
                    }
                }
            }
        }
        cost
    }
}

/// Machine-level realization of a CFG edge under a layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferKind {
    /// Straight-line fetch continues; no extra cost.
    FallThrough,
    /// A conditional branch that is taken (mispredicted under static
    /// not-taken prediction).
    TakenBranch,
    /// A conditional branch taken over a materialized `jmp` (branch target
    /// displaced).
    TakenBranchOverJump,
    /// An executed unconditional jump.
    Jump,
}

/// Aggregate cost of running a profile under a layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LayoutCost {
    /// Conditional branch executions that were taken (= mispredictions under
    /// static not-taken prediction).
    pub branches_taken: u64,
    /// Conditional branch executions that fell through.
    pub branches_not_taken: u64,
    /// Unconditional jumps executed (not elided by adjacency).
    pub jumps_executed: u64,
    /// Total extra cycles versus an ideal all-fall-through layout.
    pub extra_cycles: u64,
}

impl LayoutCost {
    /// Fraction of conditional branch executions that were taken; `0.0` when
    /// no conditional branches executed.
    pub fn misprediction_rate(&self) -> f64 {
        let total = self.branches_taken + self.branches_not_taken;
        if total == 0 {
            0.0
        } else {
            self.branches_taken as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{diamond, linear};

    #[test]
    fn natural_layout_is_identity() {
        let cfg = diamond();
        let l = Layout::natural(&cfg);
        assert_eq!(l.order(), &[BlockId(0), BlockId(1), BlockId(2), BlockId(3)]);
        assert_eq!(l.position(BlockId(2)), 2);
    }

    #[test]
    fn from_order_rejects_non_permutations() {
        let cfg = diamond();
        assert!(Layout::from_order(&cfg, vec![BlockId(0), BlockId(1)]).is_none());
        assert!(
            Layout::from_order(&cfg, vec![BlockId(0), BlockId(1), BlockId(1), BlockId(3)])
                .is_none()
        );
        // Entry must come first.
        assert!(
            Layout::from_order(&cfg, vec![BlockId(1), BlockId(0), BlockId(2), BlockId(3)])
                .is_none()
        );
    }

    #[test]
    fn linear_natural_layout_is_all_fallthrough() {
        let cfg = linear(4);
        let l = Layout::natural(&cfg);
        for e in cfg.edges() {
            assert_eq!(
                l.transfer_kind(&cfg, e.from, e.to),
                TransferKind::FallThrough
            );
        }
    }

    #[test]
    fn diamond_natural_layout_classification() {
        let cfg = diamond();
        let l = Layout::natural(&cfg);
        // Order: cond, then, else, join.
        // cond: next is then (= on_true) → inverted polarity: true falls
        // through, false is a taken branch.
        assert_eq!(
            l.transfer_kind(&cfg, BlockId(0), BlockId(1)),
            TransferKind::FallThrough
        );
        assert_eq!(
            l.transfer_kind(&cfg, BlockId(0), BlockId(2)),
            TransferKind::TakenBranch
        );
        // then → join: else intervenes, so the jump is materialized.
        assert_eq!(
            l.transfer_kind(&cfg, BlockId(1), BlockId(3)),
            TransferKind::Jump
        );
        // else → join: adjacent, elided.
        assert_eq!(
            l.transfer_kind(&cfg, BlockId(2), BlockId(3)),
            TransferKind::FallThrough
        );
    }

    #[test]
    fn displaced_branch_uses_branch_over_jump() {
        let cfg = diamond();
        // Order: cond, join, then, else — neither successor adjacent to cond.
        let l =
            Layout::from_order(&cfg, vec![BlockId(0), BlockId(3), BlockId(1), BlockId(2)]).unwrap();
        assert_eq!(
            l.transfer_kind(&cfg, BlockId(0), BlockId(1)),
            TransferKind::TakenBranchOverJump
        );
        assert_eq!(
            l.transfer_kind(&cfg, BlockId(0), BlockId(2)),
            TransferKind::Jump
        );
    }

    #[test]
    fn evaluate_counts_mispredictions() {
        let cfg = diamond();
        let l = Layout::natural(&cfg);
        // 30 true, 10 false.
        let prof = EdgeProfile::from_counts(&cfg, vec![30, 10, 30, 10]);
        let cost = l.evaluate(&cfg, &prof, &PenaltyModel::avr());
        // true falls through (30 not taken), false is taken (10 mispredicts),
        // then→join is 30 executed jumps.
        assert_eq!(cost.branches_taken, 10);
        assert_eq!(cost.branches_not_taken, 30);
        assert_eq!(cost.jumps_executed, 30);
        assert_eq!(cost.extra_cycles, 10 + 30 * 2);
        assert!((cost.misprediction_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn better_layout_reduces_cost() {
        let cfg = diamond();
        let prof = EdgeProfile::from_counts(&cfg, vec![30, 10, 30, 10]);
        let natural = Layout::natural(&cfg);
        // Hot path cond→then→join contiguous: cond, then, join, else.
        let optimized =
            Layout::from_order(&cfg, vec![BlockId(0), BlockId(1), BlockId(3), BlockId(2)]).unwrap();
        let pen = PenaltyModel::avr();
        let c_nat = natural.evaluate(&cfg, &prof, &pen);
        let c_opt = optimized.evaluate(&cfg, &prof, &pen);
        assert!(
            c_opt.extra_cycles < c_nat.extra_cycles,
            "{c_opt:?} vs {c_nat:?}"
        );
        // Hot-path layout: true falls through, false taken (10), else→join
        // jump (10): extra = 10*1 + 10*2 = 30 < 70.
        assert_eq!(c_opt.extra_cycles, 30);
    }

    #[test]
    fn misprediction_rate_zero_when_no_branches() {
        let cfg = linear(3);
        let l = Layout::natural(&cfg);
        let prof = EdgeProfile::from_counts(&cfg, vec![5, 5]);
        let cost = l.evaluate(&cfg, &prof, &PenaltyModel::avr());
        assert_eq!(cost.misprediction_rate(), 0.0);
        assert_eq!(cost.extra_cycles, 0);
    }

    #[test]
    fn penalty_model_presets_differ() {
        assert_ne!(PenaltyModel::avr(), PenaltyModel::msp430());
        assert_eq!(PenaltyModel::default(), PenaltyModel::avr());
    }
}

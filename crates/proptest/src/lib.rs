#![warn(missing_docs)]

//! Vendored offline shim for the [`proptest`](https://crates.io/crates/proptest)
//! 1.x API surface this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal property-testing harness with the same surface syntax:
//! the [`proptest!`] macro, range / tuple / `Just` / `prop_oneof!` / regex-lite
//! string strategies, `proptest::collection::vec`, `any::<T>()`,
//! `prop_map` / `prop_recursive`, and the `prop_assert*` / [`prop_assume!`]
//! macros. Unlike upstream there is **no shrinking** — failing cases report
//! the case number and deterministic seed instead.

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, BoxedStrategy, Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError};

/// Re-export for macro expansions — consumer crates need not depend on `rand`.
#[doc(hidden)]
pub use rand as __rand;

/// FNV-1a hash of a string — stable seed derivation for test case RNGs.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Defines property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u64..100, v in proptest::collection::vec(0.0f64..1.0, 3)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let seed_base =
                $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            let mut rejected: u32 = 0;
            let mut case: u64 = 0;
            let mut accepted: u32 = 0;
            while accepted < config.cases {
                let mut rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                    seed_base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                case += 1;
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let result = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    { $body };
                    Ok(())
                })();
                match result {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {
                        rejected += 1;
                        if rejected > config.cases * 16 {
                            panic!("proptest: too many rejected cases ({rejected})");
                        }
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {} (seed base {:#x}) failed: {}",
                            case - 1, seed_base, msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body; on failure the case is
/// reported (without shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Discards the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

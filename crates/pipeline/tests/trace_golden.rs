//! Golden observability test: a traced full pipeline run emits parseable,
//! schema-stable JSONL covering every stage — and tracing changes **no**
//! estimation output bitwise (observer effect zero), at 1 and 4 threads.
//!
//! The whole scenario lives in one `#[test]` because it owns the process
//! globals (the ct-obs registry and `CT_THREADS`); splitting it would race
//! the harness's parallel test threads.

use ct_pipeline::{RunConfig, Session};
use ct_placement::Strategy;

/// Everything estimation produces, reduced to exact bit patterns: if any
/// f64 differs in its last ulp between runs, the fingerprints differ.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    probs: Vec<u64>,
    mae: u64,
    confidence: u64,
    layout: Vec<u32>,
    before_cycles: u64,
    after_cycles: u64,
    run_pmu: ct_pipeline::PmuSnapshot,
    before_pmu: ct_pipeline::PmuSnapshot,
    after_pmu: ct_pipeline::PmuSnapshot,
}

fn run_pipeline(traced: bool, threads: &str) -> (Fingerprint, Option<String>) {
    std::env::set_var("CT_THREADS", threads);
    ct_obs::reset();
    ct_obs::set_stream_enabled(traced);
    // The flight recorder rides along in traced runs: capture into the
    // rings must be as observer-effect-free as the stream itself.
    ct_obs::flight::set_enabled(traced);
    let report = Session::new(RunConfig::new("sense").invocations(400).seeded(7).robust())
        .run(Strategy::Best)
        .expect("sense pipeline runs");
    let fp = Fingerprint {
        probs: report
            .estimated
            .estimate
            .probs
            .as_slice()
            .iter()
            .map(|p| p.to_bits())
            .collect(),
        mae: report.estimated.accuracy.mae.to_bits(),
        confidence: report.estimated.confidence.to_bits(),
        layout: report.layout.order().iter().map(|b| b.0).collect(),
        before_cycles: report.before.cycles,
        after_cycles: report.after.cycles,
        run_pmu: report.run.pmu.clone(),
        before_pmu: report.before.pmu.clone(),
        after_pmu: report.after.pmu.clone(),
    };
    let jsonl = traced.then(|| ct_obs::render_jsonl(&ct_obs::snapshot()));
    ct_obs::set_stream_enabled(false);
    ct_obs::flight::set_enabled(false);
    ct_obs::reset();
    (fp, jsonl)
}

/// Drops the volatile (timing) fields from one JSONL line, leaving only
/// the content the determinism contract covers. Volatile values are plain
/// numbers, so scanning to the next `,`/`}` is exact.
fn strip_volatile(line: &str) -> String {
    let mut s = line.to_string();
    for k in ct_obs::VOLATILE_FIELDS {
        let pat = format!("\"{k}\":");
        while let Some(i) = s.find(&pat) {
            let start = s[..i].rfind([',', '{']).expect("field inside an object");
            let val_end = i
                + pat.len()
                + s[i + pat.len()..]
                    .find([',', '}'])
                    .expect("object is closed");
            if s.as_bytes()[start] == b',' {
                s.replace_range(start..val_end, "");
            } else {
                let end = if s.as_bytes()[val_end] == b',' {
                    val_end + 1
                } else {
                    val_end
                };
                s.replace_range(start + 1..end, "");
            }
        }
    }
    s
}

#[test]
fn tracing_is_schema_stable_and_observer_effect_free() {
    let (plain_1, none) = run_pipeline(false, "1");
    assert!(none.is_none());
    let (traced_1, jsonl_1) = run_pipeline(true, "1");
    let (plain_4, _) = run_pipeline(false, "4");
    let (traced_4, jsonl_4) = run_pipeline(true, "4");
    let jsonl_1 = jsonl_1.expect("traced run renders JSONL");
    let jsonl_4 = jsonl_4.expect("traced run renders JSONL");

    // Observer effect zero: tracing never changes estimation output, at
    // either thread count — and the engine itself is thread-insensitive.
    assert_eq!(plain_1, traced_1, "tracing perturbed a 1-thread run");
    assert_eq!(plain_4, traced_4, "tracing perturbed a 4-thread run");
    assert_eq!(plain_1, plain_4, "thread count perturbed estimation");

    // Every line parses, and the schema markers hold.
    let lines: Vec<&str> = jsonl_1.lines().collect();
    assert!(lines.len() > 10, "suspiciously short trace: {jsonl_1}");
    for line in &lines {
        let obj = ct_obs::json::parse(line)
            .unwrap_or_else(|e| panic!("unparseable JSONL line {line:?}: {e}"));
        assert!(
            obj.get("event")
                .or_else(|| obj.get("span"))
                .or_else(|| obj.get("counter"))
                .or_else(|| obj.get("gauge"))
                .and_then(|v| v.as_str())
                .is_some(),
            "line without a kind marker: {line}"
        );
    }
    let meta = ct_obs::json::parse(lines[0]).expect("meta line parses");
    assert_eq!(
        meta.get("event").and_then(|v| v.as_str()),
        Some("trace.meta")
    );
    assert_eq!(
        meta.get("schema").and_then(|v| v.as_num()),
        Some(ct_obs::SCHEMA_VERSION as f64)
    );

    // The stream covers all eight pipeline stages plus the EM audit trail.
    for stage in [
        "compile", "deploy", "run", "collect", "corrupt", "estimate", "place", "evaluate",
    ] {
        let marker = format!("{{\"event\":\"stage.{stage}\"");
        assert!(
            lines.iter().any(|l| l.starts_with(&marker)),
            "no stage.{stage} event in:\n{jsonl_1}"
        );
    }
    assert!(
        lines
            .iter()
            .any(|l| l.starts_with("{\"event\":\"em.restart\"")),
        "no em.restart events in:\n{jsonl_1}"
    );
    assert!(
        lines
            .iter()
            .any(|l| l.starts_with("{\"event\":\"place.decision\"")),
        "no place.decision event in:\n{jsonl_1}"
    );
    // One pmu.totals per Collect: the profiled run plus both replays.
    assert_eq!(
        lines
            .iter()
            .filter(|l| l.starts_with("{\"event\":\"pmu.totals\""))
            .count(),
        3,
        "expected pmu.totals from the run and both replays in:\n{jsonl_1}"
    );

    // Telemetry v2: every traced stage aggregates a wall-time histogram.
    assert!(
        lines
            .iter()
            .any(|l| l.starts_with("{\"event\":\"hist\",\"name\":\"stage.run.wall_ns\"")),
        "no stage.run.wall_ns histogram line in:\n{jsonl_1}"
    );

    // Determinism contract: with the volatile timing fields stripped and
    // the timing *histograms* dropped entirely (their bucket tables are
    // wall-clock shaped — the shared `is_volatile_hist_name` convention),
    // the 1-thread and 4-thread streams are line-for-line identical.
    let stable = |line: &&str| {
        line.strip_prefix("{\"event\":\"hist\",\"name\":\"")
            .and_then(|rest| rest.split('"').next())
            .is_none_or(|name| !ct_obs::is_volatile_hist_name(name))
    };
    let stable_1: Vec<String> = jsonl_1.lines().filter(stable).map(strip_volatile).collect();
    let stable_4: Vec<String> = jsonl_4.lines().filter(stable).map(strip_volatile).collect();
    assert_eq!(stable_1, stable_4, "trace content depends on CT_THREADS");
}

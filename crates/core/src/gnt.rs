//! Generalized network tomography: distribution-free estimation by matching
//! the model's duration *characteristic function* to the empirical one.
//!
//! The EM backend commits to the exact quantization likelihood and the
//! moments backend commits to two summary statistics; both are parametric
//! commitments that a corrupted measurement channel can exploit. Following
//! the GNT line of work (estimation from pure end-to-end path measurements
//! without distributional assumptions), this backend matches the transform
//! of the whole distribution instead: every sample contributes one unit
//! phasor `e^{iωd}`, so a corrupted record can move the empirical transform
//! by at most `1/n` in modulus — bounded influence where a squared outlier
//! moves a variance without limit.
//!
//! The model side is closed-form: conditioning on the first edge out of each
//! block gives a linear system over the per-block characteristic functions,
//! `φ_b(ω) = Σ_e p_e·e^{iω(c_b+c_e)}·φ_target(ω)`, i.e. `(I − M(ω))φ = b(ω)`
//! over the transient blocks — the complex sibling of the moments solver's
//! `(I − Q)` system, solved here as a doubled real system so the existing LU
//! factorization applies. `|M(ω)| ≤ Q` entrywise, so the system is
//! nonsingular whenever the chain is absorbing.

use crate::samples::DurationSamples;
use ct_cfg::graph::{Cfg, Terminator};
use ct_cfg::profile::BranchProbs;
use ct_stats::matrix::Matrix;
use ct_stats::solve::Lu;
use std::error::Error;
use std::fmt;

/// Failure of the GNT estimator.
#[derive(Debug, Clone, PartialEq)]
pub enum GntError {
    /// The chain does not reach its exit under some probed parameters.
    Divergent,
    /// Input shapes are inconsistent.
    Shape(String),
    /// No samples were provided.
    NoSamples,
    /// The sample statistics report a saturated second-moment accumulator:
    /// the variance that sets the frequency grid is a lower bound, so the
    /// fit would probe the transform at the wrong scale. Degrade instead —
    /// same contract as [`crate::moments::MomentsError::SaturatedMoments`].
    SaturatedMoments,
    /// The inversion is too ill-conditioned to trust: the objective is flat
    /// (or non-convex) along some parameter direction at the optimum, so the
    /// returned point is one of many that explain the transform equally
    /// well.
    IllConditioned {
        /// Measured curvature ratio (largest over smallest per-coordinate
        /// curvature; `inf` encodes a flat or non-convex direction).
        conditioning: f64,
        /// The configured acceptance budget.
        budget: f64,
    },
}

impl fmt::Display for GntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GntError::Divergent => write!(f, "model diverges (exit unreachable)"),
            GntError::Shape(m) => write!(f, "shape error: {m}"),
            GntError::NoSamples => write!(f, "no timing samples provided"),
            GntError::SaturatedMoments => write!(
                f,
                "sample square-sum saturated; frequency scale untrustworthy for CF matching"
            ),
            GntError::IllConditioned {
                conditioning,
                budget,
            } => write!(
                f,
                "inversion ill-conditioned (curvature ratio {conditioning:.1e} > {budget:.0e})"
            ),
        }
    }
}

impl Error for GntError {}

/// Model characteristic function `E[e^{iωT}]` of the end-to-end duration at
/// frequency `omega` (radians per cycle), returned as `(re, im)`.
///
/// # Errors
///
/// [`GntError::Divergent`] when the exit is unreachable (singular system),
/// [`GntError::Shape`] on mismatched inputs.
pub fn model_cf(
    cfg: &Cfg,
    block_costs: &[u64],
    edge_costs: &[u64],
    probs: &BranchProbs,
    omega: f64,
) -> Result<(f64, f64), GntError> {
    let n = cfg.len();
    if block_costs.len() != n {
        return Err(GntError::Shape("block cost length".into()));
    }
    let edges = cfg.edges();
    if edge_costs.len() != edges.len() {
        return Err(GntError::Shape("edge cost length".into()));
    }
    let edge_probs = probs.edge_probs(cfg);

    // Unknowns: φ_b(ω) for non-return blocks ("transient"); a return block's
    // CF is the known phasor of its own cost.
    let transient: Vec<usize> = cfg
        .iter()
        .filter(|(_, b)| !matches!(b.term, Terminator::Return))
        .map(|(id, _)| id.index())
        .collect();
    if transient.is_empty() {
        let c = block_costs[cfg.entry().index()] as f64;
        return Ok(((omega * c).cos(), (omega * c).sin()));
    }
    let t = transient.len();
    let pos = |b: usize| transient.iter().position(|&x| x == b);

    // (I − M(ω))φ = b(ω) over ℂ, as the doubled real system
    // [[I−Re M,  Im M], [−Im M, I−Re M]]·[Re φ; Im φ] = [Re b; Im b].
    let mut a = Matrix::identity(2 * t);
    let mut rhs = vec![0.0; 2 * t];
    for (ti, &bi) in transient.iter().enumerate() {
        for e in edges.iter().filter(|e| e.from.index() == bi) {
            let p = edge_probs[e.index];
            if p <= 0.0 {
                continue;
            }
            let s = (block_costs[bi] + edge_costs[e.index]) as f64;
            match pos(e.to.index()) {
                Some(tj) => {
                    let (re, im) = (p * (omega * s).cos(), p * (omega * s).sin());
                    a[(ti, tj)] -= re;
                    a[(ti, t + tj)] += im;
                    a[(t + ti, tj)] -= im;
                    a[(t + ti, t + tj)] -= re;
                }
                None => {
                    let full = s + block_costs[e.to.index()] as f64;
                    rhs[ti] += p * (omega * full).cos();
                    rhs[t + ti] += p * (omega * full).sin();
                }
            }
        }
    }
    let lu = Lu::factor(&a).map_err(|_| GntError::Divergent)?;
    let x = lu.solve(&rhs).map_err(|_| GntError::Divergent)?;
    let ep = pos(cfg.entry().index()).ok_or(GntError::Divergent)?;
    Ok((x[ep], x[t + ep]))
}

/// Options for the GNT characteristic-function fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GntOptions {
    /// Number of frequencies on the grid `ω_j = j·ω_max/J`, `j = 1..=J`.
    pub frequencies: usize,
    /// Top of the frequency grid as a multiple of `1/σ` (sample standard
    /// deviation in cycles): frequencies beyond a few `1/σ` probe structure
    /// finer than the data resolves.
    pub freq_scale: f64,
    /// Coordinate-descent sweeps over the parameter vector.
    pub sweeps: usize,
    /// Golden-section iterations per coordinate.
    pub line_iters: usize,
    /// Probability clamp.
    pub min_prob: f64,
    /// Largest accepted curvature ratio before the inversion is declared
    /// ill-conditioned (see [`GntError::IllConditioned`]).
    pub max_conditioning: f64,
}

impl Default for GntOptions {
    fn default() -> Self {
        GntOptions {
            frequencies: 8,
            freq_scale: 2.0,
            sweeps: 12,
            line_iters: 24,
            min_prob: 1e-3,
            max_conditioning: 1e6,
        }
    }
}

/// The outcome of a GNT fit.
#[derive(Debug, Clone, PartialEq)]
pub struct GntResult {
    /// Estimated branch probabilities.
    pub probs: BranchProbs,
    /// Final objective value (mean squared CF mismatch over the grid).
    pub objective: f64,
    /// Coordinate sweeps executed.
    pub sweeps: usize,
    /// Curvature ratio of the objective at the optimum (1.0 = perfectly
    /// conditioned; larger = some direction is much flatter than another).
    pub conditioning: f64,
    /// Inversion confidence in `[0, 1]`, combining fit quality (residual
    /// transform mismatch) and conditioning. This is the backend's *own*
    /// scale; the degradation ladder rescales it per rung.
    pub confidence: f64,
}

/// Curvature below this is indistinguishable from flat: the coordinate does
/// not influence the transform at the probed frequencies.
const MIN_CURVATURE: f64 = 1e-7;
/// RMS transform mismatch at which fit confidence reaches zero.
const RMS_SCALE: f64 = 0.15;

/// Fits branch probabilities by matching the model characteristic function
/// (quantization-corrected) to the empirical one on a data-scaled frequency
/// grid, via coordinate descent with golden-section line search.
///
/// # Errors
///
/// [`GntError::NoSamples`] for empty input, [`GntError::SaturatedMoments`]
/// when the sample statistics lost second-moment information,
/// [`GntError::IllConditioned`] when the fitted point is not trustworthy;
/// propagates model errors.
pub fn estimate_gnt<S: DurationSamples + ?Sized>(
    cfg: &Cfg,
    block_costs: &[u64],
    edge_costs: &[u64],
    samples: &S,
    opts: GntOptions,
) -> Result<GntResult, GntError> {
    if samples.is_empty() {
        return Err(GntError::NoSamples);
    }
    if samples.moments_saturated() {
        return Err(GntError::SaturatedMoments);
    }
    let cpt = samples.cycles_per_tick() as f64;
    let n = samples.len() as f64;
    let counted = samples.counted();

    // Frequency grid scaled to the sample spread: the transform carries its
    // shape information over |ω| ≲ 1/σ and pure oscillation beyond.
    let sigma = samples.variance_cycles().max(1.0).sqrt();
    let j_max = opts.frequencies.max(1);
    let omegas: Vec<f64> = (1..=j_max)
        .map(|j| opts.freq_scale * j as f64 / (j_max as f64 * sigma))
        .collect();

    // Empirical CF of the *observed* cycles (ticks × resolution) and the
    // matching quantization factor for the model side: the observed duration
    // is the true one plus a zero-mean error `cpt·(B − U)` (uniform phase,
    // Bernoulli carry), whose CF is sinc²(ω·cpt/2) — the transform-domain
    // twin of the moments backend's `cpt²/6` variance correction. At
    // cycle-exact resolution there is no error at all.
    let empirical: Vec<(f64, f64)> = omegas
        .iter()
        .map(|&w| {
            let (mut re, mut im) = (0.0, 0.0);
            for &(tick, count) in &counted {
                let arg = w * (tick as f64) * cpt;
                re += count as f64 * arg.cos();
                im += count as f64 * arg.sin();
            }
            (re / n, im / n)
        })
        .collect();
    let quant: Vec<f64> = omegas
        .iter()
        .map(|&w| {
            if cpt <= 1.0 {
                1.0
            } else {
                let h = w * cpt / 2.0;
                let s = h.sin() / h;
                s * s
            }
        })
        .collect();

    let objective = |probs: &BranchProbs| -> f64 {
        let mut acc = 0.0;
        for ((&w, &(er, ei)), &q) in omegas.iter().zip(&empirical).zip(&quant) {
            match model_cf(cfg, block_costs, edge_costs, probs, w) {
                Ok((mr, mi)) => {
                    let (dr, di) = (mr * q - er, mi * q - ei);
                    acc += dr * dr + di * di;
                }
                Err(_) => return f64::INFINITY,
            }
        }
        acc / omegas.len() as f64
    };

    let mut probs = BranchProbs::uniform(cfg, 0.5);
    let blocks: Vec<_> = probs.blocks().to_vec();
    let mut best = objective(&probs);
    let mut sweeps_done = 0;

    for _ in 0..opts.sweeps {
        sweeps_done += 1;
        let mut improved = false;
        for &bb in &blocks {
            // Golden-section search on θ_bb, mirroring the moments backend.
            let phi = 0.618_033_988_75;
            let mut lo = opts.min_prob;
            let mut hi = 1.0 - opts.min_prob;
            let eval = |theta: f64, probs: &mut BranchProbs| {
                probs.set_prob_true(bb, theta);
                objective(probs)
            };
            let mut x1 = hi - phi * (hi - lo);
            let mut x2 = lo + phi * (hi - lo);
            let mut f1 = eval(x1, &mut probs);
            let mut f2 = eval(x2, &mut probs);
            for _ in 0..opts.line_iters {
                if f1 <= f2 {
                    hi = x2;
                    x2 = x1;
                    f2 = f1;
                    x1 = hi - phi * (hi - lo);
                    f1 = eval(x1, &mut probs);
                } else {
                    lo = x1;
                    x1 = x2;
                    f1 = f2;
                    x2 = lo + phi * (hi - lo);
                    f2 = eval(x2, &mut probs);
                }
            }
            let (theta, f) = if f1 <= f2 { (x1, f1) } else { (x2, f2) };
            probs.set_prob_true(bb, theta);
            if f + 1e-12 < best {
                best = f;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }

    // Conditioning: per-coordinate second-difference curvature at the
    // optimum. A flat (or concave) direction means the transform does not
    // pin that parameter down — refuse rather than return one point of a
    // ridge.
    let conditioning = if blocks.is_empty() {
        1.0
    } else {
        let delta = 0.02;
        let (mut min_c, mut max_c) = (f64::INFINITY, f64::NEG_INFINITY);
        for &bb in &blocks {
            let theta = probs.prob_true(bb).unwrap_or(0.5);
            let center = theta.clamp(opts.min_prob + delta, 1.0 - opts.min_prob - delta);
            let at = |t: f64, probs: &mut BranchProbs| {
                probs.set_prob_true(bb, t);
                objective(probs)
            };
            let (f_lo, f_mid, f_hi) = (
                at(center - delta, &mut probs),
                at(center, &mut probs),
                at(center + delta, &mut probs),
            );
            probs.set_prob_true(bb, theta);
            let curv = (f_lo - 2.0 * f_mid + f_hi) / (delta * delta);
            min_c = min_c.min(curv);
            max_c = max_c.max(curv);
        }
        if min_c <= MIN_CURVATURE {
            f64::INFINITY
        } else {
            max_c / min_c
        }
    };
    // NaN-safe refusal: a non-finite ratio (degenerate curvature spectrum)
    // must land here, not slip past a plain `>` comparison.
    if !conditioning.is_finite() || conditioning > opts.max_conditioning {
        return Err(GntError::IllConditioned {
            conditioning,
            budget: opts.max_conditioning,
        });
    }

    // Confidence: fit term from the residual RMS transform mismatch (bounded
    // by 2, near 0 for a good fit), conditioning term from how far the
    // curvature ratio sits below the refusal budget (log scale).
    let fit_term = (1.0 - best.max(0.0).sqrt() / RMS_SCALE).clamp(0.0, 1.0);
    let cond_term = if opts.max_conditioning > 1.0 {
        (1.0 - conditioning.max(1.0).ln() / opts.max_conditioning.ln()).clamp(0.0, 1.0)
    } else {
        1.0
    };
    let confidence = fit_term * cond_term;

    ct_obs::emit(
        "gnt.fit",
        vec![
            ("frequencies", omegas.len().into()),
            ("objective", best.into()),
            ("conditioning", conditioning.into()),
            ("confidence", confidence.into()),
            ("sweeps", sweeps_done.into()),
        ],
    );

    Ok(GntResult {
        probs,
        objective: best,
        sweeps: sweeps_done,
        conditioning,
        confidence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples::TimingSamples;
    use ct_cfg::builder::{diamond, while_loop};
    use ct_cfg::graph::BlockId;

    #[test]
    fn model_cf_matches_closed_form_on_the_diamond() {
        // Two-point mixture: φ(ω) = p·e^{iω·115} + (1−p)·e^{iω·215}.
        let cfg = diamond();
        let bc = vec![10u64, 100, 200, 5];
        let ec = vec![0u64; 4];
        let p = 0.3;
        let probs = BranchProbs::from_vec(&cfg, vec![p]);
        for &w in &[0.001, 0.01, 0.05] {
            let (re, im) = model_cf(&cfg, &bc, &ec, &probs, w).unwrap();
            let want_re = p * (w * 115.0).cos() + (1.0 - p) * (w * 215.0).cos();
            let want_im = p * (w * 115.0).sin() + (1.0 - p) * (w * 215.0).sin();
            assert!((re - want_re).abs() < 1e-12, "re {re} vs {want_re} at {w}");
            assert!((im - want_im).abs() < 1e-12, "im {im} vs {want_im} at {w}");
        }
    }

    #[test]
    fn model_cf_at_zero_is_one() {
        let cfg = while_loop();
        let bc = vec![2u64, 3, 10, 1];
        let ec = vec![0u64; cfg.edges().len()];
        let probs = BranchProbs::from_vec(&cfg, vec![0.6]);
        let (re, im) = model_cf(&cfg, &bc, &ec, &probs, 0.0).unwrap();
        assert!((re - 1.0).abs() < 1e-12);
        assert!(im.abs() < 1e-12);
    }

    #[test]
    fn model_cf_derivative_matches_model_mean() {
        // φ'(0) = i·E[T]: the imaginary part at small ω recovers the mean.
        let cfg = while_loop();
        let bc = vec![2u64, 3, 10, 1];
        let ec = vec![0u64; cfg.edges().len()];
        let probs = BranchProbs::from_vec(&cfg, vec![0.6]);
        let (mean, _) = crate::moments::model_moments(&cfg, &bc, &ec, &probs).unwrap();
        let w = 1e-6;
        let (_, im) = model_cf(&cfg, &bc, &ec, &probs, w).unwrap();
        assert!((im / w - mean).abs() < 1e-3, "{} vs {mean}", im / w);
    }

    #[test]
    fn estimate_recovers_diamond_probability() {
        let cfg = diamond();
        let bc = vec![10u64, 100, 200, 5];
        let ec = vec![0u64; 4];
        let mut ticks = vec![115u64; 750];
        ticks.extend(vec![215u64; 250]);
        let samples = TimingSamples::new(ticks, 1);
        let r = estimate_gnt(&cfg, &bc, &ec, &samples, GntOptions::default()).unwrap();
        let est = r.probs.as_slice()[0];
        assert!((est - 0.75).abs() < 0.02, "estimated {est}");
        assert!(r.confidence > 0.5, "confidence {}", r.confidence);
        assert!(r.conditioning >= 1.0);
    }

    #[test]
    fn estimate_recovers_loop_parameter() {
        let cfg = while_loop();
        let bc = vec![2u64, 3, 10, 1];
        let ec = vec![0u64; cfg.edges().len()];
        // q = 0.5: durations 6 + 13k w.p. 0.5^{k+1}, tail mass folded into
        // the last bucket so the fixture holds exactly 4096 runs.
        let mut ticks = Vec::new();
        for k in 0..12u32 {
            let copies = 4096usize >> (k + 1);
            ticks.extend(vec![6 + 13 * u64::from(k); copies]);
        }
        ticks.push(6 + 13 * 12);
        assert_eq!(ticks.len(), 4096);
        let samples = TimingSamples::new(ticks, 1);
        let r = estimate_gnt(&cfg, &bc, &ec, &samples, GntOptions::default()).unwrap();
        let est = r.probs.prob_true(BlockId(1)).unwrap();
        assert!((est - 0.5).abs() < 0.04, "estimated {est}");
    }

    #[test]
    fn coarse_timer_quantization_is_corrected() {
        // 8 cycles/tick: durations 115→14, 215→26 ticks (floor). The sinc²
        // factor keeps the fit centered despite the coarse grid.
        let cfg = diamond();
        let bc = vec![10u64, 100, 200, 5];
        let ec = vec![0u64; 4];
        let mut ticks = vec![115u64 / 8; 700];
        ticks.extend(vec![215u64 / 8; 300]);
        let samples = TimingSamples::new(ticks, 8);
        let r = estimate_gnt(&cfg, &bc, &ec, &samples, GntOptions::default()).unwrap();
        let est = r.probs.as_slice()[0];
        assert!((est - 0.7).abs() < 0.05, "estimated {est}");
    }

    #[test]
    fn no_samples_is_an_error() {
        let cfg = diamond();
        let samples = TimingSamples::new(vec![], 1);
        assert_eq!(
            estimate_gnt(&cfg, &[1; 4], &[0; 4], &samples, GntOptions::default()),
            Err(GntError::NoSamples)
        );
    }

    #[test]
    fn saturated_stats_are_refused() {
        // Same contract as the moments backend: a clamped square-sum floors
        // the variance that sets the frequency grid — degrade, don't fit.
        let cfg = diamond();
        let mut stats = crate::stream::SuffStats::new(1);
        stats.push(u64::MAX - 1);
        stats.push(u64::MAX - 1);
        assert!(stats.saturated());
        assert_eq!(
            estimate_gnt(
                &cfg,
                &[10, 100, 200, 5],
                &[0; 4],
                &stats,
                GntOptions::default()
            ),
            Err(GntError::SaturatedMoments)
        );
    }

    #[test]
    fn unidentifiable_arms_are_refused_as_ill_conditioned() {
        // Equal arm costs: every p explains the (single-point) transform
        // equally well. The conditioning probe must refuse rather than
        // return an arbitrary point of the ridge.
        let cfg = diamond();
        let bc = vec![10u64, 100, 100, 5];
        let ec = vec![0u64; 4];
        let samples = TimingSamples::new(vec![115u64; 200], 1);
        match estimate_gnt(&cfg, &bc, &ec, &samples, GntOptions::default()) {
            Err(GntError::IllConditioned { conditioning, .. }) => {
                assert!(conditioning.is_infinite() || conditioning > 1e6);
            }
            other => panic!("expected IllConditioned, got {other:?}"),
        }
    }

    #[test]
    fn shape_mismatch_detected() {
        let cfg = diamond();
        let probs = BranchProbs::uniform(&cfg, 0.5);
        assert!(matches!(
            model_cf(&cfg, &[1, 2], &[0; 4], &probs, 0.01),
            Err(GntError::Shape(_))
        ));
    }

    #[test]
    fn error_display() {
        assert!(GntError::SaturatedMoments.to_string().contains("saturated"));
        let e = GntError::IllConditioned {
            conditioning: 1e8,
            budget: 1e6,
        };
        assert!(e.to_string().contains("ill-conditioned"));
    }
}

//! A minimal JSON reader/writer — just enough for the event stream and the
//! run manifest, so the crate stays dependency-free.
//!
//! The writer escapes strings per RFC 8259 and renders integers exactly
//! (no float round-trip for `u64`/`i64`). The reader accepts the full JSON
//! grammar this crate emits; numbers parse to `f64` (durations and counts in
//! the stream fit without loss at the magnitudes we record).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed to `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in key order of appearance (duplicate keys kept as-is).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Appends `s` as a JSON string literal (with escapes) to `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse failure: byte offset and reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document, requiring it to span the whole input.
///
/// # Errors
///
/// [`JsonError`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Containers deeper than this are rejected rather than recursed into:
/// adversarial input like `[[[[...` would otherwise overflow the stack.
/// Nothing this crate emits nests beyond a handful of levels.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            reason: reason.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not emitted by this crate's
                            // writer; map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = match b {
                        _ if b < 0x80 => 1,
                        _ if b >> 5 == 0b110 => 2,
                        _ if b >> 4 == 0b1110 => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x"}], "c": null}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Null));
        let Some(Json::Arr(items)) = v.get("a") else {
            panic!("array expected");
        };
        assert_eq!(items[0], Json::Num(1.0));
        assert_eq!(items[1].get("b").and_then(Json::as_str), Some("x"));
    }

    #[test]
    fn escapes_round_trip() {
        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\nd\te\u{1}");
        let back = parse(&out).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\nd\te\u{1}"));
    }

    #[test]
    fn unicode_survives() {
        let v = parse("\"χ²→∞\"").unwrap();
        assert_eq!(v.as_str(), Some("χ²→∞"));
        assert_eq!(parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nope").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn pathological_nesting_errors_instead_of_overflowing() {
        // A malformed-but-valid-prefix bomb: 100k open brackets. Without
        // the depth cap this recursed once per bracket and crashed.
        let bomb = "[".repeat(100_000);
        let e = parse(&bomb).unwrap_err();
        assert!(e.reason.contains("nesting"), "{e}");
        let obj_bomb = "{\"k\":".repeat(100_000);
        assert!(parse(&obj_bomb).is_err());
        // Sane nesting still parses, and depth resets between siblings.
        let deep_ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse(&deep_ok).is_ok());
        let arm = |digit: &str| format!("{}{digit}{}", "[".repeat(100), "]".repeat(100));
        let siblings = format!("[{},{}]", arm("1"), arm("2"));
        assert!(parse(&siblings).is_ok(), "depth must unwind per subtree");
    }

    #[test]
    fn error_reports_position() {
        let e = parse("[1, x]").unwrap_err();
        assert_eq!(e.at, 4);
        assert!(e.to_string().contains("byte 4"));
    }
}

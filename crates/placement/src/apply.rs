//! Whole-program placement: one optimized layout per procedure from a set of
//! per-procedure edge frequencies — the "feed the estimates back to the
//! compiler" step of the paper's pipeline.

use crate::cost_model::best_layout;
use crate::pettis_hansen::pettis_hansen;
use crate::traces::greedy_traces;
use ct_cfg::graph::Cfg;
use ct_cfg::layout::{Layout, PenaltyModel};

/// Placement strategy selection.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Strategy {
    /// Pettis–Hansen bottom-up chaining.
    PettisHansen,
    /// Greedy trace growing with the given extension threshold.
    Traces {
        /// Minimum successor share to extend a trace.
        threshold: f64,
    },
    /// Run both and keep whichever scores better under the penalty model.
    #[default]
    Best,
}

/// Computes an optimized layout for one procedure.
///
/// # Panics
///
/// Panics if `edge_freq.len()` differs from the edge count.
pub fn place_procedure(
    cfg: &Cfg,
    edge_freq: &[f64],
    penalties: &PenaltyModel,
    strategy: Strategy,
) -> Layout {
    match strategy {
        Strategy::PettisHansen => pettis_hansen(cfg, edge_freq),
        Strategy::Traces { threshold } => greedy_traces(cfg, edge_freq, threshold),
        Strategy::Best => {
            let candidates = vec![
                pettis_hansen(cfg, edge_freq),
                crate::pettis_hansen::pettis_hansen_raw(cfg, edge_freq),
                greedy_traces(cfg, edge_freq, 0.5),
                Layout::natural(cfg),
            ];
            best_layout(cfg, candidates, edge_freq, penalties)
        }
    }
}

/// Confidence threshold below which [`place_with_confidence`] refuses to
/// reorder code: a uniform-prior estimate (confidence 0) carries no signal,
/// and reordering on noise can only cost cycles versus the natural layout.
pub const MIN_PLACEMENT_CONFIDENCE: f64 = 0.25;

/// Confidence-gated placement for estimates that crossed a degraded
/// measurement channel (see `ct_core::estimator::estimate_robust`).
///
/// When `confidence < min_confidence`, the natural layout is returned
/// unchanged — the safe default the paper's flash-rewrite cost argument
/// demands: rewriting code pages on estimates that may be noise wears the
/// flash *and* risks pessimizing the hot path.
///
/// # Panics
///
/// Panics if `edge_freq.len()` differs from the edge count.
pub fn place_with_confidence(
    cfg: &Cfg,
    edge_freq: &[f64],
    confidence: f64,
    min_confidence: f64,
    penalties: &PenaltyModel,
    strategy: Strategy,
) -> Layout {
    if confidence < min_confidence {
        ct_obs::emit(
            "place.decision",
            vec![
                ("accepted", false.into()),
                ("confidence", confidence.into()),
                ("min_confidence", min_confidence.into()),
            ],
        );
        return Layout::natural(cfg);
    }
    let layout = place_procedure(cfg, edge_freq, penalties, strategy);
    ct_obs::emit(
        "place.decision",
        vec![
            ("accepted", true.into()),
            ("confidence", confidence.into()),
            ("min_confidence", min_confidence.into()),
            ("natural", (layout == Layout::natural(cfg)).into()),
        ],
    );
    layout
}

/// Computes optimized layouts for every procedure of a program, given
/// per-procedure edge frequencies (indexed by procedure id).
///
/// # Panics
///
/// Panics if the outer vectors disagree in length.
pub fn place_program(
    cfgs: &[&Cfg],
    edge_freqs: &[Vec<f64>],
    penalties: &PenaltyModel,
    strategy: Strategy,
) -> Vec<Layout> {
    assert_eq!(
        cfgs.len(),
        edge_freqs.len(),
        "one frequency vector per procedure"
    );
    cfgs.iter()
        .zip(edge_freqs)
        .map(|(cfg, freq)| place_procedure(cfg, freq, penalties, strategy))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost_model::expected_cost;
    use ct_cfg::builder::diamond;

    #[test]
    fn best_strategy_never_loses_to_natural() {
        let cfg = diamond();
        let pen = PenaltyModel::avr();
        for freq in [
            [90.0, 10.0, 90.0, 10.0],
            [10.0, 90.0, 10.0, 90.0],
            [50.0, 50.0, 50.0, 50.0],
        ] {
            let best = place_procedure(&cfg, &freq, &pen, Strategy::Best);
            let c_best = expected_cost(&cfg, &best, &freq, &pen);
            let c_nat = expected_cost(&cfg, &Layout::natural(&cfg), &freq, &pen);
            assert!(
                c_best.extra_cycles <= c_nat.extra_cycles + 1e-9,
                "{freq:?}: {c_best:?} vs {c_nat:?}"
            );
        }
    }

    #[test]
    fn strategies_produce_valid_layouts() {
        let cfg = diamond();
        let freq = [70.0, 30.0, 70.0, 30.0];
        let pen = PenaltyModel::msp430();
        for s in [
            Strategy::PettisHansen,
            Strategy::Traces { threshold: 0.5 },
            Strategy::Best,
        ] {
            let l = place_procedure(&cfg, &freq, &pen, s);
            assert_eq!(l.order().len(), cfg.len());
            assert_eq!(l.order()[0], cfg.entry());
        }
    }

    #[test]
    fn low_confidence_keeps_natural_layout() {
        let cfg = diamond();
        let pen = PenaltyModel::avr();
        // A strongly biased (but untrusted) frequency vector.
        let freq = [5.0, 95.0, 5.0, 95.0];
        let gated = place_with_confidence(
            &cfg,
            &freq,
            0.0,
            MIN_PLACEMENT_CONFIDENCE,
            &pen,
            Strategy::Best,
        );
        assert_eq!(gated, Layout::natural(&cfg));
        let trusted = place_with_confidence(
            &cfg,
            &freq,
            0.9,
            MIN_PLACEMENT_CONFIDENCE,
            &pen,
            Strategy::Best,
        );
        let c_trusted = expected_cost(&cfg, &trusted, &freq, &pen);
        let c_nat = expected_cost(&cfg, &Layout::natural(&cfg), &freq, &pen);
        assert!(c_trusted.extra_cycles <= c_nat.extra_cycles + 1e-9);
    }

    #[test]
    fn place_program_maps_per_procedure() {
        let cfg1 = diamond();
        let cfg2 = ct_cfg::builder::linear(3);
        let freqs = vec![vec![1.0; 4], vec![1.0; 2]];
        let layouts = place_program(
            &[&cfg1, &cfg2],
            &freqs,
            &PenaltyModel::avr(),
            Strategy::default(),
        );
        assert_eq!(layouts.len(), 2);
        assert_eq!(layouts[1].order().len(), 3);
    }
}

//! E10 — Counted-loop unrolling ablation (Table; extension experiment).
//!
//! Claim evaluated: the compiler-assisted unrolled model (trip-count
//! analysis + model unrolling + tied copy parameters) is what makes
//! loop-heavy kernels estimable; the plain Markov model's geometric loop
//! approximation lets EM trade loop iterations against data branches.

use ct_bench::{f4, write_result, Table};
use ct_core::accuracy::compare;
use ct_core::estimator::{EstimateOptions, Method};
use ct_core::unrolled::estimate_unrolled;
use ct_pipeline::{EnvConfig, EstimatorChoice, RunConfig, Session};

fn main() {
    let env = EnvConfig::load();
    eprintln!("e10: {}", env.banner());
    let n = env.pick(4_000, 400);
    let seed = env.seed_or(10_000);
    let mut table = Table::new(vec![
        "app",
        "counted loops",
        "plain EM",
        "EM+unroll",
        "moments",
        "unrolled blocks",
    ]);

    for app in ct_apps::all_apps() {
        let session = Session::new(RunConfig::for_app(app.clone()).invocations(n).seeded(seed));
        let run = session.collect().expect("bundled apps must not trap");
        if run.counted_loops.is_empty() {
            continue;
        }
        let cfg = run.cfg();

        let forced = |method: Method| {
            EstimatorChoice::Naive(EstimateOptions {
                method: Some(method),
                ..Default::default()
            })
        };
        let plain = session
            .estimate_as(&run, &forced(Method::Em))
            .map(|e| e.accuracy.weighted_mae);
        let moments = session
            .estimate_as(&run, &forced(Method::Moments))
            .map(|e| e.accuracy.weighted_mae);

        // The pure unrolled model, no fallback — this is the ablation arm.
        let unrolled = estimate_unrolled(
            cfg,
            &run.counted_loops,
            &run.block_costs,
            &run.edge_costs,
            &run.samples,
            Default::default(),
        )
        .map(|u| {
            compare(
                cfg,
                &u.probs,
                &run.truth,
                &run.truth_profile,
                run.invocations,
            )
            .weighted_mae
        });

        let unrolled_blocks = ct_cfg::unroll::unroll(cfg, &run.counted_loops)
            .map(|u| u.cfg.len().to_string())
            .unwrap_or_else(|_| "-".into());

        let fmt = |r: Result<f64, ()>| match r {
            Ok(v) => f4(v),
            Err(()) => "failed".to_string(),
        };
        table.row(vec![
            app.name.to_string(),
            run.counted_loops.len().to_string(),
            fmt(plain.map_err(|_| ())),
            fmt(unrolled.map_err(|_| ())),
            fmt(moments.map_err(|_| ())),
            unrolled_blocks,
        ]);
        eprintln!("e10: {} done", app.name);
    }

    let out = format!(
        "# E10 — Counted-loop unrolling ablation (weighted MAE)\n\n\
         {n} samples, cycle-accurate timer, apps with compiler-proved trip counts only.\n\
         Plain EM runs on the geometric loop model; EM+unroll runs on the\n\
         deterministic unrolled model with copy parameters tied.\n\
         {}\n\n{}",
        env.banner(),
        table.to_markdown()
    );
    println!("{out}");
    if !env.smoke {
        write_result("e10_unroll_ablation.md", &out);
    }
}

//! Scoring estimated profiles against ground truth.

use ct_cfg::graph::Cfg;
use ct_cfg::profile::{BranchProbs, EdgeProfile};
use ct_stats::metrics;

/// Accuracy of an estimated branch-probability vector.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AccuracyReport {
    /// Mean absolute error over branches.
    pub mae: f64,
    /// Root-mean-square error over branches.
    pub rmse: f64,
    /// Worst single-branch error.
    pub max_err: f64,
    /// MAE weighted by how often each branch executes (errors on hot
    /// branches matter more for placement).
    pub weighted_mae: f64,
    /// Number of branches compared.
    pub n_branches: usize,
}

/// Compares estimated probabilities to ground truth, weighting by the branch
/// blocks' execution counts implied by `truth_profile`.
///
/// Returns a zeroed report for branchless procedures.
///
/// # Panics
///
/// Panics if the probability vectors do not match `cfg`.
pub fn compare(
    cfg: &Cfg,
    estimated: &BranchProbs,
    truth: &BranchProbs,
    truth_profile: &EdgeProfile,
    invocations: u64,
) -> AccuracyReport {
    let est = estimated.as_slice();
    let tru = truth.as_slice();
    assert_eq!(est.len(), tru.len(), "branch count mismatch");
    if est.is_empty() {
        return AccuracyReport::default();
    }
    let visits = truth_profile.block_visits(cfg, invocations);
    let weights: Vec<f64> = truth
        .blocks()
        .iter()
        .map(|b| visits[b.index()] as f64)
        .collect();
    AccuracyReport {
        mae: metrics::mae(est, tru),
        rmse: metrics::rmse(est, tru),
        max_err: metrics::max_abs_error(est, tru),
        weighted_mae: metrics::weighted_mae(est, tru, &weights),
        n_branches: est.len(),
    }
}

/// Compares probability vectors directly with uniform weights (when no
/// profile is available, e.g. synthetic sweeps).
///
/// # Panics
///
/// Panics if the vectors differ in length.
pub fn compare_unweighted(estimated: &BranchProbs, truth: &BranchProbs) -> AccuracyReport {
    let est = estimated.as_slice();
    let tru = truth.as_slice();
    assert_eq!(est.len(), tru.len(), "branch count mismatch");
    if est.is_empty() {
        return AccuracyReport::default();
    }
    AccuracyReport {
        mae: metrics::mae(est, tru),
        rmse: metrics::rmse(est, tru),
        max_err: metrics::max_abs_error(est, tru),
        weighted_mae: metrics::mae(est, tru),
        n_branches: est.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_cfg::builder::diamond;

    #[test]
    fn perfect_estimate_scores_zero() {
        let cfg = diamond();
        let truth = BranchProbs::from_vec(&cfg, vec![0.7]);
        let prof = EdgeProfile::from_counts(&cfg, vec![70, 30, 70, 30]);
        let r = compare(&cfg, &truth.clone(), &truth, &prof, 100);
        assert_eq!(r.mae, 0.0);
        assert_eq!(r.max_err, 0.0);
        assert_eq!(r.n_branches, 1);
    }

    #[test]
    fn errors_are_reported() {
        let cfg = diamond();
        let truth = BranchProbs::from_vec(&cfg, vec![0.7]);
        let est = BranchProbs::from_vec(&cfg, vec![0.6]);
        let prof = EdgeProfile::from_counts(&cfg, vec![70, 30, 70, 30]);
        let r = compare(&cfg, &est, &truth, &prof, 100);
        assert!((r.mae - 0.1).abs() < 1e-12);
        assert!((r.weighted_mae - 0.1).abs() < 1e-12);
    }

    #[test]
    fn unweighted_comparison() {
        let cfg = diamond();
        let truth = BranchProbs::from_vec(&cfg, vec![0.5]);
        let est = BranchProbs::from_vec(&cfg, vec![0.9]);
        let r = compare_unweighted(&est, &truth);
        assert!((r.mae - 0.4).abs() < 1e-12);
        assert!((r.rmse - 0.4).abs() < 1e-12);
    }

    #[test]
    fn branchless_reports_zeroes() {
        let cfg = ct_cfg::builder::linear(2);
        let truth = BranchProbs::uniform(&cfg, 0.5);
        let r = compare_unweighted(&truth.clone(), &truth);
        assert_eq!(r, AccuracyReport::default());
    }
}

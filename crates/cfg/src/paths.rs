//! Path enumeration over acyclic CFGs (or acyclic slices of reducible ones).
//!
//! Used by the path-mixture duration model, by Ball–Larus path profiling, and
//! by the scalability experiment (E8), which measures how the path population
//! grows with graph size.

use crate::graph::{BlockId, Cfg, Terminator};
use std::error::Error;
use std::fmt;

/// One entry-to-exit path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// Blocks visited, entry first.
    pub blocks: Vec<BlockId>,
    /// Indices (into [`Cfg::edges`]) of the edges traversed, in order.
    pub edges: Vec<usize>,
}

impl Path {
    /// Total cost of the path under per-block cycle costs.
    ///
    /// # Panics
    ///
    /// Panics if `costs` is shorter than the largest block id on the path.
    pub fn cost(&self, costs: &[u64]) -> u64 {
        self.blocks.iter().map(|b| costs[b.index()]).sum()
    }
}

/// Error from [`enumerate_paths`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// The graph contains a cycle; enumeration is only defined for DAGs.
    Cyclic,
    /// More than `limit` paths exist.
    TooManyPaths {
        /// The enumeration cap that was exceeded.
        limit: usize,
    },
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::Cyclic => write!(f, "cannot enumerate paths of a cyclic graph"),
            PathError::TooManyPaths { limit } => {
                write!(f, "path enumeration exceeded the limit of {limit}")
            }
        }
    }
}

impl Error for PathError {}

/// Enumerates every entry→return path of an acyclic CFG, up to `limit`.
///
/// # Errors
///
/// [`PathError::Cyclic`] when the graph has cycles; [`PathError::TooManyPaths`]
/// when the population exceeds `limit` (callers choose between erroring and
/// switching estimators).
///
/// # Examples
///
/// ```
/// use ct_cfg::builder::diamond;
/// use ct_cfg::paths::enumerate_paths;
/// let paths = enumerate_paths(&diamond(), 100).unwrap();
/// assert_eq!(paths.len(), 2);
/// ```
pub fn enumerate_paths(cfg: &Cfg, limit: usize) -> Result<Vec<Path>, PathError> {
    if !cfg.is_acyclic() {
        return Err(PathError::Cyclic);
    }
    // Precompute the edge index of each (from, successor slot).
    let edges = cfg.edges();
    let edge_of = |from: BlockId, to: BlockId| -> usize {
        edges
            .iter()
            .find(|e| e.from == from && e.to == to)
            .expect("edge exists for successor")
            .index
    };

    let mut out = Vec::new();
    // DFS with explicit stack of (block, taken-edge trail).
    let mut stack: Vec<(BlockId, Vec<BlockId>, Vec<usize>)> =
        vec![(cfg.entry(), vec![cfg.entry()], Vec::new())];
    while let Some((b, blocks, trail)) = stack.pop() {
        match cfg.block(b).term {
            Terminator::Return => {
                out.push(Path {
                    blocks,
                    edges: trail,
                });
                if out.len() > limit {
                    return Err(PathError::TooManyPaths { limit });
                }
            }
            _ => {
                for s in cfg.successors(b) {
                    let mut nb = blocks.clone();
                    nb.push(s);
                    let mut nt = trail.clone();
                    nt.push(edge_of(b, s));
                    stack.push((s, nb, nt));
                }
            }
        }
    }
    // Deterministic order: lexicographic by edge trail.
    out.sort_by(|a, b| a.edges.cmp(&b.edges));
    Ok(out)
}

/// Counts entry→return paths without materializing them (dynamic programming
/// in topological order). Saturates at `u64::MAX`.
///
/// # Panics
///
/// Panics if the graph is cyclic.
pub fn count_paths(cfg: &Cfg) -> u64 {
    assert!(cfg.is_acyclic(), "count_paths requires an acyclic graph");
    let rpo = cfg.reverse_postorder();
    let mut count = vec![0u64; cfg.len()];
    for &b in rpo.iter().rev() {
        match cfg.block(b).term {
            Terminator::Return => count[b.index()] = 1,
            _ => {
                let mut acc: u64 = 0;
                for s in cfg.successors(b) {
                    acc = acc.saturating_add(count[s.index()]);
                }
                count[b.index()] = acc;
            }
        }
    }
    count[cfg.entry().index()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{diamond, diamond_chain, linear, while_loop};

    #[test]
    fn linear_has_single_path() {
        let paths = enumerate_paths(&linear(4), 10).unwrap();
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].blocks.len(), 4);
        assert_eq!(paths[0].edges.len(), 3);
    }

    #[test]
    fn diamond_has_two_paths() {
        let paths = enumerate_paths(&diamond(), 10).unwrap();
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert_eq!(p.blocks.first(), Some(&BlockId(0)));
            assert_eq!(p.blocks.last(), Some(&BlockId(3)));
            assert_eq!(p.blocks.len(), 3);
        }
    }

    #[test]
    fn diamond_chain_paths_are_exponential() {
        for k in 1..6 {
            let cfg = diamond_chain(k);
            assert_eq!(count_paths(&cfg), 1 << k);
            let paths = enumerate_paths(&cfg, 1 << k).unwrap();
            assert_eq!(paths.len(), 1 << k);
        }
    }

    #[test]
    fn limit_is_enforced() {
        let cfg = diamond_chain(5); // 32 paths
        assert_eq!(
            enumerate_paths(&cfg, 31),
            Err(PathError::TooManyPaths { limit: 31 })
        );
    }

    #[test]
    fn cyclic_graph_rejected() {
        assert_eq!(enumerate_paths(&while_loop(), 10), Err(PathError::Cyclic));
    }

    #[test]
    fn path_cost_sums_block_costs() {
        let paths = enumerate_paths(&diamond(), 10).unwrap();
        let costs = [10, 100, 1000, 5];
        let mut totals: Vec<u64> = paths.iter().map(|p| p.cost(&costs)).collect();
        totals.sort();
        assert_eq!(totals, vec![115, 1015]);
    }

    #[test]
    fn paths_are_deterministically_ordered() {
        let a = enumerate_paths(&diamond_chain(3), 100).unwrap();
        let b = enumerate_paths(&diamond_chain(3), 100).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn edge_trails_are_consistent_with_blocks() {
        let cfg = diamond();
        let edges = cfg.edges();
        for p in enumerate_paths(&cfg, 10).unwrap() {
            for (i, &ei) in p.edges.iter().enumerate() {
                assert_eq!(edges[ei].from, p.blocks[i]);
                assert_eq!(edges[ei].to, p.blocks[i + 1]);
            }
        }
    }
}

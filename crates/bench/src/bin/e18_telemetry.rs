//! E18 — Telemetry overhead and fidelity (Table, extension).
//!
//! Telemetry v2 adds latency histograms, a flight recorder, and a metrics
//! exposition pipeline to the fleet-scale service. This experiment drives
//! the e16 fleet workload with telemetry fully **on** (event stream +
//! flight recorder) and fully **off**, and exit-enforces:
//!
//! 1. **Fidelity**: the served estimate with telemetry on is bitwise the
//!    telemetry-off estimate, and both are bitwise the monolithic
//!    [`IncrementalEm`] reference — instrumentation cannot perturb results.
//! 2. **Overhead**: the best-of-N telemetry-on wall time stays within the
//!    overhead bound of the best-of-N telemetry-off wall time (5% full,
//!    35% smoke; min-of-N with alternating reps absorbs scheduler noise).
//! 3. **Coverage**: the `svc.ingest.enqueue_ns`, `svc.reduce.latency_ns`
//!    and `svc.serve.latency_ns` histograms all report a nonzero p99 at
//!    every shard count, and the per-shard `svc.shard.<i>.accepted` /
//!    `.dedup` counters sum to the workload's exact totals.
//! 4. **Determinism**: the `svc.batch_samples` histogram — a property of
//!    the accepted stream, not the schedule — is bitwise identical across
//!    every shard count and both telemetry modes.
//!
//! The run also exercises the service's `Dump` verb (an on-demand flight
//! dump must be schema-valid JSONL with a `flight.meta` header) and the
//! [`MetricsPump`] JSONL sampler.

use ct_apps::synthetic::diamond_chain_problem;
use ct_bench::{f2, write_manifest_env, write_result, Table};
use ct_core::em::{EmOptions, EmResult};
use ct_core::stream::{BatchTag, SuffStats};
use ct_core::IncrementalEm;
use ct_faults::{MoteFaultKind, MoteFaultPlan};
use ct_obs::{HistData, MetricsPump};
use ct_pipeline::synth::synth_samples;
use ct_pipeline::EnvConfig;
use ct_service::{EstimateRequest, EstimationService, ServiceConfig};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Ticks per delivered batch (matches e16: smallest payload, maximum
/// per-batch overhead — the regime where telemetry cost would show).
const BATCH_LEN: usize = 4;

/// Switches the optional telemetry paths (event stream + flight recorder)
/// together. Histogram/counter aggregates are always on — they are part of
/// the manifest contract — so "off" here means the e16 baseline.
fn set_telemetry(on: bool) {
    ct_obs::set_stream_enabled(on);
    ct_obs::flight::set_enabled(on);
}

/// Looks a cumulative counter up in a registry snapshot (0 when absent).
fn counter(snap: &ct_obs::Snapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| *v)
}

/// Looks a histogram up in a registry snapshot.
fn hist(snap: &ct_obs::Snapshot, name: &str) -> Option<HistData> {
    snap.hists
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, h)| h.clone())
}

/// One delivery stream: per-mote 4-tick deltas tagged `(mote, 0)`, with a
/// seeded ~`dup_rate` fraction of motes delivering twice (at-least-once
/// transport). Returns the stream in delivery order plus the dup count.
fn delivery_stream(
    deltas: &[SuffStats],
    dup_rate: f64,
    seed: u64,
) -> (Vec<(BatchTag, SuffStats)>, u64) {
    let plan = MoteFaultPlan::single(MoteFaultKind::DuplicateDelivery, dup_rate, seed);
    let mut deliveries = Vec::with_capacity(deltas.len() * 2);
    let mut dups = 0u64;
    for (m, delta) in deltas.iter().enumerate() {
        let tag = BatchTag {
            mote: m as u64,
            seq: 0,
        };
        deliveries.push((tag, delta.clone()));
        if plan.outcome(m as u64, 0).duplicate_delivery {
            deliveries.push((tag, delta.clone()));
            dups += 1;
        }
    }
    (deliveries, dups)
}

/// The monolithic reference: one [`IncrementalEm`] folds every distinct
/// delta in mote order and re-estimates once from a cold start.
fn monolithic_reference(
    deltas: &[SuffStats],
    cpt: u64,
    cfg: &ct_cfg::graph::Cfg,
    bc: &[u64],
    ec: &[u64],
) -> EmResult {
    let mut inc = IncrementalEm::new(cpt, EmOptions::default());
    for d in deltas {
        inc.ingest(d).expect("reference ingest");
    }
    inc.reestimate(cfg, bc, ec).expect("reference EM").clone()
}

/// Runs one service cell exactly like e16 (producers fan the stream over
/// the ingest handles, the coordinator polls reduce, then drain + serve +
/// shutdown). When `dump` is set, the service's `Dump` verb is exercised
/// after the serve, before shutdown.
#[allow(clippy::too_many_arguments)]
fn run_cell(
    config: &ServiceConfig,
    producers: usize,
    deliveries: &[(BatchTag, SuffStats)],
    cpt: u64,
    cfg: &ct_cfg::graph::Cfg,
    bc: &[u64],
    ec: &[u64],
    dump: Option<&Path>,
) -> (ct_service::EstimateResponse, Duration) {
    let mut svc = EstimationService::start(config, cpt, EmOptions::default());
    let remaining = AtomicUsize::new(producers);
    let started = Instant::now();
    std::thread::scope(|s| {
        for p in 0..producers {
            let handle = svc.handle();
            let remaining = &remaining;
            s.spawn(move || {
                for (tag, delta) in deliveries.iter().skip(p).step_by(producers) {
                    handle.ingest(*tag, delta.clone()).expect("ingest");
                }
                ct_obs::drain_thread();
                remaining.fetch_sub(1, Ordering::Release);
            });
        }
        while remaining.load(Ordering::Acquire) > 0 {
            svc.reduce().expect("reduce");
        }
    });
    svc.drain().expect("final drain");
    let elapsed = started.elapsed();
    let resp = svc
        .serve(&EstimateRequest::latest("diamond_chain"), cfg, bc, ec)
        .expect("serve");
    if let Some(path) = dump {
        svc.dump(path).expect("flight dump");
    }
    svc.shutdown().expect("shutdown");
    (resp, elapsed)
}

/// Panics unless the served estimate is bitwise the reference EM run.
fn assert_bitwise(resp: &ct_service::EstimateResponse, reference: &EmResult, cell: &str) {
    for (i, (a, b)) in resp
        .probs
        .iter()
        .zip(reference.probs.as_slice())
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{cell}: branch {i} diverged from the monolithic reference: {a} vs {b}"
        );
    }
    assert_eq!(
        resp.loglik.to_bits(),
        reference.loglik.to_bits(),
        "{cell}: log-likelihood diverged"
    );
    assert_eq!(
        resp.iterations, reference.iterations,
        "{cell}: EM iteration count diverged"
    );
    assert_eq!(resp.converged, reference.converged);
}

/// Validates an on-demand flight dump: `flight.meta` header first, every
/// line valid JSON, and the serve's `svc.estimate` event in the ring.
fn validate_flight_dump(path: &Path) {
    let text = std::fs::read_to_string(path).expect("flight dump readable");
    let first = text.lines().next().unwrap_or_default();
    assert!(
        first.contains("\"event\":\"flight.meta\"") && first.contains("\"reason\":\"dump-verb\""),
        "flight dump must lead with its meta header: {first}"
    );
    for line in text.lines() {
        ct_obs::json::parse(line).unwrap_or_else(|e| panic!("bad flight line {line}: {e}"));
    }
    assert!(
        text.contains("\"event\":\"svc.estimate\""),
        "the serve that preceded the Dump verb must be in the ring"
    );
}

fn main() {
    let env = EnvConfig::load();
    eprintln!("e18: {}", env.banner());
    let seed = env.seed_or(83);
    let motes = env.pick(40_000, 300);
    let shard_counts: &[usize] = if env.smoke { &[1, 2] } else { &[1, 2, 7, 16] };
    let producers = env.threads.max(1);
    let reps = env.pick(3usize, 2);
    let bound = env.pick(0.05f64, 0.35);

    let (cfg, bc, ec, truth) = diamond_chain_problem(2, seed);
    let samples = synth_samples(&cfg, &bc, &ec, &truth, motes * BATCH_LEN, seed);
    let cpt = samples.cycles_per_tick();
    let deltas: Vec<SuffStats> = samples
        .ticks()
        .chunks(BATCH_LEN)
        .map(|chunk| {
            let mut s = SuffStats::new(cpt);
            chunk.iter().for_each(|&t| s.push(t));
            s
        })
        .collect();
    let (deliveries, dups) = delivery_stream(&deltas, 0.25, seed);
    let reference = monolithic_reference(&deltas, cpt, &cfg, &bc, &ec);

    let dump_dir = std::env::temp_dir().join(format!("ct-e18-{}", std::process::id()));
    let dump_path = dump_dir.join("e18.flight.jsonl");
    let last_shards = *shard_counts.last().expect("non-empty sweep");

    let mut table = Table::new(vec![
        "shards",
        "off kb/s",
        "on kb/s",
        "ovh %",
        "enq p99 ns",
        "reduce p99 ns",
        "serve p99 ns",
        "bitwise",
    ]);
    // The schedule-independent histogram, pinned by the first cell: every
    // later cell — any shard count, telemetry on or off — must match it
    // bitwise.
    let mut batch_hist: Option<HistData> = None;

    for &shards in shard_counts {
        let config = ServiceConfig::new().shards(shards);
        let cell = format!("shards={shards}");
        let mut best = [Duration::MAX, Duration::MAX]; // [off, on]
        let mut resps: [Option<ct_service::EstimateResponse>; 2] = [None, None];
        let mut on_snap: Option<ct_obs::Snapshot> = None;

        // Alternating off/on reps: thermal and scheduler drift hits both
        // modes equally, and min-of-N drops the noisy outliers.
        for rep in 0..reps {
            for on in [false, true] {
                let mode = usize::from(on);
                ct_obs::reset();
                set_telemetry(on);
                let dump =
                    (on && rep == reps - 1 && shards == last_shards).then_some(dump_path.as_path());
                let (resp, elapsed) =
                    run_cell(&config, producers, &deliveries, cpt, &cfg, &bc, &ec, dump);
                set_telemetry(false);
                let snap = ct_obs::snapshot();
                best[mode] = best[mode].min(elapsed);
                resps[mode] = Some(resp);

                let bh = hist(&snap, "svc.batch_samples")
                    .unwrap_or_else(|| panic!("{cell}: svc.batch_samples missing"));
                match &batch_hist {
                    None => batch_hist = Some(bh),
                    Some(first) => assert_eq!(
                        &bh, first,
                        "{cell} on={on}: svc.batch_samples drifted with the schedule"
                    ),
                }
                if on {
                    on_snap = Some(snap);
                }
            }
        }

        // Claim 1: telemetry cannot perturb the estimate.
        let off = resps[0].take().expect("off rep ran");
        let on = resps[1].take().expect("on rep ran");
        assert_bitwise(&off, &reference, &format!("{cell} off"));
        assert_bitwise(&on, &reference, &format!("{cell} on"));
        assert_eq!(on.batches, off.batches, "{cell}: batch count diverged");
        assert_eq!(on.samples, off.samples, "{cell}: sample count diverged");

        // Claim 3: the latency histograms actually measured something, and
        // the per-shard counters account for the exact workload.
        let snap = on_snap.expect("an on rep ran");
        let p99 = |name: &str| {
            hist(&snap, name)
                .unwrap_or_else(|| panic!("{cell}: {name} missing"))
                .p99()
        };
        let (enq, red, srv) = (
            p99("svc.ingest.enqueue_ns"),
            p99("svc.reduce.latency_ns"),
            p99("svc.serve.latency_ns"),
        );
        assert!(enq > 0, "{cell}: enqueue latency histogram is empty");
        assert!(red > 0, "{cell}: reduce latency histogram is empty");
        assert!(srv > 0, "{cell}: serve latency histogram is empty");
        let accepted: u64 = (0..shards)
            .map(|i| counter(&snap, &format!("svc.shard.{i}.accepted")))
            .sum();
        let dedup: u64 = (0..shards)
            .map(|i| counter(&snap, &format!("svc.shard.{i}.dedup")))
            .sum();
        assert_eq!(accepted, motes as u64, "{cell}: per-shard accepted drifted");
        assert_eq!(dedup, dups, "{cell}: per-shard dedup drifted");

        // Claim 2: the overhead gate.
        let (off_s, on_s) = (best[0].as_secs_f64(), best[1].as_secs_f64());
        assert!(
            on_s <= off_s * (1.0 + bound),
            "{cell}: telemetry overhead {:.1}% over the {:.0}% bound \
             (off {off_s:.3}s, on {on_s:.3}s)",
            (on_s / off_s - 1.0) * 100.0,
            bound * 100.0
        );

        table.row(vec![
            shards.to_string(),
            f2(deliveries.len() as f64 / off_s / 1_000.0),
            f2(deliveries.len() as f64 / on_s / 1_000.0),
            f2((on_s / off_s - 1.0) * 100.0),
            enq.to_string(),
            red.to_string(),
            srv.to_string(),
            "yes".to_string(),
        ]);
    }

    // The Dump verb produced a schema-valid flight dump on the last on-rep.
    validate_flight_dump(&dump_path);

    // The metrics pump samples the registry (which still holds the final
    // on-cell) into parseable JSONL rows.
    let pump_path = dump_dir.join("e18.metrics.jsonl");
    let mut pump = MetricsPump::new(&pump_path, Duration::ZERO);
    assert!(
        pump.tick(),
        "a zero-interval pump must sample on first tick"
    );
    pump.force_sample();
    assert_eq!(pump.samples(), 2);
    let series = std::fs::read_to_string(&pump_path).expect("metrics series readable");
    assert_eq!(series.lines().count(), 2);
    for line in series.lines() {
        ct_obs::json::parse(line).unwrap_or_else(|e| panic!("bad metrics line {line}: {e}"));
        assert!(line.contains("\"event\":\"metrics.sample\""));
        assert!(line.contains("\"svc.ingest.enqueue_ns\""));
    }
    let _ = std::fs::remove_dir_all(&dump_dir);

    let out = format!(
        "# E18 — Telemetry overhead and fidelity\n\n\
         diamond_chain(2), {motes} motes x {BATCH_LEN} ticks/batch, ~25% duplicated\n\
         deliveries, seed {seed}, {producers} producer thread(s), best of {reps}\n\
         alternating reps per mode. Exit-status-enforced claims: telemetry-on\n\
         serves bitwise the telemetry-off and monolithic-reference estimate at\n\
         every shard count, best-of-N overhead stays under {}%, the three\n\
         service latency histograms report nonzero p99s, per-shard counters sum\n\
         to the exact workload, and `svc.batch_samples` is bitwise invariant\n\
         across shard counts and modes. The flight-recorder Dump verb and the\n\
         metrics pump both produced schema-valid JSONL.\n\
         {}\n\n{}",
        f2(bound * 100.0),
        env.banner(),
        table.to_markdown()
    );
    println!("{out}");
    write_manifest_env("e18_telemetry");
    if !env.smoke {
        write_result("e18_telemetry.md", &out);
    }
}

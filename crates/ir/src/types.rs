//! The NLC type system: fixed-width mote integer types and `bool`.

use std::fmt;

/// A primitive NLC type.
///
/// Arithmetic is evaluated in 64-bit and wrapped to the declared width on
/// store (matching C's implicit truncating conversions on 8/16-bit MCUs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// Unsigned 8-bit.
    U8,
    /// Unsigned 16-bit (the native word of MSP430-class motes).
    U16,
    /// Unsigned 32-bit.
    U32,
    /// Signed 8-bit.
    I8,
    /// Signed 16-bit.
    I16,
    /// Signed 32-bit.
    I32,
    /// Boolean (conditions; not interchangeable with integers).
    Bool,
}

impl Ty {
    /// Parses a type name, returning `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Ty> {
        Some(match name {
            "u8" => Ty::U8,
            "u16" => Ty::U16,
            "u32" => Ty::U32,
            "i8" => Ty::I8,
            "i16" => Ty::I16,
            "i32" => Ty::I32,
            "bool" => Ty::Bool,
            _ => return None,
        })
    }

    /// True for the integer types.
    pub fn is_integer(self) -> bool {
        !matches!(self, Ty::Bool)
    }

    /// Wraps a 64-bit computation result into this type's value range.
    ///
    /// Booleans normalize to 0/1.
    pub fn wrap(self, v: i64) -> i64 {
        match self {
            Ty::U8 => (v as u8) as i64,
            Ty::U16 => (v as u16) as i64,
            Ty::U32 => (v as u32) as i64,
            Ty::I8 => (v as i8) as i64,
            Ty::I16 => (v as i16) as i64,
            Ty::I32 => (v as i32) as i64,
            Ty::Bool => (v != 0) as i64,
        }
    }

    /// Bit width of the type (booleans are stored in one byte).
    pub fn bits(self) -> u32 {
        match self {
            Ty::U8 | Ty::I8 | Ty::Bool => 8,
            Ty::U16 | Ty::I16 => 16,
            Ty::U32 | Ty::I32 => 32,
        }
    }

    /// Size in bytes when stored in mote RAM.
    pub fn size_bytes(self) -> u32 {
        self.bits() / 8
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ty::U8 => "u8",
            Ty::U16 => "u16",
            Ty::U32 => "u32",
            Ty::I8 => "i8",
            Ty::I16 => "i16",
            Ty::I32 => "i32",
            Ty::Bool => "bool",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_name_round_trips_display() {
        for ty in [Ty::U8, Ty::U16, Ty::U32, Ty::I8, Ty::I16, Ty::I32, Ty::Bool] {
            assert_eq!(Ty::from_name(&ty.to_string()), Some(ty));
        }
        assert_eq!(Ty::from_name("u64"), None);
    }

    #[test]
    fn wrap_unsigned_truncates() {
        assert_eq!(Ty::U8.wrap(256), 0);
        assert_eq!(Ty::U8.wrap(257), 1);
        assert_eq!(Ty::U8.wrap(-1), 255);
        assert_eq!(Ty::U16.wrap(65536 + 5), 5);
        assert_eq!(Ty::U32.wrap(1 << 40), 0);
    }

    #[test]
    fn wrap_signed_wraps_around() {
        assert_eq!(Ty::I8.wrap(128), -128);
        assert_eq!(Ty::I8.wrap(-129), 127);
        assert_eq!(Ty::I16.wrap(40000), 40000 - 65536);
    }

    #[test]
    fn wrap_bool_normalizes() {
        assert_eq!(Ty::Bool.wrap(0), 0);
        assert_eq!(Ty::Bool.wrap(17), 1);
        assert_eq!(Ty::Bool.wrap(-1), 1);
    }

    #[test]
    fn sizes() {
        assert_eq!(Ty::U8.size_bytes(), 1);
        assert_eq!(Ty::U16.size_bytes(), 2);
        assert_eq!(Ty::I32.size_bytes(), 4);
        assert_eq!(Ty::Bool.size_bytes(), 1);
    }

    #[test]
    fn integer_classification() {
        assert!(Ty::U16.is_integer());
        assert!(!Ty::Bool.is_integer());
    }
}

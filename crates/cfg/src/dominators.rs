//! Dominator analysis (Cooper–Harvey–Kennedy iterative algorithm).
//!
//! Dominators feed natural-loop detection ([`crate::loops`]) and the
//! structural decomposition used by the duration model.

use crate::graph::{BlockId, Cfg};

/// The dominator tree of a [`Cfg`].
///
/// # Examples
///
/// ```
/// use ct_cfg::builder::diamond;
/// use ct_cfg::dominators::Dominators;
/// use ct_cfg::graph::BlockId;
/// let cfg = diamond();
/// let dom = Dominators::compute(&cfg);
/// // The branch block dominates the join block.
/// assert!(dom.dominates(BlockId(0), BlockId(3)));
/// // Neither arm dominates the join.
/// assert!(!dom.dominates(BlockId(1), BlockId(3)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dominators {
    /// Immediate dominator of each block; `idom[entry] == entry`;
    /// `None` for unreachable blocks.
    idom: Vec<Option<BlockId>>,
    entry: BlockId,
}

impl Dominators {
    /// Computes dominators for all blocks reachable from the entry.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty.
    pub fn compute(cfg: &Cfg) -> Dominators {
        let entry = cfg.entry();
        let rpo = cfg.reverse_postorder();
        let n = cfg.len();

        // Map block -> its position in reverse postorder (for intersect).
        let mut rpo_pos = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_pos[b.index()] = i;
        }

        let preds = cfg.predecessors();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.index()] = Some(entry);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            while a != b {
                while rpo_pos[a.index()] > rpo_pos[b.index()] {
                    a = idom[a.index()].expect("processed block has idom");
                }
                while rpo_pos[b.index()] > rpo_pos[a.index()] {
                    b = idom[b.index()].expect("processed block has idom");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // First processed predecessor seeds the meet.
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators { idom, entry }
    }

    /// Immediate dominator of `b` (`None` for the entry and for unreachable
    /// blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        if b == self.entry {
            return None;
        }
        self.idom[b.index()]
    }

    /// True when `a` dominates `b` (reflexive: every block dominates itself).
    ///
    /// Returns `false` if `b` is unreachable.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(d) if d != cur => cur = d,
                _ => return cur == a,
            }
        }
    }

    /// The dominator-tree path from `b` up to the entry, inclusive on both
    /// ends. Empty if `b` is unreachable.
    pub fn dominator_chain(&self, b: BlockId) -> Vec<BlockId> {
        let mut chain = Vec::new();
        let mut cur = b;
        if self.idom[cur.index()].is_none() && cur != self.entry {
            return chain;
        }
        loop {
            chain.push(cur);
            match self.idom[cur.index()] {
                Some(d) if d != cur => cur = d,
                _ => break,
            }
        }
        chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{diamond, irreducible, linear, nested_loops, while_loop};

    #[test]
    fn linear_chain_dominators() {
        let cfg = linear(4);
        let dom = Dominators::compute(&cfg);
        assert_eq!(dom.idom(BlockId(0)), None);
        assert_eq!(dom.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(3)), Some(BlockId(2)));
        assert!(dom.dominates(BlockId(0), BlockId(3)));
        assert!(dom.dominates(BlockId(1), BlockId(3)));
        assert!(!dom.dominates(BlockId(3), BlockId(1)));
    }

    #[test]
    fn diamond_join_dominated_by_cond_only() {
        let cfg = diamond();
        let dom = Dominators::compute(&cfg);
        assert_eq!(dom.idom(BlockId(3)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(2)), Some(BlockId(0)));
    }

    #[test]
    fn loop_header_dominates_body() {
        let cfg = while_loop();
        let dom = Dominators::compute(&cfg);
        // header (b1) dominates body (b2) and exit (b3).
        assert!(dom.dominates(BlockId(1), BlockId(2)));
        assert!(dom.dominates(BlockId(1), BlockId(3)));
        assert!(!dom.dominates(BlockId(2), BlockId(1)));
    }

    #[test]
    fn nested_loops_dominator_nesting() {
        let cfg = nested_loops();
        let dom = Dominators::compute(&cfg);
        // outer_header (b1) dominates inner_header (b2) dominates inner_body (b3).
        assert!(dom.dominates(BlockId(1), BlockId(2)));
        assert!(dom.dominates(BlockId(2), BlockId(3)));
        assert!(dom.dominates(BlockId(1), BlockId(4)));
    }

    #[test]
    fn irreducible_graph_gets_entry_as_meet() {
        let cfg = irreducible();
        let dom = Dominators::compute(&cfg);
        // Neither a nor b dominates the other; both idoms are the entry.
        assert_eq!(dom.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(2)), Some(BlockId(0)));
    }

    #[test]
    fn dominator_chain_walks_to_entry() {
        let cfg = linear(3);
        let dom = Dominators::compute(&cfg);
        assert_eq!(
            dom.dominator_chain(BlockId(2)),
            vec![BlockId(2), BlockId(1), BlockId(0)]
        );
    }

    #[test]
    fn reflexive_dominance() {
        let cfg = diamond();
        let dom = Dominators::compute(&cfg);
        for b in cfg.block_ids() {
            assert!(dom.dominates(b, b));
        }
    }
}

//! The fleet driver: N simulated motes running the same configuration on
//! strided seeds, fanned out over scoped threads, their tick streams
//! reduced to mergeable sufficient statistics.
//!
//! This is the paper's deployment story at scale: every mote ships
//! end-to-end timestamps to a base station, which needs *one* profile of
//! the shared binary. Per-mote streams reduce to
//! [`ct_core::SuffStats`] (associative, commutative merge — any
//! reduction order, any thread count, bitwise the same result) and the
//! estimators run directly off the merged statistics without ever
//! re-materializing the combined sample vector. Ground-truth edge profiles
//! merge additively for scoring.

use crate::config::{EstimatorChoice, RunConfig};
use crate::error::PipelineError;
use crate::session::Session;
use crate::stage::{estimate_probs, Estimated};
use ct_cfg::graph::{BlockId, Cfg};
use ct_cfg::profile::{BranchProbs, EdgeProfile};
use ct_core::accuracy::compare;
use ct_core::em::EmOptions;
use ct_core::estimator::{estimate_robust, Estimate as CoreEstimate, EstimateError, Method};
use ct_core::incremental::IncrementalEm;
use ct_core::stream::SuffStats;
use ct_ir::instr::ProcId;
use ct_ir::program::Program;

/// One mote's reduced contribution to the fleet profile: everything the
/// base station keeps after ingesting the mote's record stream.
#[derive(Debug, Clone)]
struct MoteContribution {
    stats: SuffStats,
    truth_profile: EdgeProfile,
    invocations: u64,
    cycles_used: u64,
    pmu: ct_mote::pmu::PmuSnapshot,
}

/// The merged artifact of a fleet run: static program facts plus the
/// order-insensitively merged measurement and ground-truth state.
#[derive(Debug)]
pub struct FleetRun {
    /// The shared compiled program.
    pub program: Program,
    /// The profiled procedure.
    pub pid: ProcId,
    /// Static block costs of the target (natural layout).
    pub block_costs: Vec<u64>,
    /// Static edge costs of the target (natural layout).
    pub edge_costs: Vec<u64>,
    /// Statically counted loops of the target.
    pub counted_loops: Vec<(BlockId, u64)>,
    /// Merged sufficient statistics of every mote's tick stream.
    pub stats: SuffStats,
    /// Per-mote statistics in mote order — the batch sequence the streaming
    /// estimator ([`Fleet::estimate_streaming`]) re-estimates over. Merging
    /// these left-to-right reproduces [`FleetRun::stats`] bitwise.
    pub mote_stats: Vec<SuffStats>,
    /// Merged ground-truth edge profile (scoring only).
    pub truth_profile: EdgeProfile,
    /// Ground-truth branch probabilities of the merged profile.
    pub truth: BranchProbs,
    /// Total target invocations across the fleet.
    pub invocations: u64,
    /// Total cycles consumed across the fleet.
    pub cycles_used: u64,
    /// Merged virtual-PMU counters across the fleet (per procedure and
    /// total) — same commutative merge discipline as [`SuffStats`].
    pub pmu: ct_mote::pmu::PmuSnapshot,
    /// How many motes contributed.
    pub motes: usize,
}

impl FleetRun {
    /// The target procedure's CFG.
    pub fn cfg(&self) -> &Cfg {
        &self.program.procs[self.pid.index()].cfg
    }
}

/// N motes running one configuration on deterministically strided seeds.
#[derive(Debug, Clone)]
pub struct Fleet {
    config: RunConfig,
    motes: usize,
}

impl Fleet {
    /// A fleet of `motes` motes under `config`. Mote 0 uses the config's
    /// seed verbatim, so `Fleet::new(config, 1)` reproduces the single-mote
    /// [`Session`] path exactly.
    pub fn new(config: RunConfig, motes: usize) -> Fleet {
        Fleet { config, motes }
    }

    /// The fleet's base configuration.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// The per-mote configuration: strided workload seed, and a strided
    /// fault-plan seed when a fault plan is configured (each mote's record
    /// channel fails independently — but mote 0 keeps the plan verbatim).
    pub fn mote_config(&self, index: usize) -> RunConfig {
        let offset = self.config.mote_seed(index).wrapping_sub(self.config.seed);
        let mut c = self.config.clone().seeded(self.config.mote_seed(index));
        if let Some(plan) = &mut c.fault {
            plan.seed = plan.seed.wrapping_add(offset);
        }
        c
    }

    /// Runs every mote (fanned out over scoped threads, `CT_THREADS` to
    /// override the worker count) and merges their contributions. The
    /// merge is a left fold in mote order, but [`SuffStats::merge`] is
    /// associative and commutative, so any other reduction shape would
    /// produce the identical result.
    ///
    /// # Errors
    ///
    /// [`PipelineError::EmptyFleet`] for a zero-mote fleet;
    /// [`PipelineError::Trap`] if any mote's workload traps.
    pub fn run(&self) -> Result<FleetRun, PipelineError> {
        if self.motes == 0 {
            return Err(PipelineError::EmptyFleet);
        }
        let _span = ct_obs::Span::enter("fleet.run");
        // Static program facts once, from a deploy that never runs.
        let statics = Session::new(self.config.clone().invocations(0)).collect()?;

        let contributions: Vec<Result<MoteContribution, PipelineError>> =
            ct_stats::parallel::par_map((0..self.motes).collect(), |i| {
                let mote_config = self.mote_config(i);
                let seed = mote_config.seed;
                let run = Session::new(mote_config).collect()?;
                // Only order-insensitive facts: snapshots sort events by
                // content, so the stream is identical at any CT_THREADS.
                ct_obs::emit(
                    "fleet.mote",
                    vec![
                        ("mote", i.into()),
                        ("seed", seed.into()),
                        ("samples", run.samples.len().into()),
                        ("invocations", run.invocations.into()),
                        ("cycles_used", run.cycles_used.into()),
                    ],
                );
                ct_obs::Counter::new("fleet.motes").incr();
                Ok(MoteContribution {
                    stats: SuffStats::from_samples(&run.samples),
                    truth_profile: run.truth_profile,
                    invocations: run.invocations,
                    cycles_used: run.cycles_used,
                    pmu: run.pmu,
                })
            });

        let mut stats = SuffStats::new(self.config.cycles_per_tick);
        let mut mote_stats = Vec::with_capacity(self.motes);
        let mut truth_profile = EdgeProfile::zeroed(statics.cfg());
        let mut invocations = 0u64;
        let mut cycles_used = 0u64;
        // The zero-invocation statics run gives the right per-procedure
        // shape with every counter at zero — the merge identity.
        let mut pmu = statics.pmu.clone();
        for contribution in contributions {
            let c = contribution?;
            stats.merge(&c.stats)?;
            mote_stats.push(c.stats);
            truth_profile.merge(&c.truth_profile);
            invocations += c.invocations;
            cycles_used += c.cycles_used;
            pmu.merge(&c.pmu);
        }
        let truth = truth_profile.branch_probs(statics.cfg());
        Ok(FleetRun {
            truth,
            stats,
            mote_stats,
            truth_profile,
            invocations,
            cycles_used,
            pmu,
            motes: self.motes,
            program: statics.program,
            pid: statics.pid,
            block_costs: statics.block_costs,
            edge_costs: statics.edge_costs,
            counted_loops: statics.counted_loops,
        })
    }

    /// Estimates the fleet's branch profile **from the merged statistics**
    /// — the naive estimators (EM, moments, flow) consume the histogram
    /// and moments directly; only the robust ladder, whose trimming needs
    /// concrete values, materializes a sorted sample vector.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Estimate`] when the naive estimator fails hard;
    /// [`PipelineError::InvalidSamples`] when the robust ladder cannot
    /// materialize the merged statistics.
    pub fn estimate(&self, fleet_run: &FleetRun) -> Result<Estimated, PipelineError> {
        let cfg = fleet_run.cfg();
        let (estimate, confidence, robust) = match &self.config.estimator {
            EstimatorChoice::Naive(opts) => {
                let est = estimate_probs(
                    cfg,
                    &fleet_run.counted_loops,
                    &fleet_run.block_costs,
                    &fleet_run.edge_costs,
                    &fleet_run.stats,
                    *opts,
                    self.config.unroll_counted,
                )?;
                (est, 1.0, None)
            }
            EstimatorChoice::Robust(opts) => {
                let samples = fleet_run.stats.to_samples()?;
                let r = estimate_robust(
                    cfg,
                    &fleet_run.block_costs,
                    &fleet_run.edge_costs,
                    &samples,
                    *opts,
                );
                (r.estimate.clone(), r.confidence, Some(r))
            }
        };
        let accuracy = compare(
            cfg,
            &estimate.probs,
            &fleet_run.truth,
            &fleet_run.truth_profile,
            fleet_run.invocations,
        );
        Ok(Estimated {
            estimate,
            accuracy,
            confidence,
            robust,
        })
    }

    /// EM controls for the streaming path, from the configured estimator.
    fn em_options(&self) -> EmOptions {
        match &self.config.estimator {
            EstimatorChoice::Naive(o) => o.em,
            EstimatorChoice::Robust(o) => o.base.em,
        }
    }

    /// Streaming fleet estimation: feeds each mote's [`SuffStats`] delta
    /// (mote order) into an [`IncrementalEm`] and re-estimates after every
    /// batch, warm-starting from the previous optimum with a shared
    /// convolution cache — the fleet-service path, where re-estimation per
    /// arriving batch must cost a few warm sweeps, not a cold restart
    /// fan-out. The final estimate is a full EM fixed point for the merged
    /// statistics (the warm start moves the path, not the objective), and
    /// the whole batch trajectory is deterministic: same batches, same
    /// `CT_THREADS`-independent result, cache on or off.
    ///
    /// # Errors
    ///
    /// [`PipelineError::EmptyFleet`] when the run has no batches;
    /// [`PipelineError::Estimate`] when EM fails hard.
    pub fn estimate_streaming(
        &self,
        fleet_run: &FleetRun,
    ) -> Result<FleetStreamReport, PipelineError> {
        let _span = ct_obs::Span::enter("fleet.stream");
        let cfg = fleet_run.cfg();
        let mut inc = IncrementalEm::new(self.config.cycles_per_tick, self.em_options());
        let mut batch_iterations = Vec::with_capacity(fleet_run.mote_stats.len());
        for delta in &fleet_run.mote_stats {
            inc.ingest(delta)
                .map_err(|e| PipelineError::from(EstimateError::Em(e)))?;
            let r = inc
                .reestimate(cfg, &fleet_run.block_costs, &fleet_run.edge_costs)
                .map_err(|e| PipelineError::from(EstimateError::Em(e)))?;
            batch_iterations.push(r.iterations);
        }
        let r = inc.last().cloned().ok_or(PipelineError::EmptyFleet)?;
        let estimate = CoreEstimate {
            probs: r.probs,
            method: Method::Em,
            iterations: batch_iterations.iter().sum(),
            converged: r.converged,
            final_delta: r.final_delta,
            loglik: Some(r.loglik),
            unexplained: r.unexplained,
        };
        let accuracy = compare(
            cfg,
            &estimate.probs,
            &fleet_run.truth,
            &fleet_run.truth_profile,
            fleet_run.invocations,
        );
        ct_obs::emit(
            "fleet.stream",
            vec![
                ("batches", batch_iterations.len().into()),
                ("iterations", batch_iterations.iter().sum::<usize>().into()),
                ("cache_hits", inc.cache_hits().into()),
                ("cache_misses", inc.cache_misses().into()),
            ],
        );
        Ok(FleetStreamReport {
            batches: batch_iterations.len(),
            batch_iterations,
            cache_hits: inc.cache_hits(),
            cache_misses: inc.cache_misses(),
            estimated: Estimated {
                estimate,
                accuracy,
                confidence: 1.0,
                robust: None,
            },
        })
    }

    /// Runs the fleet and estimates via the streaming per-batch path — the
    /// default entry point for the fleet-scale service loop (use
    /// [`Fleet::run`] + [`Fleet::estimate`] for the one-shot merged-stats
    /// estimate, which is pinned bitwise to the monolithic front door).
    ///
    /// # Errors
    ///
    /// Propagates [`Fleet::run`] and [`Fleet::estimate_streaming`] errors.
    pub fn run_streaming(&self) -> Result<(FleetRun, FleetStreamReport), PipelineError> {
        let fleet_run = self.run()?;
        let report = self.estimate_streaming(&fleet_run)?;
        Ok((fleet_run, report))
    }
}

/// The outcome of streaming per-batch re-estimation over a fleet run.
#[derive(Debug)]
pub struct FleetStreamReport {
    /// The final scored estimate (after the last batch).
    pub estimated: Estimated,
    /// Batches ingested (one per mote, in mote order).
    pub batches: usize,
    /// EM iterations each per-batch re-estimation took — the amortization
    /// story: after the first batch these should be a handful, not a full
    /// cold run.
    pub batch_iterations: Vec<usize>,
    /// Convolution-cache hits across all re-estimations.
    pub cache_hits: u64,
    /// Convolution-cache misses across all re-estimations.
    pub cache_misses: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_core::samples::DurationSamples;

    #[test]
    fn zero_motes_is_an_error() {
        let fleet = Fleet::new(RunConfig::new("sense").invocations(10), 0);
        assert_eq!(fleet.run().unwrap_err(), PipelineError::EmptyFleet);
    }

    #[test]
    fn one_mote_fleet_equals_the_single_mote_path() {
        let config = RunConfig::new("sense").invocations(300).seeded(42);
        let single = Session::new(config.clone()).collect().unwrap();
        let fleet_run = Fleet::new(config, 1).run().unwrap();
        assert_eq!(fleet_run.stats, SuffStats::from_samples(&single.samples));
        assert_eq!(fleet_run.truth_profile, single.truth_profile);
        assert_eq!(fleet_run.invocations, single.invocations);
        assert_eq!(fleet_run.cycles_used, single.cycles_used);
        assert_eq!(fleet_run.pmu, single.pmu);
    }

    #[test]
    fn fleet_motes_observe_distinct_workloads() {
        let config = RunConfig::new("sense").invocations(200).seeded(7);
        let fr = Fleet::new(config.clone(), 3).run().unwrap();
        assert_eq!(fr.motes, 3);
        assert_eq!(fr.invocations, 600);
        assert_eq!(fr.stats.len(), 600);
        assert_eq!(
            fr.pmu.proc(fr.pid).calls,
            600,
            "merged PMU counts one activation per invocation"
        );
        // Three motes on strided seeds are not three copies of one mote.
        let single = Session::new(config).collect().unwrap();
        let mut tripled = SuffStats::from_samples(&single.samples);
        tripled
            .merge(&SuffStats::from_samples(&single.samples))
            .unwrap();
        tripled
            .merge(&SuffStats::from_samples(&single.samples))
            .unwrap();
        assert_ne!(fr.stats, tripled);
    }

    #[test]
    fn streaming_estimation_is_deterministic_and_hits_the_cache() {
        let config = RunConfig::new("sense").invocations(400).seeded(13);
        let fleet = Fleet::new(config, 4);
        let (fr, a) = fleet.run_streaming().unwrap();
        let b = fleet.estimate_streaming(&fr).unwrap();
        assert_eq!(a.batches, 4);
        assert_eq!(a.batch_iterations, b.batch_iterations);
        for (x, y) in a
            .estimated
            .estimate
            .probs
            .as_slice()
            .iter()
            .zip(b.estimated.estimate.probs.as_slice())
        {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // Later batches warm-start near the optimum and replay cached
        // convolutions; a streaming run that never hits is a wiring bug.
        assert!(a.cache_hits > 0, "no convolution-cache hits across batches");
        assert!(
            a.estimated.accuracy.mae < 0.05,
            "mae {}",
            a.estimated.accuracy.mae
        );
        // The per-mote batch sequence folds back to the merged statistics.
        let mut refold = SuffStats::new(fleet.config().cycles_per_tick);
        for s in &fr.mote_stats {
            refold.merge(s).unwrap();
        }
        assert_eq!(refold, fr.stats);
    }

    #[test]
    fn fleet_estimate_runs_off_merged_stats() {
        let config = RunConfig::new("sense").invocations(700).seeded(9);
        let fleet = Fleet::new(config, 3);
        let fr = fleet.run().unwrap();
        let est = fleet.estimate(&fr).unwrap();
        assert!(
            est.accuracy.mae < 0.03,
            "mae {} from {} merged samples",
            est.accuracy.mae,
            fr.stats.len()
        );
    }
}

//! Scoped-thread parallel map with deterministic result ordering.
//!
//! The workspace's sweep loops (EM restarts, per-procedure estimation,
//! app × configuration benchmark grids) are embarrassingly parallel over
//! independent inputs. [`par_map`] fans such a batch out over
//! `std::thread::scope` workers — no external thread-pool dependency — and
//! returns results **in input order**, so parallel and serial execution are
//! observably identical.
//!
//! The worker count comes from the `CT_THREADS` environment variable when
//! set (a positive integer; `1` forces the serial path), otherwise from
//! [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Parses a `CT_THREADS`-style override. `None` when absent or unparsable.
fn parse_threads(var: Option<&str>) -> Option<usize> {
    var.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// The worker count [`par_map`] uses: `CT_THREADS` when set, else the
/// machine's available parallelism.
pub fn thread_count() -> usize {
    parse_threads(std::env::var("CT_THREADS").ok().as_deref())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Maps `f` over `items` on up to [`thread_count`] scoped threads, returning
/// results in input order.
///
/// With one worker (or one item) this is exactly `items.into_iter().map(f)`,
/// including evaluation order — the property the determinism tests pin down.
/// A panic in any worker propagates.
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    par_map_with(thread_count(), items, f)
}

/// [`par_map`] with an explicit worker count (testable without touching the
/// process environment).
pub fn par_map_with<T, U, F>(threads: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = threads.max(1).min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Work-stealing by atomic index; each result lands in its input's slot,
    // so output order is independent of scheduling.
    let next = AtomicUsize::new(0);
    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let outputs: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = inputs[i].lock().unwrap().take().expect("item taken once");
                    let result = f(item);
                    *outputs[i].lock().unwrap() = Some(result);
                }
                // Merge this worker's observability buffer before the scope
                // unblocks. `thread::scope` returns once worker *closures*
                // finish; TLS destructors (the recorder's fallback drain)
                // run after that signal, so a coordinator snapshotting right
                // after par_map could otherwise miss worker-recorded
                // counters — a thread-count-dependent undercount.
                ct_obs::drain_thread();
            });
        }
    });
    outputs
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("worker filled slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_threads_accepts_positive_integers() {
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 2 ")), Some(2));
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("abc")), None);
        assert_eq!(parse_threads(None), None);
    }

    #[test]
    fn results_are_in_input_order() {
        for threads in [1, 2, 4, 7] {
            let out = par_map_with(threads, (0u64..100).collect(), |x| x * x);
            let want: Vec<u64> = (0..100).map(|x| x * x).collect();
            assert_eq!(out, want, "threads={threads}");
        }
    }

    #[test]
    fn serial_and_parallel_agree_on_stateful_work() {
        // Simulated per-item PRNG work: result depends only on the input.
        let work = |seed: u64| {
            let mut state = seed;
            for _ in 0..1000 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
            state
        };
        let serial = par_map_with(1, (0u64..64).collect(), work);
        let parallel = par_map_with(8, (0u64..64).collect(), work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_singleton_batches() {
        let empty: Vec<u32> = par_map_with(4, Vec::<u32>::new(), |x| x);
        assert!(empty.is_empty());
        assert_eq!(par_map_with(4, vec![9u32], |x| x + 1), vec![10]);
    }

    #[test]
    fn worker_counters_visible_when_par_map_returns() {
        // Regression: workers record counters into thread-local buffers
        // that TLS destructors drain *after* thread::scope unblocks, so
        // without the explicit end-of-closure drain a snapshot taken right
        // after par_map raced the workers and undercounted. Many rounds to
        // give a reintroduced race a chance to lose.
        for round in 0..50u64 {
            let before = counter_value("t.parmap.drain");
            let out = par_map_with(4, (0u64..8).collect(), |x| {
                ct_obs::Counter::new("t.parmap.drain").incr();
                x
            });
            assert_eq!(out.len(), 8);
            let after = counter_value("t.parmap.drain");
            assert_eq!(after - before, 8, "round {round} lost counter increments");
        }
    }

    #[test]
    fn worker_histograms_visible_when_par_map_returns() {
        // Companion to the counter test for the histogram aggregates added
        // in telemetry v2: the same end-of-closure drain must carry them,
        // and the merged snapshot must be bitwise what a serial recorder
        // would hold regardless of which worker recorded which value.
        let mut want = ct_obs::HistData::default();
        (0u64..64).for_each(|x| want.record(x * 37 % 1000));
        for round in 0..20u64 {
            let name = format!("t.parmap.hist.{round}");
            let out = par_map_with(4, (0u64..64).collect(), |x| {
                ct_obs::hist_record(&name, x * 37 % 1000);
                x
            });
            assert_eq!(out.len(), 64);
            let snap = ct_obs::snapshot();
            let got = snap
                .hists
                .iter()
                .find(|(k, _)| *k == name)
                .map(|(_, h)| h.clone())
                .unwrap_or_default();
            assert_eq!(got, want, "round {round} lost or skewed hist records");
        }
    }

    /// Marker payload for the caught-panic drain test, so a quiet hook can
    /// filter exactly these panics without touching other tests' output.
    struct ExpectedPanic;

    #[test]
    fn counters_recorded_before_a_caught_panic_survive_the_unwind() {
        // Regression companion to `worker_counters_visible_when_par_map_returns`
        // for the fault-injection path: a worker body that panics and is
        // caught *inside* the closure (the fleet's crash-retry boundary)
        // must still reach the end-of-closure drain, and increments recorded
        // before the unwind must survive it.
        static QUIET: std::sync::Once = std::sync::Once::new();
        QUIET.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if info.payload().is::<ExpectedPanic>() {
                    return;
                }
                prev(info);
            }));
        });
        for round in 0..20u64 {
            let before = counter_value("t.parmap.unwind");
            let out = par_map_with(4, (0u64..8).collect(), |x| {
                let caught = std::panic::catch_unwind(move || {
                    ct_obs::Counter::new("t.parmap.unwind").incr();
                    if x % 2 == 0 {
                        std::panic::panic_any(ExpectedPanic);
                    }
                    x
                });
                caught.unwrap_or(u64::MAX)
            });
            assert_eq!(out.iter().filter(|&&x| x == u64::MAX).count(), 4);
            let after = counter_value("t.parmap.unwind");
            assert_eq!(
                after - before,
                8,
                "round {round} lost increments across a caught unwind"
            );
        }
    }

    fn counter_value(name: &str) -> u64 {
        ct_obs::snapshot()
            .counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panic_propagates() {
        let _ = par_map_with(2, vec![1u32, 2, 3, 4], |x| {
            if x == 3 {
                panic!("boom");
            }
            x
        });
    }
}

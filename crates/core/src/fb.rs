//! Forward–backward analysis of the per-procedure Markov chain over the
//! time-expanded state space.
//!
//! This is the inference engine behind the EM estimator. For the chain with
//! parameters `θ` and static block/edge cycle costs:
//!
//! - the **forward** table `f(b, t)` is the probability of arriving at block
//!   `b` (before executing it) having consumed exactly `t` cycles;
//! - the **backward** table `g(b, t)` is the probability that the total
//!   remaining duration (including executing `b`) is exactly `t`.
//!
//! The procedure's duration distribution is `g(entry, ·)`, and the posterior
//! expected traversal count of edge `(u → v)` given an observed duration
//! decomposes as `p_e · Σ_t f(u,t) · g(v, d − t − c_u − c_e) / D(d)` — the
//! Baum–Welch statistics, computed here against the quantization kernel so
//! coarse-timer observations are handled exactly.

use crate::quantize::{duration_window, tick_likelihood};
use crate::samples::TimingSamples;
use ct_cfg::graph::{BlockId, Cfg, Terminator};
use ct_cfg::profile::BranchProbs;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Tuning knobs for the time-expanded dynamic programs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FbParams {
    /// Probability mass below which a DP entry is dropped (and accounted as
    /// truncated).
    pub mass_eps: f64,
    /// Cap on total `(block, time)` expansions per dynamic program
    /// (runaway-loop guard).
    pub max_entries: usize,
}

impl Default for FbParams {
    fn default() -> Self {
        FbParams { mass_eps: 1e-9, max_entries: 4_000_000 }
    }
}

/// Failure of the time-expanded DP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FbError {
    /// The DP exceeded its entry budget (loop continuation probability too
    /// close to 1 for the requested precision).
    SupportExplosion {
        /// The configured entry cap.
        max_entries: usize,
    },
    /// The CFG/probability inputs were inconsistent (e.g. cost vector length
    /// mismatch).
    Shape(String),
}

impl fmt::Display for FbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FbError::SupportExplosion { max_entries } => {
                write!(f, "time-expanded DP exceeded {max_entries} entries")
            }
            FbError::Shape(msg) => write!(f, "shape error: {msg}"),
        }
    }
}

impl Error for FbError {}

/// Sparse probability table per block: sorted `(cycles, probability)` pairs.
pub type SparsePmf = Vec<(u64, f64)>;

/// Forward and backward tables for one parameter vector.
#[derive(Debug, Clone)]
pub struct FbTables {
    /// `forward[b]`: arrival distribution at block `b`.
    pub forward: Vec<SparsePmf>,
    /// `backward[b]`: remaining-duration distribution from block `b`.
    pub backward: Vec<SparsePmf>,
    /// Probability mass lost to `mass_eps` pruning (upper bound across DPs).
    pub truncated: f64,
}

impl FbTables {
    /// The procedure's end-to-end duration distribution (`g(entry, ·)`).
    pub fn duration_pmf(&self, cfg: &Cfg) -> &SparsePmf {
        &self.backward[cfg.entry().index()]
    }
}

/// Computes forward and backward tables.
///
/// # Errors
///
/// [`FbError::SupportExplosion`] when pruning cannot contain the DP, and
/// [`FbError::Shape`] for mismatched cost vectors.
pub fn compute_tables(
    cfg: &Cfg,
    block_costs: &[u64],
    edge_costs: &[u64],
    probs: &BranchProbs,
    params: FbParams,
) -> Result<FbTables, FbError> {
    if block_costs.len() != cfg.len() {
        return Err(FbError::Shape(format!(
            "expected {} block costs, got {}",
            cfg.len(),
            block_costs.len()
        )));
    }
    if edge_costs.len() != cfg.edges().len() {
        return Err(FbError::Shape(format!(
            "expected {} edge costs, got {}",
            cfg.edges().len(),
            edge_costs.len()
        )));
    }
    let edge_probs = probs.edge_probs(cfg);
    let out_edges = collect_out_edges(cfg);

    let mut truncated = 0.0;
    let forward = forward_table(
        cfg,
        block_costs,
        edge_costs,
        &edge_probs,
        &out_edges,
        params,
        &mut truncated,
    )?;
    let mut backward = Vec::with_capacity(cfg.len());
    for b in cfg.block_ids() {
        backward.push(remaining_pmf(
            cfg,
            b,
            block_costs,
            edge_costs,
            &edge_probs,
            &out_edges,
            params,
            &mut truncated,
        )?);
    }
    Ok(FbTables { forward, backward, truncated })
}

/// Out-edges per block: `(edge_index, to)`.
fn collect_out_edges(cfg: &Cfg) -> Vec<Vec<(usize, BlockId)>> {
    let mut out = vec![Vec::new(); cfg.len()];
    for e in cfg.edges() {
        out[e.from.index()].push((e.index, e.to));
    }
    out
}

fn forward_table(
    cfg: &Cfg,
    block_costs: &[u64],
    edge_costs: &[u64],
    edge_probs: &[f64],
    out_edges: &[Vec<(usize, BlockId)>],
    params: FbParams,
    truncated: &mut f64,
) -> Result<Vec<SparsePmf>, FbError> {
    let n = cfg.len();
    let mut acc: Vec<BTreeMap<u64, f64>> = vec![BTreeMap::new(); n];
    let mut frontier: BTreeMap<(usize, u64), f64> = BTreeMap::new();
    frontier.insert((cfg.entry().index(), 0), 1.0);
    acc[cfg.entry().index()].insert(0, 1.0);
    let mut processed: usize = 0;

    while !frontier.is_empty() {
        processed += frontier.len();
        if processed > params.max_entries {
            return Err(FbError::SupportExplosion { max_entries: params.max_entries });
        }
        let mut next: BTreeMap<(usize, u64), f64> = BTreeMap::new();
        for ((b, t), mass) in frontier {
            if matches!(cfg.block(BlockId(b as u32)).term, Terminator::Return) {
                continue; // absorbed; arrival already recorded
            }
            for &(ei, v) in &out_edges[b] {
                let p = edge_probs[ei];
                if p <= 0.0 {
                    continue;
                }
                let m = mass * p;
                if m < params.mass_eps {
                    *truncated += m;
                    continue;
                }
                let t2 = t + block_costs[b] + edge_costs[ei];
                *next.entry((v.index(), t2)).or_insert(0.0) += m;
                *acc[v.index()].entry(t2).or_insert(0.0) += m;
            }
        }
        frontier = next;
    }
    Ok(acc.into_iter().map(|m| m.into_iter().collect()).collect())
}

/// Distribution of total remaining duration from `start` (including
/// executing `start`).
#[allow(clippy::too_many_arguments)]
fn remaining_pmf(
    cfg: &Cfg,
    start: BlockId,
    block_costs: &[u64],
    edge_costs: &[u64],
    edge_probs: &[f64],
    out_edges: &[Vec<(usize, BlockId)>],
    params: FbParams,
    truncated: &mut f64,
) -> Result<SparsePmf, FbError> {
    let mut result: BTreeMap<u64, f64> = BTreeMap::new();
    let mut frontier: BTreeMap<(usize, u64), f64> = BTreeMap::new();
    frontier.insert((start.index(), 0), 1.0);
    let mut processed: usize = 0;

    while !frontier.is_empty() {
        processed += frontier.len();
        if processed > params.max_entries {
            return Err(FbError::SupportExplosion { max_entries: params.max_entries });
        }
        let mut next: BTreeMap<(usize, u64), f64> = BTreeMap::new();
        for ((b, t), mass) in frontier {
            let t_after = t + block_costs[b];
            if matches!(cfg.block(BlockId(b as u32)).term, Terminator::Return) {
                *result.entry(t_after).or_insert(0.0) += mass;
                continue;
            }
            for &(ei, v) in &out_edges[b] {
                let p = edge_probs[ei];
                if p <= 0.0 {
                    continue;
                }
                let m = mass * p;
                if m < params.mass_eps {
                    *truncated += m;
                    continue;
                }
                *next.entry((v.index(), t_after + edge_costs[ei])).or_insert(0.0) += m;
            }
        }
        frontier = next;
    }
    Ok(result.into_iter().collect())
}

/// Posterior expected edge-traversal counts aggregated over a sample set.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeExpectations {
    /// Expected traversal count per edge (summed over samples).
    pub counts: Vec<f64>,
    /// Total log-likelihood of the explained samples.
    pub loglik: f64,
    /// Samples whose observed ticks have (numerically) zero probability
    /// under the model — contamination or truncation casualties.
    pub unexplained: usize,
}

/// Runs one E-step: builds tables for `probs` and computes posterior expected
/// edge-traversal counts for `samples` (the entry point the EM loop uses).
pub fn e_step(
    cfg: &Cfg,
    block_costs: &[u64],
    edge_costs: &[u64],
    probs: &BranchProbs,
    samples: &TimingSamples,
    params: FbParams,
) -> Result<(EdgeExpectations, FbTables), FbError> {
    let tables = compute_tables(cfg, block_costs, edge_costs, probs, params)?;
    let cpt = samples.cycles_per_tick();
    let edges = cfg.edges();
    let edge_probs = probs.edge_probs(cfg);
    let duration = tables.duration_pmf(cfg);
    let mut counts = vec![0.0; edges.len()];
    let mut loglik = 0.0;
    let mut unexplained = 0;

    for (t_obs, n) in samples.counted() {
        let (lo, hi) = duration_window(t_obs, cpt);
        let z: f64 = pmf_range(duration, lo, hi)
            .map(|&(d, p)| p * tick_likelihood(t_obs, d, cpt))
            .sum();
        if z <= 1e-300 {
            unexplained += n;
            continue;
        }
        loglik += n as f64 * z.ln();

        for e in edges.iter() {
            let p_e = edge_probs[e.index];
            if p_e <= 0.0 {
                continue;
            }
            let delta = block_costs[e.from.index()] + edge_costs[e.index];
            let f_u = &tables.forward[e.from.index()];
            let g_v = &tables.backward[e.to.index()];
            let mut acc = 0.0;
            for &(t, fm) in f_u {
                let base = t + delta;
                if base > hi {
                    continue;
                }
                let s_lo = lo.saturating_sub(base);
                let s_hi = hi - base;
                for &(s, gm) in pmf_slice(g_v, s_lo, s_hi) {
                    let k = tick_likelihood(t_obs, base + s, cpt);
                    if k > 0.0 {
                        acc += fm * gm * k;
                    }
                }
            }
            counts[e.index] += n as f64 * p_e * acc / z;
        }
    }

    Ok((EdgeExpectations { counts, loglik, unexplained }, tables))
}

fn pmf_range(pmf: &SparsePmf, lo: u64, hi: u64) -> impl Iterator<Item = &(u64, f64)> {
    pmf_slice(pmf, lo, hi).iter()
}

fn pmf_slice(pmf: &SparsePmf, lo: u64, hi: u64) -> &[(u64, f64)] {
    if lo > hi {
        return &[];
    }
    let start = pmf.partition_point(|&(d, _)| d < lo);
    let end = pmf.partition_point(|&(d, _)| d <= hi);
    &pmf[start..end]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_cfg::builder::{diamond, while_loop};

    fn diamond_setup(p: f64) -> (ct_cfg::graph::Cfg, Vec<u64>, Vec<u64>, BranchProbs) {
        let cfg = diamond();
        let block_costs = vec![10, 100, 200, 5];
        let edge_costs = vec![1, 2, 0, 0];
        let probs = BranchProbs::from_vec(&cfg, vec![p]);
        (cfg, block_costs, edge_costs, probs)
    }

    #[test]
    fn duration_pmf_of_diamond_is_two_point() {
        let (cfg, bc, ec, probs) = diamond_setup(0.7);
        let t = compute_tables(&cfg, &bc, &ec, &probs, FbParams::default()).unwrap();
        let d = t.duration_pmf(&cfg);
        // true path: 10+1+100+0+5 = 116; false: 10+2+200+0+5 = 217.
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].0, 116);
        assert!((d[0].1 - 0.7).abs() < 1e-12);
        assert_eq!(d[1].0, 217);
        assert!((d[1].1 - 0.3).abs() < 1e-12);
    }

    #[test]
    fn forward_table_arrivals() {
        let (cfg, bc, ec, probs) = diamond_setup(0.7);
        let t = compute_tables(&cfg, &bc, &ec, &probs, FbParams::default()).unwrap();
        // Arrive at then (b1) at t = 10+1 = 11 with mass 0.7.
        assert_eq!(t.forward[1], vec![(11, 0.7)]);
        // Arrive at join (b3) from both arms.
        assert_eq!(t.forward[3].len(), 2);
        let total: f64 = t.forward[3].iter().map(|&(_, m)| m).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn e_step_attributes_samples_to_paths() {
        let (cfg, bc, ec, probs) = diamond_setup(0.5);
        // 30 observations of the fast path, 10 of the slow, cycle-accurate.
        let mut ticks = vec![116u64; 30];
        ticks.extend(vec![217u64; 10]);
        let samples = TimingSamples::new(ticks, 1);
        let (exp, _) = e_step(&cfg, &bc, &ec, &probs, &samples, FbParams::default()).unwrap();
        // Edge 0 = cond→then: all 30 fast samples; edge 1 = cond→else: 10.
        assert!((exp.counts[0] - 30.0).abs() < 1e-9, "{:?}", exp.counts);
        assert!((exp.counts[1] - 10.0).abs() < 1e-9);
        assert_eq!(exp.unexplained, 0);
        assert!(exp.loglik < 0.0);
    }

    #[test]
    fn e_step_with_quantized_ticks() {
        let (cfg, bc, ec, probs) = diamond_setup(0.5);
        // cpt = 100: fast path 116 cycles → ticks 1 (84%) or 2 (16%);
        // slow path 217 → ticks 2 (83%) or 3 (17%). Observed tick 3 must be
        // attributed fully to the slow path.
        let samples = TimingSamples::new(vec![3], 100);
        let (exp, _) = e_step(&cfg, &bc, &ec, &probs, &samples, FbParams::default()).unwrap();
        assert!(exp.counts[0].abs() < 1e-12, "{:?}", exp.counts);
        assert!((exp.counts[1] - 1.0).abs() < 1e-9);
        // Tick 1 is unambiguously fast.
        let samples = TimingSamples::new(vec![1], 100);
        let (exp, _) = e_step(&cfg, &bc, &ec, &probs, &samples, FbParams::default()).unwrap();
        assert!((exp.counts[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn impossible_observation_is_unexplained() {
        let (cfg, bc, ec, probs) = diamond_setup(0.5);
        let samples = TimingSamples::new(vec![9999], 1);
        let (exp, _) = e_step(&cfg, &bc, &ec, &probs, &samples, FbParams::default()).unwrap();
        assert_eq!(exp.unexplained, 1);
        assert!(exp.counts.iter().all(|&c| c == 0.0));
    }

    #[test]
    fn loop_tables_have_geometric_support() {
        let cfg = while_loop();
        let bc = vec![2, 3, 10, 1];
        let ec = vec![0; cfg.edges().len()];
        let mut probs = BranchProbs::uniform(&cfg, 0.5);
        probs.set_prob_true(ct_cfg::graph::BlockId(1), 0.5);
        let t = compute_tables(&cfg, &bc, &ec, &probs, FbParams::default()).unwrap();
        let d = t.duration_pmf(&cfg);
        // k iterations: 2 + 3(k+1) + 10k + 1 = 6 + 13k, each w.p. 0.5^{k+1}.
        assert_eq!(d[0], (6, 0.5));
        assert_eq!(d[1].0, 19);
        assert!((d[1].1 - 0.25).abs() < 1e-12);
        let total: f64 = d.iter().map(|&(_, p)| p).sum();
        assert!(total > 0.999);
    }

    #[test]
    fn loop_e_step_counts_iterations() {
        let cfg = while_loop();
        let bc = vec![2, 3, 10, 1];
        let ec = vec![0; cfg.edges().len()];
        let probs = BranchProbs::from_vec(&cfg, vec![0.5]);
        // Observe a run with exactly 2 iterations: d = 6 + 26 = 32.
        let samples = TimingSamples::new(vec![32], 1);
        let (exp, _) = e_step(&cfg, &bc, &ec, &probs, &samples, FbParams::default()).unwrap();
        // Back edge (body→header) is edge index 2 (jump); header true edge
        // (continue) index 0 taken twice, false edge once.
        let edges = cfg.edges();
        let true_idx = edges
            .iter()
            .find(|e| e.kind == ct_cfg::graph::EdgeKind::BranchTrue)
            .unwrap()
            .index;
        let false_idx = edges
            .iter()
            .find(|e| e.kind == ct_cfg::graph::EdgeKind::BranchFalse)
            .unwrap()
            .index;
        assert!((exp.counts[true_idx] - 2.0).abs() < 1e-9, "{:?}", exp.counts);
        assert!((exp.counts[false_idx] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn explosion_guard_fires() {
        let cfg = while_loop();
        let bc = vec![2, 3, 10, 1];
        let ec = vec![0; cfg.edges().len()];
        let probs = BranchProbs::from_vec(&cfg, vec![0.9999]);
        let params = FbParams { mass_eps: 1e-300, max_entries: 4 };
        assert!(matches!(
            compute_tables(&cfg, &bc, &ec, &probs, params),
            Err(FbError::SupportExplosion { .. })
        ));
    }

    #[test]
    fn shape_errors_detected() {
        let (cfg, bc, _, probs) = diamond_setup(0.5);
        let bad_ec = vec![0u64; 1];
        assert!(matches!(
            compute_tables(&cfg, &bc, &bad_ec, &probs, FbParams::default()),
            Err(FbError::Shape(_))
        ));
    }
}
